//! Crash-consistency demonstration, crashkit edition: instead of one
//! hand-picked power-failure point, enumerate the *whole* crash-point space
//! of a ByteFS workload — cut power at every durability-relevant firmware
//! step, remount, recover, fsck — and show how a single printed line
//! reproduces any crash point exactly (§4.7 / §5.5).
//!
//! Run with `cargo run --example crash_recovery`.

use bytefs_repro::crashkit::{DeviceStress, Enumerator, FsStress};
use bytefs_repro::mssd::FaultKind;

fn main() {
    // 1. Size the crash-point space of a seeded ByteFS workload: every
    //    write-log append, TxLog commit, sealed-region drain, buffer
    //    acceptance and NAND program is a point where the power can die.
    let fs = Enumerator::new(FsStress::quick());
    let seed = 0xB17E;
    let total = fs.count_steps(seed);
    println!("ByteFS workload (seed {seed:#x}): {total} distinct crash points");

    // 2. Exhaustively cut power at (a spread of) those points. Each cut
    //    captures the battery-backed durable image, restores it into a
    //    fresh device, runs RECOVER(), remounts and fscks.
    let report = fs.exhaustive(seed, 60);
    println!("explored {} cuts: {} violations", report.outcomes.len(), report.failures().count());
    report.assert_clean();

    // 3. Any failure would print as `crashkit repro: seed=… cut=…`, and
    //    replaying that pair reproduces the identical crash state:
    let mid = total / 2;
    let once = fs.run_cut(seed, mid);
    let again = fs.reproduce(seed, mid);
    assert_eq!(once.image_digest, again.image_digest);
    println!("cut {mid} reproduces bit-identically: {}", once.repro_line());

    // 4. The device-level mixed-op stress also shows which *kinds* of step
    //    the cuts land on — torn programs, lost commits, half-drained
    //    sealed regions.
    let dev = Enumerator::new(DeviceStress::quick());
    let report = dev.exhaustive(0x00D0_57E5, 120);
    report.assert_clean();
    for kind in FaultKind::ALL {
        let hits = report.outcomes.iter().filter(|o| o.cut_kind == Some(kind)).count();
        if hits > 0 {
            println!("  {:>14}: {hits} cuts, all recovered clean", kind.label());
        }
    }
    println!("all enumerated crash points recover to invariant-clean states");
}
