//! Crash-consistency demonstration: commit some transactions, lose power
//! without unmounting, recover, and check that committed data survived while
//! uncommitted log entries were discarded (§4.7 / §5.5).
//!
//! Run with `cargo run --example crash_recovery`.

use bytefs::{ByteFs, ByteFsConfig};
use fskit::{FileSystem, FileSystemExt, OpenFlags};
use mssd::{DramMode, Mssd, MssdConfig};

fn main() -> fskit::FsResult<()> {
    let device = Mssd::new(MssdConfig::default().with_capacity(1 << 30), DramMode::WriteLog);
    let fs = ByteFs::format(device.clone(), ByteFsConfig::full())?;

    // Durable work: every write_file ends with fsync, every namespace
    // operation commits a firmware transaction.
    fs.mkdir("/accounts")?;
    for i in 0..50 {
        fs.write_file(&format!("/accounts/user{i}"), format!("balance={}", i * 100).as_bytes())?;
    }

    // Volatile work: buffered write without fsync — allowed to disappear.
    let fd = fs.open("/accounts/user0", OpenFlags::read_write())?;
    fs.write(fd, 0, b"balance=9999999")?;

    let before = device.snapshot();
    println!("before crash: {} log entries buffered in device DRAM", before.log_entries);

    // Power failure: host memory is gone; battery-backed device DRAM survives.
    drop(fs);
    device.crash();

    // Remount: the dirty superblock triggers firmware RECOVER().
    let fs = ByteFs::mount(device.clone(), ByteFsConfig::full())?;
    let report = fs.recover_after_crash();
    println!(
        "recovery: scanned {} entries, discarded {} uncommitted, flushed {} pages in {:.2} ms",
        report.scanned_entries,
        report.discarded_entries,
        report.flushed_pages,
        report.duration_ns as f64 / 1e6
    );

    // Committed state is intact; the unsynced overwrite did not survive.
    assert_eq!(fs.readdir("/accounts")?.len(), 50);
    let user0 = fs.read_file("/accounts/user0")?;
    assert_eq!(user0, b"balance=0");
    println!("all 50 committed files present; user0 = {:?}", String::from_utf8_lossy(&user0));
    Ok(())
}
