//! A Varmail-style mail-server scenario comparing ByteFS with the Ext4-like
//! baseline on the same emulated M-SSD configuration: many small files,
//! frequent `fsync`, lots of metadata churn.
//!
//! Run with `cargo run --release --example mailserver`.

use workloads::filebench::{Filebench, Personality};
use workloads::{run_workload, FsKind, Scale};

fn main() {
    let scale = Scale::new(0.25);
    let cfg = mssd::MssdConfig::default().with_capacity(1 << 30).with_dram_region(16 << 20);

    println!("Running the Varmail personality (small files, fsync-heavy) ...\n");
    let workload = Filebench::new(Personality::Varmail, scale);
    let mut results = Vec::new();
    for kind in [FsKind::Ext4, FsKind::F2fs, FsKind::ByteFs] {
        let r = run_workload(kind, cfg.clone(), &workload, 2024).expect("workload runs");
        println!(
            "{:<8} {:>8.2} kops/s | write amp {:>5.2}x | read amp {:>5.2}x | metadata written {:>8} B",
            r.fs,
            r.kops_per_sec,
            r.write_amplification(),
            r.read_amplification(),
            r.metadata_write_bytes(),
        );
        results.push(r);
    }
    let ext4 = &results[0];
    let bytefs = results.last().expect("three results");
    println!(
        "\nByteFS vs Ext4: {:.2}x throughput, {:.2}x less host-SSD write traffic",
        bytefs.kops_per_sec / ext4.kops_per_sec,
        ext4.traffic.host_write_bytes() as f64 / bytefs.traffic.host_write_bytes().max(1) as f64,
    );
}
