//! Run the LSM key-value store (RocksDB stand-in) under YCSB-A on ByteFS and
//! on the F2FS-like baseline, mirroring the paper's real-application study.
//!
//! Run with `cargo run --release --example kv_ycsb`.

use workloads::ycsb::{run_ycsb, YcsbSpec, YcsbWorkload};
use workloads::{FsKind, Scale};

fn main() {
    let cfg = mssd::MssdConfig::default().with_capacity(1 << 30).with_dram_region(16 << 20);
    let spec = YcsbSpec::new(YcsbWorkload::A, Scale::new(0.5));
    println!(
        "YCSB-A (50/50 read/update, zipfian) over {} records, {} operations\n",
        spec.records, spec.operations
    );

    for kind in [FsKind::F2fs, FsKind::ByteFs] {
        let (device, fs) = kind.build(cfg.clone());
        let r = run_ycsb(&device, fs, &spec, 77).expect("ycsb runs");
        println!(
            "{:<8} {:>8.2} kops/s | read avg {:>7.1} us p95 {:>7.1} us | update avg {:>7.1} us p95 {:>7.1} us",
            r.fs,
            r.kops_per_sec,
            r.read.avg_ns / 1e3,
            r.read.p95_ns as f64 / 1e3,
            r.write.avg_ns / 1e3,
            r.write.p95_ns as f64 / 1e3,
        );
    }
    println!("\nThe paper reports ~2.4x better YCSB throughput for ByteFS over F2FS, driven by");
    println!("cheaper WAL fsyncs (byte-granular persistence + firmware commit).");
}
