//! Quickstart: format a ByteFS volume on an emulated memory-semantic SSD,
//! do some file I/O, and look at where the bytes went.
//!
//! Run with `cargo run --example quickstart`.

use bytefs::{ByteFs, ByteFsConfig};
use fskit::{FileSystem, FileSystemExt, OpenFlags};
use mssd::stats::Direction;
use mssd::{Category, DramMode, Mssd, MssdConfig};

fn main() -> fskit::FsResult<()> {
    // 1. Create an emulated M-SSD with the paper's timing (Table 4) and the
    //    ByteFS firmware (log-structured device DRAM).
    let device = Mssd::new(MssdConfig::default().with_capacity(1 << 30), DramMode::WriteLog);

    // 2. Format and mount ByteFS on it.
    let fs = ByteFs::format(device.clone(), ByteFsConfig::full())?;

    // 3. Ordinary POSIX-ish file I/O.
    fs.mkdir("/projects")?;
    fs.write_file("/projects/notes.txt", b"memory-semantic SSDs support byte + block access")?;
    let fd = fs.open("/projects/notes.txt", OpenFlags::read_write())?;
    fs.append(fd, b"\nbyte-granular metadata persistence cuts I/O amplification")?;
    fs.fsync(fd)?;
    fs.close(fd)?;

    println!(
        "file contents:\n{}\n",
        String::from_utf8_lossy(&fs.read_file("/projects/notes.txt")?)
    );

    // 4. Inspect the device-level effects: which interface carried the bytes,
    //    and which file-system structure they belonged to.
    let snapshot = device.snapshot();
    println!("virtual time elapsed: {:.2} ms", snapshot.now_ns as f64 / 1e6);
    println!("write log entries in device DRAM: {}", snapshot.log_entries);
    for cat in Category::ALL {
        let w = snapshot.traffic.host_bytes_by_category(Direction::Write, cat);
        if w > 0 {
            println!("  host->SSD writes [{cat}]: {w} bytes");
        }
    }
    println!(
        "metadata bytes written: {} (vs {} data bytes) — note how small the metadata is",
        snapshot.traffic.host_metadata_bytes(Direction::Write),
        snapshot.traffic.host_data_bytes(Direction::Write),
    );
    fs.unmount()?;
    Ok(())
}
