//! Directory entries and the in-memory directory representation.
//!
//! §4.5: each directory holds an array of directory entries in its directory
//! blocks; creating or renaming touches a single entry and is persisted over
//! the byte interface (64–320 B depending on the name length), while lookups
//! load whole directory blocks over the block interface and cache them in the
//! host.
//!
//! In this implementation each entry occupies one 64-byte slot (inode number,
//! type, name length, name up to [`MAX_NAME_LEN`] bytes), so a directory block
//! holds 64 entries and every entry update is exactly one cacheline write.

use std::collections::BTreeMap;

use fskit::{FileType, FsError, FsResult};

use crate::layout::DENTRY_SIZE;

/// Maximum file-name length storable in one slot.
pub const MAX_NAME_LEN: usize = DENTRY_SIZE - 10;

/// Number of directory-entry slots per 4 KB directory block.
pub fn slots_per_block(page_size: usize) -> usize {
    page_size / DENTRY_SIZE
}

/// A decoded directory-entry slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DentrySlot {
    /// Inode of the child (0 means the slot is free).
    pub ino: u64,
    /// Type of the child.
    pub file_type: FileType,
    /// Child name.
    pub name: String,
}

impl DentrySlot {
    /// Encodes the slot into its 64-byte on-device form.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::InvalidArgument`] if the name is empty or longer
    /// than [`MAX_NAME_LEN`].
    pub fn encode(&self) -> FsResult<[u8; DENTRY_SIZE]> {
        if self.name.is_empty() || self.name.len() > MAX_NAME_LEN {
            return Err(FsError::InvalidArgument(format!(
                "file name must be 1..={MAX_NAME_LEN} bytes: {:?}",
                self.name
            )));
        }
        let mut out = [0u8; DENTRY_SIZE];
        out[..8].copy_from_slice(&self.ino.to_le_bytes());
        out[8] = if self.file_type.is_dir() { 2 } else { 1 };
        out[9] = self.name.len() as u8;
        out[10..10 + self.name.len()].copy_from_slice(self.name.as_bytes());
        Ok(out)
    }

    /// Decodes a 64-byte slot. Returns `None` for a free slot (inode 0).
    pub fn decode(raw: &[u8]) -> Option<Self> {
        debug_assert!(raw.len() >= DENTRY_SIZE);
        let ino = u64::from_le_bytes(raw[..8].try_into().expect("8 bytes"));
        if ino == 0 {
            return None;
        }
        let file_type = if raw[8] == 2 { FileType::Directory } else { FileType::File };
        let name_len = (raw[9] as usize).min(MAX_NAME_LEN);
        let name = String::from_utf8_lossy(&raw[10..10 + name_len]).into_owned();
        Some(Self { ino, file_type, name })
    }

    /// An all-zero slot image, written to clear an entry on unlink.
    pub fn free_slot() -> [u8; DENTRY_SIZE] {
        [0u8; DENTRY_SIZE]
    }
}

/// Location of one entry inside a directory: which directory block (by
/// position in the directory's block list) and which slot inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotRef {
    /// Index into the directory's ordered list of data blocks.
    pub block_pos: usize,
    /// Slot index within that block.
    pub slot: usize,
}

/// One live directory entry as held in the host dentry cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedDentry {
    /// Child inode number.
    pub ino: u64,
    /// Child type.
    pub file_type: FileType,
    /// Where the entry lives on the device.
    pub slot: SlotRef,
}

/// The in-memory image of one directory: name → entry plus free-slot tracking.
///
/// The file system loads it by reading the directory's data blocks over the
/// block interface and keeps it cached (host-side metadata caching, §4.5).
#[derive(Debug, Clone, Default)]
pub struct Directory {
    entries: BTreeMap<String, CachedDentry>,
    free_slots: Vec<SlotRef>,
    nblocks: usize,
    slots_per_block: usize,
}

impl Directory {
    /// Creates an empty directory image with no blocks yet.
    pub fn new(page_size: usize) -> Self {
        Self {
            entries: BTreeMap::new(),
            free_slots: Vec::new(),
            nblocks: 0,
            slots_per_block: slots_per_block(page_size),
        }
    }

    /// Rebuilds the image from the directory's data blocks, in file order.
    pub fn from_blocks(page_size: usize, blocks: &[Vec<u8>]) -> Self {
        let mut dir = Self::new(page_size);
        for block in blocks {
            dir.append_block_image(block);
        }
        dir
    }

    fn append_block_image(&mut self, block: &[u8]) {
        let pos = self.nblocks;
        self.nblocks += 1;
        for slot in 0..self.slots_per_block {
            let off = slot * DENTRY_SIZE;
            if off + DENTRY_SIZE > block.len() {
                self.free_slots.push(SlotRef { block_pos: pos, slot });
                continue;
            }
            match DentrySlot::decode(&block[off..off + DENTRY_SIZE]) {
                Some(d) => {
                    self.entries.insert(
                        d.name.clone(),
                        CachedDentry {
                            ino: d.ino,
                            file_type: d.file_type,
                            slot: SlotRef { block_pos: pos, slot },
                        },
                    );
                }
                None => self.free_slots.push(SlotRef { block_pos: pos, slot }),
            }
        }
    }

    /// Registers a freshly allocated, empty directory block and returns its
    /// position in the block list.
    pub fn add_empty_block(&mut self) -> usize {
        let pos = self.nblocks;
        self.nblocks += 1;
        for slot in 0..self.slots_per_block {
            self.free_slots.push(SlotRef { block_pos: pos, slot });
        }
        pos
    }

    /// Number of directory blocks backing this directory.
    pub fn block_count(&self) -> usize {
        self.nblocks
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the directory has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a child by name.
    pub fn lookup(&self, name: &str) -> Option<&CachedDentry> {
        self.entries.get(name)
    }

    /// Whether a free slot is available (otherwise the caller must allocate a
    /// new directory block first).
    pub fn has_free_slot(&self) -> bool {
        !self.free_slots.is_empty()
    }

    /// Inserts a new entry into a free slot and returns where it was placed.
    ///
    /// # Errors
    ///
    /// * [`FsError::AlreadyExists`] if the name is taken.
    /// * [`FsError::NoSpace`] if there is no free slot (call
    ///   [`Directory::add_empty_block`] and retry).
    pub fn insert(&mut self, name: &str, ino: u64, file_type: FileType) -> FsResult<SlotRef> {
        if self.entries.contains_key(name) {
            return Err(FsError::AlreadyExists(name.to_string()));
        }
        let slot = self.free_slots.pop().ok_or(FsError::NoSpace)?;
        self.entries.insert(name.to_string(), CachedDentry { ino, file_type, slot });
        Ok(slot)
    }

    /// Removes an entry by name, returning it so the caller can clear the slot
    /// on the device.
    pub fn remove(&mut self, name: &str) -> Option<CachedDentry> {
        let removed = self.entries.remove(name)?;
        self.free_slots.push(removed.slot);
        Some(removed)
    }

    /// Iterates over `(name, entry)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &CachedDentry)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PS: usize = 4096;

    #[test]
    fn slot_encode_decode_roundtrip() {
        let s = DentrySlot { ino: 42, file_type: FileType::File, name: "hello.txt".into() };
        let raw = s.encode().unwrap();
        assert_eq!(raw.len(), DENTRY_SIZE);
        assert_eq!(DentrySlot::decode(&raw), Some(s));
        assert_eq!(DentrySlot::decode(&DentrySlot::free_slot()), None);
    }

    #[test]
    fn directory_slot_rejects_bad_names() {
        let long = "x".repeat(MAX_NAME_LEN + 1);
        let s = DentrySlot { ino: 1, file_type: FileType::File, name: long };
        assert!(matches!(s.encode(), Err(FsError::InvalidArgument(_))));
        let s = DentrySlot { ino: 1, file_type: FileType::File, name: String::new() };
        assert!(s.encode().is_err());
        // Exactly at the limit is fine.
        let s =
            DentrySlot { ino: 1, file_type: FileType::Directory, name: "d".repeat(MAX_NAME_LEN) };
        let raw = s.encode().unwrap();
        assert_eq!(DentrySlot::decode(&raw).unwrap().name.len(), MAX_NAME_LEN);
    }

    #[test]
    fn insert_lookup_remove() {
        let mut d = Directory::new(PS);
        assert!(!d.has_free_slot());
        assert!(matches!(d.insert("a", 2, FileType::File), Err(FsError::NoSpace)));
        d.add_empty_block();
        assert_eq!(d.block_count(), 1);
        let slot = d.insert("a", 2, FileType::File).unwrap();
        assert!(slot.slot < slots_per_block(PS));
        assert_eq!(d.lookup("a").unwrap().ino, 2);
        assert!(d.lookup("b").is_none());
        assert!(matches!(d.insert("a", 3, FileType::File), Err(FsError::AlreadyExists(_))));
        let removed = d.remove("a").unwrap();
        assert_eq!(removed.ino, 2);
        assert!(d.is_empty());
        assert!(d.remove("a").is_none());
        // The freed slot is reused.
        let slot2 = d.insert("b", 3, FileType::Directory).unwrap();
        assert_eq!(slot2, removed.slot);
    }

    #[test]
    fn fills_every_slot_of_a_block() {
        let mut d = Directory::new(PS);
        d.add_empty_block();
        let n = slots_per_block(PS);
        for i in 0..n {
            d.insert(&format!("f{i}"), 10 + i as u64, FileType::File).unwrap();
        }
        assert_eq!(d.len(), n);
        assert!(!d.has_free_slot());
        assert!(matches!(d.insert("overflow", 1, FileType::File), Err(FsError::NoSpace)));
        d.add_empty_block();
        d.insert("overflow", 1, FileType::File).unwrap();
        assert_eq!(d.block_count(), 2);
    }

    #[test]
    fn from_blocks_rebuilds_entries_and_free_slots() {
        // Build a block image with two entries in specific slots.
        let mut block = vec![0u8; PS];
        let e0 = DentrySlot { ino: 5, file_type: FileType::File, name: "one".into() };
        let e3 = DentrySlot { ino: 6, file_type: FileType::Directory, name: "two".into() };
        block[..DENTRY_SIZE].copy_from_slice(&e0.encode().unwrap());
        block[3 * DENTRY_SIZE..4 * DENTRY_SIZE].copy_from_slice(&e3.encode().unwrap());

        let d = Directory::from_blocks(PS, &[block]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.lookup("one").unwrap().ino, 5);
        assert_eq!(d.lookup("one").unwrap().slot, SlotRef { block_pos: 0, slot: 0 });
        assert_eq!(d.lookup("two").unwrap().slot, SlotRef { block_pos: 0, slot: 3 });
        assert_eq!(
            d.free_slots.len() + d.len(),
            slots_per_block(PS),
            "every slot is either live or free"
        );
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut d = Directory::new(PS);
        d.add_empty_block();
        for name in ["zeta", "alpha", "mid"] {
            d.insert(name, 1, FileType::File).unwrap();
        }
        let names: Vec<&String> = d.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }
}
