//! On-device layout of a ByteFS volume.
//!
//! ByteFS keeps an Ext4-like static layout (§4.9 says the implementation
//! reorganizes the Ext4 on-disk metadata structures): a superblock, inode and
//! block bitmaps, a fixed inode table, an optional data-journal area, and the
//! data area. The layout is computed once from the device size at `mkfs` time
//! and stored in the superblock.

use serde::{Deserialize, Serialize};

/// Size of one on-device inode in bytes (§4.5: 128 B, split into two 64 B
/// halves).
pub const INODE_SIZE: usize = 128;

/// Size of one directory-entry slot in bytes (inode number, type, name length
/// and a short name fit in one cacheline; longer names span two slots).
pub const DENTRY_SIZE: usize = 64;

/// Number of extent descriptors stored inline in the inode before an overflow
/// extent block is allocated.
pub const INLINE_EXTENTS: usize = 4;

/// Reserved inode number of the root directory.
pub const ROOT_INO: u64 = 1;

/// The computed region boundaries of a ByteFS volume, in units of 4 KB pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layout {
    /// Device page size in bytes.
    pub page_size: usize,
    /// Total device pages.
    pub total_pages: u64,
    /// Page holding the superblock (always 0).
    pub superblock_page: u64,
    /// First page of the inode bitmap.
    pub inode_bitmap_start: u64,
    /// Pages in the inode bitmap.
    pub inode_bitmap_pages: u64,
    /// First page of the block bitmap.
    pub block_bitmap_start: u64,
    /// Pages in the block bitmap.
    pub block_bitmap_pages: u64,
    /// First page of the inode table.
    pub inode_table_start: u64,
    /// Pages in the inode table.
    pub inode_table_pages: u64,
    /// First page of the data-journal area (JBD2-style, used by data
    /// journaling mode).
    pub journal_start: u64,
    /// Pages reserved for the data journal.
    pub journal_pages: u64,
    /// First page of the data area.
    pub data_start: u64,
    /// Number of data pages.
    pub data_pages: u64,
    /// Total number of inodes.
    pub inode_count: u64,
}

impl Layout {
    /// Computes the layout for a device with `total_pages` pages of
    /// `page_size` bytes.
    ///
    /// One inode is provisioned per four data-area pages (one file per 16 KB,
    /// matching the small-file workloads the paper targets), and 1 % of the
    /// device (at least 64 pages) is reserved for the data journal.
    ///
    /// # Panics
    ///
    /// Panics if the device is too small to hold the metadata regions
    /// (< ~1 MB).
    pub fn compute(total_pages: u64, page_size: usize) -> Self {
        assert!(total_pages >= 64, "device too small for a ByteFS volume");
        let inode_count = (total_pages / 4).max(64);
        let inodes_per_page = (page_size / INODE_SIZE) as u64;
        let inode_table_pages = inode_count.div_ceil(inodes_per_page);
        let bits_per_page = (page_size * 8) as u64;
        let inode_bitmap_pages = inode_count.div_ceil(bits_per_page);
        let block_bitmap_pages = total_pages.div_ceil(bits_per_page);
        let journal_pages = (total_pages / 100).max(64);

        let inode_bitmap_start = 1;
        let block_bitmap_start = inode_bitmap_start + inode_bitmap_pages;
        let inode_table_start = block_bitmap_start + block_bitmap_pages;
        let journal_start = inode_table_start + inode_table_pages;
        let data_start = journal_start + journal_pages;
        assert!(data_start < total_pages, "device too small for a ByteFS volume");
        let data_pages = total_pages - data_start;

        Self {
            page_size,
            total_pages,
            superblock_page: 0,
            inode_bitmap_start,
            inode_bitmap_pages,
            block_bitmap_start,
            block_bitmap_pages,
            inode_table_start,
            inode_table_pages,
            journal_start,
            journal_pages,
            data_start,
            data_pages,
            inode_count,
        }
    }

    /// Number of inodes that fit in one inode-table page.
    pub fn inodes_per_page(&self) -> u64 {
        (self.page_size / INODE_SIZE) as u64
    }

    /// Device byte address of inode `ino` in the inode table.
    ///
    /// # Panics
    ///
    /// Panics if `ino` is out of range.
    pub fn inode_addr(&self, ino: u64) -> u64 {
        assert!(ino < self.inode_count, "inode {ino} out of range");
        self.inode_table_start * self.page_size as u64 + ino * INODE_SIZE as u64
    }

    /// Device page (LBA) holding inode `ino`.
    pub fn inode_page(&self, ino: u64) -> u64 {
        self.inode_table_start + ino / self.inodes_per_page()
    }

    /// Device byte address of the 64-byte inode-bitmap group containing `ino`.
    pub fn inode_bitmap_group_addr(&self, ino: u64) -> u64 {
        let group = ino / (DENTRY_SIZE as u64 * 8);
        self.inode_bitmap_start * self.page_size as u64 + group * DENTRY_SIZE as u64
    }

    /// Device byte address of the 64-byte block-bitmap group containing the
    /// data-area page `page` (an absolute LBA).
    pub fn block_bitmap_group_addr(&self, page: u64) -> u64 {
        let group = page / (DENTRY_SIZE as u64 * 8);
        self.block_bitmap_start * self.page_size as u64 + group * DENTRY_SIZE as u64
    }

    /// Converts a data-area-relative block index to an absolute device LBA.
    pub fn data_lba(&self, data_block: u64) -> u64 {
        self.data_start + data_block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> Layout {
        // 8 MB test device: 2048 pages of 4 KB.
        Layout::compute(2048, 4096)
    }

    #[test]
    fn regions_are_ordered_and_disjoint() {
        let l = layout();
        assert_eq!(l.superblock_page, 0);
        assert!(l.inode_bitmap_start >= 1);
        assert!(l.block_bitmap_start >= l.inode_bitmap_start + l.inode_bitmap_pages);
        assert!(l.inode_table_start >= l.block_bitmap_start + l.block_bitmap_pages);
        assert!(l.journal_start >= l.inode_table_start + l.inode_table_pages);
        assert!(l.data_start >= l.journal_start + l.journal_pages);
        assert_eq!(l.data_start + l.data_pages, l.total_pages);
        assert!(l.data_pages > l.total_pages / 2, "most of the device should be data");
    }

    #[test]
    fn inode_count_scales_with_capacity() {
        let small = Layout::compute(2048, 4096);
        let big = Layout::compute(8192, 4096);
        assert!(big.inode_count > small.inode_count);
        assert_eq!(small.inodes_per_page(), 32);
    }

    #[test]
    fn inode_addresses_are_within_the_table() {
        let l = layout();
        let first = l.inode_addr(0);
        let last = l.inode_addr(l.inode_count - 1);
        assert_eq!(first, l.inode_table_start * 4096);
        assert!(last < (l.inode_table_start + l.inode_table_pages) * 4096);
        assert_eq!(l.inode_addr(33) - l.inode_addr(32), INODE_SIZE as u64);
        assert_eq!(l.inode_page(0), l.inode_table_start);
        assert_eq!(l.inode_page(32), l.inode_table_start + 1);
    }

    #[test]
    fn bitmap_group_addresses_are_cacheline_aligned() {
        let l = layout();
        for ino in [0u64, 1, 511, 512, 1000] {
            let addr = l.inode_bitmap_group_addr(ino);
            assert_eq!(addr % 64, 0);
            assert!(addr >= l.inode_bitmap_start * 4096);
        }
        for page in [0u64, 513, 2047] {
            let addr = l.block_bitmap_group_addr(page);
            assert_eq!(addr % 64, 0);
            assert!(addr >= l.block_bitmap_start * 4096);
            assert!(addr < (l.block_bitmap_start + l.block_bitmap_pages) * 4096);
        }
    }

    #[test]
    fn data_lba_offsets_into_data_area() {
        let l = layout();
        assert_eq!(l.data_lba(0), l.data_start);
        assert_eq!(l.data_lba(10), l.data_start + 10);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_device_rejected() {
        let _ = Layout::compute(16, 4096);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn inode_out_of_range_panics() {
        let l = layout();
        let _ = l.inode_addr(l.inode_count);
    }
}
