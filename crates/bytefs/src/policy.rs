//! Interface-selection policy and ByteFS configuration (including the ablation
//! variants of Figure 12).

use serde::{Deserialize, Serialize};

/// Which host interface a particular access should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InterfaceChoice {
    /// Byte-granular MMIO access.
    Byte,
    /// 4 KB NVMe block access.
    Block,
}

/// Configuration of a [`crate::ByteFs`] instance.
///
/// The three constructors correspond to the paper's performance-breakdown
/// variants (Figure 12):
///
/// | Variant | metadata byte | data byte | firmware txn | device mode |
/// |---|---|---|---|---|
/// | [`ByteFsConfig::dual_only`] ("ByteFS-Dual") | yes | no | no | page cache |
/// | [`ByteFsConfig::dual_plus_log`] ("ByteFS-Log") | yes | no | yes | write log |
/// | [`ByteFsConfig::full`] ("ByteFS") | yes | yes | yes | write log |
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ByteFsConfig {
    /// Persist metadata updates (inodes, bitmaps, dentries, extents) over the
    /// byte interface instead of rewriting whole blocks.
    pub metadata_byte_interface: bool,
    /// Allow the byte interface for file data (direct I/O ≤ threshold and
    /// writeback of lightly-modified pages).
    pub data_byte_interface: bool,
    /// Tag metadata writes with TxIDs and commit through the firmware TxLog.
    /// Requires the device to run in [`mssd::DramMode::WriteLog`].
    pub firmware_transactions: bool,
    /// Journal file data through the JBD2-style journal in addition to
    /// metadata (the paper's data-journaling mode; off = ordered mode).
    pub data_journaling: bool,
    /// Direct I/O requests of at most this many bytes use the byte interface
    /// (§4.6; 512 bytes).
    pub direct_byte_threshold: usize,
    /// Buffered writeback uses the byte interface when the modified ratio is
    /// strictly below this threshold (§4.6; 1/8).
    pub writeback_ratio_threshold: f64,
    /// Host page cache capacity in pages.
    pub page_cache_pages: usize,
}

impl Default for ByteFsConfig {
    fn default() -> Self {
        Self::full()
    }
}

impl ByteFsConfig {
    /// The complete ByteFS design.
    pub fn full() -> Self {
        Self {
            metadata_byte_interface: true,
            data_byte_interface: true,
            firmware_transactions: true,
            data_journaling: false,
            direct_byte_threshold: 512,
            writeback_ratio_threshold: 1.0 / 8.0,
            page_cache_pages: 64 << 10, // 256 MB of 4 KB pages
        }
    }

    /// "ByteFS-Dual": only the dual interface for metadata; data uses the
    /// block interface and the device keeps page-granular caching.
    pub fn dual_only() -> Self {
        Self { data_byte_interface: false, firmware_transactions: false, ..Self::full() }
    }

    /// "ByteFS-Log": ByteFS-Dual plus the firmware log-structured memory and
    /// TxLog-based transactions.
    pub fn dual_plus_log() -> Self {
        Self { data_byte_interface: false, ..Self::full() }
    }

    /// Sets the host page cache size in pages.
    pub fn with_page_cache_pages(mut self, pages: usize) -> Self {
        self.page_cache_pages = pages;
        self
    }

    /// Enables data journaling.
    pub fn with_data_journaling(mut self) -> Self {
        self.data_journaling = true;
        self
    }

    /// The [`mssd::DramMode`] this configuration expects the device to run in.
    pub fn required_dram_mode(&self) -> mssd::DramMode {
        if self.firmware_transactions {
            mssd::DramMode::WriteLog
        } else {
            mssd::DramMode::PageCache
        }
    }

    /// Interface choice for a direct-I/O request of `len` bytes (§4.6: ≤ 512 B
    /// uses cachelines, larger requests use blocks).
    pub fn direct_io_choice(&self, len: usize) -> InterfaceChoice {
        if self.data_byte_interface && len <= self.direct_byte_threshold {
            InterfaceChoice::Byte
        } else {
            InterfaceChoice::Block
        }
    }

    /// Interface choice for writing back a dirty page whose modified ratio is
    /// `ratio` (§4.6: R < 1/8 → byte interface).
    pub fn writeback_choice(&self, ratio: f64) -> InterfaceChoice {
        if self.data_byte_interface && ratio < self.writeback_ratio_threshold {
            InterfaceChoice::Byte
        } else {
            InterfaceChoice::Block
        }
    }

    /// Interface choice for persisting a metadata update of `len` bytes.
    /// With the dual interface disabled everything falls back to whole-block
    /// writes (the Figure 12 "Ext4-like" lower bound).
    pub fn metadata_choice(&self, _len: usize) -> InterfaceChoice {
        if self.metadata_byte_interface {
            InterfaceChoice::Byte
        } else {
            InterfaceChoice::Block
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_config_uses_byte_interface_for_small_accesses() {
        let c = ByteFsConfig::full();
        assert_eq!(c.direct_io_choice(64), InterfaceChoice::Byte);
        assert_eq!(c.direct_io_choice(512), InterfaceChoice::Byte);
        assert_eq!(c.direct_io_choice(513), InterfaceChoice::Block);
        assert_eq!(c.writeback_choice(0.0), InterfaceChoice::Byte);
        assert_eq!(c.writeback_choice(0.124), InterfaceChoice::Byte);
        assert_eq!(c.writeback_choice(0.125), InterfaceChoice::Block);
        assert_eq!(c.writeback_choice(1.0), InterfaceChoice::Block);
        assert_eq!(c.metadata_choice(64), InterfaceChoice::Byte);
        assert_eq!(c.required_dram_mode(), mssd::DramMode::WriteLog);
    }

    #[test]
    fn dual_only_disables_data_byte_interface_and_txns() {
        let c = ByteFsConfig::dual_only();
        assert_eq!(c.direct_io_choice(64), InterfaceChoice::Block);
        assert_eq!(c.writeback_choice(0.01), InterfaceChoice::Block);
        assert_eq!(c.metadata_choice(64), InterfaceChoice::Byte);
        assert!(!c.firmware_transactions);
        assert_eq!(c.required_dram_mode(), mssd::DramMode::PageCache);
    }

    #[test]
    fn dual_plus_log_enables_firmware_transactions() {
        let c = ByteFsConfig::dual_plus_log();
        assert!(c.firmware_transactions);
        assert_eq!(c.direct_io_choice(64), InterfaceChoice::Block);
        assert_eq!(c.required_dram_mode(), mssd::DramMode::WriteLog);
    }

    #[test]
    fn builder_helpers() {
        let c = ByteFsConfig::full().with_page_cache_pages(128).with_data_journaling();
        assert_eq!(c.page_cache_pages, 128);
        assert!(c.data_journaling);
    }
}
