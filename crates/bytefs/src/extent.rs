//! Extent-based data pointers.
//!
//! ByteFS "uses an Ext4-like extent structure to index a range of contiguous
//! file blocks with small extent nodes; each leaf extent node (16 B) includes
//! the file offset, logical block address, and length" (§4.5). The first few
//! extents live inline in the inode; when a file becomes more fragmented an
//! overflow extent block is allocated and the remaining nodes spill there.
//!
//! The in-memory [`ExtentTree`] is the authoritative map from file block index
//! to device LBA; [`Extent::encode`]/[`Extent::decode`] give the 16-byte
//! on-device representation used both for the inline region and the overflow
//! block.

/// On-device size of one extent descriptor.
pub const EXTENT_SIZE: usize = 16;

/// One contiguous run of file blocks mapped to contiguous device blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// First file block (file offset / page size) covered by this extent.
    pub file_block: u64,
    /// Device LBA backing `file_block`.
    pub start_lba: u64,
    /// Number of consecutive blocks covered.
    pub len: u32,
}

impl Extent {
    /// Serializes to the 16-byte on-device format
    /// (`file_block:u48 | len:u16 | start_lba:u64`).
    pub fn encode(&self) -> [u8; EXTENT_SIZE] {
        let mut out = [0u8; EXTENT_SIZE];
        out[..6].copy_from_slice(&self.file_block.to_le_bytes()[..6]);
        out[6..8].copy_from_slice(&(self.len.min(u16::MAX as u32) as u16).to_le_bytes());
        out[8..16].copy_from_slice(&self.start_lba.to_le_bytes());
        out
    }

    /// Decodes a 16-byte on-device extent. Returns `None` for an all-zero
    /// (unused) slot.
    pub fn decode(raw: &[u8]) -> Option<Self> {
        debug_assert!(raw.len() >= EXTENT_SIZE);
        if raw[..EXTENT_SIZE].iter().all(|b| *b == 0) {
            return None;
        }
        let mut fb = [0u8; 8];
        fb[..6].copy_from_slice(&raw[..6]);
        let len = u16::from_le_bytes(raw[6..8].try_into().expect("2 bytes")) as u32;
        let start_lba = u64::from_le_bytes(raw[8..16].try_into().expect("8 bytes"));
        Some(Self { file_block: u64::from_le_bytes(fb), start_lba, len })
    }

    /// Last file block (inclusive) covered by this extent.
    pub fn last_file_block(&self) -> u64 {
        self.file_block + self.len as u64 - 1
    }
}

/// The per-file extent tree (kept sorted by file block).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExtentTree {
    extents: Vec<Extent>,
}

impl ExtentTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a tree from decoded extents (order does not matter).
    pub fn from_extents(mut extents: Vec<Extent>) -> Self {
        extents.retain(|e| e.len > 0);
        extents.sort_by_key(|e| e.file_block);
        Self { extents }
    }

    /// Number of extent descriptors.
    pub fn len(&self) -> usize {
        self.extents.len()
    }

    /// `true` when the file has no mapped blocks.
    pub fn is_empty(&self) -> bool {
        self.extents.is_empty()
    }

    /// The extents in file-block order.
    pub fn extents(&self) -> &[Extent] {
        &self.extents
    }

    /// Total number of mapped blocks.
    pub fn mapped_blocks(&self) -> u64 {
        self.extents.iter().map(|e| e.len as u64).sum()
    }

    /// Looks up the device LBA backing file block `file_block`.
    pub fn lookup(&self, file_block: u64) -> Option<u64> {
        let idx = match self.extents.binary_search_by_key(&file_block, |e| e.file_block) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let e = &self.extents[idx];
        if file_block <= e.last_file_block() {
            Some(e.start_lba + (file_block - e.file_block))
        } else {
            None
        }
    }

    /// Maps `file_block` to `lba`, merging with an adjacent extent when the
    /// mapping is contiguous on both sides.
    ///
    /// # Panics
    ///
    /// Panics if the file block is already mapped (the caller overwrites data
    /// in place and never remaps).
    pub fn insert(&mut self, file_block: u64, lba: u64) {
        assert!(self.lookup(file_block).is_none(), "file block {file_block} already mapped");
        // Try to extend the preceding extent.
        let pos = self.extents.partition_point(|e| e.file_block <= file_block);
        if pos > 0 {
            let prev = &mut self.extents[pos - 1];
            if prev.file_block + prev.len as u64 == file_block
                && prev.start_lba + prev.len as u64 == lba
                && prev.len < u16::MAX as u32
            {
                prev.len += 1;
                self.try_merge_with_next(pos - 1);
                return;
            }
        }
        // Try to prepend to the following extent.
        if pos < self.extents.len() {
            let next = &mut self.extents[pos];
            if file_block + 1 == next.file_block && lba + 1 == next.start_lba {
                next.file_block = file_block;
                next.start_lba = lba;
                next.len += 1;
                return;
            }
        }
        self.extents.insert(pos, Extent { file_block, start_lba: lba, len: 1 });
    }

    fn try_merge_with_next(&mut self, idx: usize) {
        if idx + 1 >= self.extents.len() {
            return;
        }
        let (a, b) = (self.extents[idx], self.extents[idx + 1]);
        if a.file_block + a.len as u64 == b.file_block
            && a.start_lba + a.len as u64 == b.start_lba
            && a.len + b.len <= u16::MAX as u32
        {
            self.extents[idx].len += b.len;
            self.extents.remove(idx + 1);
        }
    }

    /// Unmaps every file block at or beyond `first_block` (truncate) and
    /// returns the freed device LBAs.
    pub fn truncate(&mut self, first_block: u64) -> Vec<u64> {
        let mut freed = Vec::new();
        let mut kept = Vec::with_capacity(self.extents.len());
        for e in self.extents.drain(..) {
            if e.last_file_block() < first_block {
                kept.push(e);
            } else if e.file_block >= first_block {
                freed.extend((0..e.len as u64).map(|i| e.start_lba + i));
            } else {
                let keep_len = (first_block - e.file_block) as u32;
                freed.extend((keep_len as u64..e.len as u64).map(|i| e.start_lba + i));
                kept.push(Extent { len: keep_len, ..e });
            }
        }
        self.extents = kept;
        freed
    }

    /// Iterates over `(file_block, lba)` pairs for every mapped block.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.extents
            .iter()
            .flat_map(|e| (0..e.len as u64).map(move |i| (e.file_block + i, e.start_lba + i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let e = Extent { file_block: 12345, start_lba: 987654, len: 77 };
        let raw = e.encode();
        assert_eq!(Extent::decode(&raw), Some(e));
        assert_eq!(Extent::decode(&[0u8; 16]), None);
    }

    #[test]
    fn sequential_inserts_merge_into_one_extent() {
        let mut t = ExtentTree::new();
        for i in 0..10u64 {
            t.insert(i, 100 + i);
        }
        assert_eq!(t.len(), 1);
        assert_eq!(t.mapped_blocks(), 10);
        assert_eq!(t.lookup(0), Some(100));
        assert_eq!(t.lookup(9), Some(109));
        assert_eq!(t.lookup(10), None);
    }

    #[test]
    fn non_contiguous_inserts_create_separate_extents() {
        let mut t = ExtentTree::new();
        t.insert(0, 100);
        t.insert(5, 200);
        t.insert(1, 300); // contiguous file block but not contiguous LBA
        assert_eq!(t.len(), 3);
        assert_eq!(t.lookup(1), Some(300));
        assert_eq!(t.lookup(5), Some(200));
        assert_eq!(t.lookup(2), None);
    }

    #[test]
    fn hole_filling_merges_both_sides() {
        let mut t = ExtentTree::new();
        t.insert(0, 100);
        t.insert(2, 102);
        assert_eq!(t.len(), 2);
        t.insert(1, 101);
        assert_eq!(t.len(), 1);
        assert_eq!(t.mapped_blocks(), 3);
    }

    #[test]
    fn prepend_merges_with_following_extent() {
        let mut t = ExtentTree::new();
        t.insert(5, 105);
        t.insert(4, 104);
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(4), Some(104));
    }

    #[test]
    fn truncate_frees_tail_blocks() {
        let mut t = ExtentTree::new();
        for i in 0..8u64 {
            t.insert(i, 50 + i);
        }
        let freed = t.truncate(3);
        assert_eq!(freed, vec![53, 54, 55, 56, 57]);
        assert_eq!(t.mapped_blocks(), 3);
        assert_eq!(t.lookup(2), Some(52));
        assert_eq!(t.lookup(3), None);
        // Truncate to zero frees everything.
        let freed = t.truncate(0);
        assert_eq!(freed.len(), 3);
        assert!(t.is_empty());
    }

    #[test]
    fn truncate_splits_extents_that_straddle_the_boundary() {
        let mut t = ExtentTree::new();
        t.insert(0, 10);
        t.insert(1, 11);
        t.insert(10, 99);
        let freed = t.truncate(1);
        assert!(freed.contains(&11));
        assert!(freed.contains(&99));
        assert_eq!(t.lookup(0), Some(10));
        assert_eq!(t.lookup(1), None);
    }

    #[test]
    fn iter_blocks_yields_every_mapping() {
        let mut t = ExtentTree::new();
        t.insert(0, 100);
        t.insert(1, 101);
        t.insert(7, 200);
        let all: Vec<_> = t.iter_blocks().collect();
        assert_eq!(all, vec![(0, 100), (1, 101), (7, 200)]);
    }

    #[test]
    fn from_extents_sorts_and_drops_empty() {
        let t = ExtentTree::from_extents(vec![
            Extent { file_block: 5, start_lba: 50, len: 2 },
            Extent { file_block: 0, start_lba: 10, len: 1 },
            Extent { file_block: 9, start_lba: 90, len: 0 },
        ]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.extents()[0].file_block, 0);
        assert_eq!(t.lookup(6), Some(51));
    }

    #[test]
    #[should_panic(expected = "already mapped")]
    fn remapping_a_block_panics() {
        let mut t = ExtentTree::new();
        t.insert(0, 1);
        t.insert(0, 2);
    }
}
