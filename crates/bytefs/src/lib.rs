//! # bytefs — the ByteFS file system (ASPLOS'25) in Rust
//!
//! ByteFS is a file system for memory-semantic SSDs (M-SSDs) that exposes both
//! a byte interface (PCIe/CXL MMIO) and a block interface (NVMe). This crate
//! is the host-side half of the paper's co-design; the firmware half (the
//! log-structured device DRAM, TxLog, `COMMIT`/`RECOVER` commands) lives in
//! the [`mssd`] crate.
//!
//! The headline ideas, and where they live here:
//!
//! * **Dual-interface metadata** (§4.5) — inodes, bitmaps, directory entries
//!   and extent nodes are *read* in whole blocks (to exploit locality and the
//!   host metadata cache) but *persisted* as 64–320 byte byte-interface writes:
//!   [`inode`], [`alloc`], [`dentry`], [`extent`].
//! * **Interface selection for data** (§4.6) — direct I/O picks the interface
//!   by request size (≤ 512 B → byte), buffered writeback picks it by the
//!   XOR-derived modified ratio (R < 1/8 → byte): [`policy`] plus the CoW page
//!   cache in [`fskit::pagecache`].
//! * **Transactions over the firmware write log** (§4.3, §4.7) — every
//!   metadata update is a TxID-tagged byte write; commit is one `COMMIT(TxID)`
//!   command; recovery replays the committed prefix: [`txn`] and
//!   [`ByteFs::recover_after_crash`].
//!
//! # Concurrency model
//!
//! `ByteFs` has no global lock: many threads may operate on one
//! `Arc<ByteFs>` concurrently. Synchronization is fine-grained —
//!
//! * a **namespace `RwLock`** serializes metadata mutations (create, unlink,
//!   mkdir, rmdir, rename) against each other while path resolution and
//!   `readdir` share it for read;
//! * the **inode table is lock-striped** and each inode carries its own
//!   `RwLock`, so reads/writes/fsyncs of different files run in parallel;
//! * the **page cache is lock-striped** by inode
//!   ([`fskit::pagecache::ShardedPageCache`]);
//! * the **allocators** ([`alloc::SharedBitmap`]) admit or reject
//!   allocations on an atomic free-space counter without a lock;
//! * **TxIDs** come from an atomic counter ([`txn::SharedTxTable`]).
//!
//! The lock order is `namespace → inode shard → inode → page-cache shard →
//! allocator → journal/txtable → device`; see [`fs`] for the full rules and
//! why they are deadlock-free.
//!
//! # Durability contract
//!
//! What ByteFS promises across a power failure, building on the device
//! contract in [`mssd`] (battery-backed write log + TxLog, `COMMIT` =
//! durable, `RECOVER` discards uncommitted entries):
//!
//! * **Completed metadata operations are durable.** Every `create`/`mkdir`/
//!   `unlink`/`rmdir`/`rename` persists all of its metadata inside one
//!   firmware transaction and commits before returning; once the call
//!   returns, the operation survives any crash point.
//! * **`fsync`/`fdatasync` returning means the data is durable.** Dirty
//!   pages are written (byte or block interface per the §4.6 policy) and the
//!   inode update committed before the call returns.
//! * **Unsynced writes may vanish but never corrupt.** Buffered data that
//!   was never fsynced lives only in the host page cache; a crash loses it
//!   without affecting any committed state — after recovery the volume
//!   passes [`ByteFs::fsck`] (the [`fskit::check::CrashConsistent`]
//!   implementation in [`check`]) at every enumerated crash point, which the
//!   `crashkit` crate verifies exhaustively.
//!
//! ```
//! use bytefs::{ByteFs, ByteFsConfig};
//! use fskit::{FileSystem, FileSystemExt};
//! use mssd::{Mssd, MssdConfig, DramMode};
//!
//! # fn main() -> fskit::FsResult<()> {
//! let device = Mssd::new(MssdConfig::small_test(), DramMode::WriteLog);
//! let fs = ByteFs::format(device, ByteFsConfig::default())?;
//! fs.mkdir("/mail")?;
//! fs.write_file("/mail/msg1", b"hello m-ssd")?;
//! assert_eq!(fs.read_file("/mail/msg1")?, b"hello m-ssd");
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alloc;
pub mod check;
pub mod dentry;
pub mod extent;
pub mod fs;
pub mod inode;
pub mod layout;
pub mod policy;
pub mod superblock;
pub mod txn;

pub use fs::ByteFs;
pub use policy::{ByteFsConfig, InterfaceChoice};
