//! The `ByteFs` file system: mount/format, metadata operations, and the
//! [`FileSystem`] trait implementation.
//!
//! The data path (read/write/fsync/truncate and the §4.6 interface-selection
//! policy) lives in the private `fs::data` submodule; this module owns the
//! in-memory state and the metadata operations of §4.5.
//!
//! # Concurrency model
//!
//! Since the lock-sharding refactor the file system no longer has a global
//! lock. State is split into independently synchronized pieces, and every
//! [`FileSystem`] method takes only the locks its path needs:
//!
//! * **Namespace** (`RwLock<Namespace>`) — the directory-entry cache. Path
//!   resolution and `readdir` take it for read (and scale across threads);
//!   every namespace *mutation* (`create`, `mkdir`, `unlink`, `rmdir`,
//!   `rename`, directory growth) holds the write lock for the whole
//!   operation, which serializes conflicting metadata transactions exactly
//!   like the old global lock did — but only against each other, not against
//!   the data path.
//! * **Inode table** — lock-striped: `INODE_SHARDS` shards keyed by inode
//!   number, each a `RwLock<HashMap<ino, Arc<RwLock<Inode>>>>`. The shard
//!   lock protects the map (lookup/insert/evict); the per-inode `RwLock`
//!   protects the inode itself. Reads (`read`, `fstat`) take the inode lock
//!   shared; writes (`write`, `fsync`, `truncate`) take it exclusive.
//! * **Page cache** ([`ShardedPageCache`]) — lock-striped by inode number,
//!   so data I/O on different files never contends on cache locks.
//! * **Allocators** ([`SharedBitmap`]) — atomic free-space counters form a
//!   mutex-free admission fast path; only the concrete bit pick locks.
//! * **Open files** — lock-striped by fd, fd numbers from an atomic counter.
//! * **TxTable** ([`SharedTxTable`]) — atomic TxID allocation and commit
//!   counting.
//!
//! **Lock order** (a thread acquires locks only left to right):
//!
//! ```text
//! namespace → inode shard → inode → page-cache shard → allocator
//!           → dirty-set / journal / txtable → device
//! ```
//!
//! Two rules keep this deadlock-free without a reverse edge:
//!
//! 1. Only a holder of the namespace *write* lock may lock more than one
//!    inode in sequence (parent + target in `unlink`/`rename`); those
//!    acquisitions never overlap — each inode lock is released before the
//!    next is taken — so at most one inode lock is held at any instant.
//! 2. The data path never touches the namespace lock: `read`/`write`/`fsync`
//!    resolve their inode through the fd table only.
//!
//! An unlinked inode is tombstoned (`nlink == 0`) under its write lock before
//! its blocks are freed; data-path operations that raced past the fd lookup
//! re-check the tombstone after acquiring the inode lock, so a writer can
//! never resurrect freed blocks or persist into a reused inode slot.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use fskit::journal::BlockJournal;
use fskit::pagecache::ShardedPageCache;
use fskit::path as fspath;
use fskit::{DirEntry, Fd, FileSystem, FileType, FsError, FsResult, Metadata, OpenFlags};
use mssd::{Category, DramMode, Mssd};

use crate::alloc::{BitmapAllocator, SharedBitmap};
use crate::dentry::{DentrySlot, Directory};
use crate::inode::Inode;
use crate::layout::{Layout, DENTRY_SIZE, INODE_SIZE, ROOT_INO};
use crate::policy::{ByteFsConfig, InterfaceChoice};
use crate::superblock::Superblock;
use crate::txn::{SharedTxTable, Txn};

pub(crate) mod data;

/// Number of inode-table, page-cache and fd-table shards (lock stripes).
pub(crate) const INODE_SHARDS: usize = 16;

/// An open file description.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OpenFile {
    pub(crate) ino: u64,
    pub(crate) flags: OpenFlags,
}

/// A shared handle to one cached inode. The shard map hands out clones; the
/// per-inode `RwLock` is the data-path lock.
pub(crate) type InodeHandle = Arc<RwLock<Inode>>;

/// The directory-entry cache, guarded by the namespace lock.
pub(crate) struct Namespace {
    /// Cached directories keyed by inode number.
    pub(crate) dirs: HashMap<u64, Directory>,
}

/// The ByteFS file system (host side).
///
/// See the [crate-level documentation](crate) for an overview and an example,
/// and the [module docs](self) for the concurrency model and lock order.
pub struct ByteFs {
    pub(crate) device: Arc<Mssd>,
    pub(crate) config: ByteFsConfig,
    pub(crate) layout: Layout,
    sb: Mutex<Superblock>,
    pub(crate) namespace: RwLock<Namespace>,
    inode_shards: Vec<RwLock<HashMap<u64, InodeHandle>>>,
    pub(crate) inode_bitmap: SharedBitmap,
    pub(crate) block_bitmap: SharedBitmap,
    pub(crate) page_cache: ShardedPageCache,
    open_files: Vec<RwLock<HashMap<u64, OpenFile>>>,
    next_fd: AtomicU64,
    txtable: SharedTxTable,
    pub(crate) dirty_inodes: Mutex<BTreeSet<u64>>,
    pub(crate) journal: Option<Mutex<BlockJournal>>,
}

impl std::fmt::Debug for ByteFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ByteFs")
            .field("inodes_allocated", &self.inode_bitmap.allocated())
            .field("blocks_allocated", &self.block_bitmap.allocated())
            .field("open_files", &self.open_count())
            .finish()
    }
}

impl ByteFs {
    /// Formats the device with a fresh ByteFS volume and mounts it.
    ///
    /// # Errors
    ///
    /// Returns an error if the device is too small or the configuration and
    /// device firmware mode disagree.
    ///
    /// # Panics
    ///
    /// Panics if the device page size differs from 4 KB (the only geometry the
    /// on-disk format supports).
    pub fn format(device: Arc<Mssd>, config: ByteFsConfig) -> FsResult<Arc<Self>> {
        Self::check_mode(&device, &config)?;
        let page_size = device.page_size();
        let layout = Layout::compute(device.logical_pages(), page_size);
        let sb = Superblock::new(layout);

        // Reserve metadata regions in the block bitmap and the reserved inodes.
        let mut block_bitmap = BitmapAllocator::new(layout.total_pages);
        for page in 0..layout.data_start {
            block_bitmap.allocate_at(page);
        }
        let mut inode_bitmap = BitmapAllocator::new(layout.inode_count);
        inode_bitmap.allocate_at(0); // inode 0 is never used
        inode_bitmap.allocate_at(ROOT_INO);

        // Persist the initial metadata with plain block writes; mkfs is not
        // part of any measurement.
        device.try_block_write(
            layout.superblock_page,
            &sb.encode(page_size),
            Category::Superblock,
        )?;
        Self::write_bitmap_region(
            &device,
            layout.inode_bitmap_start,
            layout.inode_bitmap_pages,
            &inode_bitmap.to_bytes(),
            page_size,
        )?;
        Self::write_bitmap_region(
            &device,
            layout.block_bitmap_start,
            layout.block_bitmap_pages,
            &block_bitmap.to_bytes(),
            page_size,
        )?;
        inode_bitmap.take_dirty_groups();
        block_bitmap.take_dirty_groups();

        // Root directory inode.
        let mut root = Inode::new(ROOT_INO, FileType::Directory, device.clock().now_ns());
        root.nlink = 2;
        let mut inode_page = vec![0u8; page_size];
        let off = (ROOT_INO % layout.inodes_per_page()) as usize * INODE_SIZE;
        inode_page[off..off + INODE_SIZE].copy_from_slice(&root.encode());
        device.try_block_write(layout.inode_page(ROOT_INO), &inode_page, Category::Inode)?;
        device.try_flush()?;

        let fs = Self::build(device, config, layout, sb, inode_bitmap, block_bitmap);
        fs.insert_inode(root);
        fs.namespace.write().dirs.insert(ROOT_INO, Directory::new(layout.page_size));
        Ok(Arc::new(fs))
    }

    /// Mounts an existing ByteFS volume. If the volume was not cleanly
    /// unmounted, firmware recovery (`RECOVER()`) runs first (§4.7).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::Corrupted`] if no valid superblock is found, or a
    /// configuration error if the device firmware mode does not match.
    pub fn mount(device: Arc<Mssd>, config: ByteFsConfig) -> FsResult<Arc<Self>> {
        Self::check_mode(&device, &config)?;
        let page_size = device.page_size();
        let sb_page = device.try_block_read(0, 1, Category::Superblock)?;
        let mut sb = Superblock::decode(&sb_page)?;
        let layout = sb.layout;

        if !sb.clean && config.firmware_transactions {
            // Crash recovery: replay committed log entries, discard the rest.
            device.recover();
        }

        // Load bitmaps over the block interface (Table 3: bitmap reads prefer
        // the block interface and are cached in host DRAM afterwards).
        let inode_bitmap_raw = device.try_block_read(
            layout.inode_bitmap_start,
            layout.inode_bitmap_pages as usize,
            Category::Bitmap,
        )?;
        let block_bitmap_raw = device.try_block_read(
            layout.block_bitmap_start,
            layout.block_bitmap_pages as usize,
            Category::Bitmap,
        )?;
        let inode_bitmap = BitmapAllocator::from_bytes(&inode_bitmap_raw, layout.inode_count);
        let block_bitmap = BitmapAllocator::from_bytes(&block_bitmap_raw, layout.total_pages);

        // Mark the volume dirty until a clean unmount.
        sb.clean = false;
        sb.mount_count += 1;
        device.try_block_write(0, &sb.encode(page_size), Category::Superblock)?;

        Ok(Arc::new(Self::build(device, config, layout, sb, inode_bitmap, block_bitmap)))
    }

    /// Assembles the sharded in-memory state around freshly loaded bitmaps.
    fn build(
        device: Arc<Mssd>,
        config: ByteFsConfig,
        layout: Layout,
        sb: Superblock,
        inode_bitmap: BitmapAllocator,
        block_bitmap: BitmapAllocator,
    ) -> Self {
        let journal = config.data_journaling.then(|| {
            Mutex::new(BlockJournal::new(
                Arc::clone(&device),
                layout.journal_start,
                layout.journal_pages,
            ))
        });
        let page_cache =
            ShardedPageCache::new(INODE_SHARDS, config.page_cache_pages, layout.page_size, true);
        Self {
            device,
            config,
            layout,
            sb: Mutex::new(sb),
            namespace: RwLock::new(Namespace { dirs: HashMap::new() }),
            inode_shards: (0..INODE_SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            inode_bitmap: SharedBitmap::new(inode_bitmap),
            block_bitmap: SharedBitmap::new(block_bitmap),
            page_cache,
            open_files: (0..INODE_SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            next_fd: AtomicU64::new(3),
            txtable: SharedTxTable::new(),
            dirty_inodes: Mutex::new(BTreeSet::new()),
            journal,
        }
    }

    fn check_mode(device: &Mssd, config: &ByteFsConfig) -> FsResult<()> {
        if config.firmware_transactions && device.dram_mode() != DramMode::WriteLog {
            return Err(FsError::InvalidArgument(
                "firmware transactions require a device in WriteLog mode".into(),
            ));
        }
        Ok(())
    }

    fn write_bitmap_region(
        device: &Mssd,
        start: u64,
        pages: u64,
        bytes: &[u8],
        page_size: usize,
    ) -> FsResult<()> {
        for i in 0..pages {
            let lo = (i as usize) * page_size;
            let hi = (lo + page_size).min(bytes.len());
            let mut page = vec![0u8; page_size];
            if lo < bytes.len() {
                page[..hi - lo].copy_from_slice(&bytes[lo..hi]);
            }
            device.try_block_write(start + i, &page, Category::Bitmap)?;
        }
        Ok(())
    }

    /// The configuration this instance runs with.
    pub fn config(&self) -> &ByteFsConfig {
        &self.config
    }

    /// Runs crash recovery explicitly (normally done by [`ByteFs::mount`] when
    /// the volume is dirty): firmware `RECOVER()` plus data-journal scan.
    /// Returns the firmware recovery report.
    pub fn recover_after_crash(&self) -> mssd::device::RecoveryReport {
        self.device.recover()
    }

    /// Number of in-flight plus committed host transactions (observability;
    /// lock-free).
    pub fn committed_transactions(&self) -> u64 {
        self.txtable.committed()
    }

    /// Number of allocated data/metadata blocks (observability; lock-free).
    pub fn allocated_blocks(&self) -> u64 {
        self.block_bitmap.allocated()
    }

    /// Number of allocated inodes (observability; lock-free).
    pub fn allocated_inodes(&self) -> u64 {
        self.inode_bitmap.allocated()
    }

    fn open_count(&self) -> usize {
        self.open_files.iter().map(|s| s.read().len()).sum()
    }

    // ------------------------------------------------------------------
    // Inode table (lock-striped)
    // ------------------------------------------------------------------

    fn inode_shard(&self, ino: u64) -> &RwLock<HashMap<u64, InodeHandle>> {
        &self.inode_shards[(ino as usize) % INODE_SHARDS]
    }

    /// Handle to an inode, loading it from the device on a miss
    /// (block-interface read of its inode page).
    pub(crate) fn inode_handle(&self, ino: u64) -> FsResult<InodeHandle> {
        if let Some(handle) = self.inode_shard(ino).read().get(&ino) {
            return Ok(Arc::clone(handle));
        }
        let mut shard = self.inode_shard(ino).write();
        if let Some(handle) = shard.get(&ino) {
            return Ok(Arc::clone(handle));
        }
        if ino >= self.layout.inode_count || !self.inode_bitmap.is_allocated(ino) {
            return Err(FsError::NotFound(format!("inode {ino}")));
        }
        let page = self.device.try_block_read(self.layout.inode_page(ino), 1, Category::Inode)?;
        let off = (ino % self.layout.inodes_per_page()) as usize * INODE_SIZE;
        let mut inode = Inode::decode(ino, &page[off..off + INODE_SIZE])
            .ok_or_else(|| FsError::Corrupted(format!("inode {ino} is allocated but empty")))?;
        if let Some(lba) = inode.overflow_lba {
            let block = self.device.try_block_read(lba, 1, Category::DataPointer)?;
            inode.load_overflow(&block);
        }
        let handle = Arc::new(RwLock::new(inode));
        shard.insert(ino, Arc::clone(&handle));
        Ok(handle)
    }

    /// Inserts a freshly created inode into its shard.
    fn insert_inode(&self, inode: Inode) -> InodeHandle {
        let ino = inode.ino;
        let handle = Arc::new(RwLock::new(inode));
        self.inode_shard(ino).write().insert(ino, Arc::clone(&handle));
        handle
    }

    /// Drops an inode from its shard (unlink/rmdir).
    fn evict_inode(&self, ino: u64) {
        self.inode_shard(ino).write().remove(&ino);
    }

    /// Rejects data-path operations on an inode that was unlinked after the
    /// caller looked up its fd but before it acquired the inode lock.
    pub(crate) fn check_live(&self, inode: &Inode) -> FsResult<()> {
        if inode.is_unlinked() {
            return Err(FsError::NotFound(format!("inode {} was unlinked", inode.ino)));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Open-file table (lock-striped, atomic fd numbers)
    // ------------------------------------------------------------------

    fn fd_shard(&self, fd: u64) -> &RwLock<HashMap<u64, OpenFile>> {
        &self.open_files[(fd as usize) % INODE_SHARDS]
    }

    fn register_fd(&self, ino: u64, flags: OpenFlags) -> Fd {
        let fd = self.next_fd.fetch_add(1, Ordering::Relaxed);
        self.fd_shard(fd).write().insert(fd, OpenFile { ino, flags });
        Fd(fd)
    }

    pub(crate) fn open_file(&self, fd: Fd) -> FsResult<OpenFile> {
        self.fd_shard(fd.0).read().get(&fd.0).copied().ok_or(FsError::BadDescriptor(fd.0))
    }

    // ------------------------------------------------------------------
    // Internal helpers shared by the metadata and data paths
    // ------------------------------------------------------------------

    pub(crate) fn now_ns(&self) -> u64 {
        self.device.clock().now_ns()
    }

    /// Marks an inode's in-memory metadata newer than the device copy.
    pub(crate) fn mark_dirty(&self, ino: u64) {
        self.dirty_inodes.lock().insert(ino);
    }

    /// Begins a metadata transaction (TxID-tagged when firmware transactions
    /// are enabled).
    pub(crate) fn begin_txn(&self) -> Txn {
        let txid = self.config.firmware_transactions.then(|| self.txtable.begin());
        Txn::new(Arc::clone(&self.device), txid)
    }

    /// Finishes a transaction: persistence barrier, firmware commit, TxTable
    /// bookkeeping.
    pub(crate) fn commit_txn(&self, txn: Txn) {
        if let Some(txid) = txn.commit() {
            self.txtable.finish(txid);
        }
    }

    /// Persists a small metadata update either over the byte interface (inside
    /// the transaction) or as a read-modify-write of the containing block when
    /// the dual interface is disabled.
    pub(crate) fn persist_meta(
        &self,
        txn: &mut Txn,
        addr: u64,
        bytes: &[u8],
        cat: Category,
    ) -> FsResult<()> {
        match self.config.metadata_choice(bytes.len()) {
            InterfaceChoice::Byte => txn.write(addr, bytes, cat)?,
            InterfaceChoice::Block => {
                let page_size = self.device.page_size() as u64;
                let lba = addr / page_size;
                let off = (addr % page_size) as usize;
                let mut page = self.device.try_block_read(lba, 1, cat)?;
                page[off..off + bytes.len()].copy_from_slice(bytes);
                self.device.try_block_write(lba, &page, cat)?;
            }
        }
        Ok(())
    }

    /// Persists an inode (both halves) into the inode table.
    pub(crate) fn persist_inode(&self, txn: &mut Txn, inode: &Inode) -> FsResult<()> {
        let addr = self.layout.inode_addr(inode.ino);
        self.persist_meta(txn, addr, &inode.encode_lower(), Category::Inode)?;
        self.persist_meta(
            txn,
            addr + (INODE_SIZE / 2) as u64,
            &inode.encode_upper(),
            Category::Inode,
        )
    }

    /// Persists only the hot lower half of an inode (size/mtime/nlink updates).
    pub(crate) fn persist_inode_lower(&self, txn: &mut Txn, inode: &Inode) -> FsResult<()> {
        let addr = self.layout.inode_addr(inode.ino);
        self.persist_meta(txn, addr, &inode.encode_lower(), Category::Inode)
    }

    /// Marks an inode slot free on the device (unlink/rmdir).
    pub(crate) fn persist_inode_free(&self, txn: &mut Txn, ino: u64) -> FsResult<()> {
        let addr = self.layout.inode_addr(ino);
        self.persist_meta(txn, addr, &[0u8; INODE_SIZE / 2], Category::Inode)
    }

    /// Persists every bitmap group dirtied since the last transaction.
    pub(crate) fn persist_bitmaps(&self, txn: &mut Txn) -> FsResult<()> {
        let page_size = self.layout.page_size as u64;
        for (group, bytes) in self.inode_bitmap.take_dirty_group_bytes() {
            let addr = self.layout.inode_bitmap_start * page_size + group * DENTRY_SIZE as u64;
            self.persist_meta(txn, addr, &bytes, Category::Bitmap)?;
        }
        for (group, bytes) in self.block_bitmap.take_dirty_group_bytes() {
            let addr = self.layout.block_bitmap_start * page_size + group * DENTRY_SIZE as u64;
            self.persist_meta(txn, addr, &bytes, Category::Bitmap)?;
        }
        Ok(())
    }

    /// Allocates one data block and returns its absolute LBA.
    pub(crate) fn alloc_block(&self) -> FsResult<u64> {
        self.block_bitmap.allocate().ok_or(FsError::NoSpace)
    }

    /// Completes a set of staged block frees after their transaction
    /// committed: TRIM first (so the FTL stops relocating the dead data),
    /// then hand the space back to the allocator. Issuing the TRIM only
    /// *after* the commit is crash-ordering-critical: a power cut at the
    /// commit step rolls the metadata back, and trimming beforehand would
    /// have destroyed data the recovered file system still references
    /// (found by the crashkit enumeration; see `crates/crashkit/DESIGN.md`).
    pub(crate) fn discard_staged_blocks(&self, freed: &[u64]) {
        for lba in freed {
            self.device.trim(*lba, 1);
        }
        self.block_bitmap.release_staged(freed);
    }

    /// Loads a directory's entries into the dentry cache (block-interface
    /// reads of its directory blocks on a miss).
    pub(crate) fn load_dir(&self, ns: &mut Namespace, ino: u64) -> FsResult<()> {
        if ns.dirs.contains_key(&ino) {
            return Ok(());
        }
        let handle = self.inode_handle(ino)?;
        let blocks = {
            let inode = handle.read();
            if !inode.is_dir() {
                return Err(FsError::NotADirectory(format!("inode {ino}")));
            }
            inode
                .extents
                .iter_blocks()
                .map(|(_, lba)| self.device.try_block_read(lba, 1, Category::Dentry))
                .collect::<Result<Vec<_>, _>>()?
        };
        ns.dirs.insert(ino, Directory::from_blocks(self.layout.page_size, &blocks));
        Ok(())
    }

    /// Resolves an absolute path to an inode number, loading directories as
    /// needed. Requires the namespace write lock.
    pub(crate) fn resolve(&self, ns: &mut Namespace, path: &str) -> FsResult<u64> {
        let comps = fspath::components(path)?;
        let mut cur = ROOT_INO;
        for comp in comps {
            self.load_dir(ns, cur)?;
            let dir = ns.dirs.get(&cur).expect("just loaded");
            match dir.lookup(comp) {
                Some(entry) => cur = entry.ino,
                None => return Err(FsError::NotFound(path.to_string())),
            }
        }
        Ok(cur)
    }

    /// Read-only resolution against already-cached directories. Returns
    /// `None` when a directory on the path is not cached (the caller falls
    /// back to [`ByteFs::resolve`] under the write lock).
    fn resolve_cached(&self, ns: &Namespace, path: &str) -> Option<FsResult<u64>> {
        let comps = match fspath::components(path) {
            Ok(c) => c,
            Err(e) => return Some(Err(e)),
        };
        let mut cur = ROOT_INO;
        for comp in comps {
            let dir = ns.dirs.get(&cur)?;
            match dir.lookup(comp) {
                Some(entry) => cur = entry.ino,
                None => return Some(Err(FsError::NotFound(path.to_string()))),
            }
        }
        Some(Ok(cur))
    }

    /// Resolves a path, preferring the read lock (scales across threads) and
    /// falling back to the write lock only when directories must be loaded.
    fn resolve_path(&self, path: &str) -> FsResult<u64> {
        {
            let ns = self.namespace.read();
            if let Some(result) = self.resolve_cached(&ns, path) {
                return result;
            }
        }
        let mut ns = self.namespace.write();
        self.resolve(&mut ns, path)
    }

    /// Resolves the parent directory of `path`, returning `(parent inode,
    /// final name)`. Requires the namespace write lock.
    pub(crate) fn resolve_parent<'p>(
        &self,
        ns: &mut Namespace,
        path: &'p str,
    ) -> FsResult<(u64, &'p str)> {
        let (parents, name) = fspath::split_parent(path)?;
        let mut cur = ROOT_INO;
        for comp in parents {
            self.load_dir(ns, cur)?;
            let dir = ns.dirs.get(&cur).expect("just loaded");
            match dir.lookup(comp) {
                Some(entry) if entry.file_type.is_dir() => cur = entry.ino,
                Some(_) => return Err(FsError::NotADirectory(path.to_string())),
                None => return Err(FsError::NotFound(path.to_string())),
            }
        }
        Ok((cur, name))
    }

    /// Device byte address of a dentry slot inside a directory.
    fn dentry_addr(&self, dir_inode: &Inode, block_pos: usize, slot: usize) -> u64 {
        let lba =
            dir_inode.extents.lookup(block_pos as u64).expect("directory block must be mapped");
        lba * self.device.page_size() as u64 + (slot * DENTRY_SIZE) as u64
    }

    /// Adds a new, zeroed directory block to `dir_ino`, updating the inode and
    /// the in-memory directory image. The caller persists the inode afterwards.
    fn grow_directory(&self, ns: &mut Namespace, dir_ino: u64) -> FsResult<()> {
        let lba = self.alloc_block()?;
        let now = self.now_ns();
        let handle = self.inode_handle(dir_ino)?;
        {
            let mut inode = handle.write();
            let block_pos = inode.extents.mapped_blocks();
            inode.extents.insert(block_pos, lba);
            inode.blocks += 1;
            inode.mtime_ns = now;
        }
        ns.dirs.get_mut(&dir_ino).expect("directory cached").add_empty_block();
        Ok(())
    }

    /// Creates a new file or directory entry under `parent`, persisting all
    /// metadata in one transaction. Returns the new inode number.
    fn create_object(
        &self,
        ns: &mut Namespace,
        parent: u64,
        name: &str,
        file_type: FileType,
    ) -> FsResult<u64> {
        self.load_dir(ns, parent)?;
        if ns.dirs[&parent].lookup(name).is_some() {
            return Err(FsError::AlreadyExists(name.to_string()));
        }
        // Validate the name before allocating anything.
        DentrySlot { ino: 1, file_type, name: name.to_string() }.encode()?;

        let ino = self.inode_bitmap.allocate().ok_or(FsError::NoInodes)?;
        let now = self.now_ns();
        let mut inode = Inode::new(ino, file_type, now);
        if file_type.is_dir() {
            inode.nlink = 2;
        }

        let mut txn = self.begin_txn();

        // Ensure the parent has a free dentry slot.
        if !ns.dirs[&parent].has_free_slot() {
            self.grow_directory(ns, parent)?;
        }
        let slot = {
            let dir = ns.dirs.get_mut(&parent).expect("parent cached");
            dir.insert(name, ino, file_type)?
        };

        // Persist: the dentry slot, the new inode, the parent inode, bitmaps.
        let slot_bytes =
            DentrySlot { ino, file_type, name: name.to_string() }.encode().expect("validated");
        let parent_size = (ns.dirs[&parent].len() * DENTRY_SIZE) as u64;
        let parent_handle = self.inode_handle(parent)?;
        let parent_inode = {
            let mut p = parent_handle.write();
            p.mtime_ns = now;
            p.size = parent_size;
            if file_type.is_dir() {
                p.nlink += 1;
            }
            p.clone()
        };
        let addr = self.dentry_addr(&parent_inode, slot.block_pos, slot.slot);
        self.persist_meta(&mut txn, addr, &slot_bytes, Category::Dentry)?;
        self.persist_inode(&mut txn, &inode)?;
        self.persist_inode(&mut txn, &parent_inode)?;
        self.persist_bitmaps(&mut txn)?;
        self.commit_txn(txn);

        self.insert_inode(inode);
        if file_type.is_dir() {
            ns.dirs.insert(ino, Directory::new(self.layout.page_size));
        }
        Ok(ino)
    }

    /// Removes the entry `name` from `parent` and frees the object if its link
    /// count drops to zero.
    fn remove_object(
        &self,
        ns: &mut Namespace,
        parent: u64,
        name: &str,
        dir: bool,
    ) -> FsResult<()> {
        self.load_dir(ns, parent)?;
        let entry = ns.dirs[&parent]
            .lookup(name)
            .cloned()
            .ok_or_else(|| FsError::NotFound(name.to_string()))?;
        let target = entry.ino;
        let target_handle = self.inode_handle(target)?;
        {
            let t = target_handle.read();
            if dir {
                if !t.is_dir() {
                    return Err(FsError::NotADirectory(name.to_string()));
                }
            } else if t.is_dir() {
                return Err(FsError::IsADirectory(name.to_string()));
            }
        }
        if dir {
            self.load_dir(ns, target)?;
            if !ns.dirs[&target].is_empty() {
                return Err(FsError::DirectoryNotEmpty(name.to_string()));
            }
        }

        let now = self.now_ns();
        let mut txn = self.begin_txn();

        // Clear the dentry slot.
        let parent_handle = self.inode_handle(parent)?;
        let parent_inode = {
            let mut p = parent_handle.write();
            p.mtime_ns = now;
            if dir {
                p.nlink = p.nlink.saturating_sub(1);
            }
            p.clone()
        };
        let removed =
            ns.dirs.get_mut(&parent).expect("parent cached").remove(name).expect("exists");
        let addr = self.dentry_addr(&parent_inode, removed.slot.block_pos, removed.slot.slot);
        self.persist_meta(&mut txn, addr, &DentrySlot::free_slot(), Category::Dentry)?;
        self.persist_inode_lower(&mut txn, &parent_inode)?;

        // Tombstone the target under its write lock, collecting its blocks.
        // Any data-path racer that acquires the inode lock afterwards sees
        // `nlink == 0` and bails instead of resurrecting freed blocks.
        let (mut freed, overflow) = {
            let mut t = target_handle.write();
            t.nlink = 0;
            let freed: Vec<u64> = t.extents.iter_blocks().map(|(_, lba)| lba).collect();
            (freed, t.overflow_lba)
        };
        freed.extend(overflow);
        // Stage the frees inside the transaction (the cleared bits persist
        // with it); the TRIMs and the allocator release happen only after
        // the commit, so a power cut anywhere in between either rolls the
        // whole unlink back with the data intact or completes it — never
        // leaves a linked file whose blocks were already discarded.
        for lba in &freed {
            self.block_bitmap.free_staged(*lba);
        }
        self.inode_bitmap.free(target);
        self.persist_inode_free(&mut txn, target)?;
        self.persist_bitmaps(&mut txn)?;
        self.commit_txn(txn);
        self.discard_staged_blocks(&freed);

        self.evict_inode(target);
        ns.dirs.remove(&target);
        self.dirty_inodes.lock().remove(&target);
        self.page_cache.invalidate_inode(target);
        Ok(())
    }

    fn metadata_of(&self, inode: &Inode) -> Metadata {
        Metadata {
            inode: inode.ino,
            size: inode.size,
            file_type: inode.file_type,
            nlink: inode.nlink,
            blocks: inode.blocks,
            mtime_ns: inode.mtime_ns,
        }
    }
}

impl FileSystem for ByteFs {
    fn name(&self) -> &'static str {
        "bytefs"
    }

    fn device(&self) -> &Arc<Mssd> {
        &self.device
    }

    fn create(&self, path: &str) -> FsResult<Fd> {
        let ino = {
            let mut ns = self.namespace.write();
            let (parent, name) = self.resolve_parent(&mut ns, path)?;
            self.create_object(&mut ns, parent, name, FileType::File)?
        };
        Ok(self.register_fd(ino, OpenFlags::create_rw()))
    }

    fn open(&self, path: &str, flags: OpenFlags) -> FsResult<Fd> {
        let ino = match self.resolve_path(path) {
            Ok(ino) => {
                let handle = self.inode_handle(ino)?;
                if handle.read().is_dir() {
                    return Err(FsError::IsADirectory(path.to_string()));
                }
                ino
            }
            Err(FsError::NotFound(_)) if flags.create => {
                let mut ns = self.namespace.write();
                // Re-resolve under the write lock: the file may have been
                // created since the read-locked attempt.
                match self.resolve(&mut ns, path) {
                    Ok(ino) => {
                        let handle = self.inode_handle(ino)?;
                        if handle.read().is_dir() {
                            return Err(FsError::IsADirectory(path.to_string()));
                        }
                        ino
                    }
                    Err(FsError::NotFound(_)) => {
                        let (parent, name) = self.resolve_parent(&mut ns, path)?;
                        self.create_object(&mut ns, parent, name, FileType::File)?
                    }
                    Err(e) => return Err(e),
                }
            }
            Err(e) => return Err(e),
        };
        let fd = self.register_fd(ino, flags);
        if flags.truncate {
            self.truncate(fd, 0)?;
        }
        Ok(fd)
    }

    fn close(&self, fd: Fd) -> FsResult<()> {
        self.fd_shard(fd.0).write().remove(&fd.0).ok_or(FsError::BadDescriptor(fd.0))?;
        Ok(())
    }

    fn read(&self, fd: Fd, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        let of = self.open_file(fd)?;
        let handle = self.inode_handle(of.ino)?;
        let inode = handle.read();
        self.check_live(&inode)?;
        self.do_read(&inode, of, offset, len)
    }

    fn write(&self, fd: Fd, offset: u64, data: &[u8]) -> FsResult<usize> {
        let of = self.open_file(fd)?;
        if !of.flags.write && !of.flags.create {
            return Err(FsError::PermissionDenied("file not open for writing".into()));
        }
        let handle = self.inode_handle(of.ino)?;
        let mut inode = handle.write();
        self.check_live(&inode)?;
        // O_APPEND resolves its offset under the inode lock, making concurrent
        // appends atomic.
        let offset = if of.flags.append { inode.size } else { offset };
        self.do_write(&mut inode, of, offset, data)
    }

    fn fsync(&self, fd: Fd) -> FsResult<()> {
        let of = self.open_file(fd)?;
        let handle = self.inode_handle(of.ino)?;
        let mut inode = handle.write();
        self.check_live(&inode)?;
        self.do_fsync(&mut inode)
    }

    fn truncate(&self, fd: Fd, size: u64) -> FsResult<()> {
        let of = self.open_file(fd)?;
        let handle = self.inode_handle(of.ino)?;
        let mut inode = handle.write();
        self.check_live(&inode)?;
        self.do_truncate(&mut inode, size)
    }

    fn fstat(&self, fd: Fd) -> FsResult<Metadata> {
        let of = self.open_file(fd)?;
        let handle = self.inode_handle(of.ino)?;
        let inode = handle.read();
        Ok(self.metadata_of(&inode))
    }

    fn stat(&self, path: &str) -> FsResult<Metadata> {
        let ino = self.resolve_path(path)?;
        let handle = self.inode_handle(ino)?;
        let inode = handle.read();
        Ok(self.metadata_of(&inode))
    }

    fn mkdir(&self, path: &str) -> FsResult<()> {
        let mut ns = self.namespace.write();
        let (parent, name) = self.resolve_parent(&mut ns, path)?;
        self.create_object(&mut ns, parent, name, FileType::Directory)?;
        Ok(())
    }

    fn rmdir(&self, path: &str) -> FsResult<()> {
        let mut ns = self.namespace.write();
        let (parent, name) = self.resolve_parent(&mut ns, path)?;
        self.remove_object(&mut ns, parent, name, true)
    }

    fn unlink(&self, path: &str) -> FsResult<()> {
        let mut ns = self.namespace.write();
        let (parent, name) = self.resolve_parent(&mut ns, path)?;
        self.remove_object(&mut ns, parent, name, false)
    }

    fn rename(&self, from: &str, to: &str) -> FsResult<()> {
        let mut ns = self.namespace.write();
        let (from_parent, from_name) = self.resolve_parent(&mut ns, from)?;
        let (to_parent, to_name) = self.resolve_parent(&mut ns, to)?;
        self.load_dir(&mut ns, from_parent)?;
        self.load_dir(&mut ns, to_parent)?;
        let entry = ns.dirs[&from_parent]
            .lookup(from_name)
            .cloned()
            .ok_or_else(|| FsError::NotFound(from.to_string()))?;
        if ns.dirs[&to_parent].lookup(to_name).is_some() {
            return Err(FsError::AlreadyExists(to.to_string()));
        }
        DentrySlot { ino: entry.ino, file_type: entry.file_type, name: to_name.to_string() }
            .encode()?;

        let now = self.now_ns();
        let mut txn = self.begin_txn();

        // Remove from the source directory.
        let from_handle = self.inode_handle(from_parent)?;
        let from_inode = {
            let mut p = from_handle.write();
            p.mtime_ns = now;
            p.clone()
        };
        let removed = ns
            .dirs
            .get_mut(&from_parent)
            .expect("cached")
            .remove(from_name)
            .expect("looked up above");
        let addr = self.dentry_addr(&from_inode, removed.slot.block_pos, removed.slot.slot);
        self.persist_meta(&mut txn, addr, &DentrySlot::free_slot(), Category::Dentry)?;
        self.persist_inode_lower(&mut txn, &from_inode)?;

        // Insert into the destination directory.
        if !ns.dirs[&to_parent].has_free_slot() {
            self.grow_directory(&mut ns, to_parent)?;
        }
        let slot = ns.dirs.get_mut(&to_parent).expect("cached").insert(
            to_name,
            entry.ino,
            entry.file_type,
        )?;
        let to_size = (ns.dirs[&to_parent].len() * DENTRY_SIZE) as u64;
        let to_handle = self.inode_handle(to_parent)?;
        let to_inode = {
            let mut p = to_handle.write();
            p.mtime_ns = now;
            p.size = to_size;
            p.clone()
        };
        let slot_bytes =
            DentrySlot { ino: entry.ino, file_type: entry.file_type, name: to_name.to_string() }
                .encode()
                .expect("validated");
        let addr = self.dentry_addr(&to_inode, slot.block_pos, slot.slot);
        self.persist_meta(&mut txn, addr, &slot_bytes, Category::Dentry)?;
        self.persist_inode(&mut txn, &to_inode)?;
        self.persist_bitmaps(&mut txn)?;
        self.commit_txn(txn);
        Ok(())
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<DirEntry>> {
        let ino = self.resolve_path(path)?;
        let collect = |dir: &Directory| {
            dir.iter()
                .map(|(name, e)| DirEntry {
                    name: name.clone(),
                    inode: e.ino,
                    file_type: e.file_type,
                })
                .collect()
        };
        {
            let ns = self.namespace.read();
            if let Some(dir) = ns.dirs.get(&ino) {
                return Ok(collect(dir));
            }
        }
        let mut ns = self.namespace.write();
        self.load_dir(&mut ns, ino)?;
        Ok(collect(&ns.dirs[&ino]))
    }

    fn sync(&self) -> FsResult<()> {
        self.do_sync()
    }

    fn drop_caches(&self) {
        let mut ns = self.namespace.write();
        self.page_cache.clear_clean();
        ns.dirs.clear();
        // Keep every inode that is open, metadata-dirty, or still owns dirty
        // pages (e.g. a truncated tail awaiting writeback): dropping such a
        // handle would orphan durable state.
        let keep: std::collections::HashSet<u64> = self
            .dirty_inodes
            .lock()
            .iter()
            .copied()
            .chain(self.page_cache.dirty_inodes())
            .chain(
                self.open_files
                    .iter()
                    .flat_map(|s| s.read().values().map(|of| of.ino).collect::<Vec<_>>()),
            )
            .collect();
        for shard in &self.inode_shards {
            shard.write().retain(|ino, _| keep.contains(ino));
        }
    }

    fn unmount(&self) -> FsResult<()> {
        self.do_sync()?;
        {
            let mut sb = self.sb.lock();
            sb.clean = true;
            let encoded = sb.encode(self.layout.page_size);
            self.device.try_block_write(
                self.layout.superblock_page,
                &encoded,
                Category::Superblock,
            )?;
        }
        if self.config.firmware_transactions {
            self.device.force_clean();
        }
        self.device.try_flush()?;
        Ok(())
    }
}
