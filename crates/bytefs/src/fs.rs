//! The `ByteFs` file system: mount/format, metadata operations, and the
//! [`FileSystem`] trait implementation.
//!
//! The data path (read/write/fsync/truncate and the §4.6 interface-selection
//! policy) lives in [`crate::fs::data`]; this module owns the in-memory state
//! and the metadata operations of §4.5.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;

use fskit::journal::BlockJournal;
use fskit::pagecache::PageCache;
use fskit::path as fspath;
use fskit::{DirEntry, Fd, FileSystem, FileType, FsError, FsResult, Metadata, OpenFlags};
use mssd::{Category, DramMode, Mssd};

use crate::alloc::BitmapAllocator;
use crate::dentry::{DentrySlot, Directory};
use crate::inode::Inode;
use crate::layout::{Layout, DENTRY_SIZE, INODE_SIZE, ROOT_INO};
use crate::policy::{ByteFsConfig, InterfaceChoice};
use crate::superblock::Superblock;
use crate::txn::{TxTable, Txn};

pub(crate) mod data;

/// An open file description.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OpenFile {
    pub(crate) ino: u64,
    pub(crate) flags: OpenFlags,
}

/// All mutable file-system state, guarded by one lock (the kernel analogue
/// would be finer-grained locking; a single lock keeps the simulation simple
/// and still exercises the full I/O protocol).
pub(crate) struct State {
    pub(crate) sb: Superblock,
    pub(crate) layout: Layout,
    pub(crate) inode_bitmap: BitmapAllocator,
    pub(crate) block_bitmap: BitmapAllocator,
    pub(crate) inodes: HashMap<u64, Inode>,
    pub(crate) dirs: HashMap<u64, Directory>,
    pub(crate) page_cache: PageCache,
    pub(crate) open_files: HashMap<u64, OpenFile>,
    pub(crate) next_fd: u64,
    pub(crate) txtable: TxTable,
    /// Inodes whose in-memory metadata is newer than the device copy.
    pub(crate) dirty_inodes: BTreeSet<u64>,
    pub(crate) journal: Option<BlockJournal>,
}

/// The ByteFS file system (host side).
///
/// See the [crate-level documentation](crate) for an overview and an example.
pub struct ByteFs {
    pub(crate) device: Arc<Mssd>,
    pub(crate) config: ByteFsConfig,
    pub(crate) state: Mutex<State>,
}

impl std::fmt::Debug for ByteFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("ByteFs")
            .field("inodes_allocated", &state.inode_bitmap.allocated())
            .field("blocks_allocated", &state.block_bitmap.allocated())
            .field("open_files", &state.open_files.len())
            .finish()
    }
}

impl ByteFs {
    /// Formats the device with a fresh ByteFS volume and mounts it.
    ///
    /// # Errors
    ///
    /// Returns an error if the device is too small or the configuration and
    /// device firmware mode disagree.
    ///
    /// # Panics
    ///
    /// Panics if the device page size differs from 4 KB (the only geometry the
    /// on-disk format supports).
    pub fn format(device: Arc<Mssd>, config: ByteFsConfig) -> FsResult<Arc<Self>> {
        Self::check_mode(&device, &config)?;
        let page_size = device.page_size();
        let layout = Layout::compute(device.logical_pages(), page_size);
        let sb = Superblock::new(layout);

        // Reserve metadata regions in the block bitmap and the reserved inodes.
        let mut block_bitmap = BitmapAllocator::new(layout.total_pages);
        for page in 0..layout.data_start {
            block_bitmap.allocate_at(page);
        }
        let mut inode_bitmap = BitmapAllocator::new(layout.inode_count);
        inode_bitmap.allocate_at(0); // inode 0 is never used
        inode_bitmap.allocate_at(ROOT_INO);

        // Persist the initial metadata with plain block writes; mkfs is not
        // part of any measurement.
        device.block_write(layout.superblock_page, &sb.encode(page_size), Category::Superblock);
        Self::write_bitmap_region(
            &device,
            layout.inode_bitmap_start,
            layout.inode_bitmap_pages,
            &inode_bitmap.to_bytes(),
            page_size,
        );
        Self::write_bitmap_region(
            &device,
            layout.block_bitmap_start,
            layout.block_bitmap_pages,
            &block_bitmap.to_bytes(),
            page_size,
        );
        inode_bitmap.take_dirty_groups();
        block_bitmap.take_dirty_groups();

        // Root directory inode.
        let mut root = Inode::new(ROOT_INO, FileType::Directory, device.clock().now_ns());
        root.nlink = 2;
        let mut inode_page = vec![0u8; page_size];
        let off = (ROOT_INO % layout.inodes_per_page()) as usize * INODE_SIZE;
        inode_page[off..off + INODE_SIZE].copy_from_slice(&root.encode());
        device.block_write(layout.inode_page(ROOT_INO), &inode_page, Category::Inode);
        device.flush();

        let mut inodes = HashMap::new();
        inodes.insert(ROOT_INO, root);
        let mut dirs = HashMap::new();
        dirs.insert(ROOT_INO, Directory::new(page_size));

        let journal = config
            .data_journaling
            .then(|| BlockJournal::new(Arc::clone(&device), layout.journal_start, layout.journal_pages));

        let state = State {
            sb,
            layout,
            inode_bitmap,
            block_bitmap,
            inodes,
            dirs,
            page_cache: PageCache::new(config.page_cache_pages, page_size, true),
            open_files: HashMap::new(),
            next_fd: 3,
            txtable: TxTable::new(),
            dirty_inodes: BTreeSet::new(),
            journal,
        };
        Ok(Arc::new(Self { device, config, state: Mutex::new(state) }))
    }

    /// Mounts an existing ByteFS volume. If the volume was not cleanly
    /// unmounted, firmware recovery (`RECOVER()`) runs first (§4.7).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::Corrupted`] if no valid superblock is found, or a
    /// configuration error if the device firmware mode does not match.
    pub fn mount(device: Arc<Mssd>, config: ByteFsConfig) -> FsResult<Arc<Self>> {
        Self::check_mode(&device, &config)?;
        let page_size = device.page_size();
        let sb_page = device.block_read(0, 1, Category::Superblock);
        let mut sb = Superblock::decode(&sb_page)?;
        let layout = sb.layout;

        if !sb.clean && config.firmware_transactions {
            // Crash recovery: replay committed log entries, discard the rest.
            device.recover();
        }

        // Load bitmaps over the block interface (Table 3: bitmap reads prefer
        // the block interface and are cached in host DRAM afterwards).
        let inode_bitmap_raw = device.block_read(
            layout.inode_bitmap_start,
            layout.inode_bitmap_pages as usize,
            Category::Bitmap,
        );
        let block_bitmap_raw = device.block_read(
            layout.block_bitmap_start,
            layout.block_bitmap_pages as usize,
            Category::Bitmap,
        );
        let inode_bitmap = BitmapAllocator::from_bytes(&inode_bitmap_raw, layout.inode_count);
        let block_bitmap = BitmapAllocator::from_bytes(&block_bitmap_raw, layout.total_pages);

        // Mark the volume dirty until a clean unmount.
        sb.clean = false;
        sb.mount_count += 1;
        device.block_write(0, &sb.encode(page_size), Category::Superblock);

        let journal = config
            .data_journaling
            .then(|| BlockJournal::new(Arc::clone(&device), layout.journal_start, layout.journal_pages));

        let state = State {
            sb,
            layout,
            inode_bitmap,
            block_bitmap,
            inodes: HashMap::new(),
            dirs: HashMap::new(),
            page_cache: PageCache::new(config.page_cache_pages, page_size, true),
            open_files: HashMap::new(),
            next_fd: 3,
            txtable: TxTable::new(),
            dirty_inodes: BTreeSet::new(),
            journal,
        };
        Ok(Arc::new(Self { device, config, state: Mutex::new(state) }))
    }

    fn check_mode(device: &Mssd, config: &ByteFsConfig) -> FsResult<()> {
        if config.firmware_transactions && device.dram_mode() != DramMode::WriteLog {
            return Err(FsError::InvalidArgument(
                "firmware transactions require a device in WriteLog mode".into(),
            ));
        }
        Ok(())
    }

    fn write_bitmap_region(
        device: &Mssd,
        start: u64,
        pages: u64,
        bytes: &[u8],
        page_size: usize,
    ) {
        for i in 0..pages {
            let lo = (i as usize) * page_size;
            let hi = (lo + page_size).min(bytes.len());
            let mut page = vec![0u8; page_size];
            if lo < bytes.len() {
                page[..hi - lo].copy_from_slice(&bytes[lo..hi]);
            }
            device.block_write(start + i, &page, Category::Bitmap);
        }
    }

    /// The configuration this instance runs with.
    pub fn config(&self) -> &ByteFsConfig {
        &self.config
    }

    /// Runs crash recovery explicitly (normally done by [`ByteFs::mount`] when
    /// the volume is dirty): firmware `RECOVER()` plus data-journal scan.
    /// Returns the firmware recovery report.
    pub fn recover_after_crash(&self) -> mssd::device::RecoveryReport {
        self.device.recover()
    }

    /// Number of in-flight plus committed host transactions (observability).
    pub fn committed_transactions(&self) -> u64 {
        self.state.lock().txtable.committed()
    }

    // ------------------------------------------------------------------
    // Internal helpers shared by the metadata and data paths
    // ------------------------------------------------------------------

    pub(crate) fn now_ns(&self) -> u64 {
        self.device.clock().now_ns()
    }

    /// Begins a metadata transaction (TxID-tagged when firmware transactions
    /// are enabled).
    pub(crate) fn begin_txn(&self, state: &mut State) -> Txn {
        let txid = self.config.firmware_transactions.then(|| state.txtable.begin());
        Txn::new(Arc::clone(&self.device), txid)
    }

    /// Finishes a transaction: persistence barrier, firmware commit, TxTable
    /// bookkeeping.
    pub(crate) fn commit_txn(&self, state: &mut State, txn: Txn) {
        if let Some(txid) = txn.commit() {
            state.txtable.finish(txid);
        }
    }

    /// Persists a small metadata update either over the byte interface (inside
    /// the transaction) or as a read-modify-write of the containing block when
    /// the dual interface is disabled.
    pub(crate) fn persist_meta(&self, txn: &mut Txn, addr: u64, bytes: &[u8], cat: Category) {
        match self.config.metadata_choice(bytes.len()) {
            InterfaceChoice::Byte => txn.write(addr, bytes, cat),
            InterfaceChoice::Block => {
                let page_size = self.device.page_size() as u64;
                let lba = addr / page_size;
                let off = (addr % page_size) as usize;
                let mut page = self.device.block_read(lba, 1, cat);
                page[off..off + bytes.len()].copy_from_slice(bytes);
                self.device.block_write(lba, &page, cat);
            }
        }
    }

    /// Persists an inode (both halves) into the inode table.
    pub(crate) fn persist_inode(&self, state: &State, txn: &mut Txn, inode: &Inode) {
        let addr = state.layout.inode_addr(inode.ino);
        self.persist_meta(txn, addr, &inode.encode_lower(), Category::Inode);
        self.persist_meta(
            txn,
            addr + (INODE_SIZE / 2) as u64,
            &inode.encode_upper(),
            Category::Inode,
        );
    }

    /// Persists only the hot lower half of an inode (size/mtime/nlink updates).
    pub(crate) fn persist_inode_lower(&self, state: &State, txn: &mut Txn, inode: &Inode) {
        let addr = state.layout.inode_addr(inode.ino);
        self.persist_meta(txn, addr, &inode.encode_lower(), Category::Inode);
    }

    /// Marks an inode slot free on the device (unlink/rmdir).
    pub(crate) fn persist_inode_free(&self, state: &State, txn: &mut Txn, ino: u64) {
        let addr = state.layout.inode_addr(ino);
        self.persist_meta(txn, addr, &[0u8; INODE_SIZE / 2], Category::Inode);
    }

    /// Persists every bitmap group dirtied since the last transaction.
    pub(crate) fn persist_bitmaps(&self, state: &mut State, txn: &mut Txn) {
        let layout = state.layout;
        let page_size = layout.page_size as u64;
        for group in state.inode_bitmap.take_dirty_groups() {
            let bytes = state.inode_bitmap.group_bytes(group);
            let addr = layout.inode_bitmap_start * page_size + group * DENTRY_SIZE as u64;
            self.persist_meta(txn, addr, &bytes, Category::Bitmap);
        }
        for group in state.block_bitmap.take_dirty_groups() {
            let bytes = state.block_bitmap.group_bytes(group);
            let addr = layout.block_bitmap_start * page_size + group * DENTRY_SIZE as u64;
            self.persist_meta(txn, addr, &bytes, Category::Bitmap);
        }
    }

    /// Allocates one data block and returns its absolute LBA.
    pub(crate) fn alloc_block(&self, state: &mut State) -> FsResult<u64> {
        state.block_bitmap.allocate().ok_or(FsError::NoSpace)
    }

    /// Frees a data block: bitmap, device TRIM.
    pub(crate) fn free_block(&self, state: &mut State, lba: u64) {
        state.block_bitmap.free(lba);
        self.device.trim(lba, 1);
    }

    /// Loads an inode into the cache (block-interface read of its inode page
    /// on a miss) and returns a clone.
    pub(crate) fn load_inode(&self, state: &mut State, ino: u64) -> FsResult<Inode> {
        if let Some(inode) = state.inodes.get(&ino) {
            return Ok(inode.clone());
        }
        if ino >= state.layout.inode_count || !state.inode_bitmap.is_allocated(ino) {
            return Err(FsError::NotFound(format!("inode {ino}")));
        }
        let page = self.device.block_read(state.layout.inode_page(ino), 1, Category::Inode);
        let off = (ino % state.layout.inodes_per_page()) as usize * INODE_SIZE;
        let mut inode = Inode::decode(ino, &page[off..off + INODE_SIZE])
            .ok_or_else(|| FsError::Corrupted(format!("inode {ino} is allocated but empty")))?;
        if let Some(lba) = inode.overflow_lba {
            let block = self.device.block_read(lba, 1, Category::DataPointer);
            inode.load_overflow(&block);
        }
        state.inodes.insert(ino, inode.clone());
        Ok(inode)
    }

    /// Loads a directory's entries into the dentry cache (block-interface
    /// reads of its directory blocks on a miss).
    pub(crate) fn load_dir(&self, state: &mut State, ino: u64) -> FsResult<()> {
        if state.dirs.contains_key(&ino) {
            return Ok(());
        }
        let inode = self.load_inode(state, ino)?;
        if !inode.is_dir() {
            return Err(FsError::NotADirectory(format!("inode {ino}")));
        }
        let mut blocks = Vec::new();
        for (_, lba) in inode.extents.iter_blocks() {
            blocks.push(self.device.block_read(lba, 1, Category::Dentry));
        }
        let dir = Directory::from_blocks(state.layout.page_size, &blocks);
        state.dirs.insert(ino, dir);
        Ok(())
    }

    /// Resolves an absolute path to an inode number.
    pub(crate) fn resolve(&self, state: &mut State, path: &str) -> FsResult<u64> {
        let comps = fspath::components(path)?;
        let mut cur = ROOT_INO;
        for comp in comps {
            self.load_dir(state, cur)?;
            let dir = state.dirs.get(&cur).expect("just loaded");
            match dir.lookup(comp) {
                Some(entry) => cur = entry.ino,
                None => return Err(FsError::NotFound(path.to_string())),
            }
        }
        Ok(cur)
    }

    /// Resolves the parent directory of `path`, returning `(parent inode,
    /// final name)`.
    pub(crate) fn resolve_parent<'p>(
        &self,
        state: &mut State,
        path: &'p str,
    ) -> FsResult<(u64, &'p str)> {
        let (parents, name) = fspath::split_parent(path)?;
        let mut cur = ROOT_INO;
        for comp in parents {
            self.load_dir(state, cur)?;
            let dir = state.dirs.get(&cur).expect("just loaded");
            match dir.lookup(comp) {
                Some(entry) if entry.file_type.is_dir() => cur = entry.ino,
                Some(_) => return Err(FsError::NotADirectory(path.to_string())),
                None => return Err(FsError::NotFound(path.to_string())),
            }
        }
        Ok((cur, name))
    }

    /// Device byte address of a dentry slot inside a directory.
    fn dentry_addr(&self, dir_inode: &Inode, block_pos: usize, slot: usize) -> u64 {
        let lba = dir_inode
            .extents
            .lookup(block_pos as u64)
            .expect("directory block must be mapped");
        lba * self.device.page_size() as u64 + (slot * DENTRY_SIZE) as u64
    }

    /// Adds a new, zeroed directory block to `dir_ino`, updating the inode and
    /// the in-memory directory image. Returns nothing; the caller persists the
    /// inode afterwards.
    fn grow_directory(&self, state: &mut State, dir_ino: u64) -> FsResult<()> {
        let lba = self.alloc_block(state)?;
        let now = self.now_ns();
        let inode = state.inodes.get_mut(&dir_ino).expect("directory inode cached");
        let block_pos = inode.extents.mapped_blocks();
        inode.extents.insert(block_pos, lba);
        inode.blocks += 1;
        inode.mtime_ns = now;
        let dir = state.dirs.get_mut(&dir_ino).expect("directory cached");
        dir.add_empty_block();
        Ok(())
    }

    /// Creates a new file or directory entry under `parent`, persisting all
    /// metadata in one transaction. Returns the new inode number.
    fn create_object(
        &self,
        state: &mut State,
        parent: u64,
        name: &str,
        file_type: FileType,
    ) -> FsResult<u64> {
        self.load_dir(state, parent)?;
        if state.dirs[&parent].lookup(name).is_some() {
            return Err(FsError::AlreadyExists(name.to_string()));
        }
        // Validate the name before allocating anything.
        DentrySlot { ino: 1, file_type, name: name.to_string() }.encode()?;

        let ino = state.inode_bitmap.allocate().ok_or(FsError::NoInodes)?;
        let now = self.now_ns();
        let mut inode = Inode::new(ino, file_type, now);
        if file_type.is_dir() {
            inode.nlink = 2;
        }

        let mut txn = self.begin_txn(state);

        // Ensure the parent has a free dentry slot.
        if !state.dirs[&parent].has_free_slot() {
            self.grow_directory(state, parent)?;
        }
        let slot = {
            let dir = state.dirs.get_mut(&parent).expect("parent cached");
            dir.insert(name, ino, file_type)?
        };

        // Persist: the dentry slot, the new inode, the parent inode, bitmaps.
        let slot_bytes =
            DentrySlot { ino, file_type, name: name.to_string() }.encode().expect("validated");
        let parent_inode = {
            let p = state.inodes.get_mut(&parent).expect("parent inode cached");
            p.mtime_ns = now;
            p.size = (state.dirs[&parent].len() * DENTRY_SIZE) as u64;
            if file_type.is_dir() {
                p.nlink += 1;
            }
            p.clone()
        };
        let addr = self.dentry_addr(&parent_inode, slot.block_pos, slot.slot);
        self.persist_meta(&mut txn, addr, &slot_bytes, Category::Dentry);
        self.persist_inode(state, &mut txn, &inode);
        self.persist_inode(state, &mut txn, &parent_inode);
        self.persist_bitmaps(state, &mut txn);
        self.commit_txn(state, txn);

        state.inodes.insert(ino, inode);
        if file_type.is_dir() {
            state.dirs.insert(ino, Directory::new(state.layout.page_size));
        }
        Ok(ino)
    }

    /// Removes the entry `name` from `parent` and frees the object if its link
    /// count drops to zero.
    fn remove_object(&self, state: &mut State, parent: u64, name: &str, dir: bool) -> FsResult<()> {
        self.load_dir(state, parent)?;
        let entry = state.dirs[&parent]
            .lookup(name)
            .cloned()
            .ok_or_else(|| FsError::NotFound(name.to_string()))?;
        let target = entry.ino;
        let target_inode = self.load_inode(state, target)?;
        if dir {
            if !target_inode.is_dir() {
                return Err(FsError::NotADirectory(name.to_string()));
            }
            self.load_dir(state, target)?;
            if !state.dirs[&target].is_empty() {
                return Err(FsError::DirectoryNotEmpty(name.to_string()));
            }
        } else if target_inode.is_dir() {
            return Err(FsError::IsADirectory(name.to_string()));
        }

        let now = self.now_ns();
        let mut txn = self.begin_txn(state);

        // Clear the dentry slot.
        let parent_inode = {
            let p = state.inodes.get_mut(&parent).expect("parent inode cached");
            p.mtime_ns = now;
            if dir {
                p.nlink = p.nlink.saturating_sub(1);
            }
            p.clone()
        };
        let removed =
            state.dirs.get_mut(&parent).expect("parent cached").remove(name).expect("exists");
        let addr = self.dentry_addr(&parent_inode, removed.slot.block_pos, removed.slot.slot);
        self.persist_meta(&mut txn, addr, &DentrySlot::free_slot(), Category::Dentry);
        self.persist_inode_lower(state, &mut txn, &parent_inode);

        // Free the target's blocks and inode.
        let freed: Vec<u64> = target_inode.extents.iter_blocks().map(|(_, lba)| lba).collect();
        for lba in freed {
            self.free_block(state, lba);
        }
        if let Some(lba) = target_inode.overflow_lba {
            self.free_block(state, lba);
        }
        state.inode_bitmap.free(target);
        self.persist_inode_free(state, &mut txn, target);
        self.persist_bitmaps(state, &mut txn);
        self.commit_txn(state, txn);

        state.inodes.remove(&target);
        state.dirs.remove(&target);
        state.dirty_inodes.remove(&target);
        state.page_cache.invalidate_inode(target);
        Ok(())
    }

    fn metadata_of(&self, inode: &Inode) -> Metadata {
        Metadata {
            inode: inode.ino,
            size: inode.size,
            file_type: inode.file_type,
            nlink: inode.nlink,
            blocks: inode.blocks,
            mtime_ns: inode.mtime_ns,
        }
    }

    pub(crate) fn open_file(&self, state: &State, fd: Fd) -> FsResult<OpenFile> {
        state.open_files.get(&fd.0).copied().ok_or(FsError::BadDescriptor(fd.0))
    }
}

impl FileSystem for ByteFs {
    fn name(&self) -> &'static str {
        "bytefs"
    }

    fn device(&self) -> &Arc<Mssd> {
        &self.device
    }

    fn create(&self, path: &str) -> FsResult<Fd> {
        let mut state = self.state.lock();
        let (parent, name) = self.resolve_parent(&mut state, path)?;
        let ino = self.create_object(&mut state, parent, name, FileType::File)?;
        let fd = state.next_fd;
        state.next_fd += 1;
        state.open_files.insert(fd, OpenFile { ino, flags: OpenFlags::create_rw() });
        Ok(Fd(fd))
    }

    fn open(&self, path: &str, flags: OpenFlags) -> FsResult<Fd> {
        let mut state = self.state.lock();
        let ino = match self.resolve(&mut state, path) {
            Ok(ino) => {
                let inode = self.load_inode(&mut state, ino)?;
                if inode.is_dir() {
                    return Err(FsError::IsADirectory(path.to_string()));
                }
                ino
            }
            Err(FsError::NotFound(_)) if flags.create => {
                let (parent, name) = self.resolve_parent(&mut state, path)?;
                self.create_object(&mut state, parent, name, FileType::File)?
            }
            Err(e) => return Err(e),
        };
        let fd = state.next_fd;
        state.next_fd += 1;
        state.open_files.insert(fd, OpenFile { ino, flags });
        if flags.truncate {
            drop(state);
            self.truncate(Fd(fd), 0)?;
        }
        Ok(Fd(fd))
    }

    fn close(&self, fd: Fd) -> FsResult<()> {
        let mut state = self.state.lock();
        state.open_files.remove(&fd.0).ok_or(FsError::BadDescriptor(fd.0))?;
        Ok(())
    }

    fn read(&self, fd: Fd, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        let mut state = self.state.lock();
        let of = self.open_file(&state, fd)?;
        self.do_read(&mut state, of, offset, len)
    }

    fn write(&self, fd: Fd, offset: u64, data: &[u8]) -> FsResult<usize> {
        let mut state = self.state.lock();
        let of = self.open_file(&state, fd)?;
        if !of.flags.write && !of.flags.create {
            return Err(FsError::PermissionDenied("file not open for writing".into()));
        }
        let offset = if of.flags.append {
            state.inodes.get(&of.ino).map(|i| i.size).unwrap_or(offset)
        } else {
            offset
        };
        self.do_write(&mut state, of, offset, data)
    }

    fn fsync(&self, fd: Fd) -> FsResult<()> {
        let mut state = self.state.lock();
        let of = self.open_file(&state, fd)?;
        self.do_fsync(&mut state, of.ino)
    }

    fn truncate(&self, fd: Fd, size: u64) -> FsResult<()> {
        let mut state = self.state.lock();
        let of = self.open_file(&state, fd)?;
        self.do_truncate(&mut state, of.ino, size)
    }

    fn fstat(&self, fd: Fd) -> FsResult<Metadata> {
        let mut state = self.state.lock();
        let of = self.open_file(&state, fd)?;
        let inode = self.load_inode(&mut state, of.ino)?;
        Ok(self.metadata_of(&inode))
    }

    fn stat(&self, path: &str) -> FsResult<Metadata> {
        let mut state = self.state.lock();
        let ino = self.resolve(&mut state, path)?;
        let inode = self.load_inode(&mut state, ino)?;
        Ok(self.metadata_of(&inode))
    }

    fn mkdir(&self, path: &str) -> FsResult<()> {
        let mut state = self.state.lock();
        let (parent, name) = self.resolve_parent(&mut state, path)?;
        self.create_object(&mut state, parent, name, FileType::Directory)?;
        Ok(())
    }

    fn rmdir(&self, path: &str) -> FsResult<()> {
        let mut state = self.state.lock();
        let (parent, name) = self.resolve_parent(&mut state, path)?;
        self.remove_object(&mut state, parent, name, true)
    }

    fn unlink(&self, path: &str) -> FsResult<()> {
        let mut state = self.state.lock();
        let (parent, name) = self.resolve_parent(&mut state, path)?;
        self.remove_object(&mut state, parent, name, false)
    }

    fn rename(&self, from: &str, to: &str) -> FsResult<()> {
        let mut state = self.state.lock();
        let (from_parent, from_name) = self.resolve_parent(&mut state, from)?;
        let (to_parent, to_name) = self.resolve_parent(&mut state, to)?;
        self.load_dir(&mut state, from_parent)?;
        self.load_dir(&mut state, to_parent)?;
        let entry = state.dirs[&from_parent]
            .lookup(from_name)
            .cloned()
            .ok_or_else(|| FsError::NotFound(from.to_string()))?;
        if state.dirs[&to_parent].lookup(to_name).is_some() {
            return Err(FsError::AlreadyExists(to.to_string()));
        }
        DentrySlot { ino: entry.ino, file_type: entry.file_type, name: to_name.to_string() }
            .encode()?;

        let now = self.now_ns();
        let mut txn = self.begin_txn(&mut state);

        // Remove from the source directory.
        let from_inode = {
            let p = state.inodes.get_mut(&from_parent).expect("cached");
            p.mtime_ns = now;
            p.clone()
        };
        let removed = state
            .dirs
            .get_mut(&from_parent)
            .expect("cached")
            .remove(from_name)
            .expect("looked up above");
        let addr = self.dentry_addr(&from_inode, removed.slot.block_pos, removed.slot.slot);
        self.persist_meta(&mut txn, addr, &DentrySlot::free_slot(), Category::Dentry);
        self.persist_inode_lower(&state, &mut txn, &from_inode);

        // Insert into the destination directory.
        if !state.dirs[&to_parent].has_free_slot() {
            self.grow_directory(&mut state, to_parent)?;
        }
        let slot = state
            .dirs
            .get_mut(&to_parent)
            .expect("cached")
            .insert(to_name, entry.ino, entry.file_type)?;
        let to_size = (state.dirs[&to_parent].len() * DENTRY_SIZE) as u64;
        let to_inode = {
            let p = state.inodes.get_mut(&to_parent).expect("cached");
            p.mtime_ns = now;
            p.size = to_size;
            p.clone()
        };
        let slot_bytes =
            DentrySlot { ino: entry.ino, file_type: entry.file_type, name: to_name.to_string() }
                .encode()
                .expect("validated");
        let addr = self.dentry_addr(&to_inode, slot.block_pos, slot.slot);
        self.persist_meta(&mut txn, addr, &slot_bytes, Category::Dentry);
        self.persist_inode(&state, &mut txn, &to_inode);
        self.persist_bitmaps(&mut state, &mut txn);
        self.commit_txn(&mut state, txn);
        Ok(())
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<DirEntry>> {
        let mut state = self.state.lock();
        let ino = self.resolve(&mut state, path)?;
        self.load_dir(&mut state, ino)?;
        Ok(state.dirs[&ino]
            .iter()
            .map(|(name, e)| DirEntry { name: name.clone(), inode: e.ino, file_type: e.file_type })
            .collect())
    }

    fn sync(&self) -> FsResult<()> {
        let mut state = self.state.lock();
        self.do_sync(&mut state)
    }

    fn drop_caches(&self) {
        let mut state = self.state.lock();
        if state.page_cache.dirty_count() == 0 {
            state.page_cache.clear();
        }
        state.dirs.clear();
        let keep: std::collections::HashSet<u64> = state
            .dirty_inodes
            .iter()
            .copied()
            .chain(state.open_files.values().map(|of| of.ino))
            .collect();
        state.inodes.retain(|ino, _| keep.contains(ino));
    }

    fn unmount(&self) -> FsResult<()> {
        {
            let mut state = self.state.lock();
            self.do_sync(&mut state)?;
            state.sb.clean = true;
            let encoded = state.sb.encode(state.layout.page_size);
            self.device.block_write(state.layout.superblock_page, &encoded, Category::Superblock);
        }
        if self.config.firmware_transactions {
            self.device.force_clean();
        }
        self.device.flush();
        Ok(())
    }
}
