//! Host-side transaction management.
//!
//! A ByteFS file-system operation that touches multiple metadata structures
//! (e.g. `create` updates the parent directory, the inode bitmap, the new
//! inode and the parent inode) is wrapped in a transaction: every byte write
//! carries the transaction's TxID, and a single `COMMIT(TxID)` command makes
//! the whole group durable and atomic (§4.3, §4.7). The host keeps a TxTable
//! of in-flight transactions (mirrored here by [`TxTable`] and its concurrent
//! counterpart [`SharedTxTable`]) mostly for observability; ordering between
//! conflicting transactions is provided by the file-system locks (the
//! namespace lock for metadata operations, per-inode locks for the data
//! path — see the crate-level "Concurrency model" docs).

use std::collections::HashSet;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use mssd::txn::TxIdAllocator;
use mssd::{Category, FlashError, Mssd, TxId};

/// The host transaction table: allocates TxIDs and tracks in-flight
/// transactions.
#[derive(Debug, Default)]
pub struct TxTable {
    alloc: TxIdAllocator,
    active: HashSet<TxId>,
    committed: u64,
}

impl TxTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self { alloc: TxIdAllocator::new(), active: HashSet::new(), committed: 0 }
    }

    /// Starts a new transaction and returns its TxID.
    pub fn begin(&mut self) -> TxId {
        let id = self.alloc.allocate();
        self.active.insert(id);
        id
    }

    /// Marks a transaction committed.
    pub fn finish(&mut self, txid: TxId) {
        if self.active.remove(&txid) {
            self.committed += 1;
        }
    }

    /// Number of transactions currently in flight.
    pub fn in_flight(&self) -> usize {
        self.active.len()
    }

    /// Number of transactions committed so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }
}

/// The concurrent host transaction table: the `&self` counterpart of
/// [`TxTable`] used by the sharded file system.
///
/// TxID allocation is a single atomic fetch-add and the committed counter is
/// an atomic load, so neither the begin fast path nor observability contends
/// on a lock; only the in-flight set (bounded by the number of concurrent
/// operations) is mutex-protected.
#[derive(Debug, Default)]
pub struct SharedTxTable {
    next: AtomicU32,
    active: Mutex<HashSet<TxId>>,
    committed: AtomicU64,
}

impl SharedTxTable {
    /// Creates an empty table. TxID 0 is reserved as "no transaction".
    pub fn new() -> Self {
        Self {
            next: AtomicU32::new(1),
            active: Mutex::new(HashSet::new()),
            committed: AtomicU64::new(0),
        }
    }

    /// Starts a new transaction and returns its TxID.
    pub fn begin(&self) -> TxId {
        let id = loop {
            let raw = self.next.fetch_add(1, Ordering::Relaxed);
            if raw != 0 {
                break TxId(raw);
            }
            // u32 wrap-around landed on the reserved id; draw again.
        };
        self.active.lock().insert(id);
        id
    }

    /// Marks a transaction committed.
    pub fn finish(&self, txid: TxId) {
        if self.active.lock().remove(&txid) {
            self.committed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of transactions currently in flight.
    pub fn in_flight(&self) -> usize {
        self.active.lock().len()
    }

    /// Number of transactions committed so far (lock-free).
    pub fn committed(&self) -> u64 {
        self.committed.load(Ordering::Relaxed)
    }
}

/// A single in-flight transaction: a thin wrapper that tags byte writes with
/// the TxID and issues the commit sequence.
#[derive(Debug)]
pub struct Txn {
    device: Arc<Mssd>,
    txid: Option<TxId>,
    writes: usize,
    bytes: usize,
}

impl Txn {
    /// Starts a transaction. When `txid` is `None` (firmware transactions
    /// disabled) writes are plain byte writes and commit is only a persistence
    /// barrier.
    pub fn new(device: Arc<Mssd>, txid: Option<TxId>) -> Self {
        Self { device, txid, writes: 0, bytes: 0 }
    }

    /// The transaction ID, if firmware transactions are enabled.
    pub fn txid(&self) -> Option<TxId> {
        self.txid
    }

    /// Number of byte writes issued under this transaction.
    pub fn writes(&self) -> usize {
        self.writes
    }

    /// Total bytes written under this transaction.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Issues a byte-interface write tagged with this transaction's TxID.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::ReadOnly`] when the device has degraded to
    /// read-only, or another media error surfaced by the write path.
    pub fn write(&mut self, addr: u64, data: &[u8], cat: Category) -> Result<(), FlashError> {
        self.device.try_byte_write(addr, data, self.txid, cat)?;
        self.writes += 1;
        self.bytes += data.len();
        Ok(())
    }

    /// Commits the transaction: flush the CPU write-combining buffers
    /// (persistence barrier) and, when firmware transactions are enabled,
    /// issue `COMMIT(TxID)`.
    pub fn commit(self) -> Option<TxId> {
        if self.writes > 0 {
            self.device.persist_barrier();
        }
        if let Some(txid) = self.txid {
            self.device.commit(txid);
        }
        self.txid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssd::{DramMode, MssdConfig};

    #[test]
    fn txtable_tracks_lifecycle() {
        let mut t = TxTable::new();
        let a = t.begin();
        let b = t.begin();
        assert_ne!(a, b);
        assert_eq!(t.in_flight(), 2);
        t.finish(a);
        assert_eq!(t.in_flight(), 1);
        assert_eq!(t.committed(), 1);
        // Finishing twice is harmless.
        t.finish(a);
        assert_eq!(t.committed(), 1);
    }

    #[test]
    fn shared_txtable_is_concurrent() {
        let t = std::sync::Arc::new(SharedTxTable::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = std::sync::Arc::clone(&t);
                std::thread::spawn(move || {
                    let mut ids = Vec::new();
                    for _ in 0..200 {
                        ids.push(t.begin());
                    }
                    for id in &ids {
                        t.finish(*id);
                    }
                    ids
                })
            })
            .collect();
        let mut all: Vec<u32> =
            handles.into_iter().flat_map(|h| h.join().unwrap()).map(|id| id.0).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 800, "every thread got unique TxIDs");
        assert!(!all.contains(&0), "TxID 0 stays reserved");
        assert_eq!(t.committed(), 800);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn txn_tags_writes_and_commits() {
        let dev = Mssd::new(MssdConfig::small_test(), DramMode::WriteLog);
        let mut table = TxTable::new();
        let txid = table.begin();
        let mut txn = Txn::new(Arc::clone(&dev), Some(txid));
        txn.write(4096, &[1u8; 64], Category::Inode).unwrap();
        txn.write(8192, &[2u8; 64], Category::Bitmap).unwrap();
        assert_eq!(txn.writes(), 2);
        assert_eq!(txn.bytes(), 128);
        let committed = txn.commit().unwrap();
        table.finish(committed);
        assert!(dev.is_committed(txid));
        assert_eq!(dev.traffic().tx_commits, 1);
    }

    #[test]
    fn txn_without_firmware_transactions_only_barriers() {
        let dev = Mssd::new(MssdConfig::small_test(), DramMode::PageCache);
        let mut txn = Txn::new(Arc::clone(&dev), None);
        txn.write(0, &[5u8; 64], Category::Dentry).unwrap();
        assert!(txn.commit().is_none());
        assert_eq!(dev.traffic().tx_commits, 0);
        // The data is still durable in device DRAM.
        assert_eq!(dev.byte_read(0, 64, Category::Dentry), vec![5u8; 64]);
    }

    #[test]
    fn empty_txn_commit_skips_the_barrier() {
        let dev = Mssd::new(MssdConfig::small_test(), DramMode::WriteLog);
        let before = dev.clock().now_ns();
        let txn = Txn::new(Arc::clone(&dev), None);
        txn.commit();
        assert_eq!(dev.clock().now_ns(), before);
    }
}
