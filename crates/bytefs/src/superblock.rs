//! The ByteFS superblock.
//!
//! The superblock occupies page 0 and records the volume geometry plus a
//! clean-shutdown flag. Table 3 of the paper classifies the superblock as
//! "read rarely, written rarely — block interface for both", which is exactly
//! how [`crate::ByteFs`] treats it: it is read once at mount and rewritten as
//! a whole block at mkfs/unmount.

use crate::layout::Layout;
use fskit::{FsError, FsResult};

/// Magic number identifying a ByteFS volume ("BYTE" + "FS25").
pub const MAGIC: u64 = 0x4259_5445_4653_2025;

/// On-device format version understood by this implementation.
pub const VERSION: u32 = 1;

/// The superblock contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Superblock {
    /// Magic number ([`MAGIC`]).
    pub magic: u64,
    /// Format version ([`VERSION`]).
    pub version: u32,
    /// Volume layout.
    pub layout: Layout,
    /// `true` if the file system was unmounted cleanly; cleared at mount,
    /// set again at unmount. A mount that finds it `false` runs recovery.
    pub clean: bool,
    /// Number of mounts since mkfs (informational).
    pub mount_count: u32,
}

impl Superblock {
    /// Creates a fresh superblock for a newly formatted volume.
    pub fn new(layout: Layout) -> Self {
        Self { magic: MAGIC, version: VERSION, layout, clean: true, mount_count: 0 }
    }

    /// Serializes the superblock into a full page of `page_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is smaller than the encoded superblock (~128 B).
    pub fn encode(&self, page_size: usize) -> Vec<u8> {
        let mut buf = vec![0u8; page_size];
        let mut w = Writer::new(&mut buf);
        w.u64(self.magic);
        w.u32(self.version);
        w.u32(self.mount_count);
        w.u8(self.clean as u8);
        let l = &self.layout;
        w.u64(l.page_size as u64);
        w.u64(l.total_pages);
        w.u64(l.inode_bitmap_start);
        w.u64(l.inode_bitmap_pages);
        w.u64(l.block_bitmap_start);
        w.u64(l.block_bitmap_pages);
        w.u64(l.inode_table_start);
        w.u64(l.inode_table_pages);
        w.u64(l.journal_start);
        w.u64(l.journal_pages);
        w.u64(l.data_start);
        w.u64(l.data_pages);
        w.u64(l.inode_count);
        buf
    }

    /// Decodes a superblock from a page read from the device.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::Corrupted`] if the magic or version do not match or
    /// the geometry is inconsistent.
    pub fn decode(page: &[u8]) -> FsResult<Self> {
        let mut r = Reader::new(page);
        let magic = r.u64()?;
        if magic != MAGIC {
            return Err(FsError::Corrupted(format!("bad superblock magic {magic:#x}")));
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(FsError::Corrupted(format!("unsupported format version {version}")));
        }
        let mount_count = r.u32()?;
        let clean = r.u8()? != 0;
        let layout = Layout {
            page_size: r.u64()? as usize,
            total_pages: r.u64()?,
            superblock_page: 0,
            inode_bitmap_start: r.u64()?,
            inode_bitmap_pages: r.u64()?,
            block_bitmap_start: r.u64()?,
            block_bitmap_pages: r.u64()?,
            inode_table_start: r.u64()?,
            inode_table_pages: r.u64()?,
            journal_start: r.u64()?,
            journal_pages: r.u64()?,
            data_start: r.u64()?,
            data_pages: r.u64()?,
            inode_count: r.u64()?,
        };
        if layout.data_start + layout.data_pages != layout.total_pages {
            return Err(FsError::Corrupted("superblock geometry is inconsistent".into()));
        }
        Ok(Self { magic, version, layout, clean, mount_count })
    }
}

struct Writer<'a> {
    buf: &'a mut [u8],
    pos: usize,
}

impl<'a> Writer<'a> {
    fn new(buf: &'a mut [u8]) -> Self {
        Self { buf, pos: 0 }
    }
    fn u64(&mut self, v: u64) {
        self.buf[self.pos..self.pos + 8].copy_from_slice(&v.to_le_bytes());
        self.pos += 8;
    }
    fn u32(&mut self, v: u32) {
        self.buf[self.pos..self.pos + 4].copy_from_slice(&v.to_le_bytes());
        self.pos += 4;
    }
    fn u8(&mut self, v: u8) {
        self.buf[self.pos] = v;
        self.pos += 1;
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> FsResult<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(FsError::Corrupted("superblock truncated".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u64(&mut self) -> FsResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn u32(&mut self) -> FsResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn u8(&mut self) -> FsResult<u8> {
        Ok(self.take(1)?[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sb() -> Superblock {
        Superblock::new(Layout::compute(2048, 4096))
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut s = sb();
        s.mount_count = 3;
        s.clean = false;
        let page = s.encode(4096);
        assert_eq!(page.len(), 4096);
        let back = Superblock::decode(&page).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let s = sb();
        let mut page = s.encode(4096);
        page[0] ^= 0xFF;
        assert!(matches!(Superblock::decode(&page), Err(FsError::Corrupted(_))));
    }

    #[test]
    fn bad_version_is_rejected() {
        let s = sb();
        let mut page = s.encode(4096);
        page[8] = 99;
        assert!(matches!(Superblock::decode(&page), Err(FsError::Corrupted(_))));
    }

    #[test]
    fn truncated_page_is_rejected() {
        let s = sb();
        let page = s.encode(4096);
        assert!(matches!(Superblock::decode(&page[..16]), Err(FsError::Corrupted(_))));
    }

    #[test]
    fn inconsistent_geometry_is_rejected() {
        let s = sb();
        let mut page = s.encode(4096);
        // Corrupt total_pages (offset: 8+4+4+1+8 = 25).
        page[25..33].copy_from_slice(&12345u64.to_le_bytes());
        assert!(matches!(Superblock::decode(&page), Err(FsError::Corrupted(_))));
    }
}
