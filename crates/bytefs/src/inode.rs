//! The 128-byte split inode.
//!
//! §4.5: "ByteFS maintains the inode as a 128 B entry and groups these entries
//! into 4 KB pages. To reduce the write traffic of inode updates, we split each
//! inode into the upper and lower regions (64 B each). The lower region
//! contains frequently updated information, such as file size, modification
//! times, and access rights... each inode update takes as low as 64 B via the
//! byte interface."
//!
//! Layout used here:
//!
//! * **lower 64 B (hot)** — type, nlink, size, mtime, block count, and the
//!   first two inline extents;
//! * **upper 64 B (cold)** — two more inline extents and the LBA of the
//!   overflow extent block (0 when unused).

use fskit::FileType;

use crate::extent::{Extent, ExtentTree, EXTENT_SIZE};
use crate::layout::{INLINE_EXTENTS, INODE_SIZE};

/// Half of an inode (the unit of byte-interface persistence).
pub const INODE_HALF: usize = INODE_SIZE / 2;

/// Maximum number of extents that fit in the overflow extent block.
pub const MAX_OVERFLOW_EXTENTS: usize = 255;

const KIND_FREE: u8 = 0;
const KIND_FILE: u8 = 1;
const KIND_DIR: u8 = 2;

/// The in-memory representation of one inode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inode {
    /// Inode number.
    pub ino: u64,
    /// Regular file or directory.
    pub file_type: FileType,
    /// Link count.
    pub nlink: u32,
    /// File size in bytes (directories: number of entries × slot size).
    pub size: u64,
    /// Modification time in virtual nanoseconds.
    pub mtime_ns: u64,
    /// Number of data blocks allocated to this inode (including the overflow
    /// extent block).
    pub blocks: u64,
    /// File-block → LBA mapping.
    pub extents: ExtentTree,
    /// LBA of the overflow extent block, if one has been allocated.
    pub overflow_lba: Option<u64>,
}

impl Inode {
    /// Creates a fresh inode of the given type.
    pub fn new(ino: u64, file_type: FileType, now_ns: u64) -> Self {
        Self {
            ino,
            file_type,
            nlink: 1,
            size: 0,
            mtime_ns: now_ns,
            blocks: 0,
            extents: ExtentTree::new(),
            overflow_lba: None,
        }
    }

    /// `true` if this inode describes a directory.
    pub fn is_dir(&self) -> bool {
        self.file_type.is_dir()
    }

    /// `true` once the inode has been tombstoned by `unlink`/`rmdir`
    /// (`nlink == 0`). Under the concurrent locking model this is set while
    /// the unlinker holds the inode's write lock, *before* its blocks are
    /// freed; data-path racers that acquire the lock afterwards check it and
    /// bail instead of resurrecting freed blocks.
    pub fn is_unlinked(&self) -> bool {
        self.nlink == 0
    }

    /// Encodes the hot lower half (64 bytes).
    pub fn encode_lower(&self) -> [u8; INODE_HALF] {
        let mut out = [0u8; INODE_HALF];
        out[0] = match self.file_type {
            FileType::File => KIND_FILE,
            FileType::Directory => KIND_DIR,
        };
        out[4..8].copy_from_slice(&self.nlink.to_le_bytes());
        out[8..16].copy_from_slice(&self.size.to_le_bytes());
        out[16..24].copy_from_slice(&self.mtime_ns.to_le_bytes());
        out[24..32].copy_from_slice(&self.blocks.to_le_bytes());
        for (i, e) in self.extents.extents().iter().take(2).enumerate() {
            let off = 32 + i * EXTENT_SIZE;
            out[off..off + EXTENT_SIZE].copy_from_slice(&e.encode());
        }
        out
    }

    /// Encodes the cold upper half (64 bytes).
    pub fn encode_upper(&self) -> [u8; INODE_HALF] {
        let mut out = [0u8; INODE_HALF];
        for (i, e) in self.extents.extents().iter().skip(2).take(INLINE_EXTENTS - 2).enumerate() {
            let off = i * EXTENT_SIZE;
            out[off..off + EXTENT_SIZE].copy_from_slice(&e.encode());
        }
        let off = (INLINE_EXTENTS - 2) * EXTENT_SIZE;
        out[off..off + 8].copy_from_slice(&self.overflow_lba.unwrap_or(0).to_le_bytes());
        out
    }

    /// Encodes the full 128-byte on-device inode.
    pub fn encode(&self) -> [u8; INODE_SIZE] {
        let mut out = [0u8; INODE_SIZE];
        out[..INODE_HALF].copy_from_slice(&self.encode_lower());
        out[INODE_HALF..].copy_from_slice(&self.encode_upper());
        out
    }

    /// Decodes an inode from its 128-byte on-device form. Returns `None` for a
    /// free (never allocated / deleted) slot. Extents stored in the overflow
    /// block must be added afterwards with [`Inode::load_overflow`].
    pub fn decode(ino: u64, raw: &[u8]) -> Option<Self> {
        debug_assert!(raw.len() >= INODE_SIZE);
        let file_type = match raw[0] {
            KIND_FILE => FileType::File,
            KIND_DIR => FileType::Directory,
            KIND_FREE => return None,
            _ => return None,
        };
        let nlink = u32::from_le_bytes(raw[4..8].try_into().expect("4 bytes"));
        let size = u64::from_le_bytes(raw[8..16].try_into().expect("8 bytes"));
        let mtime_ns = u64::from_le_bytes(raw[16..24].try_into().expect("8 bytes"));
        let blocks = u64::from_le_bytes(raw[24..32].try_into().expect("8 bytes"));
        let mut extents = Vec::new();
        for i in 0..2 {
            let off = 32 + i * EXTENT_SIZE;
            if let Some(e) = Extent::decode(&raw[off..off + EXTENT_SIZE]) {
                extents.push(e);
            }
        }
        for i in 0..(INLINE_EXTENTS - 2) {
            let off = INODE_HALF + i * EXTENT_SIZE;
            if let Some(e) = Extent::decode(&raw[off..off + EXTENT_SIZE]) {
                extents.push(e);
            }
        }
        let ov_off = INODE_HALF + (INLINE_EXTENTS - 2) * EXTENT_SIZE;
        let overflow = u64::from_le_bytes(raw[ov_off..ov_off + 8].try_into().expect("8 bytes"));
        Some(Self {
            ino,
            file_type,
            nlink,
            size,
            mtime_ns,
            blocks,
            extents: ExtentTree::from_extents(extents),
            overflow_lba: (overflow != 0).then_some(overflow),
        })
    }

    /// Serializes the extents that do not fit inline, for the overflow extent
    /// block. Returns `None` when everything fits inline.
    ///
    /// # Panics
    ///
    /// Panics if the file has more than `INLINE_EXTENTS + MAX_OVERFLOW_EXTENTS`
    /// extents (the simulation caps fragmentation rather than chaining
    /// overflow blocks).
    pub fn encode_overflow(&self) -> Option<Vec<u8>> {
        let overflow: Vec<&Extent> = self.extents.extents().iter().skip(INLINE_EXTENTS).collect();
        if overflow.is_empty() {
            return None;
        }
        assert!(
            overflow.len() <= MAX_OVERFLOW_EXTENTS,
            "file too fragmented: {} overflow extents",
            overflow.len()
        );
        let mut out = vec![0u8; overflow.len() * EXTENT_SIZE];
        for (i, e) in overflow.iter().enumerate() {
            out[i * EXTENT_SIZE..(i + 1) * EXTENT_SIZE].copy_from_slice(&e.encode());
        }
        Some(out)
    }

    /// Adds the extents decoded from the overflow extent block.
    pub fn load_overflow(&mut self, block: &[u8]) {
        let mut all: Vec<Extent> = self.extents.extents().to_vec();
        for chunk in block.chunks_exact(EXTENT_SIZE) {
            if let Some(e) = Extent::decode(chunk) {
                all.push(e);
            }
        }
        self.extents = ExtentTree::from_extents(all);
    }

    /// `true` when the extent tree no longer fits in the inline slots and an
    /// overflow block is required.
    pub fn needs_overflow(&self) -> bool {
        self.extents.len() > INLINE_EXTENTS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file_inode() -> Inode {
        let mut inode = Inode::new(7, FileType::File, 1_000);
        inode.size = 8192;
        inode.blocks = 2;
        inode.nlink = 1;
        inode.extents.insert(0, 500);
        inode.extents.insert(1, 501);
        inode
    }

    #[test]
    fn encode_decode_roundtrip() {
        let inode = file_inode();
        let raw = inode.encode();
        assert_eq!(raw.len(), INODE_SIZE);
        let back = Inode::decode(7, &raw).unwrap();
        assert_eq!(back, inode);
    }

    #[test]
    fn free_slot_decodes_to_none() {
        assert!(Inode::decode(1, &[0u8; INODE_SIZE]).is_none());
        let mut raw = [0u8; INODE_SIZE];
        raw[0] = 0xEE;
        assert!(Inode::decode(1, &raw).is_none());
    }

    #[test]
    fn directory_roundtrip() {
        let mut inode = Inode::new(1, FileType::Directory, 5);
        inode.nlink = 2;
        inode.extents.insert(0, 900);
        inode.blocks = 1;
        let back = Inode::decode(1, &inode.encode()).unwrap();
        assert!(back.is_dir());
        assert_eq!(back, inode);
    }

    #[test]
    fn hot_fields_live_in_the_lower_half() {
        let mut inode = file_inode();
        let lower_before = inode.encode_lower();
        let upper_before = inode.encode_upper();
        // A size/mtime update (the common case) must only change the lower half.
        inode.size += 4096;
        inode.mtime_ns += 10;
        assert_ne!(inode.encode_lower(), lower_before);
        assert_eq!(inode.encode_upper(), upper_before);
    }

    #[test]
    fn inline_extents_split_across_halves() {
        let mut inode = Inode::new(3, FileType::File, 0);
        // 4 non-mergeable extents: 2 in the lower half, 2 in the upper half.
        for i in 0..4u64 {
            inode.extents.insert(i * 10, 100 + i * 7);
        }
        assert!(!inode.needs_overflow());
        let back = Inode::decode(3, &inode.encode()).unwrap();
        assert_eq!(back.extents, inode.extents);
        assert_eq!(back.overflow_lba, None);
    }

    #[test]
    fn overflow_extents_roundtrip() {
        let mut inode = Inode::new(9, FileType::File, 0);
        for i in 0..10u64 {
            inode.extents.insert(i * 5, 1000 + i * 3);
        }
        assert!(inode.needs_overflow());
        inode.overflow_lba = Some(4242);
        let overflow = inode.encode_overflow().expect("overflow needed");
        assert_eq!(overflow.len(), 6 * EXTENT_SIZE);

        let mut back = Inode::decode(9, &inode.encode()).unwrap();
        assert_eq!(back.overflow_lba, Some(4242));
        assert_eq!(back.extents.len(), INLINE_EXTENTS);
        back.load_overflow(&overflow);
        assert_eq!(back.extents, inode.extents);
    }

    #[test]
    fn no_overflow_when_extents_fit_inline() {
        let inode = file_inode();
        assert!(inode.encode_overflow().is_none());
        assert!(!inode.needs_overflow());
    }
}
