//! Block and inode bitmap allocators.
//!
//! ByteFS tracks inode and data-block allocation with bitmaps, like Ext4.
//! Each bitmap block is divided into 64-byte groups — the basic unit of
//! persistence — so allocating or freeing touches only one cacheline on the
//! device, persisted over the byte interface (§4.5, Table 3: bitmap reads use
//! the block interface, writes the byte interface).
//!
//! The allocator itself lives in host memory (loaded at mount over the block
//! interface) and records which 64-byte groups have changed since the last
//! persistence point, so the file system knows exactly which cachelines to
//! write out in the next transaction.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::layout::DENTRY_SIZE;

/// Bits per 64-byte persistence group.
pub const BITS_PER_GROUP: u64 = (DENTRY_SIZE * 8) as u64;

/// An in-memory bitmap allocator with dirty-group tracking.
#[derive(Debug, Clone)]
pub struct BitmapAllocator {
    bits: Vec<u64>,
    total: u64,
    allocated: u64,
    hint: u64,
    dirty_groups: BTreeSet<u64>,
}

impl BitmapAllocator {
    /// Creates an allocator for `total` objects, all free.
    pub fn new(total: u64) -> Self {
        let words = (total as usize).div_ceil(64);
        Self { bits: vec![0; words], total, allocated: 0, hint: 0, dirty_groups: BTreeSet::new() }
    }

    /// Rebuilds an allocator from the raw bitmap bytes read from the device.
    /// Bits beyond `total` are ignored.
    pub fn from_bytes(raw: &[u8], total: u64) -> Self {
        let mut alloc = Self::new(total);
        for idx in 0..total {
            let byte = (idx / 8) as usize;
            if byte < raw.len() && raw[byte] & (1 << (idx % 8)) != 0 {
                alloc.set(idx);
            }
        }
        alloc.dirty_groups.clear();
        alloc
    }

    /// Serializes the whole bitmap into bytes (little-endian bit order within
    /// each byte), padded to a multiple of the group size.
    pub fn to_bytes(&self) -> Vec<u8> {
        let nbytes = ((self.total as usize).div_ceil(8)).div_ceil(DENTRY_SIZE) * DENTRY_SIZE;
        let mut out = vec![0u8; nbytes.max(DENTRY_SIZE)];
        for idx in 0..self.total {
            if self.is_allocated(idx) {
                out[(idx / 8) as usize] |= 1 << (idx % 8);
            }
        }
        out
    }

    /// Total number of objects tracked.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of currently allocated objects.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Number of free objects.
    pub fn free_count(&self) -> u64 {
        self.total - self.allocated
    }

    /// Whether object `idx` is allocated.
    pub fn is_allocated(&self, idx: u64) -> bool {
        debug_assert!(idx < self.total);
        self.bits[(idx / 64) as usize] & (1 << (idx % 64)) != 0
    }

    fn set(&mut self, idx: u64) {
        let word = (idx / 64) as usize;
        let mask = 1u64 << (idx % 64);
        if self.bits[word] & mask == 0 {
            self.bits[word] |= mask;
            self.allocated += 1;
            self.dirty_groups.insert(idx / BITS_PER_GROUP);
        }
    }

    fn clear(&mut self, idx: u64) {
        let word = (idx / 64) as usize;
        let mask = 1u64 << (idx % 64);
        if self.bits[word] & mask != 0 {
            self.bits[word] &= !mask;
            self.allocated -= 1;
            self.dirty_groups.insert(idx / BITS_PER_GROUP);
        }
    }

    /// Allocates one object, preferring the area after the most recent
    /// allocation (next-fit, which keeps file blocks roughly contiguous for
    /// extent-friendly allocation).
    pub fn allocate(&mut self) -> Option<u64> {
        if self.allocated >= self.total {
            return None;
        }
        let start = self.hint.min(self.total.saturating_sub(1));
        let mut idx = start;
        loop {
            if !self.is_allocated(idx) {
                self.set(idx);
                self.hint = (idx + 1) % self.total;
                return Some(idx);
            }
            idx = (idx + 1) % self.total;
            if idx == start {
                return None;
            }
        }
    }

    /// Allocates up to `count` objects, contiguous when possible.
    pub fn allocate_many(&mut self, count: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            match self.allocate() {
                Some(idx) => out.push(idx),
                None => break,
            }
        }
        out
    }

    /// Marks a specific object allocated (used for reserved objects such as
    /// the root inode). Returns `false` if it was already allocated.
    pub fn allocate_at(&mut self, idx: u64) -> bool {
        debug_assert!(idx < self.total);
        if self.is_allocated(idx) {
            return false;
        }
        self.set(idx);
        true
    }

    /// Frees an allocated object.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the object was not allocated (double free).
    pub fn free(&mut self, idx: u64) {
        debug_assert!(self.is_allocated(idx), "double free of {idx}");
        self.clear(idx);
    }

    /// The 64-byte group index an object belongs to.
    pub fn group_of(idx: u64) -> u64 {
        idx / BITS_PER_GROUP
    }

    /// Marks the group containing `idx` dirty without touching any bit
    /// (used by staged frees, which persist a cleared bit while keeping the
    /// in-memory bit set until the deferred TRIM completes).
    pub fn mark_group_dirty(&mut self, idx: u64) {
        self.dirty_groups.insert(idx / BITS_PER_GROUP);
    }

    /// Returns the current raw bytes of one 64-byte group (what the file
    /// system persists over the byte interface).
    pub fn group_bytes(&self, group: u64) -> [u8; DENTRY_SIZE] {
        let mut out = [0u8; DENTRY_SIZE];
        let first_bit = group * BITS_PER_GROUP;
        for bit in 0..BITS_PER_GROUP {
            let idx = first_bit + bit;
            if idx < self.total && self.is_allocated(idx) {
                out[(bit / 8) as usize] |= 1 << (bit % 8);
            }
        }
        out
    }

    /// Groups modified since the last [`BitmapAllocator::take_dirty_groups`],
    /// without clearing them.
    pub fn dirty_groups(&self) -> impl Iterator<Item = u64> + '_ {
        self.dirty_groups.iter().copied()
    }

    /// Returns and clears the set of modified groups.
    pub fn take_dirty_groups(&mut self) -> Vec<u64> {
        let out: Vec<u64> = self.dirty_groups.iter().copied().collect();
        self.dirty_groups.clear();
        out
    }
}

/// A thread-safe bitmap allocator with a mutex-free fast path for space
/// admission, mirroring the `AtomicTraffic` pattern of the device model.
///
/// The free-space count is mirrored in an [`AtomicU64`]: `allocate` first
/// *claims* one unit of free space with a compare-exchange loop — a full
/// volume is rejected without ever touching the bitmap mutex, and the
/// observability queries ([`SharedBitmap::free_count`],
/// [`SharedBitmap::allocated`]) are plain atomic loads. Only the short pick /
/// clear of the concrete bit index takes the inner mutex.
///
/// Invariant: the atomic counter never exceeds the bitmap's true free count
/// (claims decrement it *before* the bitmap is updated; frees increment it
/// *after*), so a successful claim guarantees the locked allocation succeeds.
#[derive(Debug)]
pub struct SharedBitmap {
    inner: Mutex<BitmapAllocator>,
    /// Staged frees: cleared on the *persisted* image, still allocated in
    /// memory (see [`SharedBitmap::free_staged`]). Lock order: `inner`
    /// before `staged`.
    staged: Mutex<std::collections::HashSet<u64>>,
    free: AtomicU64,
    total: u64,
}

impl SharedBitmap {
    /// Wraps an already-populated allocator.
    pub fn new(bitmap: BitmapAllocator) -> Self {
        let free = AtomicU64::new(bitmap.free_count());
        let total = bitmap.total();
        Self {
            inner: Mutex::new(bitmap),
            staged: Mutex::new(std::collections::HashSet::new()),
            free,
            total,
        }
    }

    /// Total number of objects tracked (immutable, lock-free).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of free objects (lock-free).
    pub fn free_count(&self) -> u64 {
        self.free.load(Ordering::Acquire)
    }

    /// Number of allocated objects (lock-free).
    pub fn allocated(&self) -> u64 {
        self.total.saturating_sub(self.free_count())
    }

    /// Whether object `idx` is allocated.
    pub fn is_allocated(&self, idx: u64) -> bool {
        self.inner.lock().is_allocated(idx)
    }

    /// Atomically claims one unit of free space from the mirrored counter.
    /// Returns `false` when the volume is full — without touching the mutex.
    fn claim_free_unit(&self) -> bool {
        let mut cur = self.free.load(Ordering::Acquire);
        loop {
            if cur == 0 {
                return false;
            }
            match self.free.compare_exchange_weak(cur, cur - 1, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }

    /// Allocates one object. The out-of-space check is a lock-free
    /// compare-exchange on the mirrored free counter; only the bit pick takes
    /// the mutex.
    pub fn allocate(&self) -> Option<u64> {
        if !self.claim_free_unit() {
            return None;
        }
        let idx = self.inner.lock().allocate().expect("free space was claimed atomically");
        Some(idx)
    }

    /// Marks a specific object allocated. Returns `false` if it already was
    /// (or if no free space could be claimed). The free counter is claimed
    /// *before* the bit is taken — preserving the `counter <= true free`
    /// invariant — and refunded if the object turns out to be taken already.
    pub fn allocate_at(&self, idx: u64) -> bool {
        if !self.claim_free_unit() {
            return false;
        }
        let taken = self.inner.lock().allocate_at(idx);
        if !taken {
            self.free.fetch_add(1, Ordering::AcqRel);
        }
        taken
    }

    /// Frees an allocated object.
    pub fn free(&self, idx: u64) {
        self.inner.lock().free(idx);
        self.free.fetch_add(1, Ordering::AcqRel);
    }

    /// Stages a free for a crash-ordered discard: the object's group is
    /// marked dirty and [`SharedBitmap::take_dirty_group_bytes`] masks the
    /// bit off the *persisted* image, while the in-memory bit (and the free
    /// counter) stay allocated — so no concurrent allocation can pick the
    /// block up — until [`SharedBitmap::release_staged`] runs after the
    /// transaction committed and the block was TRIMmed. The split keeps two
    /// invariants at once: a power cut before the commit rolls the free
    /// back (the persisted bits were transaction-tagged, and host memory is
    /// lost anyway), and a block can never be handed to a new owner while
    /// its deferred TRIM is still pending to destroy the new data.
    pub fn free_staged(&self, idx: u64) {
        let mut inner = self.inner.lock();
        debug_assert!(inner.is_allocated(idx), "staged free of unallocated {idx}");
        inner.mark_group_dirty(idx);
        self.staged.lock().insert(idx);
    }

    /// Completes staged frees after their transaction committed and the
    /// TRIMs were issued: clears the in-memory bits and returns the space
    /// to the allocatable pool (see [`SharedBitmap::free_staged`]).
    pub fn release_staged(&self, idxs: &[u64]) {
        if idxs.is_empty() {
            return;
        }
        let mut inner = self.inner.lock();
        let mut staged = self.staged.lock();
        for idx in idxs {
            assert!(staged.remove(idx), "releasing {idx} that was never staged");
            inner.free(*idx);
        }
        drop(staged);
        drop(inner);
        self.free.fetch_add(idxs.len() as u64, Ordering::AcqRel);
    }

    /// Returns and clears the dirty 64-byte groups together with their
    /// current raw bytes, atomically with respect to other allocations — what
    /// a transaction persists over the byte interface. Staged frees are
    /// masked off the bytes: the persisted image shows them freed while the
    /// in-memory allocator still withholds them (see
    /// [`SharedBitmap::free_staged`]).
    pub fn take_dirty_group_bytes(&self) -> Vec<(u64, [u8; DENTRY_SIZE])> {
        let mut inner = self.inner.lock();
        let staged = self.staged.lock();
        inner
            .take_dirty_groups()
            .into_iter()
            .map(|group| {
                let mut bytes = inner.group_bytes(group);
                for idx in staged.iter() {
                    if BitmapAllocator::group_of(*idx) == group {
                        let bit = idx % (DENTRY_SIZE as u64 * 8);
                        bytes[(bit / 8) as usize] &= !(1 << (bit % 8));
                    }
                }
                (group, bytes)
            })
            .collect()
    }

    /// Serializes the whole bitmap (mkfs/debugging).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.inner.lock().to_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_free() {
        let mut a = BitmapAllocator::new(100);
        assert_eq!(a.free_count(), 100);
        let x = a.allocate().unwrap();
        let y = a.allocate().unwrap();
        assert_ne!(x, y);
        assert_eq!(a.allocated(), 2);
        assert!(a.is_allocated(x));
        a.free(x);
        assert!(!a.is_allocated(x));
        assert_eq!(a.allocated(), 1);
    }

    #[test]
    fn never_double_allocates() {
        let mut a = BitmapAllocator::new(64);
        let mut seen = std::collections::HashSet::new();
        while let Some(idx) = a.allocate() {
            assert!(seen.insert(idx), "{idx} allocated twice");
        }
        assert_eq!(seen.len(), 64);
        assert_eq!(a.allocate(), None);
    }

    #[test]
    fn allocate_at_reserves_specific_objects() {
        let mut a = BitmapAllocator::new(16);
        assert!(a.allocate_at(1));
        assert!(!a.allocate_at(1));
        // Subsequent dynamic allocation skips the reserved slot.
        let mut got = Vec::new();
        while let Some(i) = a.allocate() {
            got.push(i);
        }
        assert!(!got.contains(&1));
        assert_eq!(got.len(), 15);
    }

    #[test]
    fn next_fit_tends_to_be_contiguous() {
        let mut a = BitmapAllocator::new(1000);
        let blocks = a.allocate_many(10);
        for pair in blocks.windows(2) {
            assert_eq!(pair[1], pair[0] + 1);
        }
    }

    #[test]
    fn dirty_groups_track_mutations() {
        let mut a = BitmapAllocator::new(2048);
        assert_eq!(a.dirty_groups().count(), 0);
        a.allocate_at(0);
        a.allocate_at(5);
        a.allocate_at(513); // second group
        let dirty = a.take_dirty_groups();
        assert_eq!(dirty, vec![0, 1]);
        assert_eq!(a.dirty_groups().count(), 0);
        a.free(5);
        assert_eq!(a.take_dirty_groups(), vec![0]);
    }

    #[test]
    fn group_bytes_reflect_allocation() {
        let mut a = BitmapAllocator::new(1024);
        a.allocate_at(0);
        a.allocate_at(9);
        let g = a.group_bytes(0);
        assert_eq!(g[0], 0b0000_0001);
        assert_eq!(g[1], 0b0000_0010);
        assert!(g[2..].iter().all(|b| *b == 0));
    }

    #[test]
    fn roundtrip_through_bytes() {
        let mut a = BitmapAllocator::new(777);
        for i in [0u64, 3, 64, 511, 512, 776] {
            a.allocate_at(i);
        }
        let bytes = a.to_bytes();
        assert_eq!(bytes.len() % DENTRY_SIZE, 0);
        let b = BitmapAllocator::from_bytes(&bytes, 777);
        assert_eq!(b.allocated(), a.allocated());
        for i in [0u64, 3, 64, 511, 512, 776] {
            assert!(b.is_allocated(i));
        }
        assert!(!b.is_allocated(1));
        assert_eq!(b.dirty_groups().count(), 0, "loading must not mark groups dirty");
    }

    #[test]
    fn shared_bitmap_mirrors_counts() {
        let s = SharedBitmap::new(BitmapAllocator::new(128));
        assert_eq!(s.total(), 128);
        assert_eq!(s.free_count(), 128);
        let a = s.allocate().unwrap();
        assert!(s.allocate_at(100));
        assert!(!s.allocate_at(100));
        assert_eq!(s.allocated(), 2);
        assert!(s.is_allocated(a) && s.is_allocated(100));
        s.free(a);
        assert_eq!(s.free_count(), 127);
        let dirty = s.take_dirty_group_bytes();
        assert_eq!(dirty.len(), 1, "128 bits fit one 64-byte group");
        assert!(s.take_dirty_group_bytes().is_empty(), "taking clears");
    }

    #[test]
    fn shared_bitmap_never_double_allocates_under_threads() {
        let s = std::sync::Arc::new(SharedBitmap::new(BitmapAllocator::new(1000)));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(idx) = s.allocate() {
                        got.push(idx);
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        assert_eq!(all.len(), 1000, "exactly the whole volume is handed out");
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 1000, "no index handed out twice");
        assert_eq!(s.free_count(), 0);
        assert_eq!(s.allocate(), None, "full volume rejected on the lock-free path");
    }

    #[test]
    fn staged_frees_are_unallocatable_until_released_but_persist_as_freed() {
        // Regression: a staged free must not be handed to a new owner while
        // its deferred TRIM is pending — only the *persisted* image shows
        // the bit cleared (inside the freeing transaction); the in-memory
        // allocator withholds the block until release_staged.
        let mut b = BitmapAllocator::new(3);
        for _ in 0..3 {
            b.allocate().unwrap();
        }
        let s = SharedBitmap::new(b);
        s.free(1);
        s.free_staged(0);
        assert_eq!(s.allocate(), Some(1), "only the truly freed block is allocatable");
        assert_eq!(s.allocate(), None, "the staged block must not be handed out");
        // The transaction persists the staged bit as cleared while the live
        // bits stay set.
        let groups = s.take_dirty_group_bytes();
        let (_, bytes) = groups.iter().find(|(g, _)| *g == 0).expect("group 0 dirty");
        assert_eq!(bytes[0] & 0b001, 0, "staged bit persisted as freed");
        assert_eq!(bytes[0] & 0b110, 0b110, "live bits persisted as allocated");
        s.release_staged(&[0]);
        assert_eq!(s.allocate(), Some(0), "released block is allocatable again");
    }

    #[test]
    #[should_panic(expected = "double free")]
    #[cfg(debug_assertions)]
    fn double_free_panics_in_debug() {
        let mut a = BitmapAllocator::new(8);
        let x = a.allocate().unwrap();
        a.free(x);
        a.free(x);
    }
}
