//! ByteFS's implementation of the [`CrashConsistent`] checker API: an
//! "fsck as a library" that crashkit runs after every remount of a restored
//! crash image.
//!
//! The walk starts at the root directory, follows every cached-or-loadable
//! dentry and cross-checks the three metadata structures that must agree for
//! the volume to be coherent:
//!
//! * **namespace ↔ inode table** — every dentry points at an allocated,
//!   decodable, live (`nlink > 0`) inode of the dentry's type;
//! * **inode table ↔ block bitmap** — every extent block (and overflow
//!   block) is inside the data region, marked allocated, and owned by
//!   exactly one inode; no extent maps a page beyond the file's EOF;
//! * **bitmaps ↔ reality** — the allocator totals equal exactly what the
//!   walk reached (leaked inodes/blocks and double frees both surface as a
//!   count mismatch).

use std::collections::HashMap;

use fskit::check::{CrashConsistent, Violation};
use fskit::FileType;

use crate::fs::ByteFs;
use crate::layout::ROOT_INO;

/// Checker name used in every [`Violation`] this module reports.
const CHECKER: &str = "bytefs-fsck";

impl ByteFs {
    /// Full structural verification (see the [module docs](self)). Exposed
    /// directly (besides the [`CrashConsistent`] impl) so tests can call it
    /// on a concrete `ByteFs` without a trait import.
    pub fn fsck(&self) -> Vec<Violation> {
        let mut v: Vec<Violation> = Vec::new();
        let mut ns = self.namespace.write();

        // Breadth-first namespace walk from the root.
        let mut queue = vec![ROOT_INO];
        let mut visited: HashMap<u64, FileType> = HashMap::new();
        visited.insert(ROOT_INO, FileType::Directory);
        // Directory inode -> number of subdirectories (for nlink checks).
        let mut subdirs: HashMap<u64, u32> = HashMap::new();
        while let Some(dir) = queue.pop() {
            if let Err(e) = self.load_dir(&mut ns, dir) {
                v.push(Violation::new(CHECKER, format!("directory {dir} unreadable: {e}")));
                continue;
            }
            let entries: Vec<(String, u64, FileType)> =
                ns.dirs[&dir].iter().map(|(name, e)| (name.clone(), e.ino, e.file_type)).collect();
            for (name, ino, ftype) in entries {
                if visited.insert(ino, ftype).is_some() {
                    v.push(Violation::new(
                        CHECKER,
                        format!("inode {ino} reachable via more than one dentry ({name})"),
                    ));
                    continue;
                }
                if ftype.is_dir() {
                    *subdirs.entry(dir).or_default() += 1;
                    queue.push(ino);
                }
            }
        }

        // Inode-level checks and block ownership.
        let mut block_owner: HashMap<u64, u64> = HashMap::new();
        let mut counted_blocks: u64 = 0;
        let page_size = self.layout.page_size as u64;
        for (&ino, &ftype) in &visited {
            if ino >= self.layout.inode_count {
                v.push(Violation::new(CHECKER, format!("inode {ino} out of table range")));
                continue;
            }
            if !self.inode_bitmap.is_allocated(ino) {
                v.push(Violation::new(
                    CHECKER,
                    format!("inode {ino} reachable but free in the inode bitmap"),
                ));
            }
            let handle = match self.inode_handle(ino) {
                Ok(h) => h,
                Err(e) => {
                    v.push(Violation::new(CHECKER, format!("inode {ino} unloadable: {e}")));
                    continue;
                }
            };
            let inode = handle.read();
            if inode.is_unlinked() {
                v.push(Violation::new(
                    CHECKER,
                    format!("inode {ino} reachable but tombstoned (nlink == 0)"),
                ));
            }
            if inode.is_dir() != ftype.is_dir() {
                v.push(Violation::new(
                    CHECKER,
                    format!("inode {ino}: dentry type {ftype:?} disagrees with inode"),
                ));
            }
            if inode.is_dir() {
                let expected = 2 + subdirs.get(&ino).copied().unwrap_or(0);
                if inode.nlink != expected {
                    v.push(Violation::new(
                        CHECKER,
                        format!(
                            "directory {ino}: nlink {} but {} expected ({} subdirs)",
                            inode.nlink,
                            expected,
                            expected - 2
                        ),
                    ));
                }
            }
            let eof_pages = inode.size.div_ceil(page_size);
            let mut owned: Vec<u64> = inode.extents.iter_blocks().map(|(_, lba)| lba).collect();
            for (file_block, lba) in inode.extents.iter_blocks() {
                // Directories size their dentry area lazily; only regular
                // files must not map blocks beyond EOF.
                if !inode.is_dir() && file_block >= eof_pages {
                    v.push(Violation::new(
                        CHECKER,
                        format!(
                            "inode {ino}: block {lba} mapped at file page {file_block} beyond \
                             EOF ({eof_pages} pages)"
                        ),
                    ));
                }
            }
            owned.extend(inode.overflow_lba);
            for lba in owned {
                counted_blocks += 1;
                if lba < self.layout.data_start || lba >= self.layout.total_pages {
                    v.push(Violation::new(
                        CHECKER,
                        format!("inode {ino}: block {lba} outside the data region"),
                    ));
                    continue;
                }
                if !self.block_bitmap.is_allocated(lba) {
                    v.push(Violation::new(
                        CHECKER,
                        format!("inode {ino}: block {lba} in use but free in the block bitmap"),
                    ));
                }
                if let Some(prev) = block_owner.insert(lba, ino) {
                    v.push(Violation::new(
                        CHECKER,
                        format!("block {lba} owned by both inode {prev} and inode {ino}"),
                    ));
                }
            }
        }

        // Allocator totals: exactly the reachable objects, nothing more.
        // Inode 0 is permanently reserved; every metadata page below
        // `data_start` is permanently reserved in the block bitmap.
        let expected_inodes = visited.len() as u64 + 1;
        if self.inode_bitmap.allocated() != expected_inodes {
            v.push(Violation::new(
                CHECKER,
                format!(
                    "inode bitmap says {} allocated, namespace reaches {} (+1 reserved): \
                     leaked or lost inodes",
                    self.inode_bitmap.allocated(),
                    visited.len()
                ),
            ));
        }
        let expected_blocks = self.layout.data_start + counted_blocks;
        if self.block_bitmap.allocated() != expected_blocks {
            v.push(Violation::new(
                CHECKER,
                format!(
                    "block bitmap says {} allocated, walk accounts for {} \
                     ({} metadata + {} owned): leaked or lost blocks",
                    self.block_bitmap.allocated(),
                    expected_blocks,
                    self.layout.data_start,
                    counted_blocks
                ),
            ));
        }

        // The device's own FTL invariants ride along: a mapping that points
        // at a never-programmed page would surface here.
        for problem in self.device.check_consistency() {
            v.push(Violation::new("mssd-ftl", problem));
        }
        v
    }
}

impl CrashConsistent for ByteFs {
    fn check_invariants(&self) -> Vec<Violation> {
        self.fsck()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ByteFsConfig;
    use fskit::{FileSystem, FileSystemExt};
    use mssd::{DramMode, Mssd, MssdConfig};
    use std::sync::Arc;

    fn fresh() -> Arc<ByteFs> {
        let dev = Mssd::new(MssdConfig::small_test(), DramMode::WriteLog);
        ByteFs::format(dev, ByteFsConfig::full()).unwrap()
    }

    #[test]
    fn fresh_volume_is_clean() {
        let fs = fresh();
        assert_eq!(fs.fsck(), Vec::new());
    }

    #[test]
    fn populated_volume_is_clean() {
        let fs = fresh();
        fs.mkdir("/a").unwrap();
        fs.mkdir("/a/b").unwrap();
        for i in 0..10 {
            fs.write_file(&format!("/a/f{i}"), &vec![i as u8; 5000]).unwrap();
        }
        fs.rename("/a/f0", "/a/b/moved").unwrap();
        fs.unlink("/a/f1").unwrap();
        fs.sync().unwrap();
        assert_eq!(fs.fsck(), Vec::new());
    }

    #[test]
    fn corruption_is_detected() {
        let fs = fresh();
        fs.write_file("/x", &vec![7u8; 9000]).unwrap();
        // Sabotage: free one of the file's data blocks behind the fs's back.
        let ino = fs.stat("/x").unwrap().inode;
        let lba = {
            let handle = fs.inode_handle(ino).unwrap();
            let lba = handle.read().extents.iter_blocks().next().unwrap().1;
            lba
        };
        fs.block_bitmap.free(lba);
        let problems = fs.fsck();
        assert!(
            problems.iter().any(|p| p.detail.contains("free in the block bitmap")),
            "fsck must flag the freed in-use block: {problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.detail.contains("leaked or lost blocks")),
            "fsck must flag the allocator mismatch: {problems:?}"
        );
    }
}
