//! The ByteFS data path: buffered and direct reads/writes, writeback with
//! interface selection (§4.6), `fsync`, truncate and whole-FS sync.
//!
//! Every function here operates on an [`Inode`] the caller has already locked
//! through its [`InodeHandle`](crate::fs::InodeHandle): shared for reads,
//! exclusive for writes. No function in this module touches the namespace
//! lock, which is what lets data I/O on different files run fully in
//! parallel (see the [concurrency model](crate::fs)).

use fskit::journal::JournaledBlock;
use fskit::pagecache::{DirtyPage, PageRef};
use fskit::{FsError, FsResult};
use mssd::Category;

use crate::fs::{ByteFs, OpenFile};
use crate::inode::Inode;
use crate::policy::InterfaceChoice;
use crate::txn::Txn;

/// XOR-diff chunk granularity (one cacheline).
const CHUNK: usize = 64;

impl ByteFs {
    /// Ensures file block `file_block` of the locked inode has a device block
    /// allocated, returning its LBA.
    pub(crate) fn ensure_block(&self, inode: &mut Inode, file_block: u64) -> FsResult<u64> {
        if let Some(lba) = inode.extents.lookup(file_block) {
            return Ok(lba);
        }
        let lba = self.alloc_block()?;
        inode.extents.insert(file_block, lba);
        inode.blocks += 1;
        self.mark_dirty(inode.ino);
        Ok(lba)
    }

    /// Reads one page of a file into the host page cache (block interface on a
    /// miss; holes materialize as zero pages) and returns a zero-copy handle
    /// to its contents.
    fn page_for_read(&self, inode: &Inode, index: u64) -> FsResult<PageRef> {
        if let Some(page) = self.page_cache.get(inode.ino, index) {
            return Ok(page);
        }
        let page_size = self.layout.page_size;
        match inode.extents.lookup(index) {
            Some(lba) => {
                let page = PageRef::from(self.device.try_block_read(lba, 1, Category::Data)?);
                self.page_cache.insert_clean(inode.ino, index, page.clone());
                Ok(page)
            }
            None => Ok(PageRef::zeroed(page_size)),
        }
    }

    /// Buffered or direct read, depending on the open flags. The caller holds
    /// the inode lock (shared).
    pub(crate) fn do_read(
        &self,
        inode: &Inode,
        of: OpenFile,
        offset: u64,
        len: usize,
    ) -> FsResult<Vec<u8>> {
        if offset >= inode.size {
            return Ok(Vec::new());
        }
        let len = len.min((inode.size - offset) as usize);
        if of.flags.direct {
            return self.direct_read(inode, offset, len);
        }
        let page_size = self.layout.page_size as u64;
        let mut out = Vec::with_capacity(len);
        let mut pos = offset;
        let end = offset + len as u64;
        while pos < end {
            let index = pos / page_size;
            let in_page = (pos % page_size) as usize;
            let span = ((page_size as usize) - in_page).min((end - pos) as usize);
            let page = self.page_for_read(inode, index)?;
            out.extend_from_slice(&page[in_page..in_page + span]);
            pos += span as u64;
        }
        Ok(out)
    }

    /// Direct (`O_DIRECT`) read: bypasses the host page cache; requests of at
    /// most 512 bytes use the byte interface, larger ones the block interface.
    fn direct_read(&self, inode: &Inode, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        let page_size = self.layout.page_size as u64;
        let choice = self.config.direct_io_choice(len);
        let mut out = Vec::with_capacity(len);
        let mut pos = offset;
        let end = offset + len as u64;
        while pos < end {
            let index = pos / page_size;
            let in_page = (pos % page_size) as usize;
            let span = ((page_size as usize) - in_page).min((end - pos) as usize);
            match inode.extents.lookup(index) {
                Some(lba) => match choice {
                    InterfaceChoice::Byte => {
                        let addr = lba * page_size + in_page as u64;
                        out.extend_from_slice(&self.device.try_byte_read(
                            addr,
                            span,
                            Category::Data,
                        )?);
                    }
                    InterfaceChoice::Block => {
                        let page = self.device.try_block_read(lba, 1, Category::Data)?;
                        out.extend_from_slice(&page[in_page..in_page + span]);
                    }
                },
                None => out.extend(std::iter::repeat_n(0u8, span)),
            }
            pos += span as u64;
        }
        Ok(out)
    }

    /// Buffered or direct write, depending on the open flags. The caller holds
    /// the inode lock (exclusive) and has already resolved `O_APPEND`.
    pub(crate) fn do_write(
        &self,
        inode: &mut Inode,
        of: OpenFile,
        offset: u64,
        data: &[u8],
    ) -> FsResult<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        if of.flags.direct {
            return self.direct_write(inode, offset, data);
        }
        let ino = inode.ino;
        let page_size = self.layout.page_size as u64;
        let mut pos = offset;
        let end = offset + data.len() as u64;
        while pos < end {
            let index = pos / page_size;
            let in_page = (pos % page_size) as usize;
            let span = ((page_size as usize) - in_page).min((end - pos) as usize);
            let chunk = &data[(pos - offset) as usize..(pos - offset) as usize + span];
            if in_page == 0 && span == page_size as usize {
                // Whole-page write: overwrite-or-install in one shard-lock
                // hold, so a concurrent eviction (another inode sharing the
                // shard) can never make the write land nowhere.
                self.page_cache.write_full_page(ino, index, chunk.to_vec());
            } else if !self.page_cache.write(ino, index, in_page, chunk) {
                // Partial write to a non-resident page: read-modify-write.
                // Nobody else can touch this inode's pages while we hold its
                // write lock, so the base read here cannot go stale before
                // the single-lock-hold install-and-write below.
                let base = self.page_for_read(inode, index)?;
                self.page_cache.write_with_fallback(ino, index, in_page, chunk, base);
            }
            pos += span as u64;
        }
        let now = self.now_ns();
        inode.size = inode.size.max(end);
        inode.mtime_ns = now;
        self.mark_dirty(ino);
        Ok(data.len())
    }

    /// Direct (`O_DIRECT`) write: persists immediately, choosing the interface
    /// by request size (§4.6), and commits the metadata transaction.
    fn direct_write(&self, inode: &mut Inode, offset: u64, data: &[u8]) -> FsResult<usize> {
        let ino = inode.ino;
        let page_size = self.layout.page_size as u64;
        let choice = self.config.direct_io_choice(data.len());
        let mut txn = self.begin_txn();
        let mut pos = offset;
        let end = offset + data.len() as u64;
        while pos < end {
            let index = pos / page_size;
            let in_page = (pos % page_size) as usize;
            let span = ((page_size as usize) - in_page).min((end - pos) as usize);
            let chunk = &data[(pos - offset) as usize..(pos - offset) as usize + span];
            let lba = self.ensure_block(inode, index)?;
            match choice {
                InterfaceChoice::Byte => {
                    txn.write(lba * page_size + in_page as u64, chunk, Category::Data)?;
                }
                InterfaceChoice::Block => {
                    let page = if in_page == 0 && span == page_size as usize {
                        chunk.to_vec()
                    } else {
                        let mut page = self.device.try_block_read(lba, 1, Category::Data)?;
                        page[in_page..in_page + span].copy_from_slice(chunk);
                        page
                    };
                    self.device.try_block_write(lba, &page, Category::Data)?;
                }
            }
            // Keep any cached copy coherent (single call: residency is
            // checked and the write applied under one shard-lock hold; a
            // non-resident page needs no update).
            self.page_cache.write(ino, index, in_page, chunk);
            pos += span as u64;
        }
        let now = self.now_ns();
        inode.size = inode.size.max(end);
        inode.mtime_ns = now;
        self.persist_extents(&mut txn, inode)?;
        self.persist_inode(&mut txn, inode)?;
        self.persist_bitmaps(&mut txn)?;
        self.commit_txn(txn);
        self.dirty_inodes.lock().remove(&ino);
        Ok(data.len())
    }

    /// Persists the extent tree: inline extents travel with the inode; the
    /// overflow extents (if any) are written to the overflow extent block over
    /// the byte interface ([`Category::DataPointer`]).
    fn persist_extents(&self, txn: &mut Txn, inode: &mut Inode) -> FsResult<()> {
        if !inode.needs_overflow() {
            return Ok(());
        }
        let lba = match inode.overflow_lba {
            Some(lba) => lba,
            None => {
                let lba = self.alloc_block()?;
                inode.overflow_lba = Some(lba);
                inode.blocks += 1;
                lba
            }
        };
        let bytes = inode.encode_overflow().expect("needs_overflow checked");
        let addr = lba * self.layout.page_size as u64;
        self.persist_meta(txn, addr, &bytes, Category::DataPointer)?;
        Ok(())
    }

    /// Writes back one inode's dirty pages and metadata in a transaction
    /// (shared by `fsync` and `sync`). The caller holds the inode lock
    /// (exclusive).
    fn writeback_inode(&self, inode: &mut Inode, dirty_pages: Vec<DirtyPage>) -> FsResult<()> {
        let ino = inode.ino;
        let meta_dirty = self.dirty_inodes.lock().remove(&ino);
        if dirty_pages.is_empty() && !meta_dirty {
            return Ok(());
        }
        let page_size = self.layout.page_size as u64;
        let mut txn = self.begin_txn();

        for dp in &dirty_pages {
            let lba = self.ensure_block(inode, dp.index)?;
            let ratio = dp.modified_ratio(CHUNK);
            match self.config.writeback_choice(ratio) {
                InterfaceChoice::Byte => {
                    for (off, len) in dp.dirty_ranges(CHUNK) {
                        txn.write(
                            lba * page_size + off as u64,
                            &dp.data[off..off + len],
                            Category::Data,
                        )?;
                    }
                }
                InterfaceChoice::Block => {
                    if let Some(journal) = &self.journal {
                        journal.lock().commit(
                            &[JournaledBlock {
                                lba,
                                data: dp.data.to_vec(),
                                category: Category::Data,
                            }],
                            true,
                        )?;
                        continue;
                    }
                    self.device.try_block_write(lba, &dp.data, Category::Data)?;
                }
            }
        }
        // ensure_block may have re-marked the inode dirty after the early
        // removal; drop the flag again so it is not persisted twice.
        self.dirty_inodes.lock().remove(&ino);

        self.persist_extents(&mut txn, inode)?;
        self.persist_inode(&mut txn, inode)?;
        self.persist_bitmaps(&mut txn)?;
        self.commit_txn(txn);
        Ok(())
    }

    /// `fsync`: write back this inode's dirty pages and metadata. The caller
    /// holds the inode lock (exclusive).
    pub(crate) fn do_fsync(&self, inode: &mut Inode) -> FsResult<()> {
        let dirty = self.page_cache.take_dirty(inode.ino);
        self.writeback_inode(inode, dirty)
    }

    /// Truncates (or extends) a file, freeing blocks beyond the new size. The
    /// caller holds the inode lock (exclusive).
    pub(crate) fn do_truncate(&self, inode: &mut Inode, size: u64) -> FsResult<()> {
        if inode.is_dir() {
            return Err(FsError::IsADirectory(format!("inode {}", inode.ino)));
        }
        let ino = inode.ino;
        let page_size = self.layout.page_size as u64;
        let new_blocks = size.div_ceil(page_size);
        let now = self.now_ns();

        let shrinking = size < inode.size;
        let freed = if shrinking { inode.extents.truncate(new_blocks) } else { Vec::new() };
        inode.blocks = inode.blocks.saturating_sub(freed.len() as u64);
        inode.size = size;
        inode.mtime_ns = now;
        // Stage the frees: the cleared bitmap bits persist inside the
        // transaction below, while the TRIMs wait until after its commit —
        // a power cut at the commit step must roll the truncate back with
        // the tail data intact (see `ByteFs::discard_staged_blocks`).
        for lba in &freed {
            self.block_bitmap.free_staged(*lba);
        }
        self.page_cache.invalidate_from(ino, new_blocks);
        // Zero the tail of the last partial page so stale bytes beyond the new
        // EOF can never resurface if the file grows again later.
        let tail_off = (size % page_size) as usize;
        if shrinking && tail_off != 0 {
            let last = size / page_size;
            if inode.extents.lookup(last).is_some() || self.page_cache.contains(ino, last) {
                let base = self.page_for_read(inode, last)?;
                let zeros = vec![0u8; self.layout.page_size - tail_off];
                // Single-lock-hold install-and-write: the zeroing must stick
                // even if a concurrent insertion evicts the page in between.
                self.page_cache.write_with_fallback(ino, last, tail_off, &zeros, base);
            }
        }

        let mut txn = self.begin_txn();
        self.persist_inode(&mut txn, inode)?;
        self.persist_bitmaps(&mut txn)?;
        self.commit_txn(txn);
        self.discard_staged_blocks(&freed);
        self.dirty_inodes.lock().remove(&ino);
        Ok(())
    }

    /// Whole-file-system sync: write back every dirty page and inode, taking
    /// each inode's lock in turn (ascending inode order — no two inode locks
    /// are ever held together).
    pub(crate) fn do_sync(&self) -> FsResult<()> {
        let mut inos = self.page_cache.dirty_inodes();
        inos.extend(self.dirty_inodes.lock().iter().copied());
        for ino in inos {
            // Load through the inode table: a live inode whose handle was
            // evicted (drop_caches) but whose dirty pages survived must be
            // re-read from the device, not have its pages discarded.
            let handle = match self.inode_handle(ino) {
                Ok(handle) => handle,
                Err(FsError::NotFound(_)) => {
                    // Truly unlinked: nothing durable remains to write back.
                    self.page_cache.invalidate_inode(ino);
                    self.dirty_inodes.lock().remove(&ino);
                    continue;
                }
                Err(e) => return Err(e),
            };
            let mut inode = handle.write();
            if inode.is_unlinked() {
                continue;
            }
            let dirty = self.page_cache.take_dirty(ino);
            self.writeback_inode(&mut inode, dirty)?;
        }
        Ok(())
    }
}
#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use fskit::{FileSystem, FileSystemExt, FsError, OpenFlags};
    use mssd::stats::Direction;
    use mssd::{Category, DramMode, Interface, Mssd, MssdConfig};

    use crate::policy::ByteFsConfig;
    use crate::ByteFs;

    fn new_fs() -> (Arc<Mssd>, Arc<ByteFs>) {
        let dev = Mssd::new(MssdConfig::small_test(), DramMode::WriteLog);
        let fs = ByteFs::format(Arc::clone(&dev), ByteFsConfig::full()).unwrap();
        (dev, fs)
    }

    #[test]
    fn create_write_read_roundtrip() {
        let (_dev, fs) = new_fs();
        let fd = fs.create("/a.txt").unwrap();
        assert_eq!(fs.write(fd, 0, b"hello world").unwrap(), 11);
        assert_eq!(fs.read(fd, 0, 11).unwrap(), b"hello world");
        assert_eq!(fs.read(fd, 6, 100).unwrap(), b"world");
        assert_eq!(fs.read(fd, 100, 10).unwrap(), b"");
        fs.fsync(fd).unwrap();
        assert_eq!(fs.stat("/a.txt").unwrap().size, 11);
        fs.close(fd).unwrap();
        assert!(matches!(fs.read(fd, 0, 1), Err(FsError::BadDescriptor(_))));
    }

    #[test]
    fn large_file_spans_many_pages() {
        let (_dev, fs) = new_fs();
        let data: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
        fs.write_file("/big.bin", &data).unwrap();
        assert_eq!(fs.read_file("/big.bin").unwrap(), data);
        let meta = fs.stat("/big.bin").unwrap();
        assert_eq!(meta.size, 40_000);
        assert!(meta.blocks >= 10);
    }

    #[test]
    fn overwrite_in_the_middle_of_a_file() {
        let (_dev, fs) = new_fs();
        fs.write_file("/f", &vec![1u8; 10_000]).unwrap();
        let fd = fs.open("/f", OpenFlags::read_write()).unwrap();
        fs.write(fd, 5_000, &[9u8; 100]).unwrap();
        fs.fsync(fd).unwrap();
        let back = fs.read_file("/f").unwrap();
        assert_eq!(back.len(), 10_000);
        assert_eq!(&back[4_999..5_001], &[1, 9]);
        assert_eq!(&back[5_000..5_100], &[9u8; 100][..]);
        assert_eq!(back[5_100], 1);
    }

    #[test]
    fn directories_and_lookup() {
        let (_dev, fs) = new_fs();
        fs.mkdir("/dir").unwrap();
        fs.mkdir("/dir/sub").unwrap();
        fs.write_file("/dir/sub/f", b"x").unwrap();
        assert!(fs.exists("/dir/sub/f"));
        assert!(fs.stat("/dir").unwrap().is_dir());
        let entries = fs.readdir("/dir").unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "sub");
        assert!(matches!(fs.mkdir("/dir"), Err(FsError::AlreadyExists(_))));
        assert!(matches!(fs.mkdir("/missing/sub"), Err(FsError::NotFound(_))));
        assert!(matches!(fs.rmdir("/dir"), Err(FsError::DirectoryNotEmpty(_))));
        fs.unlink("/dir/sub/f").unwrap();
        fs.rmdir("/dir/sub").unwrap();
        fs.rmdir("/dir").unwrap();
        assert!(!fs.exists("/dir"));
    }

    #[test]
    fn unlink_frees_blocks_for_reuse() {
        let (_dev, fs) = new_fs();
        // Ensure the root directory already has its dentry block allocated so
        // the before/after comparison only sees the file's own blocks.
        fs.write_file("/keeper", b"k").unwrap();
        let before = fs.allocated_blocks();
        fs.write_file("/victim", &vec![7u8; 20_000]).unwrap();
        fs.unlink("/victim").unwrap();
        assert!(!fs.exists("/victim"));
        let after = fs.allocated_blocks();
        assert_eq!(before, after, "all blocks of the unlinked file are freed");
    }

    #[test]
    fn rename_moves_entries_between_directories() {
        let (_dev, fs) = new_fs();
        fs.mkdir("/a").unwrap();
        fs.mkdir("/b").unwrap();
        fs.write_file("/a/f", b"payload").unwrap();
        fs.rename("/a/f", "/b/g").unwrap();
        assert!(!fs.exists("/a/f"));
        assert_eq!(fs.read_file("/b/g").unwrap(), b"payload");
        assert!(matches!(fs.rename("/a/f", "/b/h"), Err(FsError::NotFound(_))));
        fs.write_file("/a/f2", b"x").unwrap();
        assert!(matches!(fs.rename("/a/f2", "/b/g"), Err(FsError::AlreadyExists(_))));
    }

    #[test]
    fn truncate_shrinks_and_extends() {
        let (_dev, fs) = new_fs();
        fs.write_file("/t", &vec![5u8; 9_000]).unwrap();
        let fd = fs.open("/t", OpenFlags::read_write()).unwrap();
        fs.truncate(fd, 4_000).unwrap();
        assert_eq!(fs.fstat(fd).unwrap().size, 4_000);
        assert_eq!(fs.read(fd, 0, 10_000).unwrap().len(), 4_000);
        fs.truncate(fd, 8_192).unwrap();
        let data = fs.read(fd, 0, 10_000).unwrap();
        assert_eq!(data.len(), 8_192);
        assert_eq!(&data[..4_000], &vec![5u8; 4_000][..]);
        assert!(data[4_096..].iter().all(|b| *b == 0), "extended region reads as zeros");
    }

    #[test]
    fn truncate_tail_zeroing_survives_drop_caches_and_sync() {
        // Regression test: after a shrinking truncate the zeroed tail page
        // sits dirty in the page cache while the inode is no longer in the
        // dirty-metadata set. Dropping caches and syncing must write that
        // page back — not orphan or discard it — or the stale pre-truncate
        // bytes resurface from the device block when the file grows again.
        let (_dev, fs) = new_fs();
        fs.write_file("/t", &vec![5u8; 9_000]).unwrap();
        let fd = fs.open("/t", OpenFlags::read_write()).unwrap();
        fs.truncate(fd, 4_000).unwrap();
        fs.close(fd).unwrap();
        fs.drop_caches();
        fs.sync().unwrap();
        let fd = fs.open("/t", OpenFlags::read_write()).unwrap();
        fs.truncate(fd, 8_192).unwrap();
        fs.drop_caches(); // force the next read to come from the device
        let data = fs.read(fd, 0, 10_000).unwrap();
        assert_eq!(data.len(), 8_192);
        assert!(
            data[4_000..4_096].iter().all(|b| *b == 0),
            "stale pre-truncate bytes resurfaced past the old EOF"
        );
    }

    #[test]
    fn append_flag_appends() {
        let (_dev, fs) = new_fs();
        fs.write_file("/log", b"first|").unwrap();
        let fd = fs.open("/log", OpenFlags::read_write().with_append()).unwrap();
        fs.write(fd, 0, b"second").unwrap();
        fs.fsync(fd).unwrap();
        assert_eq!(fs.read_file("/log").unwrap(), b"first|second");
    }

    #[test]
    fn small_fsync_uses_byte_interface_for_data() {
        let (dev, fs) = new_fs();
        fs.write_file("/warm", &vec![3u8; 8_192]).unwrap();
        let before = dev.traffic();
        // Dirty a single cacheline and fsync: modified ratio 1/64 < 1/8.
        let fd = fs.open("/warm", OpenFlags::read_write()).unwrap();
        fs.write(fd, 128, &[9u8; 64]).unwrap();
        fs.fsync(fd).unwrap();
        let delta = dev.traffic().delta_since(&before);
        let byte_data = delta.host_bytes_by_interface(Direction::Write, Interface::Byte);
        let block_data = delta.host_bytes_by_category(Direction::Write, Category::Data);
        assert!(byte_data > 0, "byte interface should carry the small update");
        assert!(block_data < 4096, "no full-page data write for a 64 B update");
    }

    #[test]
    fn heavily_modified_page_uses_block_interface() {
        let (dev, fs) = new_fs();
        fs.write_file("/cold", &vec![1u8; 4_096]).unwrap();
        let before = dev.traffic();
        let fd = fs.open("/cold", OpenFlags::read_write()).unwrap();
        fs.write(fd, 0, &vec![2u8; 4_096]).unwrap();
        fs.fsync(fd).unwrap();
        let delta = dev.traffic().delta_since(&before);
        let block_data = delta.host_bytes_by_interface(Direction::Write, Interface::Block);
        assert!(block_data >= 4_096, "fully rewritten page goes through the block interface");
    }

    #[test]
    fn direct_io_small_writes_use_byte_interface() {
        let (dev, fs) = new_fs();
        let fd = fs.open("/direct", OpenFlags::create_rw().with_direct()).unwrap();
        let before = dev.traffic();
        fs.write(fd, 0, &[7u8; 256]).unwrap();
        let delta = dev.traffic().delta_since(&before);
        assert_eq!(
            delta.host_bytes_by_category(Direction::Write, Category::Data),
            256,
            "direct small write is persisted byte-granularly"
        );
        assert_eq!(fs.read(fd, 0, 256).unwrap(), vec![7u8; 256]);

        // A large direct write goes through the block interface.
        let before = dev.traffic();
        fs.write(fd, 4096, &vec![8u8; 8_192]).unwrap();
        let delta = dev.traffic().delta_since(&before);
        assert!(
            delta.host_bytes_by_interface(Direction::Write, Interface::Block) >= 8_192,
            "large direct write uses block interface"
        );
        assert_eq!(fs.read(fd, 4096, 8_192).unwrap(), vec![8u8; 8_192]);
    }

    #[test]
    fn metadata_updates_travel_over_the_byte_interface() {
        let (dev, fs) = new_fs();
        let before = dev.traffic();
        fs.write_file("/meta_probe", b"z").unwrap();
        let delta = dev.traffic().delta_since(&before);
        for cat in [Category::Inode, Category::Dentry, Category::Bitmap] {
            let byte = delta.host_bytes_by_category(Direction::Write, cat);
            assert!(byte > 0, "{cat} should have byte-interface write traffic");
        }
        // No metadata category should have written a whole 4 KB block.
        let block_meta: u64 = [Category::Inode, Category::Dentry, Category::Bitmap]
            .iter()
            .map(|c| delta.host_bytes_by_category(Direction::Write, *c))
            .sum();
        assert!(block_meta < 4096, "metadata writes stay byte-granular, got {block_meta}");
    }

    #[test]
    fn data_survives_unmount_and_remount() {
        let (dev, fs) = new_fs();
        fs.mkdir("/persist").unwrap();
        fs.write_file("/persist/file", &vec![0xABu8; 10_000]).unwrap();
        fs.unmount().unwrap();
        drop(fs);

        let fs2 = ByteFs::mount(Arc::clone(&dev), ByteFsConfig::full()).unwrap();
        assert_eq!(fs2.read_file("/persist/file").unwrap(), vec![0xABu8; 10_000]);
        let meta = fs2.stat("/persist/file").unwrap();
        assert_eq!(meta.size, 10_000);
        assert!(fs2.stat("/persist").unwrap().is_dir());
    }

    #[test]
    fn committed_operations_survive_a_crash() {
        let (dev, fs) = new_fs();
        fs.mkdir("/d").unwrap();
        fs.write_file("/d/durable", &vec![0x55u8; 5_000]).unwrap();
        // A buffered write that is *not* fsynced may be lost.
        let fd = fs.open("/d/durable", OpenFlags::read_write()).unwrap();
        fs.write(fd, 0, &[0xFFu8; 64]).unwrap();
        // Crash without unmounting: host state vanishes, device survives.
        drop(fs);
        dev.crash();

        let fs2 = ByteFs::mount(Arc::clone(&dev), ByteFsConfig::full()).unwrap();
        let data = fs2.read_file("/d/durable").unwrap();
        assert_eq!(data.len(), 5_000);
        assert_eq!(&data[64..], &vec![0x55u8; 5_000 - 64][..]);
        assert!(fs2.exists("/d"));
    }

    #[test]
    fn ablation_variants_mount_and_work() {
        for (config, mode) in [
            (ByteFsConfig::dual_only(), DramMode::PageCache),
            (ByteFsConfig::dual_plus_log(), DramMode::WriteLog),
            (ByteFsConfig::full(), DramMode::WriteLog),
        ] {
            let dev = Mssd::new(MssdConfig::small_test(), mode);
            let fs = ByteFs::format(Arc::clone(&dev), config.clone()).unwrap();
            fs.mkdir("/w").unwrap();
            fs.write_file("/w/f", &vec![1u8; 6_000]).unwrap();
            assert_eq!(fs.read_file("/w/f").unwrap().len(), 6_000);
            fs.unlink("/w/f").unwrap();
            fs.unmount().unwrap();
        }
        // Config/device mismatch is rejected.
        let dev = Mssd::new(MssdConfig::small_test(), DramMode::PageCache);
        assert!(ByteFs::format(dev, ByteFsConfig::full()).is_err());
    }

    #[test]
    fn data_journaling_mode_journals_block_writebacks() {
        let dev = Mssd::new(MssdConfig::small_test(), DramMode::WriteLog);
        let fs =
            ByteFs::format(Arc::clone(&dev), ByteFsConfig::full().with_data_journaling()).unwrap();
        let before = dev.traffic();
        fs.write_file("/j", &vec![9u8; 4_096]).unwrap();
        let delta = dev.traffic().delta_since(&before);
        assert!(
            delta.host_bytes_by_category(Direction::Write, Category::Journal) >= 3 * 4_096,
            "data journaling writes descriptor + data + commit blocks"
        );
    }

    #[test]
    fn many_small_files_in_one_directory() {
        let (_dev, fs) = new_fs();
        fs.mkdir("/mail").unwrap();
        for i in 0..150 {
            fs.write_file(&format!("/mail/msg{i}"), format!("body {i}").as_bytes()).unwrap();
        }
        assert_eq!(fs.readdir("/mail").unwrap().len(), 150);
        for i in (0..150).step_by(7) {
            assert_eq!(
                fs.read_file(&format!("/mail/msg{i}")).unwrap(),
                format!("body {i}").as_bytes()
            );
        }
        for i in 0..150 {
            fs.unlink(&format!("/mail/msg{i}")).unwrap();
        }
        assert!(fs.readdir("/mail").unwrap().is_empty());
    }

    #[test]
    fn fsync_without_changes_is_cheap() {
        let (dev, fs) = new_fs();
        fs.write_file("/idle", b"x").unwrap();
        let fd = fs.open("/idle", OpenFlags::read_write()).unwrap();
        let before = dev.traffic();
        fs.fsync(fd).unwrap();
        let delta = dev.traffic().delta_since(&before);
        assert_eq!(delta.host_write_bytes(), 0, "clean fsync issues no writes");
    }
}
