//! Multi-threaded stress tests of the sharded ByteFS host path.
//!
//! N threads issue mixed create/write/rename/unlink/fsync/readdir traffic
//! against one shared [`ByteFs`] — each thread inside its own directory, so
//! every thread's expected state is deterministic while all the shared
//! structures (namespace lock, inode shards, page-cache shards, allocators,
//! TxTable, device) race. Afterwards the tests assert post-hoc invariants:
//! every thread's files read back exactly, the namespace agrees with the
//! expectations, unlinking everything returns the allocators to their
//! baseline, and a concurrent run is observationally equivalent to a
//! sequential replay of the same per-thread streams. (Crash recovery under
//! concurrency moved to the `crashkit` crate's ported suite.)

use std::collections::BTreeMap;
use std::sync::Arc;

use bytefs::{ByteFs, ByteFsConfig};
use fskit::{FileSystem, FileSystemExt, OpenFlags};
use mssd::{DramMode, Mssd, MssdConfig};

const THREADS: usize = 8;
const OPS: usize = 400;

/// Deterministic per-thread op stream (xorshift64).
struct Ops {
    state: u64,
}

impl Ops {
    fn new(seed: u64) -> Self {
        Self { state: seed | 1 }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }
}

fn new_fs() -> (Arc<Mssd>, Arc<ByteFs>) {
    let dev = Mssd::new(MssdConfig::small_test(), DramMode::WriteLog);
    let fs = ByteFs::format(Arc::clone(&dev), ByteFsConfig::full()).unwrap();
    (dev, fs)
}

/// Executes thread `t`'s operation stream: create / overwrite / fsync /
/// rename / unlink on files inside `/t{t}`, returning the expected final
/// content of every surviving file. At most ~32 files are live at once so
/// the thread's directory never outgrows one dentry block (keeps the
/// allocator-baseline check exact).
fn drive(fs: &dyn FileSystem, t: usize, ops: usize) -> BTreeMap<String, Vec<u8>> {
    let dir = format!("/t{t}");
    let mut rng = Ops::new(0xC0FFEE ^ (t as u64) << 24);
    let mut expected: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    let mut serial = 0usize;
    for _ in 0..ops {
        match rng.next() % 10 {
            // Create a fresh file with a deterministic payload and fsync it.
            0..=3 => {
                if expected.len() >= 32 {
                    continue;
                }
                let path = format!("{dir}/f{serial}");
                serial += 1;
                let tag = (rng.next() % 251) as u8;
                let len = 64 + (rng.next() % 8000) as usize;
                let payload = vec![tag; len];
                fs.write_file(&path, &payload).unwrap();
                expected.insert(path, payload);
            }
            // Overwrite a range in an existing file, fsync.
            4 | 5 => {
                let Some(path) = nth_key(&expected, rng.next()) else { continue };
                let tag = (rng.next() % 251) as u8;
                let content = expected.get_mut(&path).unwrap();
                let off = (rng.next() as usize) % content.len();
                let len = ((rng.next() as usize) % 256 + 1).min(content.len() - off);
                let fd = fs.open(&path, OpenFlags::read_write()).unwrap();
                fs.write(fd, off as u64, &vec![tag; len]).unwrap();
                fs.fsync(fd).unwrap();
                fs.close(fd).unwrap();
                content[off..off + len].fill(tag);
            }
            // Read back a file mid-run and check it against the expectation.
            6 => {
                let Some(path) = nth_key(&expected, rng.next()) else { continue };
                let got = fs.read_file(&path).unwrap();
                assert_eq!(&got, expected.get(&path).unwrap(), "thread {t} mid-run {path}");
            }
            // Rename within the thread's directory.
            7 => {
                let Some(path) = nth_key(&expected, rng.next()) else { continue };
                let to = format!("{dir}/r{serial}");
                serial += 1;
                fs.rename(&path, &to).unwrap();
                let content = expected.remove(&path).unwrap();
                expected.insert(to, content);
            }
            // Unlink.
            8 => {
                let Some(path) = nth_key(&expected, rng.next()) else { continue };
                fs.unlink(&path).unwrap();
                expected.remove(&path);
            }
            // Namespace reads under churn.
            _ => {
                let entries = fs.readdir(&dir).unwrap();
                assert_eq!(entries.len(), expected.len(), "thread {t} dir count");
                let Some(path) = nth_key(&expected, rng.next()) else { continue };
                let meta = fs.stat(&path).unwrap();
                assert_eq!(meta.size as usize, expected[&path].len(), "thread {t} {path} size");
            }
        }
    }
    expected
}

fn nth_key(map: &BTreeMap<String, Vec<u8>>, r: u64) -> Option<String> {
    if map.is_empty() {
        return None;
    }
    map.keys().nth((r as usize) % map.len()).cloned()
}

fn verify(fs: &dyn FileSystem, expected: &[BTreeMap<String, Vec<u8>>]) {
    for (t, files) in expected.iter().enumerate() {
        let entries = fs.readdir(&format!("/t{t}")).unwrap();
        assert_eq!(entries.len(), files.len(), "thread {t} final dir count");
        for (path, content) in files {
            assert_eq!(&fs.read_file(path).unwrap(), content, "thread {t} final {path}");
        }
    }
}

#[test]
fn concurrent_mixed_ops_stress() {
    let (_dev, fs) = new_fs();
    for t in 0..THREADS {
        fs.mkdir(&format!("/t{t}")).unwrap();
    }
    // Materialize every directory's dentry block, then record the allocator
    // baseline the cleanup phase must return to.
    for t in 0..THREADS {
        fs.write_file(&format!("/t{t}/probe"), b"x").unwrap();
        fs.unlink(&format!("/t{t}/probe")).unwrap();
    }
    fs.sync().unwrap();
    let baseline_blocks = fs.allocated_blocks();
    let baseline_inodes = fs.allocated_inodes();

    let expected: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let fs = Arc::clone(&fs);
                s.spawn(move || drive(fs.as_ref(), t, OPS))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    fs.sync().unwrap();
    verify(fs.as_ref(), &expected);

    // Cleanup must return both allocators exactly to the post-setup baseline:
    // no leaked blocks, no leaked inodes, no double frees (those would panic).
    for (t, files) in expected.iter().enumerate() {
        for path in files.keys() {
            fs.unlink(path).unwrap();
        }
        assert!(fs.readdir(&format!("/t{t}")).unwrap().is_empty());
    }
    fs.sync().unwrap();
    assert_eq!(fs.allocated_blocks(), baseline_blocks, "no data/extent block leaked");
    assert_eq!(fs.allocated_inodes(), baseline_inodes, "no inode leaked");
}

#[test]
fn concurrent_run_survives_unmount_and_remount() {
    let (dev, fs) = new_fs();
    for t in 0..THREADS {
        fs.mkdir(&format!("/t{t}")).unwrap();
    }
    let expected: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let fs = Arc::clone(&fs);
                s.spawn(move || drive(fs.as_ref(), t, OPS / 2))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    fs.unmount().unwrap();
    drop(fs);

    let fs2 = ByteFs::mount(Arc::clone(&dev), ByteFsConfig::full()).unwrap();
    verify(fs2.as_ref(), &expected);
}

/// The FS-level analogue of the device suite's replay test: the same
/// per-thread op streams, run concurrently on one volume and sequentially on
/// another, must leave observationally identical file systems (every thread's
/// namespace is private, so the interleaving may change physical block
/// placement but never logical content).
#[test]
fn concurrent_run_agrees_with_single_threaded_replay() {
    let (_dev_a, shared) = new_fs();
    for t in 0..THREADS {
        shared.mkdir(&format!("/t{t}")).unwrap();
    }
    let concurrent: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let fs: Arc<dyn FileSystem> = Arc::clone(&shared) as _;
                s.spawn(move || drive(fs.as_ref(), t, OPS / 2))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let (_dev_b, replay) = new_fs();
    for t in 0..THREADS {
        replay.mkdir(&format!("/t{t}")).unwrap();
    }
    let replayed: Vec<_> = (0..THREADS).map(|t| drive(replay.as_ref(), t, OPS / 2)).collect();

    assert_eq!(concurrent, replayed, "per-thread op streams are deterministic");
    shared.sync().unwrap();
    replay.sync().unwrap();
    verify(shared.as_ref(), &concurrent);
    verify(replay.as_ref(), &replayed);
    // Logical observables agree even though physical placement may differ.
    assert_eq!(shared.allocated_inodes(), replay.allocated_inodes());
}

// NOTE: the concurrent crash-recovery case that used to live here moved to
// `crates/crashkit/tests/ported_crash_suites.rs`, on top of crashkit's
// power-cycle machinery (plus a post-recovery fsck).

/// Readers hammer files other threads are writing: per-inode RwLocks must
/// serialize each file's writes against its reads without ever deadlocking,
/// and a reader must only ever observe a prefix-consistent tagged payload.
#[test]
fn shared_file_readers_and_writers_stay_consistent() {
    let (_dev, fs) = new_fs();
    fs.mkdir("/shared").unwrap();
    const FILES: usize = 4;
    for f in 0..FILES {
        fs.write_file(&format!("/shared/f{f}"), &vec![0u8; 4096]).unwrap();
    }
    std::thread::scope(|s| {
        // Writers: each rewrites every file with its own tag, whole-page.
        for t in 0..4u64 {
            let fs = Arc::clone(&fs);
            s.spawn(move || {
                let mut rng = Ops::new(0xDEAD ^ (t << 16));
                for _ in 0..150 {
                    let f = rng.next() as usize % FILES;
                    let tag = 1 + (rng.next() % 250) as u8;
                    let fd = fs.open(&format!("/shared/f{f}"), OpenFlags::read_write()).unwrap();
                    fs.write(fd, 0, &vec![tag; 4096]).unwrap();
                    if rng.next().is_multiple_of(2) {
                        fs.fsync(fd).unwrap();
                    }
                    fs.close(fd).unwrap();
                }
            });
        }
        // Readers: whole-file reads must always see one uniform tag — a torn
        // read would prove a write was observed mid-flight.
        for t in 0..4u64 {
            let fs = Arc::clone(&fs);
            s.spawn(move || {
                let mut rng = Ops::new(0xBEEF ^ (t << 16));
                for _ in 0..150 {
                    let f = rng.next() as usize % FILES;
                    let data = fs.read_file(&format!("/shared/f{f}")).unwrap();
                    assert_eq!(data.len(), 4096);
                    let first = data[0];
                    assert!(
                        data.iter().all(|b| *b == first),
                        "torn read on /shared/f{f}: page mixes tags"
                    );
                }
            });
        }
    });
    fs.sync().unwrap();
}
