//! Async-runtime integration tests: many logical clients drive one shared
//! [`ByteFs`] through the futures-based [`fskit::AsyncFileSystem`] API over
//! a handful of executor worker threads, and the results must be exactly
//! what a sync client would have produced.

use std::sync::Arc;

use bytefs::{ByteFs, ByteFsConfig};
use fskit::{AsyncFileSystem, AsyncFileSystemExt, AsyncFs, BlockOnFs, FileSystem, FileSystemExt};
use mssd::{DramMode, Executor, Mssd, MssdConfig};

fn new_fs() -> (Arc<Mssd>, Arc<ByteFs>) {
    let dev = Mssd::new(MssdConfig::small_test(), DramMode::WriteLog);
    let fs = ByteFs::format(Arc::clone(&dev), ByteFsConfig::full()).unwrap();
    (dev, fs)
}

/// The deterministic payload client `c` writes into its file `i`.
fn payload(c: usize, i: usize) -> Vec<u8> {
    vec![(c * 31 + i) as u8; 256 + i * 13]
}

#[test]
fn concurrent_async_clients_share_one_bytefs() {
    const CLIENTS: usize = 24;
    const FILES: usize = 6;

    let (_dev, fs) = new_fs();
    let afs: Arc<dyn AsyncFileSystem> =
        Arc::new(AsyncFs::new(Arc::clone(&fs) as Arc<dyn FileSystem>));
    let exec = Executor::new(3);

    // Each client owns one directory and round-trips its own files; every
    // await yields, so the 24 clients interleave over 3 worker threads.
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let afs = Arc::clone(&afs);
            exec.spawn(async move {
                let dir = format!("/client{c}");
                afs.mkdir(&dir).await.unwrap();
                for i in 0..FILES {
                    let path = format!("{dir}/f{i}");
                    afs.write_file(&path, &payload(c, i)).await.unwrap();
                }
                // Rename one file and delete another mid-stream to exercise
                // the namespace under interleaving.
                afs.rename(&format!("{dir}/f0"), &format!("{dir}/renamed")).await.unwrap();
                afs.unlink(&format!("{dir}/f1")).await.unwrap();
                for i in 2..FILES {
                    let back = afs.read_file(&format!("{dir}/f{i}")).await.unwrap();
                    assert_eq!(back, payload(c, i), "client {c} file {i}");
                }
                afs.sync().await.unwrap();
            })
        })
        .collect();
    for h in handles {
        exec.block_on(h);
    }

    // Verify through the sync API that the async clients left exactly the
    // expected namespace and contents behind.
    for c in 0..CLIENTS {
        let dir = format!("/client{c}");
        let names: Vec<String> = fs.readdir(&dir).unwrap().into_iter().map(|e| e.name).collect();
        assert_eq!(names.len(), FILES - 1, "client {c}: renamed kept, f1 gone");
        assert!(names.iter().any(|n| n == "renamed"));
        assert!(!names.iter().any(|n| n == "f1"));
        assert_eq!(fs.read_file(&format!("{dir}/renamed")).unwrap(), payload(c, 0));
        for i in 2..FILES {
            assert_eq!(fs.read_file(&format!("{dir}/f{i}")).unwrap(), payload(c, i));
        }
    }
}

#[test]
fn block_on_shim_round_trips_through_the_async_layer() {
    // Sync FileSystem -> AsyncFs -> BlockOnFs is observationally the sync
    // file system again: the async layer may reorder nothing.
    let (_dev, fs) = new_fs();
    let afs: Arc<dyn AsyncFileSystem> =
        Arc::new(AsyncFs::new(Arc::clone(&fs) as Arc<dyn FileSystem>));
    let shim = BlockOnFs::new(afs, Executor::new(1));

    shim.mkdir("/d").unwrap();
    shim.write_file("/d/a", b"via the shim").unwrap();
    let fd = shim.open("/d/a", fskit::OpenFlags::read_write()).unwrap();
    shim.append(fd, b", appended").unwrap();
    shim.fsync(fd).unwrap();
    shim.close(fd).unwrap();
    assert_eq!(shim.read_file("/d/a").unwrap(), b"via the shim, appended");
    // And the underlying sync fs sees the identical state.
    assert_eq!(fs.read_file("/d/a").unwrap(), b"via the shim, appended");
    assert!(fs.exists("/d/a"));
    shim.unmount().unwrap();
}
