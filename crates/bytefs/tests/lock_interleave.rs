//! Property test: the fine-grained lock hierarchy never deadlocks under
//! randomized op interleavings.
//!
//! Proptest generates small per-thread operation schedules over one *shared*
//! path universe — the worst case for the lock hierarchy, because every
//! thread contends for the same namespace entries, the same inode locks and
//! the same page-cache shards, and racing threads constantly hit the
//! tombstone / re-resolve edges (`unlink` vs `write`, `rename` vs `open`).
//! Each schedule runs on real threads under a watchdog: if the workers do
//! not finish within the timeout, the test fails — a bounded-model stand-in
//! for a lock-order proof, which the documented hierarchy
//! (namespace → inode shard → inode → cache shard → allocator → device)
//! backs analytically.
//!
//! Individual operations may fail (a racing thread may have unlinked the
//! file first); errors are expected outcomes, panics and deadlocks are not.
//! After every schedule the file system must still be fully functional:
//! `sync`, a full tree walk and an unmount must succeed.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use bytefs::{ByteFs, ByteFsConfig};
use fskit::{FileSystem, FileSystemExt, OpenFlags};
use mssd::{DramMode, Mssd, MssdConfig};

/// The shared path universe: two directories, six file slots each.
const DIRS: usize = 2;
const FILES: usize = 6;

/// One operation of a schedule. `file`/`dir` are selectors into the shared
/// universe, so different threads frequently target the same object.
#[derive(Debug, Clone)]
enum Op {
    Create { dir: u8, file: u8 },
    Write { dir: u8, file: u8, len: u16 },
    Append { dir: u8, file: u8 },
    Read { dir: u8, file: u8 },
    Fsync { dir: u8, file: u8 },
    Truncate { dir: u8, file: u8, size: u16 },
    Rename { dir: u8, file: u8, to_dir: u8, to_file: u8 },
    Unlink { dir: u8, file: u8 },
    Stat { dir: u8, file: u8 },
    Readdir { dir: u8 },
    Sync,
}

fn path(dir: u8, file: u8) -> String {
    format!("/d{}/f{}", dir as usize % DIRS, file as usize % FILES)
}

fn dir_path(dir: u8) -> String {
    format!("/d{}", dir as usize % DIRS)
}

/// Applies one op, swallowing errors: under races, NotFound/AlreadyExists/
/// IsADirectory outcomes are all legitimate. Only hangs and panics are bugs.
fn apply(fs: &dyn FileSystem, op: &Op) {
    match op {
        Op::Create { dir, file } => {
            if let Ok(fd) = fs.create(&path(*dir, *file)) {
                let _ = fs.write(fd, 0, &[0xAB; 300]);
                let _ = fs.close(fd);
            }
        }
        Op::Write { dir, file, len } => {
            if let Ok(fd) = fs.open(&path(*dir, *file), OpenFlags::create_rw()) {
                let _ = fs.write(fd, 0, &vec![0xCD; *len as usize % 6000 + 1]);
                let _ = fs.close(fd);
            }
        }
        Op::Append { dir, file } => {
            if let Ok(fd) = fs.open(&path(*dir, *file), OpenFlags::read_write().with_append()) {
                let _ = fs.write(fd, 0, &[0xEF; 128]);
                let _ = fs.close(fd);
            }
        }
        Op::Read { dir, file } => {
            let _ = fs.read_file(&path(*dir, *file));
        }
        Op::Fsync { dir, file } => {
            if let Ok(fd) = fs.open(&path(*dir, *file), OpenFlags::read_write()) {
                let _ = fs.fsync(fd);
                let _ = fs.close(fd);
            }
        }
        Op::Truncate { dir, file, size } => {
            if let Ok(fd) = fs.open(&path(*dir, *file), OpenFlags::read_write()) {
                let _ = fs.truncate(fd, *size as u64 % 5000);
                let _ = fs.close(fd);
            }
        }
        Op::Rename { dir, file, to_dir, to_file } => {
            let _ = fs.rename(&path(*dir, *file), &path(*to_dir, *to_file));
        }
        Op::Unlink { dir, file } => {
            let _ = fs.unlink(&path(*dir, *file));
        }
        Op::Stat { dir, file } => {
            let _ = fs.stat(&path(*dir, *file));
        }
        Op::Readdir { dir } => {
            let _ = fs.readdir(&dir_path(*dir));
        }
        Op::Sync => {
            let _ = fs.sync();
        }
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(dir, file)| Op::Create { dir, file }),
        (any::<u8>(), any::<u8>(), any::<u16>()).prop_map(|(dir, file, len)| Op::Write {
            dir,
            file,
            len
        }),
        (any::<u8>(), any::<u8>()).prop_map(|(dir, file)| Op::Append { dir, file }),
        (any::<u8>(), any::<u8>()).prop_map(|(dir, file)| Op::Read { dir, file }),
        (any::<u8>(), any::<u8>()).prop_map(|(dir, file)| Op::Fsync { dir, file }),
        (any::<u8>(), any::<u8>(), any::<u16>()).prop_map(|(dir, file, size)| Op::Truncate {
            dir,
            file,
            size
        }),
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(dir, file, to_dir, to_file)| Op::Rename { dir, file, to_dir, to_file }),
        (any::<u8>(), any::<u8>()).prop_map(|(dir, file)| Op::Unlink { dir, file }),
        (any::<u8>(), any::<u8>()).prop_map(|(dir, file)| Op::Stat { dir, file }),
        any::<u8>().prop_map(|dir| Op::Readdir { dir }),
        Just(Op::Sync),
    ]
}

/// Runs the given per-thread schedules concurrently on a fresh ByteFS under a
/// watchdog. Returns only when every worker finished; panics on timeout.
fn run_schedules(schedules: Vec<Vec<Op>>, timeout: Duration) {
    let (tx, rx) = mpsc::channel();
    let supervisor = std::thread::spawn(move || {
        let dev = Mssd::new(MssdConfig::small_test(), DramMode::WriteLog);
        let fs: Arc<ByteFs> = ByteFs::format(dev, ByteFsConfig::full()).unwrap();
        for d in 0..DIRS {
            fs.mkdir(&format!("/d{d}")).unwrap();
        }
        std::thread::scope(|s| {
            for schedule in &schedules {
                let fs = Arc::clone(&fs);
                s.spawn(move || {
                    for op in schedule {
                        apply(fs.as_ref(), op);
                    }
                });
            }
        });
        // The lock hierarchy survived the interleaving; the volume must still
        // be coherent and unmountable.
        fs.sync().unwrap();
        for d in 0..DIRS {
            for entry in fs.readdir(&format!("/d{d}")).unwrap() {
                let meta = fs.stat(&format!("/d{d}/{}", entry.name)).unwrap();
                let data = fs.read_file(&format!("/d{d}/{}", entry.name)).unwrap();
                assert_eq!(data.len() as u64, meta.size, "post-run walk is coherent");
            }
        }
        fs.unmount().unwrap();
        tx.send(()).ok();
    });
    match rx.recv_timeout(timeout) {
        Ok(()) => supervisor.join().expect("schedule run panicked"),
        Err(_) => panic!(
            "potential deadlock: randomized schedules did not finish within {timeout:?} \
             (lock order namespace → shard → inode → cache → allocator violated?)"
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Two threads, maximally conflicting schedules.
    #[test]
    fn two_thread_schedules_never_deadlock(
        a in proptest::collection::vec(op_strategy(), 1..40),
        b in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        run_schedules(vec![a, b], Duration::from_secs(60));
    }

    /// Four threads, shorter schedules — more simultaneous lock holders.
    #[test]
    fn four_thread_schedules_never_deadlock(
        a in proptest::collection::vec(op_strategy(), 1..20),
        b in proptest::collection::vec(op_strategy(), 1..20),
        c in proptest::collection::vec(op_strategy(), 1..20),
        d in proptest::collection::vec(op_strategy(), 1..20),
    ) {
        run_schedules(vec![a, b, c, d], Duration::from_secs(60));
    }
}
