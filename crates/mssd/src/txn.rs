//! Firmware-side transaction support: transaction identifiers and the TxLog.
//!
//! ByteFS tags every byte-interface write that belongs to a file-system
//! transaction with a 4-byte transaction ID (TxID). Committing a transaction
//! is a single custom NVMe command `COMMIT(TxID)`; the firmware appends a
//! 4-byte commit record to a small (2 MB) region of device DRAM called the
//! **TxLog** (§4.3, Figure 4). Log cleaning flushes entries in TxLog commit
//! order, and the `RECOVER()` path discards entries whose TxID never made it
//! into the TxLog.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

/// A file-system transaction identifier (4 bytes on the wire, monotonically
/// increasing, assigned by the host).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxId(pub u32);

impl std::fmt::Display for TxId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tx#{}", self.0)
    }
}

impl From<u32> for TxId {
    fn from(v: u32) -> Self {
        TxId(v)
    }
}

/// Size in bytes of one commit record in the TxLog.
pub const COMMIT_RECORD_BYTES: usize = 4;

/// The firmware transaction log: an append-only list of committed TxIDs kept
/// in (battery-backed) device DRAM.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TxLog {
    capacity_records: usize,
    order: Vec<TxId>,
    committed: HashSet<TxId>,
}

impl TxLog {
    /// Creates a TxLog that can hold `capacity_bytes / 4` commit records.
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            capacity_records: (capacity_bytes / COMMIT_RECORD_BYTES).max(1),
            order: Vec::new(),
            committed: HashSet::new(),
        }
    }

    /// Number of commit records currently held.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` if no transaction has been committed since the last cleaning.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// `true` when the TxLog cannot accept another commit record; the caller
    /// must trigger log cleaning before committing more transactions.
    pub fn is_full(&self) -> bool {
        self.order.len() >= self.capacity_records
    }

    /// Appends a commit record. Re-committing an already-committed TxID is a
    /// no-op (idempotent commits simplify host retry logic).
    ///
    /// Returns `false` (and records nothing) when the TxLog is full.
    pub fn commit(&mut self, txid: TxId) -> bool {
        if self.committed.contains(&txid) {
            return true;
        }
        if self.is_full() {
            return false;
        }
        self.order.push(txid);
        self.committed.insert(txid);
        true
    }

    /// Whether a TxID has a commit record.
    pub fn is_committed(&self, txid: TxId) -> bool {
        self.committed.contains(&txid)
    }

    /// Committed TxIDs in commit order (used by log cleaning and recovery to
    /// preserve ordering).
    pub fn commit_order(&self) -> &[TxId] {
        &self.order
    }

    /// Clears the TxLog after log cleaning has durably propagated all
    /// committed updates to flash.
    pub fn clear(&mut self) {
        self.order.clear();
        self.committed.clear();
    }

    /// Bytes of device DRAM occupied by the current commit records.
    pub fn used_bytes(&self) -> usize {
        self.order.len() * COMMIT_RECORD_BYTES
    }
}

/// Host-visible allocator for transaction IDs (monotonically increasing global
/// counter, §4.3).
#[derive(Debug, Default)]
pub struct TxIdAllocator {
    next: u32,
}

impl TxIdAllocator {
    /// Creates an allocator starting at TxID 1 (0 is reserved as "no
    /// transaction").
    pub fn new() -> Self {
        Self { next: 1 }
    }

    /// Returns a fresh, unique transaction ID.
    pub fn allocate(&mut self) -> TxId {
        let id = TxId(self.next);
        self.next = self.next.wrapping_add(1).max(1);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_and_query() {
        let mut log = TxLog::new(1024);
        assert!(log.is_empty());
        assert!(log.commit(TxId(1)));
        assert!(log.commit(TxId(7)));
        assert!(log.is_committed(TxId(1)));
        assert!(!log.is_committed(TxId(2)));
        assert_eq!(log.commit_order(), &[TxId(1), TxId(7)]);
        assert_eq!(log.len(), 2);
        assert_eq!(log.used_bytes(), 8);
    }

    #[test]
    fn commit_is_idempotent() {
        let mut log = TxLog::new(1024);
        assert!(log.commit(TxId(5)));
        assert!(log.commit(TxId(5)));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut log = TxLog::new(8); // room for 2 records
        assert!(log.commit(TxId(1)));
        assert!(log.commit(TxId(2)));
        assert!(log.is_full());
        assert!(!log.commit(TxId(3)));
        assert!(!log.is_committed(TxId(3)));
        log.clear();
        assert!(log.commit(TxId(3)));
    }

    #[test]
    fn clear_resets_everything() {
        let mut log = TxLog::new(1024);
        log.commit(TxId(1));
        log.clear();
        assert!(log.is_empty());
        assert!(!log.is_committed(TxId(1)));
        assert_eq!(log.used_bytes(), 0);
    }

    #[test]
    fn allocator_is_monotonic_and_unique() {
        let mut alloc = TxIdAllocator::new();
        let a = alloc.allocate();
        let b = alloc.allocate();
        let c = alloc.allocate();
        assert!(a.0 < b.0 && b.0 < c.0);
        assert_ne!(a, b);
        assert_ne!(b, c);
    }

    #[test]
    fn allocator_never_returns_zero() {
        let mut alloc = TxIdAllocator { next: u32::MAX };
        let a = alloc.allocate();
        let b = alloc.allocate();
        assert_eq!(a, TxId(u32::MAX));
        assert_ne!(b, TxId(0));
    }
}
