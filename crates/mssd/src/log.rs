//! The log-structured write log held in device DRAM (ByteFS firmware mode).
//!
//! §4.3 of the paper: byte-interface writes are appended to a circular log
//! region (256 MB by default) as 64-byte-aligned data entries, indexed by a
//! three-layer structure:
//!
//! 1. a **partition table** dividing the SSD address space into 16 MB
//!    partitions,
//! 2. a **skip list per partition** keyed by logical page address (LPA), and
//! 3. an **ordered chunk list per page** recording `(offset-in-page, length,
//!    log offset)` for each data entry.
//!
//! Entries carry the TxID of the transaction that wrote them; log cleaning
//! merges the newest *committed* version of each chunk into its flash page and
//! migrates uncommitted entries into the fresh log region.

use std::collections::BTreeMap;

use crate::config::MssdConfig;
use crate::ftl::Lpa;
use crate::skiplist::SkipList;
use crate::txn::TxId;
use crate::CACHELINE;

/// Size of one first-layer partition of the SSD address space (16 MB, §4.3).
pub const PARTITION_BYTES: u64 = 16 << 20;

/// Fixed per-entry index overhead in bytes (block offset + log offset + length
/// + TxID, rounded up; the paper reports ~9 B per chunk entry plus skip-list
/// node overhead).
pub const ENTRY_OVERHEAD: usize = 16;

/// One byte-granular write buffered in the log region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Byte offset of this chunk within its flash page.
    pub offset: usize,
    /// The written bytes.
    pub data: Vec<u8>,
    /// Transaction the write belongs to (`None` for non-transactional writes,
    /// which are treated as immediately committed).
    pub txid: Option<TxId>,
    /// Global sequence number: larger means newer.
    pub seq: u64,
    /// Byte offset of the data entry inside the circular log region
    /// (informational; kept to mirror the paper's chunk-entry layout).
    pub log_off: usize,
}

impl ChunkEntry {
    /// Bytes of log-region space this entry occupies (64 B-aligned data plus
    /// index overhead).
    pub fn footprint(&self) -> usize {
        self.data.len().div_ceil(CACHELINE) * CACHELINE + ENTRY_OVERHEAD
    }

    /// End offset (exclusive) of the chunk within its page.
    pub fn end(&self) -> usize {
        self.offset + self.data.len()
    }
}

/// The result of draining the log for cleaning: per-page entries to merge into
/// flash, plus the uncommitted entries that must be migrated to the new log.
#[derive(Debug, Default)]
pub struct CleanBatch {
    /// For every dirty page: the entries to apply, already reduced to the
    /// newest committed version per byte range (in apply order).
    pub pages: Vec<(Lpa, Vec<ChunkEntry>)>,
    /// Entries whose transaction has not committed; they survive cleaning.
    pub migrated: Vec<(Lpa, ChunkEntry)>,
}

/// The write log: circular data region accounting plus the three-layer index.
#[derive(Debug)]
pub struct WriteLog {
    capacity_bytes: usize,
    used_bytes: usize,
    clean_threshold: f64,
    page_size: usize,
    pages_per_partition: u64,
    /// Layer 1 → Layer 2: partition index → skip list keyed by LPA.
    /// Layer 3 lives in the skip-list values (chunk lists).
    partitions: BTreeMap<u64, SkipList<Vec<ChunkEntry>>>,
    entries: usize,
    seq: u64,
    write_cursor: usize,
}

/// Error returned when an append does not fit in the log region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogFull {
    /// Bytes the rejected entry would have needed.
    pub needed: usize,
    /// Bytes currently free.
    pub free: usize,
}

impl std::fmt::Display for LogFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "write log full: need {} bytes, {} free", self.needed, self.free)
    }
}

impl std::error::Error for LogFull {}

impl WriteLog {
    /// Creates a write log sized by `cfg.dram_region_bytes`.
    pub fn new(cfg: &MssdConfig) -> Self {
        Self {
            capacity_bytes: cfg.dram_region_bytes,
            used_bytes: 0,
            clean_threshold: cfg.log_clean_threshold,
            page_size: cfg.page_size,
            pages_per_partition: (PARTITION_BYTES / cfg.page_size as u64).max(1),
            partitions: BTreeMap::new(),
            entries: 0,
            seq: 0,
            write_cursor: 0,
        }
    }

    /// Total log-region capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Bytes currently occupied (data entries + index overhead).
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Number of live chunk entries.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Log-region utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.used_bytes as f64 / self.capacity_bytes as f64
    }

    /// `true` once utilization exceeds the cleaning threshold (85 % by
    /// default) and background cleaning should start.
    pub fn needs_cleaning(&self) -> bool {
        self.utilization() >= self.clean_threshold
    }

    fn partition_of(&self, lpa: Lpa) -> u64 {
        lpa / self.pages_per_partition
    }

    /// Appends a byte-granular write to the log.
    ///
    /// # Errors
    ///
    /// Returns [`LogFull`] when the entry does not fit; the caller must run
    /// log cleaning first.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the chunk crosses a page boundary — the
    /// device splits host writes per page before appending.
    pub fn append(
        &mut self,
        lpa: Lpa,
        offset: usize,
        data: &[u8],
        txid: Option<TxId>,
    ) -> Result<(), LogFull> {
        debug_assert!(!data.is_empty(), "empty log append");
        debug_assert!(
            offset + data.len() <= self.page_size,
            "log entries must not cross page boundaries"
        );
        let entry = ChunkEntry {
            offset,
            data: data.to_vec(),
            txid,
            seq: self.seq,
            log_off: self.write_cursor,
        };
        let footprint = entry.footprint();
        if self.used_bytes + footprint > self.capacity_bytes {
            return Err(LogFull { needed: footprint, free: self.capacity_bytes - self.used_bytes });
        }
        self.seq += 1;
        self.used_bytes += footprint;
        self.write_cursor = (self.write_cursor + footprint) % self.capacity_bytes.max(1);
        self.entries += 1;
        let partition = self.partition_of(lpa);
        let list = self.partitions.entry(partition).or_default();
        match list.get_mut(lpa) {
            Some(chunks) => chunks.push(entry),
            None => {
                list.insert(lpa, vec![entry]);
            }
        }
        Ok(())
    }

    /// Whether any log entries exist for the page.
    pub fn has_page(&self, lpa: Lpa) -> bool {
        self.partitions
            .get(&self.partition_of(lpa))
            .is_some_and(|list| list.contains_key(lpa))
    }

    /// Returns `true` if the byte range `[offset, offset + len)` of the page is
    /// fully covered by log entries, i.e. a byte-interface read can be served
    /// from device DRAM without touching flash.
    pub fn covers(&self, lpa: Lpa, offset: usize, len: usize) -> bool {
        let Some(chunks) = self.chunks(lpa) else { return false };
        if len == 0 {
            return true;
        }
        // Merge the chunk ranges and check coverage.
        let mut ranges: Vec<(usize, usize)> =
            chunks.iter().map(|c| (c.offset, c.end())).collect();
        ranges.sort_unstable();
        let mut covered_to = offset;
        for (start, end) in ranges {
            if start > covered_to {
                if covered_to >= offset + len {
                    break;
                }
                if start >= offset + len {
                    break;
                }
                return false;
            }
            covered_to = covered_to.max(end);
        }
        covered_to >= offset + len
    }

    fn chunks(&self, lpa: Lpa) -> Option<&Vec<ChunkEntry>> {
        self.partitions.get(&self.partition_of(lpa))?.get(lpa)
    }

    /// Applies all log entries for `lpa` onto `page` in sequence order (oldest
    /// first), so the newest write wins for overlapping ranges.
    pub fn merge_into(&self, lpa: Lpa, page: &mut [u8]) {
        let Some(chunks) = self.chunks(lpa) else { return };
        let mut ordered: Vec<&ChunkEntry> = chunks.iter().collect();
        ordered.sort_by_key(|c| c.seq);
        for c in ordered {
            let end = c.end().min(page.len());
            if c.offset < end {
                page[c.offset..end].copy_from_slice(&c.data[..end - c.offset]);
            }
        }
    }

    /// Invalidates all log entries of a page (the host overwrote the whole
    /// page through the block interface, §4.4). Returns the number of entries
    /// dropped.
    pub fn invalidate_page(&mut self, lpa: Lpa) -> usize {
        let partition = self.partition_of(lpa);
        let Some(list) = self.partitions.get_mut(&partition) else { return 0 };
        let Some(chunks) = list.remove(lpa) else { return 0 };
        let freed: usize = chunks.iter().map(ChunkEntry::footprint).sum();
        self.used_bytes -= freed;
        self.entries -= chunks.len();
        if list.is_empty() {
            self.partitions.remove(&partition);
        }
        chunks.len()
    }

    /// All page addresses that currently have log entries, in ascending order.
    pub fn dirty_pages(&self) -> Vec<Lpa> {
        self.partitions.values().flat_map(|list| list.keys()).collect()
    }

    /// Drains the entire log for cleaning.
    ///
    /// `is_committed` decides whether an entry's transaction has a TxLog commit
    /// record. Committed entries are grouped per page (Algorithm 1 lines 2-11);
    /// uncommitted ones are returned separately so the device can migrate them
    /// into the fresh log (line 8). After this call the log is empty.
    pub fn drain_for_cleaning<F>(&mut self, is_committed: F) -> CleanBatch
    where
        F: Fn(TxId) -> bool,
    {
        let mut batch = CleanBatch::default();
        let partitions = std::mem::take(&mut self.partitions);
        for (_, list) in partitions {
            for (lpa, chunks) in list.iter() {
                let mut committed: Vec<ChunkEntry> = Vec::new();
                for c in chunks {
                    let ok = match c.txid {
                        None => true,
                        Some(txid) => is_committed(txid),
                    };
                    if ok {
                        committed.push(c.clone());
                    } else {
                        batch.migrated.push((lpa, c.clone()));
                    }
                }
                if !committed.is_empty() {
                    committed.sort_by_key(|c| c.seq);
                    batch.pages.push((lpa, committed));
                }
            }
        }
        batch.pages.sort_by_key(|(lpa, _)| *lpa);
        self.used_bytes = 0;
        self.entries = 0;
        self.write_cursor = 0;
        batch
    }

    /// Re-inserts migrated (uncommitted) entries after cleaning.
    ///
    /// # Panics
    ///
    /// Panics if the migrated entries do not fit — they came out of the same
    /// log region, so they always fit in an empty one.
    pub fn reinstate(&mut self, migrated: Vec<(Lpa, ChunkEntry)>) {
        for (lpa, entry) in migrated {
            self.append(lpa, entry.offset, &entry.data, entry.txid)
                .expect("migrated entries fit in an empty log");
        }
    }

    /// Clears the log without flushing anything (mkfs / tests only).
    pub fn reset(&mut self) {
        self.partitions.clear();
        self.used_bytes = 0;
        self.entries = 0;
        self.write_cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_log() -> WriteLog {
        WriteLog::new(&MssdConfig::small_test())
    }

    #[test]
    fn append_and_merge() {
        let mut log = small_log();
        log.append(3, 128, &[1u8; 64], None).unwrap();
        log.append(3, 192, &[2u8; 64], None).unwrap();
        assert_eq!(log.entries(), 2);
        assert!(log.has_page(3));
        let mut page = vec![0u8; 4096];
        log.merge_into(3, &mut page);
        assert_eq!(&page[128..192], &[1u8; 64][..]);
        assert_eq!(&page[192..256], &[2u8; 64][..]);
        assert_eq!(&page[0..128], &[0u8; 128][..]);
    }

    #[test]
    fn newer_write_wins_on_overlap() {
        let mut log = small_log();
        log.append(1, 0, &[1u8; 128], None).unwrap();
        log.append(1, 64, &[2u8; 64], None).unwrap();
        let mut page = vec![0u8; 4096];
        log.merge_into(1, &mut page);
        assert_eq!(&page[0..64], &[1u8; 64][..]);
        assert_eq!(&page[64..128], &[2u8; 64][..]);
    }

    #[test]
    fn coverage_detection() {
        let mut log = small_log();
        log.append(9, 0, &[5u8; 64], None).unwrap();
        log.append(9, 64, &[6u8; 64], None).unwrap();
        assert!(log.covers(9, 0, 128));
        assert!(log.covers(9, 32, 64));
        assert!(!log.covers(9, 0, 129));
        assert!(!log.covers(9, 200, 8));
        assert!(!log.covers(10, 0, 1));
        // Gap in the middle is detected.
        log.append(9, 256, &[7u8; 64], None).unwrap();
        assert!(!log.covers(9, 0, 320));
    }

    #[test]
    fn footprint_is_cacheline_aligned() {
        let e = ChunkEntry { offset: 0, data: vec![0; 1], txid: None, seq: 0, log_off: 0 };
        assert_eq!(e.footprint(), 64 + ENTRY_OVERHEAD);
        let e = ChunkEntry { offset: 0, data: vec![0; 65], txid: None, seq: 0, log_off: 0 };
        assert_eq!(e.footprint(), 128 + ENTRY_OVERHEAD);
    }

    #[test]
    fn log_full_is_reported() {
        let mut cfg = MssdConfig::small_test();
        cfg.dram_region_bytes = 4096;
        let mut log = WriteLog::new(&cfg);
        let mut appended = 0;
        loop {
            match log.append(appended, 0, &[1u8; 64], None) {
                Ok(()) => appended += 1,
                Err(err) => {
                    assert!(err.free < err.needed);
                    break;
                }
            }
        }
        assert!(appended > 0);
        assert!(log.utilization() > 0.9);
    }

    #[test]
    fn needs_cleaning_at_threshold() {
        let mut cfg = MssdConfig::small_test();
        cfg.dram_region_bytes = 8192;
        cfg.log_clean_threshold = 0.5;
        let mut log = WriteLog::new(&cfg);
        assert!(!log.needs_cleaning());
        for i in 0..52 {
            log.append(i, 0, &[0u8; 64], None).unwrap();
        }
        assert!(log.needs_cleaning());
    }

    #[test]
    fn invalidate_frees_space() {
        let mut log = small_log();
        log.append(4, 0, &[1u8; 64], None).unwrap();
        log.append(4, 64, &[1u8; 64], None).unwrap();
        log.append(5, 0, &[1u8; 64], None).unwrap();
        let used_before = log.used_bytes();
        assert_eq!(log.invalidate_page(4), 2);
        assert!(log.used_bytes() < used_before);
        assert!(!log.has_page(4));
        assert!(log.has_page(5));
        assert_eq!(log.invalidate_page(4), 0);
    }

    #[test]
    fn cleaning_separates_committed_and_uncommitted() {
        let mut log = small_log();
        log.append(1, 0, &[1u8; 64], Some(TxId(1))).unwrap();
        log.append(1, 64, &[2u8; 64], Some(TxId(2))).unwrap();
        log.append(2, 0, &[3u8; 64], None).unwrap();
        let batch = log.drain_for_cleaning(|tx| tx == TxId(1));
        assert_eq!(log.entries(), 0);
        assert_eq!(log.used_bytes(), 0);
        // Page 1 has one committed chunk, page 2 one non-transactional chunk.
        assert_eq!(batch.pages.len(), 2);
        assert_eq!(batch.pages[0].0, 1);
        assert_eq!(batch.pages[0].1.len(), 1);
        assert_eq!(batch.pages[1].0, 2);
        // The TxId(2) entry was migrated.
        assert_eq!(batch.migrated.len(), 1);
        assert_eq!(batch.migrated[0].0, 1);
        assert_eq!(batch.migrated[0].1.txid, Some(TxId(2)));
    }

    #[test]
    fn reinstate_restores_migrated_entries() {
        let mut log = small_log();
        log.append(7, 0, &[9u8; 64], Some(TxId(3))).unwrap();
        let batch = log.drain_for_cleaning(|_| false);
        assert!(batch.pages.is_empty());
        log.reinstate(batch.migrated);
        assert_eq!(log.entries(), 1);
        assert!(log.covers(7, 0, 64));
        let mut page = vec![0u8; 4096];
        log.merge_into(7, &mut page);
        assert_eq!(&page[0..64], &[9u8; 64][..]);
    }

    #[test]
    fn dirty_pages_are_sorted_unique() {
        let mut log = small_log();
        log.append(9, 0, &[1u8; 64], None).unwrap();
        log.append(2, 0, &[1u8; 64], None).unwrap();
        log.append(9, 64, &[1u8; 64], None).unwrap();
        assert_eq!(log.dirty_pages(), vec![2, 9]);
    }

    #[test]
    fn partitions_split_address_space() {
        let cfg = MssdConfig::small_test();
        let mut log = WriteLog::new(&cfg);
        let pages_per_partition = PARTITION_BYTES / cfg.page_size as u64;
        log.append(0, 0, &[1u8; 64], None).unwrap();
        log.append(pages_per_partition + 1, 0, &[1u8; 64], None).unwrap();
        assert_eq!(log.partitions.len(), 2);
        assert_eq!(log.dirty_pages().len(), 2);
    }
}
