//! The log-structured write log held in device DRAM (ByteFS firmware mode).
//!
//! §4.3 of the paper: byte-interface writes are appended to a circular log
//! region (256 MB by default) as 64-byte-aligned data entries, indexed by a
//! three-layer structure:
//!
//! 1. a **partition table** dividing the SSD address space into 16 MB
//!    partitions,
//! 2. a **skip list per partition** keyed by logical page address (LPA), and
//! 3. an **ordered chunk list per page** recording `(offset-in-page, length,
//!    log offset)` for each data entry.
//!
//! Entries carry the TxID of the transaction that wrote them; log cleaning
//! merges the newest *committed* version of each chunk into its flash page and
//! migrates uncommitted entries into the fresh log region.
//!
//! Two index implementations live here:
//!
//! * [`WriteLog`] — the original single-threaded index (one map of partitions
//!   behind whatever lock the caller provides). Kept as the sequential
//!   reference model; the equivalence property tests compare against it.
//! * [`ShardedWriteLog`] — the concurrent index used by the device: the
//!   paper's own first-layer partition key (LPA / 16 MB) hashes each page to
//!   one of [`LOG_SHARDS`] independently locked shards, while space
//!   accounting (`used_bytes`, `entries`, the append sequence) lives in
//!   shared atomics. Writers to different partitions never contend.
//!
//! The sharded log is **double-buffered** for background cleaning: each shard
//! holds an *active* region (appends land here) and a *sealed* region.
//! [`ShardedWriteLog::seal_shard`] flips a shard's active region into the
//! sealed slot under a brief per-shard lock (an O(1) map move), and the
//! background cleaner drains sealed regions page by page with
//! [`ShardedWriteLog::drain_sealed_step`] — so cleaning never holds more than
//! one shard lock at a time and foreground writers keep appending to fresh
//! active regions. Reads merge both regions; uncommitted entries drained from
//! a sealed region migrate back into the shard's active region with their
//! original sequence numbers. The stop-the-world drain
//! ([`ShardedWriteLog::lock_all`]) remains for recovery, forced cleaning and
//! the space-admission fallback.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::config::MssdConfig;
use crate::fault::{FaultKind, FaultPlan};
use crate::ftl::Lpa;
use crate::skiplist::SkipList;
use crate::stats::CachePadded;
use crate::txn::TxId;
use crate::CACHELINE;

/// Size of one first-layer partition of the SSD address space (16 MB, §4.3).
pub const PARTITION_BYTES: u64 = 16 << 20;

/// Fixed per-entry index overhead in bytes (block offset, log offset, length
/// and TxID, rounded up; the paper reports ~9 B per chunk entry plus
/// skip-list node overhead).
pub const ENTRY_OVERHEAD: usize = 16;

/// One byte-granular write buffered in the log region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Byte offset of this chunk within its flash page.
    pub offset: usize,
    /// The written bytes.
    pub data: Vec<u8>,
    /// Transaction the write belongs to (`None` for non-transactional writes,
    /// which are treated as immediately committed).
    pub txid: Option<TxId>,
    /// Global sequence number: larger means newer.
    pub seq: u64,
    /// Byte offset of the data entry inside the circular log region
    /// (informational; kept to mirror the paper's chunk-entry layout).
    pub log_off: usize,
}

impl ChunkEntry {
    /// Bytes of log-region space this entry occupies (64 B-aligned data plus
    /// index overhead).
    pub fn footprint(&self) -> usize {
        self.data.len().div_ceil(CACHELINE) * CACHELINE + ENTRY_OVERHEAD
    }

    /// End offset (exclusive) of the chunk within its page.
    pub fn end(&self) -> usize {
        self.offset + self.data.len()
    }
}

/// The result of draining the log for cleaning: per-page entries to merge into
/// flash, plus the uncommitted entries that must be migrated to the new log.
#[derive(Debug, Default)]
pub struct CleanBatch {
    /// For every dirty page: the entries to apply, already reduced to the
    /// newest committed version per byte range (in apply order).
    pub pages: Vec<(Lpa, Vec<ChunkEntry>)>,
    /// Entries whose transaction has not committed; they survive cleaning.
    pub migrated: Vec<(Lpa, ChunkEntry)>,
}

/// The write log: circular data region accounting plus the three-layer index.
#[derive(Debug)]
pub struct WriteLog {
    capacity_bytes: usize,
    used_bytes: usize,
    clean_threshold: f64,
    page_size: usize,
    pages_per_partition: u64,
    /// Layer 1 → Layer 2: partition index → skip list keyed by LPA.
    /// Layer 3 lives in the skip-list values (chunk lists).
    partitions: BTreeMap<u64, SkipList<Vec<ChunkEntry>>>,
    entries: usize,
    seq: u64,
    write_cursor: usize,
}

/// Error returned when an append does not fit in the log region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogFull {
    /// Bytes the rejected entry would have needed.
    pub needed: usize,
    /// Bytes currently free.
    pub free: usize,
}

impl std::fmt::Display for LogFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "write log full: need {} bytes, {} free", self.needed, self.free)
    }
}

impl std::error::Error for LogFull {}

impl WriteLog {
    /// Creates a write log sized by `cfg.dram_region_bytes`.
    pub fn new(cfg: &MssdConfig) -> Self {
        Self {
            capacity_bytes: cfg.dram_region_bytes,
            used_bytes: 0,
            clean_threshold: cfg.log_clean_threshold,
            page_size: cfg.page_size,
            pages_per_partition: (PARTITION_BYTES / cfg.page_size as u64).max(1),
            partitions: BTreeMap::new(),
            entries: 0,
            seq: 0,
            write_cursor: 0,
        }
    }

    /// Total log-region capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Bytes currently occupied (data entries + index overhead).
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Number of live chunk entries.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Log-region utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.used_bytes as f64 / self.capacity_bytes as f64
    }

    /// `true` once utilization exceeds the cleaning threshold (85 % by
    /// default) and background cleaning should start.
    pub fn needs_cleaning(&self) -> bool {
        self.utilization() >= self.clean_threshold
    }

    fn partition_of(&self, lpa: Lpa) -> u64 {
        lpa / self.pages_per_partition
    }

    /// Appends a byte-granular write to the log.
    ///
    /// # Errors
    ///
    /// Returns [`LogFull`] when the entry does not fit; the caller must run
    /// log cleaning first.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the chunk crosses a page boundary — the
    /// device splits host writes per page before appending.
    pub fn append(
        &mut self,
        lpa: Lpa,
        offset: usize,
        data: &[u8],
        txid: Option<TxId>,
    ) -> Result<(), LogFull> {
        debug_assert!(!data.is_empty(), "empty log append");
        debug_assert!(
            offset + data.len() <= self.page_size,
            "log entries must not cross page boundaries"
        );
        let entry = ChunkEntry {
            offset,
            data: data.to_vec(),
            txid,
            seq: self.seq,
            log_off: self.write_cursor,
        };
        let footprint = entry.footprint();
        if self.used_bytes + footprint > self.capacity_bytes {
            return Err(LogFull { needed: footprint, free: self.capacity_bytes - self.used_bytes });
        }
        self.seq += 1;
        self.used_bytes += footprint;
        self.write_cursor = (self.write_cursor + footprint) % self.capacity_bytes.max(1);
        self.entries += 1;
        let partition = self.partition_of(lpa);
        push_chunk(&mut self.partitions, partition, lpa, entry);
        Ok(())
    }

    /// Whether any log entries exist for the page.
    pub fn has_page(&self, lpa: Lpa) -> bool {
        self.partitions.get(&self.partition_of(lpa)).is_some_and(|list| list.contains_key(lpa))
    }

    /// Returns `true` if the byte range `[offset, offset + len)` of the page is
    /// fully covered by log entries, i.e. a byte-interface read can be served
    /// from device DRAM without touching flash.
    pub fn covers(&self, lpa: Lpa, offset: usize, len: usize) -> bool {
        let Some(chunks) = self.chunks(lpa) else { return false };
        chunks_cover(chunks, offset, len)
    }

    fn chunks(&self, lpa: Lpa) -> Option<&Vec<ChunkEntry>> {
        self.partitions.get(&self.partition_of(lpa))?.get(lpa)
    }

    /// Applies all log entries for `lpa` onto `page` in sequence order (oldest
    /// first), so the newest write wins for overlapping ranges.
    pub fn merge_into(&self, lpa: Lpa, page: &mut [u8]) {
        if let Some(chunks) = self.chunks(lpa) {
            merge_chunks_into(chunks, page);
        }
    }

    /// Invalidates all log entries of a page (the host overwrote the whole
    /// page through the block interface, §4.4). Returns the number of entries
    /// dropped.
    pub fn invalidate_page(&mut self, lpa: Lpa) -> usize {
        let partition = self.partition_of(lpa);
        let Some(list) = self.partitions.get_mut(&partition) else { return 0 };
        let Some(chunks) = list.remove(lpa) else { return 0 };
        let freed: usize = chunks.iter().map(ChunkEntry::footprint).sum();
        self.used_bytes -= freed;
        self.entries -= chunks.len();
        if list.is_empty() {
            self.partitions.remove(&partition);
        }
        chunks.len()
    }

    /// All page addresses that currently have log entries, in ascending order.
    pub fn dirty_pages(&self) -> Vec<Lpa> {
        self.partitions.values().flat_map(|list| list.keys()).collect()
    }

    /// Drains the entire log for cleaning.
    ///
    /// `is_committed` decides whether an entry's transaction has a TxLog commit
    /// record. Committed entries are grouped per page (Algorithm 1 lines 2-11);
    /// uncommitted ones are returned separately so the device can migrate them
    /// into the fresh log (line 8). After this call the log is empty.
    pub fn drain_for_cleaning<F>(&mut self, is_committed: F) -> CleanBatch
    where
        F: Fn(TxId) -> bool,
    {
        let mut batch = CleanBatch::default();
        let partitions = std::mem::take(&mut self.partitions);
        drain_partitions_into(partitions, &is_committed, true, &mut batch);
        batch.pages.sort_by_key(|(lpa, _)| *lpa);
        self.used_bytes = 0;
        self.entries = 0;
        self.write_cursor = 0;
        batch
    }

    /// Re-inserts migrated (uncommitted) entries after cleaning, preserving
    /// each entry's original sequence number so a migrated chunk can never
    /// outrank a write that happened after it.
    ///
    /// # Panics
    ///
    /// Panics if the migrated entries do not fit — they came out of the same
    /// log region, so they always fit in an empty one.
    pub fn reinstate(&mut self, migrated: Vec<(Lpa, ChunkEntry)>) {
        for (lpa, mut entry) in migrated {
            let footprint = entry.footprint();
            assert!(
                self.used_bytes + footprint <= self.capacity_bytes,
                "migrated entries fit in an empty log"
            );
            entry.log_off = self.write_cursor;
            self.used_bytes += footprint;
            self.write_cursor = (self.write_cursor + footprint) % self.capacity_bytes.max(1);
            self.entries += 1;
            let partition = self.partition_of(lpa);
            push_chunk(&mut self.partitions, partition, lpa, entry);
        }
    }

    /// Clears the log without flushing anything (mkfs / tests only).
    pub fn reset(&mut self) {
        self.partitions.clear();
        self.used_bytes = 0;
        self.entries = 0;
        self.write_cursor = 0;
    }
}

/// Pushes one chunk entry onto its page's chunk list in a three-layer index
/// (shared by [`WriteLog`] and [`ShardedWriteLog`] so the reference model and
/// the concurrent implementation cannot drift).
fn push_chunk(
    partitions: &mut BTreeMap<u64, SkipList<Vec<ChunkEntry>>>,
    partition: u64,
    lpa: Lpa,
    entry: ChunkEntry,
) {
    let list = partitions.entry(partition).or_default();
    match list.get_mut(lpa) {
        Some(chunks) => chunks.push(entry),
        None => {
            list.insert(lpa, vec![entry]);
        }
    }
}

/// Splits one page's drained chunks into the committed set to merge into
/// flash (seq-sorted) and the surviving set to keep in the log.
///
/// `clip_survivors` selects between the two drain semantics:
///
/// * **Cleaning** (`true`): uncommitted chunks survive (they migrate into
///   the fresh log region) — but flash-merging a *newer* committed chunk
///   erases its sequence number, so any bytes of an older surviving chunk
///   that a newer committed chunk overwrites must be **clipped off now**:
///   once the older transaction commits, its log entry would otherwise
///   overlay the newer flash bytes on every read, resurrecting overwritten
///   data. Clipping is observably exact — the dropped bytes could never
///   win a read again (newer committed data always shadows them), and the
///   unshadowed remainder keeps its seq/TxID and becomes visible if the
///   transaction commits — and, unlike deferring the committed chunks
///   instead, it frees their space unconditionally (one stale open
///   transaction cannot pin the log full).
/// * **Recovery** (`false`): the survivors are about to be discarded, so
///   they are returned raw (preserving their count for reporting) and
///   every committed chunk merges; seq order within the page image settles
///   overlaps.
fn split_page_chunks<F>(
    chunks: Vec<ChunkEntry>,
    is_committed: &F,
    clip_survivors: bool,
) -> (Vec<ChunkEntry>, Vec<ChunkEntry>)
where
    F: Fn(TxId) -> bool,
{
    let mut committed: Vec<ChunkEntry> = Vec::new();
    let mut survivors: Vec<ChunkEntry> = Vec::new();
    for c in chunks {
        let ok = match c.txid {
            None => true,
            Some(txid) => is_committed(txid),
        };
        if ok {
            committed.push(c);
        } else {
            survivors.push(c);
        }
    }
    committed.sort_by_key(|c| c.seq);
    if clip_survivors && !committed.is_empty() {
        survivors = survivors
            .into_iter()
            .flat_map(|u| {
                let shadows: Vec<(usize, usize)> = committed
                    .iter()
                    .filter(|c| c.seq > u.seq)
                    .map(|c| (c.offset, c.end()))
                    .collect();
                clip_chunk(u, shadows)
            })
            .collect();
    }
    (committed, survivors)
}

/// Subtracts the `shadows` byte ranges from `u`, returning the surviving
/// sub-chunks (each keeping `u`'s seq and TxID). An unshadowed chunk comes
/// back whole; a fully shadowed one vanishes.
fn clip_chunk(u: ChunkEntry, mut shadows: Vec<(usize, usize)>) -> Vec<ChunkEntry> {
    if shadows.is_empty() {
        return vec![u];
    }
    shadows.sort_unstable();
    let mut out = Vec::new();
    let mut cursor = u.offset;
    let end = u.end();
    let emit = |from: usize, to: usize, out: &mut Vec<ChunkEntry>| {
        if from < to {
            out.push(ChunkEntry {
                offset: from,
                data: u.data[from - u.offset..to - u.offset].to_vec(),
                txid: u.txid,
                seq: u.seq,
                log_off: u.log_off,
            });
        }
    };
    for (s, e) in shadows {
        let s = s.clamp(u.offset, end);
        let e = e.clamp(u.offset, end);
        if s > cursor {
            emit(cursor, s, &mut out);
        }
        cursor = cursor.max(e);
        if cursor >= end {
            break;
        }
    }
    emit(cursor, end, &mut out);
    out
}

/// Splits drained partitions into a [`CleanBatch`], consuming the entries —
/// no chunk data is copied (beyond clipped survivors), which matters for
/// the sharded log where this runs inside the stop-the-world section with
/// every shard locked. See [`split_page_chunks`] for the
/// cleaning-vs-recovery semantics of `clip_survivors`.
fn drain_partitions_into<F>(
    partitions: BTreeMap<u64, SkipList<Vec<ChunkEntry>>>,
    is_committed: &F,
    clip_survivors: bool,
    batch: &mut CleanBatch,
) where
    F: Fn(TxId) -> bool,
{
    for (_, mut list) in partitions {
        while let Some((lpa, chunks)) = list.pop_first() {
            let (committed, survivors) = split_page_chunks(chunks, is_committed, clip_survivors);
            for c in survivors {
                batch.migrated.push((lpa, c));
            }
            if !committed.is_empty() {
                batch.pages.push((lpa, committed));
            }
        }
    }
}

/// `true` when `[offset, offset + len)` is fully covered by the chunks.
fn chunks_cover(chunks: &[ChunkEntry], offset: usize, len: usize) -> bool {
    ranges_cover(chunks.iter().map(|c| (c.offset, c.end())), offset, len)
}

/// `true` when `[offset, offset + len)` is fully covered by the chunks.
fn refs_cover(chunks: &[&ChunkEntry], offset: usize, len: usize) -> bool {
    ranges_cover(chunks.iter().map(|c| (c.offset, c.end())), offset, len)
}

/// Coverage check over `(start, end)` ranges.
fn ranges_cover(ranges: impl Iterator<Item = (usize, usize)>, offset: usize, len: usize) -> bool {
    if len == 0 {
        return true;
    }
    // Merge the chunk ranges and check coverage.
    let mut ranges: Vec<(usize, usize)> = ranges.collect();
    ranges.sort_unstable();
    let mut covered_to = offset;
    for (start, end) in ranges {
        if start > covered_to {
            if covered_to >= offset + len {
                break;
            }
            if start >= offset + len {
                break;
            }
            return false;
        }
        covered_to = covered_to.max(end);
    }
    covered_to >= offset + len
}

/// Applies `chunks` onto `page` oldest-first so the newest write wins.
fn merge_chunks_into(chunks: &[ChunkEntry], page: &mut [u8]) {
    let mut ordered: Vec<&ChunkEntry> = chunks.iter().collect();
    merge_refs_into(&mut ordered, page);
}

/// Applies `chunks` onto `page` oldest-first so the newest write wins.
/// Sorts the ref slice by sequence number in place.
fn merge_refs_into(chunks: &mut [&ChunkEntry], page: &mut [u8]) {
    chunks.sort_by_key(|c| c.seq);
    for c in chunks {
        let end = c.end().min(page.len());
        if c.offset < end {
            page[c.offset..end].copy_from_slice(&c.data[..end - c.offset]);
        }
    }
}

/// Number of independently locked shards of the [`ShardedWriteLog`] index.
///
/// The shard key is the paper's own first-layer partition index (LPA / 16 MB),
/// so writers working in different partitions take different locks. 16 shards
/// keeps the false-sharing probability below 7 % for up to two concurrent
/// writers per partition-sized region while costing only 16 mutexes.
pub const LOG_SHARDS: usize = 16;

/// One region of a log shard: partition index → skip list keyed by LPA
/// (layers 1 and 2 of the paper's index; layer 3 is the chunk lists in the
/// skip-list values).
type Region = BTreeMap<u64, SkipList<Vec<ChunkEntry>>>;

/// One shard of the concurrent write-log index: the partitions (and their
/// skip lists) whose index hashes to this shard, double-buffered into an
/// active and a sealed region.
#[derive(Debug, Default)]
struct LogShard {
    /// The region appends land in.
    active: Region,
    /// The region currently being drained by the cleaner (empty when none
    /// is sealed). Reads merge both regions; appends never touch this.
    sealed: Region,
}

impl LogShard {
    /// The page's chunk lists in the sealed and active regions. Returned as
    /// two borrows so the overwhelmingly common cases — no entries at all, or
    /// entries in only one region — cost no allocation on the read hot path;
    /// only a page split across both regions (i.e. written again while the
    /// cleaner drains its older chunks) pays for a combined ref vector.
    fn region_chunks(
        &self,
        partition: u64,
        lpa: Lpa,
    ) -> (Option<&Vec<ChunkEntry>>, Option<&Vec<ChunkEntry>>) {
        (
            self.sealed.get(&partition).and_then(|list| list.get(lpa)),
            self.active.get(&partition).and_then(|list| list.get(lpa)),
        )
    }
}

/// Coverage of `[offset, offset + len)` by chunks that may span both regions.
fn both_cover(
    sealed: Option<&Vec<ChunkEntry>>,
    active: Option<&Vec<ChunkEntry>>,
    offset: usize,
    len: usize,
) -> bool {
    match (sealed, active) {
        (None, None) => len == 0,
        (Some(c), None) | (None, Some(c)) => chunks_cover(c, offset, len),
        (Some(s), Some(a)) => {
            let refs: Vec<&ChunkEntry> = s.iter().chain(a.iter()).collect();
            refs_cover(&refs, offset, len)
        }
    }
}

/// Merges chunks from both regions onto `page`, newest (by seq) winning.
fn merge_both_into(
    sealed: Option<&Vec<ChunkEntry>>,
    active: Option<&Vec<ChunkEntry>>,
    page: &mut [u8],
) {
    match (sealed, active) {
        (None, None) => {}
        (Some(c), None) | (None, Some(c)) => merge_chunks_into(c, page),
        (Some(s), Some(a)) => {
            let mut refs: Vec<&ChunkEntry> = s.iter().chain(a.iter()).collect();
            merge_refs_into(&mut refs, page);
        }
    }
}

/// The concurrent write log used by the device: per-partition-shard locking
/// for the index, lock-free atomics for space accounting.
///
/// Observationally equivalent to [`WriteLog`] under single-threaded use (the
/// property tests in `tests/sharded_log_equiv.rs` check this); under
/// concurrent use, appends to different partitions proceed in parallel and
/// only [`ShardedWriteLog::drain_for_cleaning`] stops the world (it locks all
/// shards, which is exactly the paper's stop-and-clean semantics).
///
/// Lock order: callers holding device-level locks (FTL, TxLog) may take shard
/// locks, never the reverse. Within this type, shards are only ever locked
/// one at a time or in ascending index order.
#[derive(Debug)]
pub struct ShardedWriteLog {
    shards: Vec<Mutex<LogShard>>,
    capacity_bytes: usize,
    clean_threshold: f64,
    page_size: usize,
    pages_per_partition: u64,
    used_bytes: CachePadded<AtomicUsize>,
    entries: CachePadded<AtomicUsize>,
    seq: CachePadded<AtomicU64>,
    write_cursor: CachePadded<AtomicUsize>,
    /// Power-failure injection plan shared with the rest of the device.
    /// Gates sealing and sealed-region drains so a cut mid-cleaning leaves a
    /// partially-drained sealed region behind, exactly like real power loss.
    fault: FaultPlan,
}

impl ShardedWriteLog {
    /// Creates a sharded write log sized by `cfg.dram_region_bytes`.
    pub fn new(cfg: &MssdConfig) -> Self {
        Self {
            shards: (0..LOG_SHARDS).map(|_| Mutex::new(LogShard::default())).collect(),
            capacity_bytes: cfg.dram_region_bytes,
            clean_threshold: cfg.log_clean_threshold,
            page_size: cfg.page_size,
            pages_per_partition: (PARTITION_BYTES / cfg.page_size as u64).max(1),
            used_bytes: CachePadded::default(),
            entries: CachePadded::default(),
            seq: CachePadded::default(),
            write_cursor: CachePadded::default(),
            fault: cfg.fault.clone(),
        }
    }

    /// Total log-region capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Bytes currently occupied (data entries + index overhead).
    pub fn used_bytes(&self) -> usize {
        self.used_bytes.0.load(Ordering::Relaxed)
    }

    /// Number of live chunk entries.
    pub fn entries(&self) -> usize {
        self.entries.0.load(Ordering::Relaxed)
    }

    /// Log-region utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.used_bytes() as f64 / self.capacity_bytes as f64
    }

    /// `true` once utilization exceeds the cleaning threshold.
    pub fn needs_cleaning(&self) -> bool {
        self.utilization() >= self.clean_threshold
    }

    fn partition_of(&self, lpa: Lpa) -> u64 {
        lpa / self.pages_per_partition
    }

    /// The shard index serving `lpa` (exposed so tests can construct
    /// deliberately contended or disjoint access patterns).
    pub fn shard_of(&self, lpa: Lpa) -> usize {
        (self.partition_of(lpa) % LOG_SHARDS as u64) as usize
    }

    /// Appends a byte-granular write, taking only the one shard lock that
    /// covers the page's partition.
    ///
    /// # Errors
    ///
    /// Returns [`LogFull`] when the entry does not fit; the caller must run
    /// log cleaning first.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the chunk crosses a page boundary.
    pub fn append(
        &self,
        lpa: Lpa,
        offset: usize,
        data: &[u8],
        txid: Option<TxId>,
    ) -> Result<(), LogFull> {
        debug_assert!(!data.is_empty(), "empty log append");
        debug_assert!(
            offset + data.len() <= self.page_size,
            "log entries must not cross page boundaries"
        );
        // Lock the shard *before* reserving space: drain_for_cleaning holds
        // every shard lock while it zeroes the space accounting, so holding
        // ours here means no reservation can race with a drain.
        let mut shard = self.shards[self.shard_of(lpa)].lock();
        let footprint = data.len().div_ceil(CACHELINE) * CACHELINE + ENTRY_OVERHEAD;
        self.try_reserve(footprint)?;
        self.insert_reserved(&mut shard, lpa, offset, data, txid, footprint);
        Ok(())
    }

    /// Reserves `footprint` bytes of log space, failing if the region is full.
    fn try_reserve(&self, footprint: usize) -> Result<(), LogFull> {
        let mut used = self.used_bytes.0.load(Ordering::Relaxed);
        loop {
            if used + footprint > self.capacity_bytes {
                return Err(LogFull {
                    needed: footprint,
                    free: self.capacity_bytes.saturating_sub(used),
                });
            }
            match self.used_bytes.0.compare_exchange_weak(
                used,
                used + footprint,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(()),
                Err(cur) => used = cur,
            }
        }
    }

    /// Inserts an entry whose space is already accounted for. The caller holds
    /// the shard lock for `lpa`.
    fn insert_reserved(
        &self,
        shard: &mut LogShard,
        lpa: Lpa,
        offset: usize,
        data: &[u8],
        txid: Option<TxId>,
        footprint: usize,
    ) {
        let entry = ChunkEntry {
            offset,
            data: data.to_vec(),
            txid,
            seq: self.seq.0.fetch_add(1, Ordering::Relaxed),
            log_off: self.write_cursor.0.fetch_add(footprint, Ordering::Relaxed)
                % self.capacity_bytes.max(1),
        };
        self.entries.0.fetch_add(1, Ordering::Relaxed);
        let partition = self.partition_of(lpa);
        push_chunk(&mut shard.active, partition, lpa, entry);
    }

    /// Whether any log entries exist for the page (in either region).
    pub fn has_page(&self, lpa: Lpa) -> bool {
        let shard = self.shards[self.shard_of(lpa)].lock();
        let (sealed, active) = shard.region_chunks(self.partition_of(lpa), lpa);
        sealed.is_some() || active.is_some()
    }

    /// `true` if `[offset, offset + len)` of the page is fully covered by log
    /// entries (across both regions).
    pub fn covers(&self, lpa: Lpa, offset: usize, len: usize) -> bool {
        let shard = self.shards[self.shard_of(lpa)].lock();
        let (sealed, active) = shard.region_chunks(self.partition_of(lpa), lpa);
        (sealed.is_some() || active.is_some()) && both_cover(sealed, active, offset, len)
    }

    /// Serves a byte read entirely from the log if the range is covered:
    /// returns the merged bytes of `[offset, offset + len)` under a single
    /// shard-lock acquisition, or `None` when flash must be consulted.
    pub fn read_covered(&self, lpa: Lpa, offset: usize, len: usize) -> Option<Vec<u8>> {
        let shard = self.shards[self.shard_of(lpa)].lock();
        let (sealed, active) = shard.region_chunks(self.partition_of(lpa), lpa);
        if (sealed.is_none() && active.is_none()) || !both_cover(sealed, active, offset, len) {
            return None;
        }
        let mut page = vec![0u8; self.page_size];
        merge_both_into(sealed, active, &mut page);
        Some(page[offset..offset + len].to_vec())
    }

    /// Reads `[offset, offset + len)` of a page through the log: ranges fully
    /// covered by log entries are served without calling `fetch`; otherwise
    /// `fetch` supplies the backing flash page (and its latency) and the log
    /// entries are overlaid. The whole read happens under the page's shard
    /// lock, so a concurrent cleaner (which takes the same shard lock per
    /// page) can never drain entries between the fetch and the overlay.
    pub fn read_range<F>(&self, lpa: Lpa, offset: usize, len: usize, fetch: F) -> (Vec<u8>, u64)
    where
        F: FnOnce() -> (Vec<u8>, u64),
    {
        let shard = self.shards[self.shard_of(lpa)].lock();
        let (sealed, active) = shard.region_chunks(self.partition_of(lpa), lpa);
        if (sealed.is_some() || active.is_some()) && both_cover(sealed, active, offset, len) {
            let mut page = vec![0u8; self.page_size];
            merge_both_into(sealed, active, &mut page);
            return (page[offset..offset + len].to_vec(), 0);
        }
        let (mut page, cost) = fetch();
        merge_both_into(sealed, active, &mut page);
        (page[offset..offset + len].to_vec(), cost)
    }

    /// Applies all log entries for `lpa` (both regions) onto `page`
    /// oldest-first, so the newest write wins.
    pub fn merge_into(&self, lpa: Lpa, page: &mut [u8]) {
        let shard = self.shards[self.shard_of(lpa)].lock();
        let (sealed, active) = shard.region_chunks(self.partition_of(lpa), lpa);
        merge_both_into(sealed, active, page);
    }

    /// Invalidates all log entries of a page (both regions). Returns the
    /// number dropped.
    pub fn invalidate_page(&self, lpa: Lpa) -> usize {
        let (dropped, ()) = self.invalidate_page_and(lpa, || ());
        dropped
    }

    /// Invalidates all log entries of a page, then runs `f` — still under the
    /// page's shard lock. The device uses this for block-interface
    /// overwrites: the invalidation and the FTL buffer write must be atomic
    /// against the cleaner, or a drained stale chunk could be merged on top
    /// of the fresh block data.
    pub fn invalidate_page_and<R>(&self, lpa: Lpa, f: impl FnOnce() -> R) -> (usize, R) {
        let partition = self.partition_of(lpa);
        let mut shard = self.shards[self.shard_of(lpa)].lock();
        let mut dropped = 0;
        let LogShard { sealed, active } = &mut *shard;
        for region in [sealed, active] {
            let Some(list) = region.get_mut(&partition) else { continue };
            let Some(chunks) = list.remove(lpa) else { continue };
            let freed: usize = chunks.iter().map(ChunkEntry::footprint).sum();
            self.used_bytes.0.fetch_sub(freed, Ordering::Relaxed);
            self.entries.0.fetch_sub(chunks.len(), Ordering::Relaxed);
            if list.is_empty() {
                region.remove(&partition);
            }
            dropped += chunks.len();
        }
        let r = f();
        (dropped, r)
    }

    /// All page addresses that currently have log entries, in ascending order.
    /// Shards are visited one at a time, so the result is a consistent union
    /// only at quiescent points.
    pub fn dirty_pages(&self) -> Vec<Lpa> {
        let mut pages: Vec<Lpa> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock();
            for region in [&shard.sealed, &shard.active] {
                pages.extend(region.values().flat_map(|list| list.keys()));
            }
        }
        pages.sort_unstable();
        pages.dedup();
        pages
    }

    // ------------------------------------------------------------------
    // Double-buffered cleaning
    // ------------------------------------------------------------------

    /// Seals a shard's active region: flips it into the sealed slot under a
    /// brief per-shard lock (an O(1) map move — the paper's double-buffered
    /// region switch). Returns `false` when there is nothing to seal or the
    /// previous sealed region has not been fully drained yet.
    pub fn seal_shard(&self, shard: usize) -> bool {
        if self.fault.is_cut() {
            return false; // power is off: the region flip never happens
        }
        let mut guard = self.shards[shard].lock();
        if guard.active.is_empty() || !guard.sealed.is_empty() {
            return false;
        }
        guard.sealed = std::mem::take(&mut guard.active);
        true
    }

    /// Seals every shard that has unsealed entries (used before crash tests
    /// and by the foreground space-admission fallback).
    pub fn seal_all(&self) {
        for i in 0..self.shards.len() {
            self.seal_shard(i);
        }
    }

    /// Whether any shard currently holds a sealed, not-yet-drained region.
    pub fn has_sealed_work(&self) -> bool {
        self.shards.iter().any(|s| !s.lock().sealed.is_empty())
    }

    /// Drains up to `max_pages` pages from a shard's sealed region, holding
    /// only that one shard lock. For each page, the committed chunks are
    /// handed to `apply` — which merges them into flash while the shard lock
    /// is still held, so readers and block-interface writers of those pages
    /// cannot interleave with the merge — and their space is released;
    /// uncommitted chunks migrate back into the shard's active region with
    /// their original sequence numbers.
    ///
    /// `verdicts` is invoked **once per step**, after the shard lock is
    /// taken, and returns the commit predicate used for every chunk of the
    /// step (the device has it lock the TxLog — shard → txlog order — and
    /// hold the guard for the whole step). One consistent snapshot matters:
    /// sampling per chunk would let a racing `COMMIT` split one
    /// transaction's chunks for the *same page* between merge-to-flash and
    /// migrate-back, and the migrated older chunk would later overlay the
    /// newer merged data.
    ///
    /// Returns the number of pages processed (0 means the sealed region is
    /// empty) plus the chunk count and the accumulated `apply` cost.
    pub fn drain_sealed_step<F, V, G>(
        &self,
        shard: usize,
        max_pages: usize,
        verdicts: F,
        mut apply: G,
    ) -> SealedStep
    where
        F: FnOnce() -> V,
        V: Fn(TxId) -> bool,
        G: FnMut(Lpa, &[ChunkEntry]) -> u64,
    {
        let mut guard = self.shards[shard].lock();
        let is_committed = verdicts();
        let mut step = SealedStep::default();
        while step.pages < max_pages {
            let Some((&partition, _)) = guard.sealed.iter().next() else { break };
            // One counted fault step per sealed page about to be migrated: a
            // power cut here leaves the region partially drained (pages not
            // yet migrated stay sealed; pages already merged are in the FTL
            // write buffer, which is battery-backed).
            if !self.fault.step(FaultKind::SealDrain) {
                break;
            }
            let list = guard.sealed.get_mut(&partition).expect("partition present");
            let Some((lpa, chunks)) = list.pop_first() else {
                guard.sealed.remove(&partition);
                continue;
            };
            if list.is_empty() {
                guard.sealed.remove(&partition);
            }
            let drained_count = chunks.len();
            let drained_bytes: usize = chunks.iter().map(ChunkEntry::footprint).sum();
            // Committed chunks merge into flash; uncommitted survivors go
            // back into the active region with their original seq — clipped
            // against newer committed ranges, exactly like the
            // stop-the-world drain (see split_page_chunks).
            let (committed, survivors) = split_page_chunks(chunks, &is_committed, true);
            let mut kept_count = 0usize;
            let mut kept_bytes = 0usize;
            for c in survivors {
                kept_count += 1;
                kept_bytes += c.footprint();
                push_chunk(&mut guard.active, partition, lpa, c);
            }
            if !committed.is_empty() {
                step.cost += apply(lpa, &committed);
                step.merged_pages += 1;
                step.chunks += committed.len();
            }
            // Space accounting: everything drained minus what survived
            // (clipping usually shrinks survivors; re-alignment of split
            // pieces can in corner cases grow them, so keep it signed).
            if drained_bytes >= kept_bytes {
                self.used_bytes.0.fetch_sub(drained_bytes - kept_bytes, Ordering::Relaxed);
            } else {
                self.used_bytes.0.fetch_add(kept_bytes - drained_bytes, Ordering::Relaxed);
            }
            if kept_count >= drained_count {
                self.entries.0.fetch_add(kept_count - drained_count, Ordering::Relaxed);
            } else {
                self.entries.0.fetch_sub(drained_count - kept_count, Ordering::Relaxed);
            }
            step.pages += 1;
        }
        step
    }

    /// Locks every shard (ascending index order) for a stop-the-world
    /// operation: recovery, forced cleaning, and the space-admission
    /// fallback. While the returned guard lives, no append, read or cleaner
    /// step can interleave.
    pub fn lock_all(&self) -> AllShards<'_> {
        AllShards { log: self, guards: self.shards.iter().map(|s| s.lock()).collect() }
    }

    /// Drains the entire log (sealed and active regions of every shard) for
    /// cleaning. Holds every shard lock for the duration.
    ///
    /// Note for callers that subsequently merge the batch into flash: prefer
    /// [`ShardedWriteLog::lock_all`] + [`AllShards::drain`] and do the merge
    /// while the guard is held, otherwise a concurrent reader can observe the
    /// window where entries have left the log but not yet reached flash.
    pub fn drain_for_cleaning<F>(&self, is_committed: F) -> CleanBatch
    where
        F: Fn(TxId) -> bool,
    {
        self.lock_all().drain(is_committed)
    }

    /// Re-inserts migrated (uncommitted) entries after cleaning, preserving
    /// each entry's original sequence number: a writer may append a newer
    /// version of the same range between the drain and this call, and the
    /// migrated (older) chunk must not outrank it in merge order.
    ///
    /// Unlike [`ShardedWriteLog::append`] this never fails: the entries came
    /// out of the same log region, so semantically they still own their
    /// space. If other writers raced in after the drain, the accounting may
    /// transiently overshoot capacity, which simply triggers the next
    /// cleaning pass sooner.
    pub fn reinstate(&self, migrated: Vec<(Lpa, ChunkEntry)>) {
        for (lpa, mut entry) in migrated {
            let mut shard = self.shards[self.shard_of(lpa)].lock();
            let footprint = entry.footprint();
            self.used_bytes.0.fetch_add(footprint, Ordering::Relaxed);
            entry.log_off = self.write_cursor.0.fetch_add(footprint, Ordering::Relaxed)
                % self.capacity_bytes.max(1);
            self.entries.0.fetch_add(1, Ordering::Relaxed);
            let partition = self.partition_of(lpa);
            push_chunk(&mut shard.active, partition, lpa, entry);
        }
    }

    /// Clears the log without flushing anything (mkfs / tests only).
    pub fn reset(&self) {
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.lock()).collect();
        for guard in &mut guards {
            guard.active.clear();
            guard.sealed.clear();
        }
        self.used_bytes.0.store(0, Ordering::Relaxed);
        self.entries.0.store(0, Ordering::Relaxed);
        self.write_cursor.0.store(0, Ordering::Relaxed);
    }

    // ------------------------------------------------------------------
    // Crash imaging (crashkit)
    // ------------------------------------------------------------------

    /// Exports every entry (both regions of every shard) plus the next
    /// sequence number, as battery-backed DRAM content for a crash image.
    /// Entries come out sorted by `(lpa, seq)` so the image is deterministic.
    /// Only meaningful at a quiescent point (shards are locked one at a
    /// time).
    pub fn export_entries(&self) -> (Vec<LogEntryImage>, u64) {
        let mut out = Vec::with_capacity(self.entries());
        for shard in &self.shards {
            let guard = shard.lock();
            for (region, sealed) in [(&guard.sealed, true), (&guard.active, false)] {
                for list in region.values() {
                    for (lpa, chunks) in list.iter() {
                        for c in chunks {
                            out.push(LogEntryImage {
                                lpa,
                                offset: c.offset,
                                data: c.data.clone(),
                                txid: c.txid,
                                seq: c.seq,
                                sealed,
                            });
                        }
                    }
                }
            }
        }
        out.sort_by_key(|e| (e.lpa, e.seq));
        (out, self.seq.0.load(Ordering::SeqCst))
    }

    /// Restores entries captured by [`ShardedWriteLog::export_entries`] into
    /// an empty log, preserving sequence numbers and region (sealed/active)
    /// placement. Used by crash-image restoration; panics if the log is not
    /// empty.
    pub fn restore_entries(&self, entries: &[LogEntryImage], next_seq: u64) {
        assert_eq!(self.entries(), 0, "crash-image restore requires an empty log");
        for e in entries {
            let mut shard = self.shards[self.shard_of(e.lpa)].lock();
            let entry = ChunkEntry {
                offset: e.offset,
                data: e.data.clone(),
                txid: e.txid,
                seq: e.seq,
                log_off: self.write_cursor.0.load(Ordering::Relaxed),
            };
            let footprint = entry.footprint();
            self.used_bytes.0.fetch_add(footprint, Ordering::Relaxed);
            self.write_cursor.0.fetch_add(footprint, Ordering::Relaxed);
            self.entries.0.fetch_add(1, Ordering::Relaxed);
            let partition = self.partition_of(e.lpa);
            let region = if e.sealed { &mut shard.sealed } else { &mut shard.active };
            push_chunk(region, partition, e.lpa, entry);
        }
        self.seq.0.store(next_seq, Ordering::SeqCst);
    }
}

/// One write-log entry captured in a crash image (see
/// [`ShardedWriteLog::export_entries`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntryImage {
    /// Logical page the chunk belongs to.
    pub lpa: Lpa,
    /// Byte offset within the page.
    pub offset: usize,
    /// The written bytes.
    pub data: Vec<u8>,
    /// Transaction the write belongs to (`None` = immediately committed).
    pub txid: Option<TxId>,
    /// Original global sequence number (preserved across restore).
    pub seq: u64,
    /// Whether the entry sat in a sealed (being-drained) region.
    pub sealed: bool,
}

/// Progress report of one [`ShardedWriteLog::drain_sealed_step`] call.
#[derive(Debug, Default, Clone, Copy)]
pub struct SealedStep {
    /// Pages taken out of the sealed region (committed or migrated).
    pub pages: usize,
    /// Pages that had committed chunks and were merged into flash.
    pub merged_pages: usize,
    /// Committed chunks merged into flash. Zero means the step freed no log
    /// space (everything it processed was uncommitted and migrated back).
    pub chunks: usize,
    /// Accumulated cost returned by the apply callback.
    pub cost: u64,
}

/// Every shard locked at once (see [`ShardedWriteLog::lock_all`]).
pub struct AllShards<'a> {
    log: &'a ShardedWriteLog,
    guards: Vec<parking_lot::MutexGuard<'a, LogShard>>,
}

impl AllShards<'_> {
    /// Drains sealed and active regions of every shard into a [`CleanBatch`]
    /// with **cleaning** semantics — uncommitted chunks survive (the caller
    /// reinstates `migrated`), clipped against the byte ranges of newer
    /// committed chunks being merged (see `split_page_chunks`). Zeroes
    /// the space accounting; the guard stays held, so the caller can merge
    /// the batch into flash and [`AllShards::reinstate`] the remainder with
    /// no reader-visible window.
    pub fn drain<F>(&mut self, is_committed: F) -> CleanBatch
    where
        F: Fn(TxId) -> bool,
    {
        self.drain_inner(is_committed, true)
    }

    /// Drains with **recovery** semantics: uncommitted chunks are being
    /// discarded (not reinstated), so every committed chunk merges and seq
    /// order within each page image settles overlaps.
    pub fn drain_discarding<F>(&mut self, is_committed: F) -> CleanBatch
    where
        F: Fn(TxId) -> bool,
    {
        self.drain_inner(is_committed, false)
    }

    fn drain_inner<F>(&mut self, is_committed: F, preserve_uncommitted: bool) -> CleanBatch
    where
        F: Fn(TxId) -> bool,
    {
        let mut batch = CleanBatch::default();
        for guard in &mut self.guards {
            let sealed = std::mem::take(&mut guard.sealed);
            let mut combined = std::mem::take(&mut guard.active);
            // Fold sealed chunks into the active lists so each page surfaces
            // exactly once in the batch (order is irrelevant: committed
            // chunks are sorted by seq downstream).
            for (partition, mut list) in sealed {
                while let Some((lpa, chunks)) = list.pop_first() {
                    for c in chunks {
                        push_chunk(&mut combined, partition, lpa, c);
                    }
                }
            }
            drain_partitions_into(combined, &is_committed, preserve_uncommitted, &mut batch);
        }
        batch.pages.sort_by_key(|(lpa, _)| *lpa);
        batch.migrated.sort_by_key(|(lpa, c)| (*lpa, c.seq));
        self.log.used_bytes.0.store(0, Ordering::Relaxed);
        self.log.entries.0.store(0, Ordering::Relaxed);
        self.log.write_cursor.0.store(0, Ordering::Relaxed);
        batch
    }

    /// Re-inserts migrated (uncommitted) entries into the active regions
    /// while all shards are still locked, preserving original sequence
    /// numbers (see [`ShardedWriteLog::reinstate`]).
    pub fn reinstate(&mut self, migrated: Vec<(Lpa, ChunkEntry)>) {
        for (lpa, mut entry) in migrated {
            let footprint = entry.footprint();
            self.log.used_bytes.0.fetch_add(footprint, Ordering::Relaxed);
            entry.log_off = self.log.write_cursor.0.fetch_add(footprint, Ordering::Relaxed)
                % self.log.capacity_bytes.max(1);
            self.log.entries.0.fetch_add(1, Ordering::Relaxed);
            let partition = self.log.partition_of(lpa);
            let shard = self.log.shard_of(lpa);
            push_chunk(&mut self.guards[shard].active, partition, lpa, entry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_log() -> WriteLog {
        WriteLog::new(&MssdConfig::small_test())
    }

    #[test]
    fn append_and_merge() {
        let mut log = small_log();
        log.append(3, 128, &[1u8; 64], None).unwrap();
        log.append(3, 192, &[2u8; 64], None).unwrap();
        assert_eq!(log.entries(), 2);
        assert!(log.has_page(3));
        let mut page = vec![0u8; 4096];
        log.merge_into(3, &mut page);
        assert_eq!(&page[128..192], &[1u8; 64][..]);
        assert_eq!(&page[192..256], &[2u8; 64][..]);
        assert_eq!(&page[0..128], &[0u8; 128][..]);
    }

    #[test]
    fn newer_write_wins_on_overlap() {
        let mut log = small_log();
        log.append(1, 0, &[1u8; 128], None).unwrap();
        log.append(1, 64, &[2u8; 64], None).unwrap();
        let mut page = vec![0u8; 4096];
        log.merge_into(1, &mut page);
        assert_eq!(&page[0..64], &[1u8; 64][..]);
        assert_eq!(&page[64..128], &[2u8; 64][..]);
    }

    #[test]
    fn coverage_detection() {
        let mut log = small_log();
        log.append(9, 0, &[5u8; 64], None).unwrap();
        log.append(9, 64, &[6u8; 64], None).unwrap();
        assert!(log.covers(9, 0, 128));
        assert!(log.covers(9, 32, 64));
        assert!(!log.covers(9, 0, 129));
        assert!(!log.covers(9, 200, 8));
        assert!(!log.covers(10, 0, 1));
        // Gap in the middle is detected.
        log.append(9, 256, &[7u8; 64], None).unwrap();
        assert!(!log.covers(9, 0, 320));
    }

    #[test]
    fn footprint_is_cacheline_aligned() {
        let e = ChunkEntry { offset: 0, data: vec![0; 1], txid: None, seq: 0, log_off: 0 };
        assert_eq!(e.footprint(), 64 + ENTRY_OVERHEAD);
        let e = ChunkEntry { offset: 0, data: vec![0; 65], txid: None, seq: 0, log_off: 0 };
        assert_eq!(e.footprint(), 128 + ENTRY_OVERHEAD);
    }

    #[test]
    fn log_full_is_reported() {
        let mut cfg = MssdConfig::small_test();
        cfg.dram_region_bytes = 4096;
        let mut log = WriteLog::new(&cfg);
        let mut appended = 0;
        loop {
            match log.append(appended, 0, &[1u8; 64], None) {
                Ok(()) => appended += 1,
                Err(err) => {
                    assert!(err.free < err.needed);
                    break;
                }
            }
        }
        assert!(appended > 0);
        assert!(log.utilization() > 0.9);
    }

    #[test]
    fn needs_cleaning_at_threshold() {
        let mut cfg = MssdConfig::small_test();
        cfg.dram_region_bytes = 8192;
        cfg.log_clean_threshold = 0.5;
        let mut log = WriteLog::new(&cfg);
        assert!(!log.needs_cleaning());
        for i in 0..52 {
            log.append(i, 0, &[0u8; 64], None).unwrap();
        }
        assert!(log.needs_cleaning());
    }

    #[test]
    fn invalidate_frees_space() {
        let mut log = small_log();
        log.append(4, 0, &[1u8; 64], None).unwrap();
        log.append(4, 64, &[1u8; 64], None).unwrap();
        log.append(5, 0, &[1u8; 64], None).unwrap();
        let used_before = log.used_bytes();
        assert_eq!(log.invalidate_page(4), 2);
        assert!(log.used_bytes() < used_before);
        assert!(!log.has_page(4));
        assert!(log.has_page(5));
        assert_eq!(log.invalidate_page(4), 0);
    }

    #[test]
    fn cleaning_separates_committed_and_uncommitted() {
        let mut log = small_log();
        log.append(1, 0, &[1u8; 64], Some(TxId(1))).unwrap();
        log.append(1, 64, &[2u8; 64], Some(TxId(2))).unwrap();
        log.append(2, 0, &[3u8; 64], None).unwrap();
        let batch = log.drain_for_cleaning(|tx| tx == TxId(1));
        assert_eq!(log.entries(), 0);
        assert_eq!(log.used_bytes(), 0);
        // Page 1 has one committed chunk, page 2 one non-transactional chunk.
        assert_eq!(batch.pages.len(), 2);
        assert_eq!(batch.pages[0].0, 1);
        assert_eq!(batch.pages[0].1.len(), 1);
        assert_eq!(batch.pages[1].0, 2);
        // The TxId(2) entry was migrated.
        assert_eq!(batch.migrated.len(), 1);
        assert_eq!(batch.migrated[0].0, 1);
        assert_eq!(batch.migrated[0].1.txid, Some(TxId(2)));
    }

    #[test]
    fn reinstate_restores_migrated_entries() {
        let mut log = small_log();
        log.append(7, 0, &[9u8; 64], Some(TxId(3))).unwrap();
        let batch = log.drain_for_cleaning(|_| false);
        assert!(batch.pages.is_empty());
        log.reinstate(batch.migrated);
        assert_eq!(log.entries(), 1);
        assert!(log.covers(7, 0, 64));
        let mut page = vec![0u8; 4096];
        log.merge_into(7, &mut page);
        assert_eq!(&page[0..64], &[9u8; 64][..]);
    }

    #[test]
    fn dirty_pages_are_sorted_unique() {
        let mut log = small_log();
        log.append(9, 0, &[1u8; 64], None).unwrap();
        log.append(2, 0, &[1u8; 64], None).unwrap();
        log.append(9, 64, &[1u8; 64], None).unwrap();
        assert_eq!(log.dirty_pages(), vec![2, 9]);
    }

    #[test]
    fn partitions_split_address_space() {
        let cfg = MssdConfig::small_test();
        let mut log = WriteLog::new(&cfg);
        let pages_per_partition = PARTITION_BYTES / cfg.page_size as u64;
        log.append(0, 0, &[1u8; 64], None).unwrap();
        log.append(pages_per_partition + 1, 0, &[1u8; 64], None).unwrap();
        assert_eq!(log.partitions.len(), 2);
        assert_eq!(log.dirty_pages().len(), 2);
    }

    #[test]
    fn sharded_append_merge_and_accounting() {
        let sharded = ShardedWriteLog::new(&MssdConfig::small_test());
        sharded.append(3, 128, &[1u8; 64], None).unwrap();
        sharded.append(3, 192, &[2u8; 64], None).unwrap();
        assert_eq!(sharded.entries(), 2);
        assert!(sharded.has_page(3));
        assert!(sharded.covers(3, 128, 128));
        assert!(!sharded.covers(3, 0, 64));
        let mut page = vec![0u8; 4096];
        sharded.merge_into(3, &mut page);
        assert_eq!(&page[128..192], &[1u8; 64][..]);
        assert_eq!(&page[192..256], &[2u8; 64][..]);

        let served = sharded.read_covered(3, 150, 80).expect("covered range");
        assert_eq!(served, page[150..230].to_vec());
        assert!(sharded.read_covered(3, 0, 64).is_none());
        assert!(sharded.read_covered(99, 0, 1).is_none());

        let used_before = sharded.used_bytes();
        assert_eq!(sharded.invalidate_page(3), 2);
        assert_eq!(sharded.used_bytes(), used_before - 2 * (64 + ENTRY_OVERHEAD));
        assert_eq!(sharded.entries(), 0);
    }

    #[test]
    fn sharded_pages_map_to_partition_shards() {
        let cfg = MssdConfig::small_test();
        let sharded = ShardedWriteLog::new(&cfg);
        let ppp = PARTITION_BYTES / cfg.page_size as u64;
        assert_eq!(sharded.shard_of(0), 0);
        assert_eq!(sharded.shard_of(ppp - 1), 0);
        assert_eq!(sharded.shard_of(ppp), 1);
        assert_eq!(sharded.shard_of(ppp * LOG_SHARDS as u64), 0);
    }

    #[test]
    fn sharded_drain_matches_reference_model() {
        let cfg = MssdConfig::small_test();
        let mut reference = WriteLog::new(&cfg);
        let sharded = ShardedWriteLog::new(&cfg);
        let ppp = PARTITION_BYTES / cfg.page_size as u64;
        let writes: Vec<(Lpa, usize, u8, Option<TxId>)> = vec![
            (0, 0, 1, None),
            (ppp, 64, 2, Some(TxId(1))),
            (2 * ppp + 3, 128, 3, Some(TxId(2))),
            (0, 0, 4, None),
            (ppp, 4032, 5, Some(TxId(1))),
        ];
        for (lpa, off, tag, tx) in &writes {
            reference.append(*lpa, *off, &[*tag; 64], *tx).unwrap();
            sharded.append(*lpa, *off, &[*tag; 64], *tx).unwrap();
        }
        assert_eq!(sharded.entries(), reference.entries());
        assert_eq!(sharded.used_bytes(), reference.used_bytes());

        let committed = |tx: TxId| tx == TxId(1);
        let mut ref_batch = reference.drain_for_cleaning(committed);
        let sharded_batch = sharded.drain_for_cleaning(committed);
        ref_batch.migrated.sort_by_key(|(lpa, c)| (*lpa, c.seq));
        assert_eq!(sharded_batch.pages, ref_batch.pages);
        assert_eq!(sharded_batch.migrated, ref_batch.migrated);
        assert_eq!(sharded.entries(), 0);
        assert_eq!(sharded.used_bytes(), 0);
    }

    #[test]
    fn sharded_concurrent_appends_from_disjoint_partitions() {
        let mut cfg = MssdConfig::small_test();
        cfg.capacity_bytes = 256 << 20; // room for several partitions
        cfg.dram_region_bytes = 4 << 20;
        let log = std::sync::Arc::new(ShardedWriteLog::new(&cfg));
        let ppp = PARTITION_BYTES / cfg.page_size as u64;
        let threads = 4u64;
        let per_thread = 500usize;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let log = std::sync::Arc::clone(&log);
                std::thread::spawn(move || {
                    let base = t * ppp;
                    for i in 0..per_thread {
                        let lpa = base + (i % 8) as u64;
                        let off = (i * 64) % 4096;
                        log.append(lpa, off, &[t as u8 + 1; 64], None).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.entries(), threads as usize * per_thread);
        let expected_used = threads as usize * per_thread * (64 + ENTRY_OVERHEAD);
        assert_eq!(log.used_bytes(), expected_used);
        // Every thread's pages merged independently: newest tag everywhere.
        for t in 0..threads {
            let mut page = vec![0u8; 4096];
            log.merge_into(t * ppp, &mut page);
            assert!(page[..64].iter().all(|b| *b == t as u8 + 1), "thread {t}");
        }
    }

    #[test]
    fn reinstated_entries_never_outrank_newer_writes() {
        // A migrated (uncommitted) chunk is drained, a *newer* write to the
        // same range lands before the reinstate, and the reinstated chunk
        // must keep its original (older) sequence so the newer write wins.
        let cfg = MssdConfig::small_test();
        for preserve in [true, false] {
            let sharded = ShardedWriteLog::new(&cfg);
            sharded.append(1, 0, &[1u8; 64], Some(TxId(7))).unwrap();
            let batch = sharded.drain_for_cleaning(|_| false);
            assert_eq!(batch.migrated.len(), 1);
            // The racing newer write to the same range.
            sharded.append(1, 0, &[2u8; 64], None).unwrap();
            if preserve {
                sharded.reinstate(batch.migrated);
            }
            let mut page = vec![0u8; 4096];
            sharded.merge_into(1, &mut page);
            assert_eq!(&page[..64], &[2u8; 64][..], "newer write must win (preserve={preserve})");
        }

        // The sequential reference model behaves identically.
        let mut reference = WriteLog::new(&cfg);
        reference.append(1, 0, &[1u8; 64], Some(TxId(7))).unwrap();
        let batch = reference.drain_for_cleaning(|_| false);
        reference.append(1, 0, &[2u8; 64], None).unwrap();
        reference.reinstate(batch.migrated);
        let mut page = vec![0u8; 4096];
        reference.merge_into(1, &mut page);
        assert_eq!(&page[..64], &[2u8; 64][..]);
    }

    #[test]
    fn seal_flips_regions_and_reads_merge_both() {
        let sharded = ShardedWriteLog::new(&MssdConfig::small_test());
        sharded.append(1, 0, &[1u8; 64], None).unwrap();
        assert!(sharded.seal_shard(sharded.shard_of(1)));
        // Sealed again without new appends: nothing to seal.
        assert!(!sharded.seal_shard(sharded.shard_of(1)));
        assert!(sharded.has_sealed_work());
        // Entries in the sealed region stay visible.
        assert!(sharded.has_page(1));
        assert!(sharded.covers(1, 0, 64));
        assert_eq!(sharded.read_covered(1, 0, 64).unwrap(), vec![1u8; 64]);
        // A newer overlapping append lands in the fresh active region and
        // wins the merge.
        sharded.append(1, 32, &[2u8; 64], None).unwrap();
        let mut page = vec![0u8; 4096];
        sharded.merge_into(1, &mut page);
        assert_eq!(&page[..32], &[1u8; 32][..]);
        assert_eq!(&page[32..96], &[2u8; 64][..]);
        // Cannot re-seal while the sealed region is undrained.
        assert!(!sharded.seal_shard(sharded.shard_of(1)));
        // invalidate_page drops entries from both regions.
        assert_eq!(sharded.invalidate_page(1), 2);
        assert_eq!(sharded.entries(), 0);
        assert_eq!(sharded.used_bytes(), 0);
    }

    #[test]
    fn drain_sealed_step_is_incremental_and_migrates_uncommitted() {
        let sharded = ShardedWriteLog::new(&MssdConfig::small_test());
        // Three pages in partition 0 (shard 0): two committed, one not.
        sharded.append(1, 0, &[1u8; 64], None).unwrap();
        sharded.append(2, 0, &[2u8; 64], Some(TxId(1))).unwrap();
        sharded.append(3, 0, &[3u8; 64], Some(TxId(9))).unwrap();
        assert!(sharded.seal_shard(0));
        let used_before = sharded.used_bytes();
        let mut applied: Vec<Lpa> = Vec::new();
        // One page per step: three steps to empty the sealed region.
        let mut steps = 0;
        loop {
            let step = sharded.drain_sealed_step(
                0,
                1,
                || |tx: TxId| tx == TxId(1),
                |lpa, chunks| {
                    applied.push(lpa);
                    assert!(!chunks.is_empty());
                    7 // arbitrary cost
                },
            );
            if step.pages == 0 {
                break;
            }
            assert_eq!(step.pages, 1);
            steps += 1;
            assert!(steps <= 3, "at most one step per sealed page");
        }
        assert_eq!(steps, 3);
        assert_eq!(applied, vec![1, 2]);
        assert!(!sharded.has_sealed_work());
        // The uncommitted entry survived into the active region.
        assert_eq!(sharded.entries(), 1);
        assert!(sharded.covers(3, 0, 64));
        assert!(sharded.used_bytes() < used_before);
        // Draining an empty sealed region is a no-op.
        let step = sharded.drain_sealed_step(0, 8, || |_: TxId| true, |_, _| 0);
        assert_eq!(step.pages, 0);
    }

    #[test]
    fn lock_all_drains_sealed_and_active_together() {
        let sharded = ShardedWriteLog::new(&MssdConfig::small_test());
        sharded.append(1, 0, &[1u8; 64], None).unwrap();
        sharded.seal_shard(sharded.shard_of(1));
        sharded.append(1, 64, &[2u8; 64], None).unwrap();
        sharded.append(5, 0, &[3u8; 64], Some(TxId(4))).unwrap();
        let mut all = sharded.lock_all();
        let batch = all.drain(|_| false);
        // Page 1 surfaces once, with chunks from both regions.
        assert_eq!(batch.pages.len(), 1);
        assert_eq!(batch.pages[0].0, 1);
        assert_eq!(batch.pages[0].1.len(), 2);
        assert!(batch.pages[0].1.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(batch.migrated.len(), 1);
        all.reinstate(batch.migrated);
        drop(all);
        assert_eq!(sharded.entries(), 1);
        assert!(sharded.covers(5, 0, 64));
    }

    #[test]
    fn sharded_reinstate_survives_full_accounting() {
        let mut cfg = MssdConfig::small_test();
        cfg.dram_region_bytes = 4096;
        let sharded = ShardedWriteLog::new(&cfg);
        sharded.append(1, 0, &[7u8; 64], Some(TxId(9))).unwrap();
        let batch = sharded.drain_for_cleaning(|_| false);
        assert_eq!(batch.migrated.len(), 1);
        sharded.reinstate(batch.migrated);
        assert_eq!(sharded.entries(), 1);
        assert!(sharded.covers(1, 0, 64));
        assert_eq!(sharded.used_bytes(), 64 + ENTRY_OVERHEAD);
    }
}
