//! NAND flash array model.
//!
//! The flash array stores page-granular data addressed by *physical page
//! address* (PPA). It enforces the two invariants that make flash management
//! interesting for the rest of the stack:
//!
//! * pages within an erase block must be programmed sequentially, and
//! * a page cannot be re-programmed until its block has been erased.
//!
//! Geometry follows the configuration: pages are grouped into erase blocks and
//! blocks are striped round-robin across channels, so `ppa % channels` is the
//! channel a page lives on (used for the channel-parallel latency model).

use std::collections::HashMap;

use crate::config::MssdConfig;
use crate::ecc::{self, PageParity};

/// Physical page address.
pub type Ppa = u64;
/// Physical erase-block index.
pub type BlockId = u64;

/// Errors returned by the flash array and propagated — as typed media errors
/// — up through the FTL, the device API, queue completions and the file
/// systems when an operation violates NAND rules or the media itself fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashError {
    /// The physical page address is beyond the device geometry.
    OutOfRange(Ppa),
    /// The page was already programmed since the last erase of its block.
    AlreadyProgrammed(Ppa),
    /// Pages inside a block must be programmed in order.
    OutOfOrderProgram {
        /// Offending page address.
        ppa: Ppa,
        /// The page the block expected to be programmed next.
        expected: Ppa,
    },
    /// The page's raw bit errors exceeded the ECC correction capability on
    /// every rung of the read-retry ladder: an uncorrectable ECC error. The
    /// payload must not be used.
    Uncorrectable {
        /// Physical page whose data is lost.
        ppa: Ppa,
        /// Read retries attempted before declaring the UECC.
        retries: u32,
    },
    /// A page program failed permanently and the in-flight data could not be
    /// remapped to a fresh block (replacement machinery exhausted).
    ProgramFailed(Ppa),
    /// A block erase failed permanently and the block was retired.
    EraseFailed(BlockId),
    /// The device has exhausted its spare blocks and degraded to read-only:
    /// mutating operations are rejected, reads still succeed.
    ReadOnly,
    /// The host aborted the command (deadline timeout, lane reset): it never
    /// completed normally. Whether its effects happened depends on how far
    /// it got — the abort path reports that separately (see
    /// `HostQueue::abort`); resubmitting is always safe because every
    /// command is idempotent at the device level.
    Aborted,
}

impl std::fmt::Display for FlashError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlashError::OutOfRange(p) => write!(f, "physical page {p} out of range"),
            FlashError::AlreadyProgrammed(p) => {
                write!(f, "physical page {p} already programmed since last erase")
            }
            FlashError::OutOfOrderProgram { ppa, expected } => {
                write!(f, "out-of-order program of page {ppa}, expected {expected}")
            }
            FlashError::Uncorrectable { ppa, retries } => {
                write!(f, "uncorrectable ECC error on page {ppa} after {retries} retries")
            }
            FlashError::ProgramFailed(p) => write!(f, "permanent program failure on page {p}"),
            FlashError::EraseFailed(b) => write!(f, "permanent erase failure on block {b}"),
            FlashError::ReadOnly => {
                write!(f, "device degraded to read-only (spare blocks exhausted)")
            }
            FlashError::Aborted => {
                write!(f, "command aborted by the host (deadline timeout or lane reset)")
            }
        }
    }
}

impl FlashError {
    /// Whether a host-level retry of the same command could plausibly
    /// succeed. A fresh read re-samples the media's transient bit-error
    /// process, so an [`FlashError::Uncorrectable`] verdict may clear on the
    /// next attempt, and an [`FlashError::Aborted`] command (deadline
    /// timeout, lane reset) may simply have hit an injected hang; permanent
    /// program/erase failures and read-only degradation never do.
    pub fn is_transient(&self) -> bool {
        matches!(self, FlashError::Uncorrectable { .. } | FlashError::Aborted)
    }
}

impl std::error::Error for FlashError {}

/// Per-block bookkeeping.
#[derive(Debug, Clone)]
pub(crate) struct BlockState {
    /// Next page offset (within the block) that may be programmed.
    write_ptr: usize,
    /// Number of times the block has been erased (wear).
    erase_count: u64,
}

impl BlockState {
    fn new() -> Self {
        Self { write_ptr: 0, erase_count: 0 }
    }
}

/// The NAND flash array: raw page storage plus per-block program/erase state.
#[derive(Debug)]
pub struct FlashArray {
    page_size: usize,
    pages_per_block: usize,
    channels: usize,
    total_pages: u64,
    /// Programmed page contents. Sparse: unprogrammed pages read as all-zero
    /// (freshly erased flash reads as all-ones in reality; zero is simpler and
    /// equivalent for the simulation).
    pages: HashMap<Ppa, Box<[u8]>>,
    blocks: Vec<BlockState>,
}

impl FlashArray {
    /// Builds an array with the geometry described by `cfg`.
    pub fn new(cfg: &MssdConfig) -> Self {
        let total_pages = cfg.physical_pages();
        let total_blocks = cfg.physical_blocks() as usize;
        Self {
            page_size: cfg.page_size,
            pages_per_block: cfg.pages_per_block,
            channels: cfg.channels,
            total_pages,
            pages: HashMap::new(),
            blocks: vec![BlockState::new(); total_blocks],
        }
    }

    /// Flash page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of pages per erase block.
    pub fn pages_per_block(&self) -> usize {
        self.pages_per_block
    }

    /// Total number of physical pages.
    pub fn total_pages(&self) -> u64 {
        self.total_pages
    }

    /// Total number of erase blocks.
    pub fn total_blocks(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// The erase block a physical page belongs to.
    pub fn block_of(&self, ppa: Ppa) -> BlockId {
        ppa / self.pages_per_block as u64
    }

    /// The channel a physical page maps to (blocks are striped over channels).
    pub fn channel_of(&self, ppa: Ppa) -> usize {
        (self.block_of(ppa) % self.channels as u64) as usize
    }

    /// First physical page of a block.
    pub fn first_page_of(&self, block: BlockId) -> Ppa {
        block * self.pages_per_block as u64
    }

    /// Reads a page. Unprogrammed pages read as zeros.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::OutOfRange`] if `ppa` is beyond the geometry.
    pub fn read_page(&self, ppa: Ppa) -> Result<Vec<u8>, FlashError> {
        if ppa >= self.total_pages {
            return Err(FlashError::OutOfRange(ppa));
        }
        Ok(self.pages.get(&ppa).map(|b| b.to_vec()).unwrap_or_else(|| vec![0u8; self.page_size]))
    }

    /// Programs a page.
    ///
    /// `data` shorter than a page is zero-padded; longer data is truncated.
    ///
    /// # Errors
    ///
    /// Fails if the page is out of range, already programmed, or programmed
    /// out of order within its block.
    pub fn program_page(&mut self, ppa: Ppa, data: &[u8]) -> Result<(), FlashError> {
        if ppa >= self.total_pages {
            return Err(FlashError::OutOfRange(ppa));
        }
        let block = self.block_of(ppa) as usize;
        let offset = (ppa % self.pages_per_block as u64) as usize;
        let write_ptr = self.blocks[block].write_ptr;
        if offset < write_ptr {
            return Err(FlashError::AlreadyProgrammed(ppa));
        }
        if offset > write_ptr {
            let expected = self.first_page_of(block as BlockId) + write_ptr as u64;
            return Err(FlashError::OutOfOrderProgram { ppa, expected });
        }
        let mut page = vec![0u8; self.page_size];
        let n = data.len().min(self.page_size);
        page[..n].copy_from_slice(&data[..n]);
        self.pages.insert(ppa, page.into_boxed_slice());
        self.blocks[block].write_ptr += 1;
        Ok(())
    }

    /// Erases a block, discarding all of its pages.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::OutOfRange`] if the block index is invalid.
    pub fn erase_block(&mut self, block: BlockId) -> Result<(), FlashError> {
        if block >= self.total_blocks() {
            return Err(FlashError::OutOfRange(block * self.pages_per_block as u64));
        }
        let first = self.first_page_of(block);
        for off in 0..self.pages_per_block as u64 {
            self.pages.remove(&(first + off));
        }
        let state = &mut self.blocks[block as usize];
        state.write_ptr = 0;
        state.erase_count += 1;
        Ok(())
    }

    /// Number of pages programmed in a block since its last erase.
    pub fn block_fill(&self, block: BlockId) -> usize {
        self.blocks[block as usize].write_ptr
    }

    /// Erase count (wear) of a block.
    pub fn erase_count(&self, block: BlockId) -> u64 {
        self.blocks[block as usize].erase_count
    }

    /// Maximum erase count across all blocks (simple wear indicator).
    pub fn max_wear(&self) -> u64 {
        self.blocks.iter().map(|b| b.erase_count).max().unwrap_or(0)
    }

    /// Number of bytes of page data currently resident (for memory accounting
    /// in tests).
    pub fn resident_bytes(&self) -> usize {
        self.pages.len() * self.page_size
    }
}

/// The slice of the NAND array owned by **one** flash channel.
///
/// Blocks are striped round-robin over channels (`block % channels` is the
/// owning channel), so a `ChannelFlash` holds every block of one residue
/// class. It enforces the same NAND invariants as [`FlashArray`] — sequential
/// programs within a block, no re-program before erase — but is sized to sit
/// behind a *per-channel* lock: programs/reads/erases on different channels
/// never touch shared state, which is what lets [`crate::ftl::ShardedFtl`]
/// execute them concurrently in real time instead of only modelling the
/// parallelism in the latency formula.
#[derive(Debug)]
pub struct ChannelFlash {
    page_size: usize,
    pages_per_block: usize,
    channels: usize,
    channel: usize,
    total_pages: u64,
    /// Programmed page contents of this channel's blocks. Sparse:
    /// unprogrammed pages read as all-zero.
    pages: HashMap<Ppa, Box<[u8]>>,
    /// Block state indexed by *local* block index (`block / channels`).
    blocks: Vec<BlockState>,
    /// Whether programs compute out-of-band ECC parity (only when a media
    /// fault plan is armed — fault-free configurations pay nothing).
    ecc: bool,
    /// Out-of-band per-page ECC parity (the OOB/spare-area analogue).
    /// Sparse like `pages`; an absent entry is the parity of an erased
    /// (all-zero) page, which is exactly [`PageParity::default`].
    parity: HashMap<Ppa, PageParity>,
}

impl ChannelFlash {
    /// Builds the channel-`channel` slice of the geometry described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `channel >= cfg.channels`.
    pub fn new(cfg: &MssdConfig, channel: usize) -> Self {
        assert!(channel < cfg.channels, "channel {channel} out of range");
        // physical_blocks() is rounded to a multiple of the channel count, so
        // every channel owns exactly total_blocks / channels blocks.
        let local_blocks = (cfg.physical_blocks() / cfg.channels as u64) as usize;
        Self {
            page_size: cfg.page_size,
            pages_per_block: cfg.pages_per_block,
            channels: cfg.channels,
            channel,
            total_pages: cfg.physical_pages(),
            pages: HashMap::new(),
            blocks: vec![BlockState::new(); local_blocks],
            ecc: cfg.media.is_enabled(),
            parity: HashMap::new(),
        }
    }

    /// The channel index this slice belongs to.
    pub fn channel(&self) -> usize {
        self.channel
    }

    /// Number of erase blocks owned by this channel.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Global block ids owned by this channel, in ascending order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        let channels = self.channels as u64;
        let channel = self.channel as u64;
        (0..self.blocks.len() as u64).map(move |local| local * channels + channel)
    }

    /// Number of pages per erase block.
    pub fn pages_per_block(&self) -> usize {
        self.pages_per_block
    }

    /// First physical page of a block.
    pub fn first_page_of(&self, block: BlockId) -> Ppa {
        block * self.pages_per_block as u64
    }

    fn local_index(&self, block: BlockId) -> usize {
        debug_assert_eq!(
            (block % self.channels as u64) as usize,
            self.channel,
            "block {block} does not belong to channel {}",
            self.channel
        );
        (block / self.channels as u64) as usize
    }

    fn owns(&self, ppa: Ppa) -> bool {
        ppa < self.total_pages
            && (ppa / self.pages_per_block as u64 % self.channels as u64) as usize == self.channel
    }

    /// Whether the page holds programmed data (as opposed to reading back
    /// erased zeros). Crash-state checkers use this to detect mappings that
    /// point at pages a torn program never wrote.
    pub fn is_programmed(&self, ppa: Ppa) -> bool {
        self.pages.contains_key(&ppa)
    }

    /// Reads a page of this channel. Unprogrammed pages read as zeros.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::OutOfRange`] if the page is beyond the geometry
    /// or belongs to another channel.
    pub fn read_page(&self, ppa: Ppa) -> Result<Vec<u8>, FlashError> {
        if !self.owns(ppa) {
            return Err(FlashError::OutOfRange(ppa));
        }
        Ok(self.pages.get(&ppa).map(|b| b.to_vec()).unwrap_or_else(|| vec![0u8; self.page_size]))
    }

    /// Programs a page of this channel (same rules as
    /// [`FlashArray::program_page`]).
    ///
    /// # Errors
    ///
    /// Fails if the page is out of range / foreign, already programmed, or
    /// programmed out of order within its block.
    pub fn program_page(&mut self, ppa: Ppa, data: &[u8]) -> Result<(), FlashError> {
        if !self.owns(ppa) {
            return Err(FlashError::OutOfRange(ppa));
        }
        let block = ppa / self.pages_per_block as u64;
        let local = self.local_index(block);
        let offset = (ppa % self.pages_per_block as u64) as usize;
        let write_ptr = self.blocks[local].write_ptr;
        if offset < write_ptr {
            return Err(FlashError::AlreadyProgrammed(ppa));
        }
        if offset > write_ptr {
            let expected = self.first_page_of(block) + write_ptr as u64;
            return Err(FlashError::OutOfOrderProgram { ppa, expected });
        }
        let mut page = vec![0u8; self.page_size];
        let n = data.len().min(self.page_size);
        page[..n].copy_from_slice(&data[..n]);
        if self.ecc {
            self.parity.insert(ppa, ecc::encode(&page));
        }
        self.pages.insert(ppa, page.into_boxed_slice());
        self.blocks[local].write_ptr += 1;
        Ok(())
    }

    /// The out-of-band ECC parity stored with a page. Absent entries (erased
    /// pages, or ECC disabled) return the parity of an all-zero page.
    pub fn stored_parity(&self, ppa: Ppa) -> PageParity {
        self.parity.get(&ppa).copied().unwrap_or_default()
    }

    /// Erases a block of this channel, discarding its pages.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::OutOfRange`] for a foreign or out-of-range block.
    pub fn erase_block(&mut self, block: BlockId) -> Result<(), FlashError> {
        if block * self.pages_per_block as u64 >= self.total_pages
            || (block % self.channels as u64) as usize != self.channel
        {
            return Err(FlashError::OutOfRange(block * self.pages_per_block as u64));
        }
        let first = self.first_page_of(block);
        for off in 0..self.pages_per_block as u64 {
            self.pages.remove(&(first + off));
            self.parity.remove(&(first + off));
        }
        let local = self.local_index(block);
        let state = &mut self.blocks[local];
        state.write_ptr = 0;
        state.erase_count += 1;
        Ok(())
    }

    /// Number of pages programmed in a block since its last erase.
    pub fn block_fill(&self, block: BlockId) -> usize {
        self.blocks[self.local_index(block)].write_ptr
    }

    /// Erase count (wear) of a block.
    pub fn erase_count(&self, block: BlockId) -> u64 {
        self.blocks[self.local_index(block)].erase_count
    }

    /// Maximum erase count across this channel's blocks.
    pub fn max_wear(&self) -> u64 {
        self.blocks.iter().map(|b| b.erase_count).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> FlashArray {
        FlashArray::new(&MssdConfig::small_test())
    }

    #[test]
    fn geometry_is_consistent() {
        let cfg = MssdConfig::small_test();
        let a = FlashArray::new(&cfg);
        assert_eq!(a.total_pages(), cfg.physical_pages());
        assert_eq!(a.total_blocks(), cfg.physical_blocks());
        assert_eq!(a.total_pages() % a.pages_per_block() as u64, 0);
    }

    #[test]
    fn unprogrammed_reads_zero() {
        let a = array();
        assert_eq!(a.read_page(0).unwrap(), vec![0u8; a.page_size()]);
    }

    #[test]
    fn program_and_read_back() {
        let mut a = array();
        let mut data = vec![0u8; a.page_size()];
        data[..4].copy_from_slice(b"abcd");
        a.program_page(0, &data).unwrap();
        assert_eq!(a.read_page(0).unwrap(), data);
    }

    #[test]
    fn short_data_is_padded() {
        let mut a = array();
        a.program_page(0, b"hi").unwrap();
        let page = a.read_page(0).unwrap();
        assert_eq!(&page[..2], b"hi");
        assert!(page[2..].iter().all(|b| *b == 0));
        assert_eq!(page.len(), a.page_size());
    }

    #[test]
    fn reprogram_without_erase_fails() {
        let mut a = array();
        a.program_page(0, b"x").unwrap();
        assert_eq!(a.program_page(0, b"y"), Err(FlashError::AlreadyProgrammed(0)));
    }

    #[test]
    fn out_of_order_program_fails() {
        let mut a = array();
        let err = a.program_page(2, b"x").unwrap_err();
        assert_eq!(err, FlashError::OutOfOrderProgram { ppa: 2, expected: 0 });
    }

    #[test]
    fn sequential_program_within_block_succeeds() {
        let mut a = array();
        for i in 0..a.pages_per_block() as u64 {
            a.program_page(i, &[i as u8]).unwrap();
        }
        assert_eq!(a.block_fill(0), a.pages_per_block());
    }

    #[test]
    fn erase_resets_block() {
        let mut a = array();
        a.program_page(0, b"x").unwrap();
        a.program_page(1, b"y").unwrap();
        a.erase_block(0).unwrap();
        assert_eq!(a.block_fill(0), 0);
        assert_eq!(a.erase_count(0), 1);
        assert_eq!(a.read_page(0).unwrap(), vec![0u8; a.page_size()]);
        // Can program again after erase.
        a.program_page(0, b"z").unwrap();
    }

    #[test]
    fn out_of_range_is_rejected() {
        let mut a = array();
        let bad = a.total_pages();
        assert!(matches!(a.read_page(bad), Err(FlashError::OutOfRange(_))));
        assert!(matches!(a.program_page(bad, b"x"), Err(FlashError::OutOfRange(_))));
        assert!(matches!(a.erase_block(a.total_blocks()), Err(FlashError::OutOfRange(_))));
    }

    #[test]
    fn channels_stripe_blocks() {
        let cfg = MssdConfig::small_test();
        let a = FlashArray::new(&cfg);
        let ppb = a.pages_per_block() as u64;
        assert_eq!(a.channel_of(0), 0);
        assert_eq!(a.channel_of(ppb), 1 % cfg.channels);
        assert_eq!(a.channel_of(ppb * cfg.channels as u64), 0);
    }

    #[test]
    fn channel_flash_partitions_the_array() {
        let cfg = MssdConfig::small_test();
        let slices: Vec<ChannelFlash> =
            (0..cfg.channels).map(|c| ChannelFlash::new(&cfg, c)).collect();
        let total: usize = slices.iter().map(|s| s.block_count()).sum();
        assert_eq!(total as u64, cfg.physical_blocks());
        // Every global block is owned by exactly one channel slice.
        for (c, s) in slices.iter().enumerate() {
            for b in s.block_ids() {
                assert_eq!((b % cfg.channels as u64) as usize, c);
            }
        }
    }

    #[test]
    fn channel_flash_enforces_nand_rules() {
        let cfg = MssdConfig::small_test();
        let mut s = ChannelFlash::new(&cfg, 1);
        let block = s.block_ids().next().unwrap();
        let first = s.first_page_of(block);
        assert_eq!(s.read_page(first).unwrap(), vec![0u8; cfg.page_size]);
        s.program_page(first, b"hi").unwrap();
        assert_eq!(&s.read_page(first).unwrap()[..2], b"hi");
        // Re-program and out-of-order program fail.
        assert!(matches!(s.program_page(first, b"x"), Err(FlashError::AlreadyProgrammed(_))));
        assert!(matches!(
            s.program_page(first + 2, b"x"),
            Err(FlashError::OutOfOrderProgram { .. })
        ));
        // Foreign pages and blocks are rejected.
        let foreign = ChannelFlash::new(&cfg, 0).block_ids().next().unwrap();
        assert!(matches!(s.program_page(foreign * 16, b"x"), Err(FlashError::OutOfRange(_))));
        assert!(matches!(s.erase_block(foreign), Err(FlashError::OutOfRange(_))));
        // Erase resets.
        s.erase_block(block).unwrap();
        assert_eq!(s.block_fill(block), 0);
        assert_eq!(s.erase_count(block), 1);
        assert_eq!(s.max_wear(), 1);
        s.program_page(first, b"z").unwrap();
    }

    #[test]
    fn parity_is_stored_only_under_a_media_plan() {
        let plain = MssdConfig::small_test();
        let armed = MssdConfig::small_test()
            .with_media_fault_plan(crate::fault::MediaFaultPlan::rates(1, 0.0, 0.0, 0.0));
        for (cfg, ecc_on) in [(&plain, false), (&armed, true)] {
            let mut s = ChannelFlash::new(cfg, 0);
            let first = s.first_page_of(s.block_ids().next().unwrap());
            assert_eq!(s.stored_parity(first), PageParity::default());
            s.program_page(first, b"parity me").unwrap();
            let stored = s.stored_parity(first);
            if ecc_on {
                let mut page = vec![0u8; cfg.page_size];
                page[..9].copy_from_slice(b"parity me");
                assert_eq!(stored, ecc::encode(&page));
                assert_ne!(stored, PageParity::default());
            } else {
                assert_eq!(stored, PageParity::default());
            }
            let first_block = s.block_ids().next().unwrap();
            s.erase_block(first_block).unwrap();
            assert_eq!(s.stored_parity(first), PageParity::default(), "erase clears parity");
        }
    }

    #[test]
    fn wear_tracking() {
        let mut a = array();
        assert_eq!(a.max_wear(), 0);
        a.erase_block(3).unwrap();
        a.erase_block(3).unwrap();
        assert_eq!(a.erase_count(3), 2);
        assert_eq!(a.max_wear(), 2);
    }
}
