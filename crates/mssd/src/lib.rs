//! # mssd — a memory-semantic SSD (M-SSD) device model
//!
//! This crate models the storage device that the ByteFS paper (ASPLOS'25)
//! targets: a flash SSD that exposes **two** host interfaces at once,
//!
//! * a **byte interface**: PCIe/CXL memory-mapped loads and stores that land in
//!   battery-backed device DRAM, and
//! * a **block interface**: conventional NVMe 4 KB reads and writes.
//!
//! The model is a discrete-event style simulation on a virtual clock. Every
//! host-visible operation charges latency derived from the paper's Table 1 and
//! Table 4 and records traffic statistics (host↔SSD bytes by file-system data
//! structure category, and internal flash page reads/writes/erases).
//!
//! The firmware side implements the paper's §4.3 design: the device DRAM can be
//! managed either as a conventional page-granular cache (used by the baseline
//! file systems) or as a **log-structured write log** indexed by a three-layer
//! skip list, with background log cleaning, per-transaction commit records
//! (TxLog), and a `RECOVER()` path that replays committed entries after a crash.
//!
//! The device executes concurrently along the hardware's own seams, with the
//! lock order **log shard → txlog → flash channel → L2P stripe** (and
//! **cache shard → flash channel → L2P stripe** in baseline mode; see
//! [`device`] for the full discipline):
//!
//! * the write-log index is sharded by the paper's 16 MB partition key and
//!   **double-buffered**: a background cleaner thread seals each shard's
//!   active region and drains the sealed region page by page, so cleaning
//!   stays off the host's critical path ([`log::ShardedWriteLog`]);
//! * the flash path is **channel-parallel**: a lock-striped L2P table over
//!   per-channel flash units — active block, free list, page store, write
//!   buffer slice, greedy GC — each behind its own lock
//!   ([`ftl::ShardedFtl`] over [`flash::ChannelFlash`]);
//! * the baseline device cache is lock-striped by LPA
//!   ([`dram_cache::ShardedDramCache`]).
//!
//! The single-threaded [`ftl::Ftl`], [`log::WriteLog`] and stop-the-world
//! drain remain as sequential reference models, pinned to the concurrent
//! implementations by the property tests in `tests/`.
//!
//! # Durability contract
//!
//! The device promises exactly this across a power failure (and the
//! `crashkit` crate enumerates crash points to hold it to the promise):
//!
//! 1. **Battery-backed DRAM survives.** The write log, the TxLog, the FTL
//!    write buffer and (in baseline mode) the device page cache are part of
//!    the durable state; [`device::CrashImage`] captures precisely this set
//!    plus NAND contents.
//! 2. **Committed means durable.** A byte write tagged with a TxID becomes
//!    durable the instant its `COMMIT(TxID)` record enters the TxLog; an
//!    untagged byte write is durable the instant its chunk enters the log.
//!    `RECOVER()` replays every such write and discards every chunk whose
//!    TxID has no commit record — regardless of where the cut fell relative
//!    to cleaning, sealing or flash programs.
//! 3. **Block writes are durable at page granularity on acceptance.** Each
//!    4 KB page of a block write is durable once accepted into device DRAM
//!    (the command may tear *between* pages, never inside one). NVMe FLUSH
//!    adds nothing to durability here — it only moves pages from buffer to
//!    NAND — because the buffer is battery-backed.
//! 4. **Cleaning never weakens 1–3.** Sealing, sealed-region drains, GC
//!    relocation and erasure move data between durable homes; a cut at any
//!    such step leaves every committed byte reachable from exactly one of
//!    them.
//!
//! Every durability-relevant step passes through the [`fault::FaultPlan`]
//! installed in [`MssdConfig::fault`], which can count the steps and cut
//! power at any chosen one; see [`fault`] and `crates/crashkit/DESIGN.md`.
//!
//! ```
//! use mssd::{Mssd, MssdConfig, DramMode, Category};
//!
//! # fn main() {
//! let cfg = MssdConfig::small_test();
//! let dev = Mssd::new(cfg, DramMode::WriteLog);
//! // Byte-granular persistent write of one cacheline at device address 4096.
//! dev.byte_write(4096, &[7u8; 64], None, Category::Inode);
//! let back = dev.byte_read(4096, 64, Category::Inode);
//! assert_eq!(back, vec![7u8; 64]);
//! # }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod config;
pub mod device;
pub mod dram_cache;
pub mod ecc;
pub mod fault;
pub mod flash;
pub mod ftl;
pub mod log;
pub mod queue;
pub mod reactor;
pub mod skiplist;
pub mod stats;
pub mod trace;
pub mod txn;

pub use clock::Clock;
pub use config::{MssdConfig, TimingProfile};
pub use device::{CrashImage, DramMode, Mssd};
pub use dram_cache::{CachePageRef, DramPageCache, ShardedDramCache, CACHE_SHARDS};
pub use ecc::{EccOutcome, PageParity, ECC_DETECT, ECC_T};
pub use fault::{
    FaultKind, FaultPlan, HangFault, HangFaultConfig, HangFaultPlan, HangOpKind, MediaFaultConfig,
    MediaFaultPlan, MediaOpKind,
};
pub use flash::{ChannelFlash, FlashError};
pub use ftl::{Ftl, ShardedFtl, L2P_STRIPES};
pub use log::{ShardedWriteLog, LOG_SHARDS};
pub use queue::{
    AbortOutcome, Command, CommandId, Completion, HostQueue, QueueFull, ResetMode, ResetReport,
    WaitError,
};
pub use reactor::{
    Executor, JoinHandle, Reactor, RetryPolicy, Runtime, SubmitError, DEFAULT_COMMAND_TIMEOUT_NS,
};
pub use stats::{
    AtomicTraffic, Category, Interface, QueueLat, StatsSnapshot, TrafficCounter, QUEUE_SLOTS,
};
pub use trace::{
    chrome_trace_json, op_trace_text, parse_op_trace, CtxScope, OpTraceEntry, OpTraceMeta,
    OpTraceOutcome, ParsedOpTrace, TraceCtx, TraceDump, TraceEvent, TraceKind, TraceSink,
    OP_TRACE_SCHEMA,
};
pub use txn::TxId;

/// Size of one cacheline, the unit of byte-interface transfers and of write-log
/// entries (§4.3: "The written data is appended at the log tail as a
/// 64B-aligned data entry").
pub const CACHELINE: usize = 64;

/// Size of one flash page / logical block exposed by the block interface.
pub const PAGE_SIZE: usize = 4096;

/// Number of cachelines in a flash page.
pub const LINES_PER_PAGE: usize = PAGE_SIZE / CACHELINE;
