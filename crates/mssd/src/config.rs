//! Device geometry and timing configuration.
//!
//! The defaults mirror the emulator configuration in Table 4 of the paper
//! (32 GB capacity, 4 KB pages, 8 channels, 40 µs / 60 µs flash read/write,
//! 4.8 µs / 0.6 µs cacheline read/write, 3.5 / 2.5 GB/s sequential bandwidth)
//! and the firmware parameters in §4.3 / §4.9 (256 MB log region, 85 % cleaning
//! threshold, 2 MB TxLog, 16 MB write buffer).
//!
//! [`TimingProfile`] captures the flash latency points used in the Figure 13
//! sensitivity study (25/200, 40/60, 3/80 and the CXL variant 3/80*).

use serde::{Deserialize, Serialize};

use crate::fault::{FaultPlan, HangFaultPlan, MediaFaultPlan};
use crate::{CACHELINE, PAGE_SIZE};

/// Named flash/interconnect latency profiles from the paper's sensitivity study
/// (Figure 13). Read/write latencies are expressed in microseconds as in the
/// figure labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum TimingProfile {
    /// Low-end flash: 25 µs read / 200 µs program.
    LowEnd,
    /// The default emulator setting: 40 µs read / 60 µs program (Table 4).
    #[default]
    Default,
    /// High-end (Z-NAND-class) flash: 3 µs read / 80 µs program.
    HighEnd,
    /// High-end flash behind CXL.mem: cacheline access latency drops to 175 ns
    /// (marked `3/80*` in Figure 13).
    HighEndCxl,
}

impl TimingProfile {
    /// All profiles in the order Figure 13 presents them.
    pub fn all() -> [TimingProfile; 4] {
        [Self::LowEnd, Self::Default, Self::HighEnd, Self::HighEndCxl]
    }

    /// Flash (read, write) latency in nanoseconds for this profile.
    pub fn flash_latency_ns(self) -> (u64, u64) {
        match self {
            Self::LowEnd => (25_000, 200_000),
            Self::Default => (40_000, 60_000),
            Self::HighEnd | Self::HighEndCxl => (3_000, 80_000),
        }
    }

    /// Cacheline (read, write) latency in nanoseconds for this profile.
    pub fn byte_latency_ns(self) -> (u64, u64) {
        match self {
            Self::HighEndCxl => (175, 175),
            _ => (4_800, 600),
        }
    }

    /// Short label used in reports, e.g. `"40/60"`.
    pub fn label(self) -> &'static str {
        match self {
            Self::LowEnd => "25/200",
            Self::Default => "40/60",
            Self::HighEnd => "3/80",
            Self::HighEndCxl => "3/80*",
        }
    }
}

impl std::fmt::Display for TimingProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Full configuration of an [`crate::Mssd`] device instance.
///
/// Construct with [`MssdConfig::default`] for the paper's emulator setting, or
/// [`MssdConfig::small_test`] for unit tests, then adjust fields with the
/// builder-style `with_*` methods.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MssdConfig {
    /// Total usable capacity in bytes (must be a multiple of the page size).
    pub capacity_bytes: u64,
    /// Flash page size in bytes (4096 in the paper).
    pub page_size: usize,
    /// Number of flash channels; page writes across channels proceed in
    /// parallel (Table 4: 8 channels).
    pub channels: usize,
    /// Pages per flash erase block.
    pub pages_per_block: usize,
    /// Over-provisioning factor: physical capacity = capacity * (1 + op).
    pub overprovision: f64,
    /// NAND page read latency in nanoseconds.
    pub flash_read_ns: u64,
    /// NAND page program latency in nanoseconds.
    pub flash_write_ns: u64,
    /// NAND block erase latency in nanoseconds.
    pub flash_erase_ns: u64,
    /// Latency of one cacheline load over the byte interface (PCIe MMIO or
    /// CXL.mem) when the data is resident in device DRAM.
    pub byte_read_ns: u64,
    /// Latency of one posted cacheline store over the byte interface.
    pub byte_write_ns: u64,
    /// Sequential read bandwidth of the block interface in bytes/second.
    pub block_read_bw: f64,
    /// Sequential write bandwidth of the block interface in bytes/second.
    pub block_write_bw: f64,
    /// Fixed NVMe command submission/completion overhead in nanoseconds.
    pub nvme_overhead_ns: u64,
    /// Size of the device DRAM region handed to either the page cache
    /// (baselines) or the log-structured write log (ByteFS). 256 MB by default.
    pub dram_region_bytes: usize,
    /// Log utilization threshold that triggers background cleaning (0.85).
    pub log_clean_threshold: f64,
    /// Size of the firmware transaction log (TxLog), 2 MB by default; each
    /// commit record is 4 bytes.
    pub txlog_bytes: usize,
    /// FTL write buffer used to batch page programs, 16 MB by default.
    pub write_buffer_bytes: usize,
    /// Whether the write-log firmware runs its cleaner on a background
    /// thread with double-buffered log regions (the paper's design). When
    /// `false`, threshold-triggered cleaning runs inline and stop-the-world —
    /// the sequential reference behaviour the equivalence tests pin against.
    pub background_cleaning: bool,
    /// Timing profile this configuration was derived from (informational).
    pub profile: TimingProfile,
    /// Power-failure injection plan (see [`crate::fault`]). Disabled by
    /// default; the crashkit enumeration driver installs counting or cutting
    /// plans here. Cloning the config shares the plan's counters, so every
    /// component of one device observes the same step sequence.
    pub fault: FaultPlan,
    /// NAND media-fault injection plan (see [`crate::fault::MediaFaultPlan`]).
    /// Disabled by default — fault-free configurations skip ECC entirely.
    /// Like [`MssdConfig::fault`], cloning the config shares the plan's
    /// deterministic draw sequence across device components.
    pub media: MediaFaultPlan,
    /// Fail-slow (hang) injection plan (see [`crate::fault::HangFaultPlan`]):
    /// command stalls, lost completions and lane wedges drawn at the host
    /// queue. Disabled by default. Like [`MssdConfig::fault`], cloning the
    /// config shares the plan's deterministic draw sequence.
    pub hang: HangFaultPlan,
    /// Spare erase blocks reserved per channel for bad-block replacement.
    /// When a channel retires a block (program or erase failure) a spare is
    /// pulled into rotation; once spares and free blocks are exhausted the
    /// device degrades to read-only.
    pub spare_blocks_per_channel: usize,
    /// Maximum read retries (ladder rungs after the initial read) before a
    /// corrupted page is declared an uncorrectable error (UECC).
    pub read_retry_limit: u32,
}

impl Default for MssdConfig {
    fn default() -> Self {
        Self::with_profile(TimingProfile::Default)
    }
}

impl MssdConfig {
    /// The paper's emulator configuration (Table 4) under the given flash
    /// latency profile.
    pub fn with_profile(profile: TimingProfile) -> Self {
        let (flash_read_ns, flash_write_ns) = profile.flash_latency_ns();
        let (byte_read_ns, byte_write_ns) = profile.byte_latency_ns();
        Self {
            capacity_bytes: 32 << 30,
            page_size: PAGE_SIZE,
            channels: 8,
            pages_per_block: 256,
            overprovision: 0.07,
            flash_read_ns,
            flash_write_ns,
            flash_erase_ns: 3_000_000,
            byte_read_ns,
            byte_write_ns,
            block_read_bw: 3.5e9,
            block_write_bw: 2.5e9,
            nvme_overhead_ns: 8_000,
            dram_region_bytes: 256 << 20,
            log_clean_threshold: 0.85,
            txlog_bytes: 2 << 20,
            write_buffer_bytes: 16 << 20,
            background_cleaning: true,
            profile,
            fault: FaultPlan::disabled(),
            media: MediaFaultPlan::disabled(),
            hang: HangFaultPlan::disabled(),
            spare_blocks_per_channel: 4,
            read_retry_limit: 4,
        }
    }

    /// A deliberately small configuration (a few MB) for fast unit tests.
    pub fn small_test() -> Self {
        Self {
            capacity_bytes: 8 << 20,
            page_size: PAGE_SIZE,
            channels: 4,
            pages_per_block: 16,
            overprovision: 0.25,
            flash_read_ns: 40_000,
            flash_write_ns: 60_000,
            flash_erase_ns: 1_000_000,
            byte_read_ns: 4_800,
            byte_write_ns: 600,
            block_read_bw: 3.5e9,
            block_write_bw: 2.5e9,
            nvme_overhead_ns: 8_000,
            dram_region_bytes: 256 << 10,
            log_clean_threshold: 0.85,
            txlog_bytes: 64 << 10,
            write_buffer_bytes: 64 << 10,
            background_cleaning: true,
            profile: TimingProfile::Default,
            fault: FaultPlan::disabled(),
            media: MediaFaultPlan::disabled(),
            hang: HangFaultPlan::disabled(),
            spare_blocks_per_channel: 2,
            read_retry_limit: 4,
        }
    }

    /// A medium configuration (default 1 GiB) sized for benchmark-harness runs
    /// that finish in seconds while keeping realistic geometry.
    pub fn bench(capacity_bytes: u64) -> Self {
        Self { capacity_bytes, ..Self::default() }
    }

    /// Sets the capacity, keeping everything else.
    pub fn with_capacity(mut self, capacity_bytes: u64) -> Self {
        self.capacity_bytes = capacity_bytes;
        self
    }

    /// Sets the DRAM region (write log / device cache) size.
    pub fn with_dram_region(mut self, bytes: usize) -> Self {
        self.dram_region_bytes = bytes;
        self
    }

    /// Sets the flash read/write latency in nanoseconds.
    pub fn with_flash_latency(mut self, read_ns: u64, write_ns: u64) -> Self {
        self.flash_read_ns = read_ns;
        self.flash_write_ns = write_ns;
        self
    }

    /// Sets the byte-interface cacheline read/write latency in nanoseconds.
    pub fn with_byte_latency(mut self, read_ns: u64, write_ns: u64) -> Self {
        self.byte_read_ns = read_ns;
        self.byte_write_ns = write_ns;
        self
    }

    /// Enables or disables the background log-cleaner thread.
    pub fn with_background_cleaning(mut self, enabled: bool) -> Self {
        self.background_cleaning = enabled;
        self
    }

    /// Installs a power-failure injection plan (see [`crate::fault`]).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = plan;
        self
    }

    /// Installs a NAND media-fault injection plan (see
    /// [`crate::fault::MediaFaultPlan`]).
    pub fn with_media_fault_plan(mut self, plan: MediaFaultPlan) -> Self {
        self.media = plan;
        self
    }

    /// Installs a fail-slow (hang) injection plan (see
    /// [`crate::fault::HangFaultPlan`]).
    pub fn with_hang_fault_plan(mut self, plan: HangFaultPlan) -> Self {
        self.hang = plan;
        self
    }

    /// Sets the spare-block reserve per channel.
    pub fn with_spare_blocks(mut self, per_channel: usize) -> Self {
        self.spare_blocks_per_channel = per_channel;
        self
    }

    /// Total number of logical pages exposed to the host.
    pub fn logical_pages(&self) -> u64 {
        self.capacity_bytes / self.page_size as u64
    }

    /// Total number of physical pages including over-provisioning, rounded up
    /// to whole blocks and a multiple of the channel count.
    pub fn physical_pages(&self) -> u64 {
        let raw = (self.capacity_bytes as f64 * (1.0 + self.overprovision)) as u64
            / self.page_size as u64;
        let per_block = self.pages_per_block as u64;
        let blocks = raw.div_ceil(per_block);
        let blocks = blocks.div_ceil(self.channels as u64) * self.channels as u64;
        blocks * per_block
    }

    /// Number of physical erase blocks.
    pub fn physical_blocks(&self) -> u64 {
        self.physical_pages() / self.pages_per_block as u64
    }

    /// Latency in nanoseconds to transfer `bytes` over the block interface in
    /// the given direction (`read = true` for device-to-host).
    pub fn transfer_ns(&self, bytes: usize, read: bool) -> u64 {
        let bw = if read { self.block_read_bw } else { self.block_write_bw };
        (bytes as f64 / bw * 1e9) as u64
    }

    /// Latency in nanoseconds of a byte-interface access of `len` bytes.
    ///
    /// The byte interface moves whole cachelines. Posted writes pay the full
    /// per-cacheline store latency (they are made persistent by a separate
    /// write-verify read, see [`crate::Mssd::persist_barrier`]). Reads are
    /// non-posted, but sequential loads overlap on the link, so cachelines
    /// after the first cost one eighth of the full round-trip.
    pub fn byte_access_ns(&self, len: usize, read: bool) -> u64 {
        let lines = len.div_ceil(CACHELINE).max(1) as u64;
        if read {
            self.byte_read_ns + (lines - 1) * (self.byte_read_ns / 8)
        } else {
            self.byte_write_ns * lines
        }
    }

    /// Validates internal consistency; returns a human-readable description of
    /// the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.page_size == 0 || !self.page_size.is_power_of_two() {
            return Err(format!("page_size {} must be a power of two", self.page_size));
        }
        if !self.capacity_bytes.is_multiple_of(self.page_size as u64) {
            return Err("capacity must be a multiple of the page size".into());
        }
        if self.channels == 0 {
            return Err("at least one flash channel is required".into());
        }
        if self.pages_per_block == 0 {
            return Err("pages_per_block must be non-zero".into());
        }
        if !(0.0..1.0).contains(&self.log_clean_threshold) {
            return Err("log_clean_threshold must be in [0, 1)".into());
        }
        if self.dram_region_bytes < self.page_size {
            return Err("dram region must hold at least one page".into());
        }
        if self.physical_pages() <= self.logical_pages() {
            return Err("over-provisioning leaves no spare pages".into());
        }
        Ok(())
    }

    /// The spare-block reserve a channel actually receives: the configured
    /// [`MssdConfig::spare_blocks_per_channel`] clamped so the reserve comes
    /// out of over-provisioning and still leaves at least one
    /// over-provisioned block per channel free for garbage collection. On
    /// geometries whose whole over-provisioning is smaller than a block per
    /// channel the reserve is zero and the first retirement degrades the
    /// device to read-only.
    pub fn effective_spare_blocks_per_channel(&self) -> usize {
        let op_pages = self.physical_pages().saturating_sub(self.logical_pages());
        let op_blocks_per_channel =
            (op_pages / self.pages_per_block as u64 / self.channels as u64) as usize;
        self.spare_blocks_per_channel.min(op_blocks_per_channel.saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_table4() {
        let c = MssdConfig::default();
        assert_eq!(c.capacity_bytes, 32 << 30);
        assert_eq!(c.page_size, 4096);
        assert_eq!(c.channels, 8);
        assert_eq!(c.flash_read_ns, 40_000);
        assert_eq!(c.flash_write_ns, 60_000);
        assert_eq!(c.byte_read_ns, 4_800);
        assert_eq!(c.byte_write_ns, 600);
        assert_eq!(c.dram_region_bytes, 256 << 20);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn small_test_is_valid() {
        assert!(MssdConfig::small_test().validate().is_ok());
    }

    #[test]
    fn profiles_cover_figure13_points() {
        assert_eq!(TimingProfile::LowEnd.flash_latency_ns(), (25_000, 200_000));
        assert_eq!(TimingProfile::Default.flash_latency_ns(), (40_000, 60_000));
        assert_eq!(TimingProfile::HighEnd.flash_latency_ns(), (3_000, 80_000));
        assert_eq!(TimingProfile::HighEndCxl.flash_latency_ns(), (3_000, 80_000));
        assert_eq!(TimingProfile::HighEndCxl.byte_latency_ns(), (175, 175));
        assert_eq!(TimingProfile::Default.byte_latency_ns(), (4_800, 600));
        assert_eq!(TimingProfile::all().len(), 4);
    }

    #[test]
    fn physical_exceeds_logical() {
        let c = MssdConfig::small_test();
        assert!(c.physical_pages() > c.logical_pages());
        assert_eq!(c.physical_pages() % c.pages_per_block as u64, 0);
    }

    #[test]
    fn transfer_latency_scales_with_size() {
        let c = MssdConfig::default();
        let one = c.transfer_ns(4096, true);
        let two = c.transfer_ns(8192, true);
        assert!(two >= 2 * one - 1);
        // 4 KB over 2.5 GB/s is ~1.6 us.
        let w = c.transfer_ns(4096, false);
        assert!((1_500..1_800).contains(&w), "write transfer {w} ns");
    }

    #[test]
    fn byte_access_per_cacheline() {
        let c = MssdConfig::default();
        assert_eq!(c.byte_access_ns(1, false), 600);
        assert_eq!(c.byte_access_ns(64, false), 600);
        assert_eq!(c.byte_access_ns(65, false), 1_200);
        assert_eq!(c.byte_access_ns(512, false), 8 * 600);
        // Reads: first line pays the full round-trip, later lines pipeline.
        assert_eq!(c.byte_access_ns(64, true), 4_800);
        assert_eq!(c.byte_access_ns(128, true), 4_800 + 600);
        assert_eq!(c.byte_access_ns(4096, true), 4_800 + 63 * 600);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = MssdConfig::small_test();
        c.page_size = 1000;
        assert!(c.validate().is_err());

        let mut c = MssdConfig::small_test();
        c.channels = 0;
        assert!(c.validate().is_err());

        let mut c = MssdConfig::small_test();
        c.log_clean_threshold = 1.5;
        assert!(c.validate().is_err());

        let mut c = MssdConfig::small_test();
        c.overprovision = 0.0;
        assert!(c.validate().is_err());

        let mut c = MssdConfig::small_test();
        c.spare_blocks_per_channel = 1000;
        assert!(c.validate().is_ok(), "oversized reserves are clamped, not rejected");
        assert!(
            c.effective_spare_blocks_per_channel() < 1000,
            "effective reserve must not eat all over-provisioning"
        );
        assert!(c.effective_spare_blocks_per_channel() >= 1);

        // small_test affords its configured reserve outright.
        let c = MssdConfig::small_test();
        assert_eq!(c.effective_spare_blocks_per_channel(), c.spare_blocks_per_channel);
    }

    #[test]
    fn media_fault_knobs_default_off() {
        let c = MssdConfig::small_test();
        assert!(!c.media.is_enabled());
        assert!(c.spare_blocks_per_channel > 0);
        assert!(c.read_retry_limit > 0);
        assert!(!c.hang.is_enabled());
        let armed = c
            .with_media_fault_plan(crate::fault::MediaFaultPlan::rates(1, 0.1, 0.0, 0.0))
            .with_hang_fault_plan(crate::fault::HangFaultPlan::rates(1, 0.01, 0.0, 0.0))
            .with_spare_blocks(3);
        assert!(armed.media.is_enabled());
        assert!(armed.hang.is_enabled());
        assert_eq!(armed.spare_blocks_per_channel, 3);
        assert!(armed.validate().is_ok());
    }

    #[test]
    fn builder_methods_update_fields() {
        let c = MssdConfig::default()
            .with_capacity(1 << 30)
            .with_dram_region(64 << 20)
            .with_flash_latency(3_000, 80_000)
            .with_byte_latency(175, 175);
        assert_eq!(c.capacity_bytes, 1 << 30);
        assert_eq!(c.dram_region_bytes, 64 << 20);
        assert_eq!(c.flash_read_ns, 3_000);
        assert_eq!(c.byte_write_ns, 175);
    }
}
