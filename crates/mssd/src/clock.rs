//! Virtual nanosecond clock shared by the device model and the measurement
//! harness.
//!
//! The ByteFS evaluation reports throughput (operations per second) and
//! latencies measured on real hardware. In this reproduction every simulated
//! component charges its cost to a [`Clock`], and the harness converts the
//! elapsed virtual nanoseconds back into throughput and latency numbers. The
//! clock is monotonic and shared (`Arc<Clock>`) between the device, the file
//! systems and the workload driver.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing virtual clock measured in nanoseconds.
///
/// ```
/// use mssd::Clock;
/// let clock = Clock::new();
/// clock.advance(1_500);
/// assert_eq!(clock.now_ns(), 1_500);
/// assert!((clock.now_secs() - 1.5e-6).abs() < 1e-12);
/// ```
#[derive(Debug, Default)]
pub struct Clock {
    now_ns: AtomicU64,
}

impl Clock {
    /// Creates a clock starting at time zero.
    pub fn new() -> Arc<Self> {
        Arc::new(Self { now_ns: AtomicU64::new(0) })
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::Relaxed)
    }

    /// Current virtual time in seconds.
    pub fn now_secs(&self) -> f64 {
        self.now_ns() as f64 / 1e9
    }

    /// Advances the clock by `delta_ns` nanoseconds and returns the new time.
    pub fn advance(&self, delta_ns: u64) -> u64 {
        self.now_ns.fetch_add(delta_ns, Ordering::Relaxed) + delta_ns
    }

    /// Returns the elapsed nanoseconds since `start_ns`.
    ///
    /// Saturates at zero if `start_ns` is in the future (which can only happen
    /// if the caller mixes timestamps from different clocks).
    pub fn elapsed_since(&self, start_ns: u64) -> u64 {
        self.now_ns().saturating_sub(start_ns)
    }
}

/// A scoped latency probe: records the start time on construction and reports
/// the elapsed virtual time when asked.
///
/// ```
/// use mssd::clock::{Clock, Stopwatch};
/// let clock = Clock::new();
/// let sw = Stopwatch::start(&clock);
/// clock.advance(42);
/// assert_eq!(sw.elapsed_ns(&clock), 42);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start_ns: u64,
}

impl Stopwatch {
    /// Starts a stopwatch at the clock's current time.
    pub fn start(clock: &Clock) -> Self {
        Self { start_ns: clock.now_ns() }
    }

    /// Virtual nanoseconds elapsed since the stopwatch was started.
    pub fn elapsed_ns(&self, clock: &Clock) -> u64 {
        clock.elapsed_since(self.start_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let c = Clock::new();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_secs(), 0.0);
    }

    #[test]
    fn advance_accumulates() {
        let c = Clock::new();
        assert_eq!(c.advance(10), 10);
        assert_eq!(c.advance(5), 15);
        assert_eq!(c.now_ns(), 15);
    }

    #[test]
    fn elapsed_since_saturates() {
        let c = Clock::new();
        c.advance(100);
        assert_eq!(c.elapsed_since(40), 60);
        assert_eq!(c.elapsed_since(1_000), 0);
    }

    #[test]
    fn stopwatch_measures_interval() {
        let c = Clock::new();
        c.advance(7);
        let sw = Stopwatch::start(&c);
        c.advance(13);
        assert_eq!(sw.elapsed_ns(&c), 13);
    }

    #[test]
    fn shared_between_threads() {
        let c = Clock::new();
        let c2 = c.clone();
        let h = std::thread::spawn(move || {
            for _ in 0..1000 {
                c2.advance(1);
            }
        });
        for _ in 0..1000 {
            c.advance(1);
        }
        h.join().unwrap();
        assert_eq!(c.now_ns(), 2000);
    }
}
