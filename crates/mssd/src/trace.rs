//! Structured event tracing across the device stack.
//!
//! `mssd::trace` captures typed [`TraceEvent`]s at every interesting boundary
//! of the stack — SQ submit, doorbell ring, batch coalesce, CQ completion,
//! reactor park/wake, retry backoff, deadline timeout, abort, lane reset, log
//! seal/drain, GC victim selection, ECC retry rungs, bad-block retirement,
//! flash programs/reads — into per-thread lock-free bounded ring buffers, and
//! exports them as Chrome-trace-event JSON (loadable in Perfetto / `ui.perfetto.dev`)
//! or a one-line-per-command text op trace.
//!
//! # Zero overhead when disabled
//!
//! The sink lives inside [`crate::stats::AtomicTraffic`], which is already
//! threaded through every component, so instrumentation points cost exactly
//! one `Relaxed` atomic load and one predictable branch when tracing is off
//! (the default). No ring buffers are allocated, no clocks are read, no
//! locks are touched. Enabling tracing never changes simulated behavior:
//! hooks observe the virtual clock but never advance it, so determinism
//! digests (crashkit) are identical traced or untraced.
//!
//! # Ring-buffer protocol
//!
//! Each emitting thread owns one bounded ring of [`RING_SLOTS`] event slots
//! per sink. The owner writes slot words with `Relaxed` stores and then
//! publishes with a `Release` head bump; when the ring is full the oldest
//! events are overwritten (the `dropped` count in [`TraceDump`] reports how
//! many). [`TraceSink::drain`] reads the head twice with `Acquire` and
//! discards any slot that could have been overwritten between the two reads,
//! so a concurrent drain never observes a torn event. Bounded rings also
//! keep traced crashkit enumerations (thousands of short runs) at a fixed
//! memory ceiling — a power cut simply truncates the ring at the last
//! published event.
//!
//! # Timestamps
//!
//! Every event carries **two** timestamps: the virtual clock (`vclock_ns`,
//! simulation time — what the exporters key spans on, so traces are
//! deterministic) and a wall-clock offset from sink creation (`wall_ns`,
//! host time — for relating simulation progress to real elapsed time).
//!
//! # Ambient context
//!
//! Queue/lane/tenant/command ids travel in a thread-local [`TraceCtx`] so
//! deep components (FTL, log, stats wrappers) emit fully-attributed events
//! without threading ids through their signatures. [`CtxScope`] installs a
//! context for a lexical region and restores the previous one on drop; the
//! doorbell path enters a scope per coalesced group so a flash program
//! triggered by `execute()` lands on the same command track as the submit
//! and completion that bracket it.

use std::cell::Cell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::clock::Clock;

/// Number of event slots in each per-thread ring (power of two).
pub const RING_SLOTS: usize = 1024;

/// The kind of a trace event. Discriminants are stable (they appear packed
/// in ring slots and in exported artifacts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum TraceKind {
    /// A command was placed in a submission queue. `a` = SQ pending depth.
    SqSubmit = 1,
    /// A doorbell ring started executing one coalesced group. `a` = group
    /// size in commands, `b` = commands still pending in the SQ.
    Doorbell = 2,
    /// Adjacent byte writes were coalesced into one flash op. `a` = commands
    /// absorbed, `b` = total bytes.
    Coalesce = 3,
    /// A command completed into the CQ. `a` = virtual latency ns, `b` =
    /// 1 if the completion reports an error.
    CqComplete = 4,
    /// An async submission parked waiting for queue capacity. `a` = slots
    /// needed, `b` = ticket.
    ReactorPark = 5,
    /// A parked submission was granted capacity and woken. `a` = slots
    /// granted, `b` = ticket.
    ReactorWake = 6,
    /// A host-level retry after a transient failure. `a` = backoff ns.
    RetryBackoff = 7,
    /// A command hit its host deadline before completing.
    DeadlineTimeout = 8,
    /// The host aborted a command.
    Abort = 9,
    /// A lane-level queue reset.
    LaneReset = 10,
    /// A write-log shard's active region was sealed. `a` = shard.
    LogSeal = 11,
    /// A log-cleaning pass drained sealed entries to flash.
    LogDrain = 12,
    /// GC selected a victim block. `a` = victim block id, `b` = live pages
    /// to relocate.
    GcVictim = 13,
    /// One ECC read-retry ladder rung.
    EccRetry = 14,
    /// A block was retired to the bad-block table.
    BadBlockRetire = 15,
    /// One flash page program. `a` = 1 if firmware-internal (GC relocation).
    FlashProgram = 16,
    /// One flash page read. `a` = 1 if firmware-internal.
    FlashRead = 17,
}

impl TraceKind {
    /// Stable short name (used by the exporters).
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::SqSubmit => "sq_submit",
            TraceKind::Doorbell => "doorbell",
            TraceKind::Coalesce => "coalesce",
            TraceKind::CqComplete => "cq_complete",
            TraceKind::ReactorPark => "reactor_park",
            TraceKind::ReactorWake => "reactor_wake",
            TraceKind::RetryBackoff => "retry_backoff",
            TraceKind::DeadlineTimeout => "deadline_timeout",
            TraceKind::Abort => "abort",
            TraceKind::LaneReset => "lane_reset",
            TraceKind::LogSeal => "log_seal",
            TraceKind::LogDrain => "log_drain",
            TraceKind::GcVictim => "gc_victim",
            TraceKind::EccRetry => "ecc_retry",
            TraceKind::BadBlockRetire => "bad_block_retire",
            TraceKind::FlashProgram => "flash_program",
            TraceKind::FlashRead => "flash_read",
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => TraceKind::SqSubmit,
            2 => TraceKind::Doorbell,
            3 => TraceKind::Coalesce,
            4 => TraceKind::CqComplete,
            5 => TraceKind::ReactorPark,
            6 => TraceKind::ReactorWake,
            7 => TraceKind::RetryBackoff,
            8 => TraceKind::DeadlineTimeout,
            9 => TraceKind::Abort,
            10 => TraceKind::LaneReset,
            11 => TraceKind::LogSeal,
            12 => TraceKind::LogDrain,
            13 => TraceKind::GcVictim,
            14 => TraceKind::EccRetry,
            15 => TraceKind::BadBlockRetire,
            16 => TraceKind::FlashProgram,
            17 => TraceKind::FlashRead,
            _ => return None,
        })
    }
}

/// One captured event, fully decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// What happened.
    pub kind: TraceKind,
    /// Host queue id the event is attributed to (0 = none/unknown).
    pub queue: u16,
    /// Reactor lane index (0 = none/unknown).
    pub lane: u16,
    /// Tenant / workload shard id (0 = none/unknown).
    pub tenant: u16,
    /// Command id the event belongs to (0 = not command-scoped).
    pub cmd: u64,
    /// Virtual-clock timestamp in nanoseconds.
    pub vclock_ns: u64,
    /// Wall-clock nanoseconds since the sink was created.
    pub wall_ns: u64,
    /// Kind-specific payload (see [`TraceKind`] docs).
    pub a: u64,
    /// Second kind-specific payload.
    pub b: u64,
}

/// Ambient trace attribution for the current thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCtx {
    /// Host queue id.
    pub queue: u16,
    /// Reactor lane index.
    pub lane: u16,
    /// Tenant / workload shard id.
    pub tenant: u16,
    /// Command id.
    pub cmd: u64,
}

impl TraceCtx {
    /// Returns a copy with the queue id replaced.
    pub fn with_queue(mut self, queue: u16) -> Self {
        self.queue = queue;
        self
    }

    /// Returns a copy with the lane index replaced.
    pub fn with_lane(mut self, lane: u16) -> Self {
        self.lane = lane;
        self
    }

    /// Returns a copy with the tenant id replaced.
    pub fn with_tenant(mut self, tenant: u16) -> Self {
        self.tenant = tenant;
        self
    }

    /// Returns a copy with the command id replaced.
    pub fn with_cmd(mut self, cmd: u64) -> Self {
        self.cmd = cmd;
        self
    }
}

thread_local! {
    static CTX: Cell<TraceCtx> = const { Cell::new(TraceCtx { queue: 0, lane: 0, tenant: 0, cmd: 0 }) };
}

/// The current thread's ambient trace context.
pub fn ctx() -> TraceCtx {
    CTX.with(|c| c.get())
}

/// Installs a [`TraceCtx`] for a lexical region; the previous context is
/// restored when the scope is dropped. Build the new context from [`ctx()`]
/// to inherit fields: `CtxScope::enter(ctx().with_cmd(id))`.
#[derive(Debug)]
pub struct CtxScope {
    prev: TraceCtx,
}

impl CtxScope {
    /// Replaces the ambient context, returning a guard that restores the
    /// previous one on drop.
    pub fn enter(new: TraceCtx) -> Self {
        let prev = CTX.with(|c| c.replace(new));
        Self { prev }
    }
}

impl Drop for CtxScope {
    fn drop(&mut self) {
        CTX.with(|c| c.set(self.prev));
    }
}

/// Words per ring slot: packed meta, vclock, wall, cmd, a, b.
const SLOT_WORDS: usize = 6;

/// One per-thread bounded event ring. The owning thread is the only writer;
/// any thread may drain.
struct Ring {
    /// Monotonic count of events ever written; slot for event `seq` is
    /// `seq % RING_SLOTS`. The owner bumps it with `Release` after the slot
    /// words are stored.
    head: AtomicU64,
    slots: Box<[[AtomicU64; SLOT_WORDS]]>,
}

impl Ring {
    fn new() -> Arc<Self> {
        let slots = (0..RING_SLOTS)
            .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Arc::new(Self { head: AtomicU64::new(0), slots })
    }

    /// Owner-thread write of one event (Relaxed stores + Release publish).
    fn push(&self, ev: &TraceEvent, ctx: TraceCtx) {
        let seq = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(seq % RING_SLOTS as u64) as usize];
        let meta = ((ev.kind as u64) << 48)
            | ((ctx.queue as u64) << 32)
            | ((ctx.lane as u64) << 16)
            | (ctx.tenant as u64);
        slot[0].store(meta, Ordering::Relaxed);
        slot[1].store(ev.vclock_ns, Ordering::Relaxed);
        slot[2].store(ev.wall_ns, Ordering::Relaxed);
        slot[3].store(ev.cmd, Ordering::Relaxed);
        slot[4].store(ev.a, Ordering::Relaxed);
        slot[5].store(ev.b, Ordering::Relaxed);
        self.head.store(seq + 1, Ordering::Release);
    }

    /// Snapshot of this ring's currently-readable events plus the count of
    /// events lost to overwriting (ring overflow or mid-drain races).
    fn drain(&self) -> (Vec<TraceEvent>, u64) {
        let cap = RING_SLOTS as u64;
        let h1 = self.head.load(Ordering::Acquire);
        let first = h1.saturating_sub(cap);
        let mut out = Vec::with_capacity((h1 - first) as usize);
        let mut seqs = Vec::with_capacity(out.capacity());
        for seq in first..h1 {
            let slot = &self.slots[(seq % cap) as usize];
            let meta = slot[0].load(Ordering::Relaxed);
            let vclock_ns = slot[1].load(Ordering::Relaxed);
            let wall_ns = slot[2].load(Ordering::Relaxed);
            let cmd = slot[3].load(Ordering::Relaxed);
            let a = slot[4].load(Ordering::Relaxed);
            let b = slot[5].load(Ordering::Relaxed);
            let Some(kind) = TraceKind::from_u8((meta >> 48) as u8) else {
                continue;
            };
            out.push(TraceEvent {
                kind,
                queue: (meta >> 32) as u16,
                lane: (meta >> 16) as u16,
                tenant: meta as u16,
                cmd,
                vclock_ns,
                wall_ns,
                a,
                b,
            });
            seqs.push(seq);
        }
        // Anything the writer may have clobbered while we were reading —
        // including the slot the in-flight write for seq `h2` reuses — is
        // discarded, so no torn event can escape.
        let h2 = self.head.load(Ordering::Acquire);
        let safe_from = h2.saturating_sub(cap) + u64::from(h2 >= cap);
        let torn = seqs.partition_point(|&s| s < safe_from);
        out.drain(..torn);
        (out, first + torn as u64)
    }
}

/// The result of draining a sink: all readable events across every thread's
/// ring, sorted by virtual timestamp, plus how many events were lost to ring
/// overflow.
#[derive(Debug, Clone, Default)]
pub struct TraceDump {
    /// Captured events in virtual-clock order.
    pub events: Vec<TraceEvent>,
    /// Events overwritten before they could be drained (ring overflow).
    pub dropped: u64,
}

static NEXT_SINK_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Cache of this thread's ring for the most recently used sink, keyed by
    /// sink id so a thread emitting into several devices re-registers as it
    /// switches between them. Holding the `Arc` here (at most one ring per
    /// thread) keeps a cached pointer valid even if its sink has since been
    /// dropped; the id check makes such a stale entry unreachable.
    static THREAD_RING: std::cell::RefCell<Option<(u64, Arc<Ring>)>> =
        const { std::cell::RefCell::new(None) };
}

/// A per-device trace sink: enable flag, clock binding and the registry of
/// per-thread rings. Lives inside [`crate::stats::AtomicTraffic`] so every
/// instrumented component reaches it through the stats bank it already holds.
pub struct TraceSink {
    id: u64,
    enabled: AtomicBool,
    clock: OnceLock<Arc<Clock>>,
    epoch: Instant,
    rings: Mutex<Vec<Arc<Ring>>>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink").field("id", &self.id).field("enabled", &self.enabled()).finish()
    }
}

impl Default for TraceSink {
    fn default() -> Self {
        Self {
            id: NEXT_SINK_ID.fetch_add(1, Ordering::Relaxed),
            enabled: AtomicBool::new(false),
            clock: OnceLock::new(),
            epoch: Instant::now(),
            rings: Mutex::new(Vec::new()),
        }
    }
}

impl TraceSink {
    /// Creates a disabled sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether tracing is currently enabled. One `Relaxed` load — this is
    /// the entire cost of every instrumentation point while disabled.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns event capture on or off. Already-captured events are kept.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Binds the virtual clock events are stamped with. Called once at
    /// device construction; later calls are ignored.
    pub fn attach_clock(&self, clock: Arc<Clock>) {
        let _ = self.clock.set(clock);
    }

    /// Emits one event attributed by the ambient [`TraceCtx`]. No-op (one
    /// load + branch) while disabled.
    #[inline]
    pub fn emit(&self, kind: TraceKind, a: u64, b: u64) {
        if !self.enabled() {
            return;
        }
        self.emit_slow(kind, ctx().cmd, a, b);
    }

    /// Emits one event with an explicit command id overriding the ambient
    /// context (completion paths attribute per command out of a batch).
    #[inline]
    pub fn emit_cmd(&self, kind: TraceKind, cmd: u64, a: u64, b: u64) {
        if !self.enabled() {
            return;
        }
        self.emit_slow(kind, cmd, a, b);
    }

    #[cold]
    fn emit_slow(&self, kind: TraceKind, cmd: u64, a: u64, b: u64) {
        let ctx = ctx();
        let ev = TraceEvent {
            kind,
            queue: ctx.queue,
            lane: ctx.lane,
            tenant: ctx.tenant,
            cmd,
            vclock_ns: self.clock.get().map_or(0, |c| c.now_ns()),
            wall_ns: self.epoch.elapsed().as_nanos() as u64,
            a,
            b,
        };
        THREAD_RING.with(|cache| {
            let mut cache = cache.borrow_mut();
            if !matches!(&*cache, Some((id, _)) if *id == self.id) {
                let ring = Ring::new();
                self.rings.lock().expect("trace ring registry").push(Arc::clone(&ring));
                *cache = Some((self.id, ring));
            }
            cache.as_ref().expect("just ensured").1.push(&ev, ctx);
        });
    }

    /// Collects every thread's readable events, sorted by virtual timestamp
    /// (ties broken by wall time, then kind), along with the total number of
    /// events lost to ring overflow. Safe to call while other threads are
    /// still emitting — possibly-torn slots are discarded, not misread.
    pub fn drain(&self) -> TraceDump {
        let rings: Vec<Arc<Ring>> =
            self.rings.lock().expect("trace ring registry").iter().map(Arc::clone).collect();
        let mut dump = TraceDump::default();
        for ring in rings {
            let (mut events, dropped) = ring.drain();
            dump.events.append(&mut events);
            dump.dropped += dropped;
        }
        dump.events.sort_by_key(|e| (e.vclock_ns, e.wall_ns, e.kind as u8, e.cmd));
        dump
    }
}

fn push_json_common(out: &mut String, ev: &TraceEvent) {
    let _ = write!(
        out,
        r#""pid":{},"tid":{},"args":{{"lane":{},"tenant":{},"a":{},"b":{},"wall_ns":{}}}"#,
        ev.queue, ev.cmd, ev.lane, ev.tenant, ev.a, ev.b, ev.wall_ns
    );
}

/// Renders a dump in Chrome trace-event JSON (the format Perfetto and
/// `chrome://tracing` load). Processes are host queues, tracks (threads) are
/// command ids, so one command's journey — submit, doorbell, coalesce, flash
/// program, completion — reads as a single flame. Command-scoped lifetimes
/// are emitted as complete (`"X"`) spans from `sq_submit` to `cq_complete`;
/// every event additionally appears as an instant (`"i"`). Timestamps are
/// virtual-clock microseconds.
pub fn chrome_trace_json(dump: &TraceDump) -> String {
    let mut out = String::with_capacity(dump.events.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    // One "X" span per command: submit → completion.
    let mut open: std::collections::BTreeMap<(u16, u64), u64> = std::collections::BTreeMap::new();
    for ev in &dump.events {
        if ev.cmd != 0 {
            match ev.kind {
                TraceKind::SqSubmit => {
                    open.insert((ev.queue, ev.cmd), ev.vclock_ns);
                }
                TraceKind::CqComplete | TraceKind::Abort => {
                    if let Some(start) = open.remove(&(ev.queue, ev.cmd)) {
                        if !first {
                            out.push(',');
                        }
                        first = false;
                        let _ = write!(
                            out,
                            r#"{{"name":"cmd {}","cat":"cmd","ph":"X","ts":{:.3},"dur":{:.3},"#,
                            ev.cmd,
                            start as f64 / 1000.0,
                            ev.vclock_ns.saturating_sub(start) as f64 / 1000.0,
                        );
                        push_json_common(&mut out, ev);
                        out.push('}');
                    }
                }
                _ => {}
            }
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            r#"{{"name":"{}","cat":"{}","ph":"i","s":"t","ts":{:.3},"#,
            ev.kind.name(),
            if ev.cmd != 0 { "cmd" } else { "device" },
            ev.vclock_ns as f64 / 1000.0,
        );
        push_json_common(&mut out, ev);
        out.push('}');
    }
    let _ = write!(
        out,
        r#"],"displayTimeUnit":"ns","otherData":{{"dropped_events":{}}}}}"#,
        dump.dropped
    );
    out
}

/// Schema version stamped into the [`op_trace_text`] header line.
pub const OP_TRACE_SCHEMA: u64 = 1;

/// Run configuration carried in the op-trace header so a replayer can
/// validate it is re-driving the trace against a compatible device. The
/// trace sink itself knows none of these (the seed belongs to the workload,
/// the geometry to [`crate::MssdConfig`]), so the exporter takes them from
/// the caller; zero means "unknown" and is accepted by any consumer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpTraceMeta {
    /// Workload RNG seed the traced run used.
    pub seed: u64,
    /// Device capacity in bytes.
    pub capacity_bytes: u64,
    /// Device page size in bytes.
    pub page_size: u64,
}

impl OpTraceMeta {
    /// Captures the device geometry from a config, with the workload seed.
    pub fn new(seed: u64, cfg: &crate::MssdConfig) -> Self {
        Self { seed, capacity_bytes: cfg.capacity_bytes, page_size: cfg.page_size as u64 }
    }
}

/// Outcome of one traced command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpTraceOutcome {
    /// Completed successfully.
    Ok,
    /// Completed with an error status.
    Error,
    /// Resolved by a host-side abort.
    Abort,
}

impl OpTraceOutcome {
    /// The outcome's serialized token (`ok`/`error`/`abort`).
    pub fn label(self) -> &'static str {
        match self {
            OpTraceOutcome::Ok => "ok",
            OpTraceOutcome::Error => "error",
            OpTraceOutcome::Abort => "abort",
        }
    }
}

/// One parsed op-trace line: a command outcome with its attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpTraceEntry {
    /// Virtual-clock timestamp of the outcome.
    pub vclock_ns: u64,
    /// Host queue id.
    pub queue: u16,
    /// Tenant / workload shard id.
    pub tenant: u16,
    /// Command id.
    pub cmd: u64,
    /// How the command resolved.
    pub outcome: OpTraceOutcome,
    /// Submit-to-outcome virtual latency.
    pub lat_ns: u64,
}

/// A parsed op trace: the optional header metadata (absent for traces
/// exported before the header existed) plus every command-outcome line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedOpTrace {
    /// Header metadata, when the trace carried the `#optrace` header line.
    pub meta: Option<OpTraceMeta>,
    /// Command outcomes in file order (virtual-clock order as exported).
    pub entries: Vec<OpTraceEntry>,
}

/// Renders a dump as a text op trace: a `#optrace` header line carrying the
/// schema version and the run configuration (seed, device geometry), then
/// one line per command outcome (completion or abort) — virtual timestamp,
/// queue, tenant, command id, outcome, latency. This is the capture half of
/// the trace-replay pipeline: stable, grep-able, diff-able across runs, and
/// readable back via [`parse_op_trace`].
pub fn op_trace_text(dump: &TraceDump, meta: &OpTraceMeta) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "#optrace v{} seed={:#x} capacity_bytes={} page_size={}",
        OP_TRACE_SCHEMA, meta.seed, meta.capacity_bytes, meta.page_size
    );
    let mut submit: std::collections::BTreeMap<(u16, u64), u64> = std::collections::BTreeMap::new();
    for ev in &dump.events {
        match ev.kind {
            TraceKind::SqSubmit if ev.cmd != 0 => {
                submit.insert((ev.queue, ev.cmd), ev.vclock_ns);
            }
            TraceKind::CqComplete | TraceKind::Abort if ev.cmd != 0 => {
                let lat = submit
                    .remove(&(ev.queue, ev.cmd))
                    .map(|s| ev.vclock_ns.saturating_sub(s))
                    .unwrap_or(ev.a);
                let outcome = match ev.kind {
                    TraceKind::Abort => OpTraceOutcome::Abort,
                    _ if ev.b != 0 => OpTraceOutcome::Error,
                    _ => OpTraceOutcome::Ok,
                };
                let _ = writeln!(
                    out,
                    "{} q={} tenant={} cmd={} {} lat_ns={}",
                    ev.vclock_ns,
                    ev.queue,
                    ev.tenant,
                    ev.cmd,
                    outcome.label(),
                    lat
                );
            }
            _ => {}
        }
    }
    out
}

/// Parses the value of a `key=` field, accepting decimal or `0x` hex.
fn parse_field_u64(field: &str, key: &str) -> Result<u64, String> {
    let v = field.strip_prefix(key).ok_or_else(|| format!("expected `{key}...`, got {field:?}"))?;
    let parsed = match v.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    };
    parsed.map_err(|e| format!("bad {key} value {v:?}: {e}"))
}

/// Parses an op trace exported by [`op_trace_text`] back into entries.
///
/// Accepts both the current headered form and the original headerless form
/// (traces exported before the `#optrace` header existed parse with
/// `meta: None`). Other `#`-prefixed lines and blank lines are skipped, so
/// annotated or concatenated traces stay readable.
///
/// # Errors
///
/// Returns a message naming the offending line on a malformed header or
/// entry, or on an unsupported schema version.
pub fn parse_op_trace(text: &str) -> Result<ParsedOpTrace, String> {
    let mut trace = ParsedOpTrace::default();
    for (n, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("#optrace ") {
            let mut fields = rest.split_ascii_whitespace();
            let version = fields.next().unwrap_or("");
            let v: u64 = version
                .strip_prefix('v')
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("line {}: bad op-trace version {version:?}", n + 1))?;
            if v > OP_TRACE_SCHEMA {
                return Err(format!(
                    "line {}: op-trace schema v{v} is newer than supported v{OP_TRACE_SCHEMA}",
                    n + 1
                ));
            }
            let mut meta = OpTraceMeta::default();
            for field in fields {
                if field.starts_with("seed=") {
                    meta.seed = parse_field_u64(field, "seed=")
                        .map_err(|e| format!("line {}: {e}", n + 1))?;
                } else if field.starts_with("capacity_bytes=") {
                    meta.capacity_bytes = parse_field_u64(field, "capacity_bytes=")
                        .map_err(|e| format!("line {}: {e}", n + 1))?;
                } else if field.starts_with("page_size=") {
                    meta.page_size = parse_field_u64(field, "page_size=")
                        .map_err(|e| format!("line {}: {e}", n + 1))?;
                }
                // Unknown header fields are ignored: older parsers must keep
                // reading traces from newer minor revisions.
            }
            trace.meta = Some(meta);
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("line {}: {what} in {line:?}", n + 1);
        let mut fields = line.split_ascii_whitespace();
        let vclock_ns: u64 = fields
            .next()
            .and_then(|f| f.parse().ok())
            .ok_or_else(|| err("bad virtual timestamp"))?;
        let queue = parse_field_u64(fields.next().unwrap_or(""), "q=").map_err(|e| err(&e))?;
        let tenant =
            parse_field_u64(fields.next().unwrap_or(""), "tenant=").map_err(|e| err(&e))?;
        let cmd = parse_field_u64(fields.next().unwrap_or(""), "cmd=").map_err(|e| err(&e))?;
        let outcome = match fields.next() {
            Some("ok") => OpTraceOutcome::Ok,
            Some("error") => OpTraceOutcome::Error,
            Some("abort") => OpTraceOutcome::Abort,
            _ => return Err(err("bad outcome")),
        };
        let lat_ns =
            parse_field_u64(fields.next().unwrap_or(""), "lat_ns=").map_err(|e| err(&e))?;
        trace.entries.push(OpTraceEntry {
            vclock_ns,
            queue: queue as u16,
            tenant: tenant as u16,
            cmd,
            outcome,
            lat_ns,
        });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink_with_clock() -> (TraceSink, Arc<Clock>) {
        let sink = TraceSink::new();
        let clock = Clock::new();
        sink.attach_clock(Arc::clone(&clock));
        (sink, clock)
    }

    #[test]
    fn disabled_sink_captures_nothing() {
        let (sink, _clock) = sink_with_clock();
        sink.emit(TraceKind::SqSubmit, 1, 2);
        let dump = sink.drain();
        assert!(dump.events.is_empty());
        assert_eq!(dump.dropped, 0);
    }

    #[test]
    fn events_carry_ambient_context_and_clock() {
        let (sink, clock) = sink_with_clock();
        sink.set_enabled(true);
        clock.advance(500);
        let _scope = CtxScope::enter(ctx().with_queue(7).with_lane(3).with_tenant(2).with_cmd(99));
        sink.emit(TraceKind::Doorbell, 4, 11);
        clock.advance(100);
        sink.emit_cmd(TraceKind::CqComplete, 100, 600, 0);
        let dump = sink.drain();
        assert_eq!(dump.events.len(), 2);
        let d = &dump.events[0];
        assert_eq!(d.kind, TraceKind::Doorbell);
        assert_eq!((d.queue, d.lane, d.tenant, d.cmd), (7, 3, 2, 99));
        assert_eq!(d.vclock_ns, 500);
        assert_eq!((d.a, d.b), (4, 11));
        let c = &dump.events[1];
        assert_eq!(c.cmd, 100); // explicit override
        assert_eq!(c.queue, 7); // ambient
        assert_eq!(c.vclock_ns, 600);
    }

    #[test]
    fn ctx_scope_restores_previous() {
        let outer = ctx().with_queue(1);
        let _o = CtxScope::enter(outer);
        {
            let _i = CtxScope::enter(ctx().with_queue(2).with_cmd(5));
            assert_eq!(ctx().queue, 2);
            assert_eq!(ctx().cmd, 5);
        }
        assert_eq!(ctx().queue, 1);
        assert_eq!(ctx().cmd, 0);
    }

    #[test]
    fn overflow_overwrites_oldest_and_counts_dropped() {
        let (sink, clock) = sink_with_clock();
        sink.set_enabled(true);
        let n = RING_SLOTS + 100;
        for i in 0..n {
            clock.advance(1);
            sink.emit_cmd(TraceKind::FlashProgram, i as u64 + 1, 0, 0);
        }
        let dump = sink.drain();
        // One extra event is conservatively discarded: its slot is the one a
        // concurrent in-flight write would reuse.
        assert_eq!(dump.events.len(), RING_SLOTS - 1);
        assert_eq!(dump.dropped, 101);
        // The survivors are the newest events.
        assert_eq!(dump.events.first().unwrap().cmd, 102);
        assert_eq!(dump.events.last().unwrap().cmd, n as u64);
    }

    #[test]
    fn drain_merges_threads_in_vclock_order() {
        let (sink, clock) = sink_with_clock();
        sink.set_enabled(true);
        let sink = Arc::new(sink);
        std::thread::scope(|s| {
            for t in 0..4u16 {
                let sink = Arc::clone(&sink);
                let clock = Arc::clone(&clock);
                s.spawn(move || {
                    let _scope = CtxScope::enter(ctx().with_tenant(t));
                    for i in 0..50u64 {
                        clock.advance(1);
                        sink.emit_cmd(TraceKind::SqSubmit, t as u64 * 1000 + i + 1, 0, 0);
                    }
                });
            }
        });
        let dump = sink.drain();
        assert_eq!(dump.events.len(), 200);
        assert!(dump.events.windows(2).all(|w| w[0].vclock_ns <= w[1].vclock_ns));
        for t in 0..4u16 {
            assert_eq!(dump.events.iter().filter(|e| e.tenant == t).count(), 50);
        }
    }

    #[test]
    fn chrome_export_builds_span_per_command() {
        let (sink, clock) = sink_with_clock();
        sink.set_enabled(true);
        let _scope = CtxScope::enter(ctx().with_queue(3).with_cmd(42));
        sink.emit(TraceKind::SqSubmit, 1, 0);
        clock.advance(2000);
        sink.emit(TraceKind::FlashProgram, 0, 0);
        clock.advance(3000);
        sink.emit(TraceKind::CqComplete, 5000, 0);
        let json = chrome_trace_json(&sink.drain());
        assert!(json.contains(r#""ph":"X""#), "no span in {json}");
        assert!(json.contains(r#""name":"cmd 42""#));
        assert!(json.contains(r#""dur":5.000"#));
        assert!(json.contains(r#""pid":3"#));
        assert!(json.contains(r#""name":"flash_program""#));
        assert!(json.ends_with('}'));
    }

    #[test]
    fn op_trace_lists_command_outcomes_under_a_header() {
        let (sink, clock) = sink_with_clock();
        sink.set_enabled(true);
        let _scope = CtxScope::enter(ctx().with_queue(2).with_tenant(9).with_cmd(7));
        sink.emit(TraceKind::SqSubmit, 0, 0);
        clock.advance(1234);
        sink.emit(TraceKind::CqComplete, 1234, 0);
        let meta = OpTraceMeta { seed: 0x2a, capacity_bytes: 1 << 24, page_size: 4096 };
        let text = op_trace_text(&sink.drain(), &meta);
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "#optrace v1 seed=0x2a capacity_bytes=16777216 page_size=4096"
        );
        assert_eq!(lines.next().unwrap(), "1234 q=2 tenant=9 cmd=7 ok lat_ns=1234");
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn op_trace_round_trips_through_the_parser() {
        let (sink, clock) = sink_with_clock();
        sink.set_enabled(true);
        let _scope = CtxScope::enter(ctx().with_queue(3).with_tenant(1).with_cmd(11));
        sink.emit(TraceKind::SqSubmit, 0, 0);
        clock.advance(500);
        sink.emit(TraceKind::CqComplete, 500, 1); // error status
        {
            let _inner = CtxScope::enter(ctx().with_cmd(12));
            sink.emit(TraceKind::SqSubmit, 0, 0);
            clock.advance(80);
            sink.emit(TraceKind::Abort, 80, 0);
        }
        let meta = OpTraceMeta { seed: 7, capacity_bytes: 1 << 30, page_size: 4096 };
        let parsed = parse_op_trace(&op_trace_text(&sink.drain(), &meta)).unwrap();
        assert_eq!(parsed.meta, Some(meta));
        assert_eq!(parsed.entries.len(), 2);
        assert_eq!(
            parsed.entries[0],
            OpTraceEntry {
                vclock_ns: 500,
                queue: 3,
                tenant: 1,
                cmd: 11,
                outcome: OpTraceOutcome::Error,
                lat_ns: 500,
            }
        );
        assert_eq!(parsed.entries[1].outcome, OpTraceOutcome::Abort);
        assert_eq!(parsed.entries[1].cmd, 12);
    }

    #[test]
    fn parser_reads_legacy_headerless_traces() {
        let text =
            "1234 q=2 tenant=9 cmd=7 ok lat_ns=1234\n9999 q=0 tenant=0 cmd=8 error lat_ns=5\n";
        let parsed = parse_op_trace(text).unwrap();
        assert_eq!(parsed.meta, None, "pre-header traces carry no metadata");
        assert_eq!(parsed.entries.len(), 2);
        assert_eq!(parsed.entries[1].outcome, OpTraceOutcome::Error);
    }

    #[test]
    fn parser_skips_comments_and_rejects_garbage_and_future_schemas() {
        assert!(parse_op_trace("# a comment\n\n").unwrap().entries.is_empty());
        let err = parse_op_trace("not a trace line").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err = parse_op_trace("#optrace v99 seed=0x0").unwrap_err();
        assert!(err.contains("newer than supported"), "{err}");
        assert!(parse_op_trace("1 q=2 tenant=3 cmd=4 exploded lat_ns=5").is_err());
    }
}
