//! Flash translation layer: logical→physical page mapping, write buffering,
//! and greedy garbage collection.
//!
//! The ByteFS prototype "preserves the original SSD FTL layer and its core
//! functionalities" (§4.9); the emulator incorporates "page allocation,
//! page-level translation, and garbage collection". This module implements
//! exactly that substrate:
//!
//! * a page-level L2P map,
//! * per-channel active blocks with sequential page allocation,
//! * a write buffer (16 MB by default) that batches page programs so that the
//!   channel-parallel program latency model applies, and
//! * greedy garbage collection that relocates valid pages from the block with
//!   the fewest valid pages.
//!
//! All latencies are computed from the [`MssdConfig`] and returned to the
//! caller in nanoseconds; all flash page movements are recorded lock-free in
//! the device's [`AtomicTraffic`] counters.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::config::MssdConfig;
use crate::flash::{BlockId, FlashArray, Ppa};
use crate::stats::AtomicTraffic;

/// Logical page address (host-visible page number).
pub type Lpa = u64;

/// The flash translation layer plus the flash array it manages.
#[derive(Debug)]
pub struct Ftl {
    cfg: MssdConfig,
    flash: FlashArray,
    l2p: HashMap<Lpa, Ppa>,
    p2l: HashMap<Ppa, Lpa>,
    valid_count: Vec<usize>,
    /// Free (erased, unallocated) blocks per channel.
    free_blocks: Vec<VecDeque<BlockId>>,
    /// Active (currently being filled) block per channel and its next offset.
    active: Vec<Option<(BlockId, usize)>>,
    active_set: HashSet<BlockId>,
    next_channel: usize,
    /// Buffered (lpa, page data) waiting to be programmed.
    write_buffer: Vec<(Lpa, Vec<u8>)>,
    write_buffer_capacity: usize,
}

impl Ftl {
    /// Creates an FTL over a fresh flash array with the given configuration.
    pub fn new(cfg: MssdConfig) -> Self {
        let flash = FlashArray::new(&cfg);
        let channels = cfg.channels;
        let mut free_blocks: Vec<VecDeque<BlockId>> = vec![VecDeque::new(); channels];
        for block in 0..flash.total_blocks() {
            free_blocks[(block % channels as u64) as usize].push_back(block);
        }
        let total_blocks = flash.total_blocks() as usize;
        let write_buffer_capacity = (cfg.write_buffer_bytes / cfg.page_size).max(1);
        Self {
            cfg,
            flash,
            l2p: HashMap::new(),
            p2l: HashMap::new(),
            valid_count: vec![0; total_blocks],
            free_blocks,
            active: vec![None; channels],
            active_set: HashSet::new(),
            next_channel: 0,
            write_buffer: Vec::new(),
            write_buffer_capacity,
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.cfg.page_size
    }

    /// Number of logical pages exposed to the host.
    pub fn logical_pages(&self) -> u64 {
        self.cfg.logical_pages()
    }

    /// Number of logical pages currently mapped to flash.
    pub fn mapped_pages(&self) -> usize {
        self.l2p.len()
    }

    /// Number of page writes currently sitting in the write buffer.
    pub fn buffered_pages(&self) -> usize {
        self.write_buffer.len()
    }

    /// Whether a logical page has ever been written (mapped or buffered).
    pub fn is_mapped(&self, lpa: Lpa) -> bool {
        self.l2p.contains_key(&lpa) || self.write_buffer.iter().any(|(l, _)| *l == lpa)
    }

    /// Reads a logical page.
    ///
    /// Returns the page contents (zeros if never written) and the latency in
    /// nanoseconds. Pages still sitting in the write buffer are served from
    /// the buffer without a flash access. `internal` marks reads issued by
    /// firmware-internal work (log cleaning read-modify-write) so they are
    /// accounted separately.
    pub fn read_page(&self, lpa: Lpa, stats: &AtomicTraffic, internal: bool) -> (Vec<u8>, u64) {
        // Newest buffered copy wins.
        if let Some((_, data)) = self.write_buffer.iter().rev().find(|(l, _)| *l == lpa) {
            return (data.clone(), 0);
        }
        match self.l2p.get(&lpa) {
            Some(&ppa) => {
                if internal {
                    stats.inc_flash_read(true);
                } else {
                    stats.inc_flash_read(false);
                }
                let data = self.flash.read_page(ppa).expect("mapped ppa in range");
                (data, self.cfg.flash_read_ns)
            }
            None => (vec![0u8; self.cfg.page_size], 0),
        }
    }

    /// Queues a full-page write into the FTL write buffer.
    ///
    /// Returns the latency charged now (only a buffer drain if the buffer was
    /// full). The page becomes durable only after [`Ftl::flush_buffer`].
    pub fn buffer_write(&mut self, lpa: Lpa, data: Vec<u8>, stats: &AtomicTraffic) -> u64 {
        debug_assert!(lpa < self.logical_pages(), "lpa {lpa} out of range");
        let mut cost = 0;
        if self.write_buffer.len() >= self.write_buffer_capacity {
            cost += self.flush_buffer(stats);
        }
        // Coalesce a pending write to the same page.
        if let Some(slot) = self.write_buffer.iter_mut().find(|(l, _)| *l == lpa) {
            slot.1 = data;
        } else {
            self.write_buffer.push((lpa, data));
        }
        cost
    }

    /// Programs all buffered pages to flash, running garbage collection as
    /// needed. Returns the latency in nanoseconds (channel-parallel).
    pub fn flush_buffer(&mut self, stats: &AtomicTraffic) -> u64 {
        if self.write_buffer.is_empty() {
            return 0;
        }
        let pending = std::mem::take(&mut self.write_buffer);
        let n = pending.len();
        let mut cost = 0;
        for (lpa, data) in pending {
            cost += self.ensure_free_space(stats);
            let ppa = self.allocate_ppa(stats);
            self.flash.program_page(ppa, &data).expect("allocation yields programmable page");
            stats.inc_flash_write(false);
            self.map(lpa, ppa);
        }
        // Program latency: pages on distinct channels proceed in parallel.
        let rounds = n.div_ceil(self.cfg.channels) as u64;
        cost + rounds * self.cfg.flash_write_ns
    }

    /// Marks a logical page as no longer containing live data (e.g. the file
    /// system freed the block). The physical page becomes garbage.
    pub fn trim(&mut self, lpa: Lpa) {
        self.write_buffer.retain(|(l, _)| *l != lpa);
        if let Some(ppa) = self.l2p.remove(&lpa) {
            self.p2l.remove(&ppa);
            let block = self.flash.block_of(ppa) as usize;
            self.valid_count[block] = self.valid_count[block].saturating_sub(1);
        }
    }

    /// Fraction of physical pages holding live data.
    pub fn utilization(&self) -> f64 {
        self.l2p.len() as f64 / self.flash.total_pages() as f64
    }

    /// Maximum block erase count (wear indicator), exposed for tests and
    /// reports.
    pub fn max_wear(&self) -> u64 {
        self.flash.max_wear()
    }

    fn map(&mut self, lpa: Lpa, ppa: Ppa) {
        if let Some(old) = self.l2p.insert(lpa, ppa) {
            self.p2l.remove(&old);
            let block = self.flash.block_of(old) as usize;
            self.valid_count[block] = self.valid_count[block].saturating_sub(1);
        }
        self.p2l.insert(ppa, lpa);
        let block = self.flash.block_of(ppa) as usize;
        self.valid_count[block] += 1;
    }

    fn total_free_blocks(&self) -> usize {
        self.free_blocks.iter().map(|q| q.len()).sum()
    }

    /// Allocates the next physical page, filling per-channel active blocks
    /// round-robin.
    fn allocate_ppa(&mut self, stats: &AtomicTraffic) -> Ppa {
        let channels = self.cfg.channels;
        for _ in 0..channels {
            let ch = self.next_channel;
            self.next_channel = (self.next_channel + 1) % channels;
            // Refill the active block for this channel if needed.
            if self.active[ch].is_none() {
                if let Some(block) = self.free_blocks[ch].pop_front() {
                    self.active[ch] = Some((block, 0));
                    self.active_set.insert(block);
                }
            }
            if let Some((block, off)) = self.active[ch] {
                let ppa = self.flash.first_page_of(block) + off as u64;
                let next = off + 1;
                if next >= self.flash.pages_per_block() {
                    self.active[ch] = None;
                    self.active_set.remove(&block);
                } else {
                    self.active[ch] = Some((block, next));
                }
                return ppa;
            }
        }
        // All channels exhausted: force GC and retry (GC is guaranteed to free
        // a block because logical capacity < physical capacity).
        let freed = self.collect_garbage(stats);
        debug_assert!(freed > 0, "garbage collection made no progress");
        self.allocate_ppa(stats)
    }

    /// Runs garbage collection if the free-block pool is low. Returns the
    /// latency spent.
    fn ensure_free_space(&mut self, stats: &AtomicTraffic) -> u64 {
        let low_water = self.cfg.channels + 1;
        let mut cost = 0;
        let mut guard = 0;
        while self.total_free_blocks() < low_water {
            let c = self.collect_garbage_cost(stats);
            if c == 0 {
                break;
            }
            cost += c;
            guard += 1;
            if guard > self.flash.total_blocks() {
                break;
            }
        }
        cost
    }

    /// Greedy GC: relocate valid pages out of the block with the fewest valid
    /// pages, then erase it. Returns number of blocks freed.
    fn collect_garbage(&mut self, stats: &AtomicTraffic) -> usize {
        if self.collect_garbage_cost(stats) > 0 {
            1
        } else {
            0
        }
    }

    fn collect_garbage_cost(&mut self, stats: &AtomicTraffic) -> u64 {
        // Victim: fully-written, non-active block with minimum valid pages.
        let ppb = self.flash.pages_per_block();
        let victim = (0..self.flash.total_blocks())
            .filter(|b| !self.active_set.contains(b))
            .filter(|b| self.flash.block_fill(*b) == ppb)
            .min_by_key(|b| self.valid_count[*b as usize]);
        let Some(victim) = victim else { return 0 };

        let mut cost = 0;
        let first = self.flash.first_page_of(victim);
        // Relocate valid pages.
        let live: Vec<(Ppa, Lpa)> = (0..ppb as u64)
            .filter_map(|off| {
                let ppa = first + off;
                self.p2l.get(&ppa).map(|lpa| (ppa, *lpa))
            })
            .collect();
        for (ppa, lpa) in live {
            let data = self.flash.read_page(ppa).expect("victim page readable");
            stats.inc_flash_read(true);
            cost += self.cfg.flash_read_ns;
            let dst = self.allocate_ppa(stats);
            debug_assert_ne!(self.flash.block_of(dst), victim, "GC wrote into its own victim");
            self.flash.program_page(dst, &data).expect("relocation target programmable");
            stats.inc_flash_write(true);
            cost += self.cfg.flash_write_ns;
            self.map(lpa, dst);
        }
        self.flash.erase_block(victim).expect("victim block erasable");
        stats.inc_flash_erase();
        cost += self.cfg.flash_erase_ns;
        self.valid_count[victim as usize] = 0;
        self.free_blocks[(victim % self.cfg.channels as u64) as usize].push_back(victim);
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ftl() -> (Ftl, AtomicTraffic) {
        (Ftl::new(MssdConfig::small_test()), AtomicTraffic::new())
    }

    fn page(tag: u8, size: usize) -> Vec<u8> {
        vec![tag; size]
    }

    #[test]
    fn read_unwritten_is_zero_and_free() {
        let (f, st) = ftl();
        let (data, ns) = f.read_page(7, &st, false);
        assert_eq!(data, vec![0u8; f.page_size()]);
        assert_eq!(ns, 0);
        assert_eq!(st.snapshot().flash_read_pages, 0);
    }

    #[test]
    fn write_then_read_from_buffer() {
        let (mut f, st) = ftl();
        let ps = f.page_size();
        f.buffer_write(3, page(0xAB, ps), &st);
        // Still in buffer: no flash write yet, read served from buffer.
        assert_eq!(st.snapshot().flash_write_pages, 0);
        let (data, ns) = f.read_page(3, &st, false);
        assert_eq!(data, page(0xAB, ps));
        assert_eq!(ns, 0);
    }

    #[test]
    fn flush_programs_pages() {
        let (mut f, st) = ftl();
        let ps = f.page_size();
        f.buffer_write(1, page(1, ps), &st);
        f.buffer_write(2, page(2, ps), &st);
        let cost = f.flush_buffer(&st);
        assert!(cost > 0);
        assert_eq!(st.snapshot().flash_write_pages, 2);
        assert_eq!(f.mapped_pages(), 2);
        let (d, ns) = f.read_page(2, &st, false);
        assert_eq!(d, page(2, ps));
        assert!(ns > 0);
        assert_eq!(st.snapshot().flash_read_pages, 1);
    }

    #[test]
    fn overwrite_invalidates_old_mapping() {
        let (mut f, st) = ftl();
        let ps = f.page_size();
        f.buffer_write(5, page(1, ps), &st);
        f.flush_buffer(&st);
        f.buffer_write(5, page(2, ps), &st);
        f.flush_buffer(&st);
        assert_eq!(f.mapped_pages(), 1);
        let (d, _) = f.read_page(5, &st, false);
        assert_eq!(d, page(2, ps));
    }

    #[test]
    fn buffer_coalesces_same_lpa() {
        let (mut f, st) = ftl();
        let ps = f.page_size();
        f.buffer_write(9, page(1, ps), &st);
        f.buffer_write(9, page(2, ps), &st);
        assert_eq!(f.buffered_pages(), 1);
        f.flush_buffer(&st);
        assert_eq!(st.snapshot().flash_write_pages, 1);
        let (d, _) = f.read_page(9, &st, false);
        assert_eq!(d, page(2, ps));
    }

    #[test]
    fn channel_parallelism_reduces_latency() {
        let cfg = MssdConfig::small_test();
        let per_write = cfg.flash_write_ns;
        let channels = cfg.channels;
        let (mut f, st) = ftl();
        let ps = f.page_size();
        for i in 0..channels as u64 {
            f.buffer_write(i, page(i as u8, ps), &st);
        }
        let cost = f.flush_buffer(&st);
        // All pages fit in one parallel round (plus possible GC cost of 0).
        assert_eq!(cost, per_write);
    }

    #[test]
    fn trim_unmaps() {
        let (mut f, st) = ftl();
        let ps = f.page_size();
        f.buffer_write(4, page(7, ps), &st);
        f.flush_buffer(&st);
        assert!(f.is_mapped(4));
        f.trim(4);
        assert!(!f.is_mapped(4));
        let (d, ns) = f.read_page(4, &st, false);
        assert_eq!(d, vec![0u8; ps]);
        assert_eq!(ns, 0);
    }

    #[test]
    fn sustained_overwrites_trigger_gc_and_stay_correct() {
        // Write far more page-versions than physical capacity to force GC.
        let cfg = MssdConfig::small_test();
        let logical = cfg.logical_pages();
        let mut f = Ftl::new(cfg);
        let st = AtomicTraffic::new();
        let ps = f.page_size();
        let working_set = (logical / 2).max(8);
        let mut version = 0u8;
        for round in 0..6u64 {
            version = version.wrapping_add(1);
            for lpa in 0..working_set {
                f.buffer_write(lpa, page(version ^ lpa as u8, ps), &st);
            }
            f.flush_buffer(&st);
            // Spot-check correctness each round.
            let probe = round % working_set;
            let (d, _) = f.read_page(probe, &st, false);
            assert_eq!(d, page(version ^ probe as u8, ps), "round {round}");
        }
        assert!(st.snapshot().flash_erase_blocks > 0, "GC should have run");
        // Everything still readable with the final version.
        for lpa in 0..working_set {
            let (d, _) = f.read_page(lpa, &st, false);
            assert_eq!(d, page(version ^ lpa as u8, ps), "lpa {lpa}");
        }
    }

    #[test]
    fn utilization_tracks_mapped_fraction() {
        let (mut f, st) = ftl();
        assert_eq!(f.utilization(), 0.0);
        let ps = f.page_size();
        for lpa in 0..16 {
            f.buffer_write(lpa, page(1, ps), &st);
        }
        f.flush_buffer(&st);
        assert!(f.utilization() > 0.0);
        assert!(f.utilization() < 1.0);
    }
}
