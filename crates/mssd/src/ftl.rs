//! Flash translation layer: logical→physical page mapping, write buffering,
//! and greedy garbage collection.
//!
//! The ByteFS prototype "preserves the original SSD FTL layer and its core
//! functionalities" (§4.9); the emulator incorporates "page allocation,
//! page-level translation, and garbage collection". This module implements
//! exactly that substrate:
//!
//! * a page-level L2P map,
//! * per-channel active blocks with sequential page allocation,
//! * a write buffer (16 MB by default) that batches page programs so that the
//!   channel-parallel program latency model applies, and
//! * greedy garbage collection that relocates valid pages from the block with
//!   the fewest valid pages.
//!
//! All latencies are computed from the [`MssdConfig`] and returned to the
//! caller in nanoseconds; all flash page movements are recorded lock-free in
//! the device's [`AtomicTraffic`] counters.
//!
//! Two implementations live here:
//!
//! * [`Ftl`] — the original single-threaded FTL over one [`FlashArray`]. Kept
//!   as the sequential reference model; the `channel_parallel_equiv` property
//!   tests pin the concurrent implementation to it.
//! * [`ShardedFtl`] — the concurrent FTL used by the device: a lock-striped
//!   L2P mapping table plus one independently locked [`ChannelFlash`] unit per
//!   flash channel (active block, free list, page store and write-buffer
//!   slice), so programs and reads on distinct channels proceed concurrently
//!   in real time, not just in the virtual-latency formula.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::config::MssdConfig;
use crate::ecc::{self, EccOutcome};
use crate::fault::FaultKind;
use crate::flash::{BlockId, ChannelFlash, FlashArray, FlashError, Ppa};
use crate::stats::AtomicTraffic;

/// Logical page address (host-visible page number).
pub type Lpa = u64;

/// One logical page's contents keyed by its LPA (crash-image currency).
pub type LogicalPage = (Lpa, Vec<u8>);

/// The flash translation layer plus the flash array it manages.
#[derive(Debug)]
pub struct Ftl {
    cfg: MssdConfig,
    flash: FlashArray,
    l2p: HashMap<Lpa, Ppa>,
    p2l: HashMap<Ppa, Lpa>,
    valid_count: Vec<usize>,
    /// Free (erased, unallocated) blocks per channel.
    free_blocks: Vec<VecDeque<BlockId>>,
    /// Active (currently being filled) block per channel and its next offset.
    active: Vec<Option<(BlockId, usize)>>,
    active_set: HashSet<BlockId>,
    next_channel: usize,
    /// Buffered (lpa, page data) waiting to be programmed.
    write_buffer: Vec<(Lpa, Vec<u8>)>,
    write_buffer_capacity: usize,
}

impl Ftl {
    /// Creates an FTL over a fresh flash array with the given configuration.
    pub fn new(cfg: MssdConfig) -> Self {
        let flash = FlashArray::new(&cfg);
        let channels = cfg.channels;
        let mut free_blocks: Vec<VecDeque<BlockId>> = vec![VecDeque::new(); channels];
        for block in 0..flash.total_blocks() {
            free_blocks[(block % channels as u64) as usize].push_back(block);
        }
        let total_blocks = flash.total_blocks() as usize;
        let write_buffer_capacity = (cfg.write_buffer_bytes / cfg.page_size).max(1);
        Self {
            cfg,
            flash,
            l2p: HashMap::new(),
            p2l: HashMap::new(),
            valid_count: vec![0; total_blocks],
            free_blocks,
            active: vec![None; channels],
            active_set: HashSet::new(),
            next_channel: 0,
            write_buffer: Vec::new(),
            write_buffer_capacity,
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.cfg.page_size
    }

    /// Number of logical pages exposed to the host.
    pub fn logical_pages(&self) -> u64 {
        self.cfg.logical_pages()
    }

    /// Number of logical pages currently mapped to flash.
    pub fn mapped_pages(&self) -> usize {
        self.l2p.len()
    }

    /// Number of page writes currently sitting in the write buffer.
    pub fn buffered_pages(&self) -> usize {
        self.write_buffer.len()
    }

    /// Whether a logical page has ever been written (mapped or buffered).
    pub fn is_mapped(&self, lpa: Lpa) -> bool {
        self.l2p.contains_key(&lpa) || self.write_buffer.iter().any(|(l, _)| *l == lpa)
    }

    /// Reads a logical page.
    ///
    /// Returns the page contents (zeros if never written) and the latency in
    /// nanoseconds. Pages still sitting in the write buffer are served from
    /// the buffer without a flash access. `internal` marks reads issued by
    /// firmware-internal work (log cleaning read-modify-write) so they are
    /// accounted separately.
    ///
    /// # Errors
    ///
    /// Propagates [`FlashError`] from the flash array. The sequential
    /// reference model does not inject media faults (that machinery lives in
    /// [`ShardedFtl`]), so errors only indicate structural violations.
    pub fn read_page(
        &self,
        lpa: Lpa,
        stats: &AtomicTraffic,
        internal: bool,
    ) -> Result<(Vec<u8>, u64), FlashError> {
        // Newest buffered copy wins.
        if let Some((_, data)) = self.write_buffer.iter().rev().find(|(l, _)| *l == lpa) {
            return Ok((data.clone(), 0));
        }
        match self.l2p.get(&lpa) {
            Some(&ppa) => {
                if internal {
                    stats.inc_flash_read(true);
                } else {
                    stats.inc_flash_read(false);
                }
                let data = self.flash.read_page(ppa)?;
                Ok((data, self.cfg.flash_read_ns))
            }
            None => Ok((vec![0u8; self.cfg.page_size], 0)),
        }
    }

    /// Queues a full-page write into the FTL write buffer.
    ///
    /// Returns the latency charged now (only a buffer drain if the buffer was
    /// full). The page becomes durable only after [`Ftl::flush_buffer`].
    ///
    /// # Errors
    ///
    /// Propagates [`FlashError`] from a buffer drain forced by a full buffer.
    pub fn buffer_write(
        &mut self,
        lpa: Lpa,
        data: Vec<u8>,
        stats: &AtomicTraffic,
    ) -> Result<u64, FlashError> {
        debug_assert!(lpa < self.logical_pages(), "lpa {lpa} out of range");
        let mut cost = 0;
        if self.write_buffer.len() >= self.write_buffer_capacity {
            cost += self.flush_buffer(stats)?;
        }
        // Coalesce a pending write to the same page.
        if let Some(slot) = self.write_buffer.iter_mut().find(|(l, _)| *l == lpa) {
            slot.1 = data;
        } else {
            self.write_buffer.push((lpa, data));
        }
        Ok(cost)
    }

    /// Programs all buffered pages to flash, running garbage collection as
    /// needed. Returns the latency in nanoseconds (channel-parallel).
    ///
    /// # Errors
    ///
    /// Propagates [`FlashError`] from the flash array (structurally
    /// impossible under the allocator's invariants, but no longer unwrapped).
    pub fn flush_buffer(&mut self, stats: &AtomicTraffic) -> Result<u64, FlashError> {
        if self.write_buffer.is_empty() {
            return Ok(0);
        }
        let pending = std::mem::take(&mut self.write_buffer);
        let n = pending.len();
        let mut cost = 0;
        for (lpa, data) in pending {
            cost += self.ensure_free_space(stats)?;
            let ppa = self.allocate_ppa(stats)?;
            self.flash.program_page(ppa, &data)?;
            stats.inc_flash_write(false);
            self.map(lpa, ppa);
        }
        // Program latency: pages on distinct channels proceed in parallel.
        let rounds = n.div_ceil(self.cfg.channels) as u64;
        Ok(cost + rounds * self.cfg.flash_write_ns)
    }

    /// Marks a logical page as no longer containing live data (e.g. the file
    /// system freed the block). The physical page becomes garbage.
    pub fn trim(&mut self, lpa: Lpa) {
        self.write_buffer.retain(|(l, _)| *l != lpa);
        if let Some(ppa) = self.l2p.remove(&lpa) {
            self.p2l.remove(&ppa);
            let block = self.flash.block_of(ppa) as usize;
            self.valid_count[block] = self.valid_count[block].saturating_sub(1);
        }
    }

    /// Fraction of physical pages holding live data.
    pub fn utilization(&self) -> f64 {
        self.l2p.len() as f64 / self.flash.total_pages() as f64
    }

    /// Maximum block erase count (wear indicator), exposed for tests and
    /// reports.
    pub fn max_wear(&self) -> u64 {
        self.flash.max_wear()
    }

    fn map(&mut self, lpa: Lpa, ppa: Ppa) {
        if let Some(old) = self.l2p.insert(lpa, ppa) {
            self.p2l.remove(&old);
            let block = self.flash.block_of(old) as usize;
            self.valid_count[block] = self.valid_count[block].saturating_sub(1);
        }
        self.p2l.insert(ppa, lpa);
        let block = self.flash.block_of(ppa) as usize;
        self.valid_count[block] += 1;
    }

    fn total_free_blocks(&self) -> usize {
        self.free_blocks.iter().map(|q| q.len()).sum()
    }

    /// Allocates the next physical page, filling per-channel active blocks
    /// round-robin.
    fn allocate_ppa(&mut self, stats: &AtomicTraffic) -> Result<Ppa, FlashError> {
        let channels = self.cfg.channels;
        for _ in 0..channels {
            let ch = self.next_channel;
            self.next_channel = (self.next_channel + 1) % channels;
            // Refill the active block for this channel if needed.
            if self.active[ch].is_none() {
                if let Some(block) = self.free_blocks[ch].pop_front() {
                    self.active[ch] = Some((block, 0));
                    self.active_set.insert(block);
                }
            }
            if let Some((block, off)) = self.active[ch] {
                let ppa = self.flash.first_page_of(block) + off as u64;
                let next = off + 1;
                if next >= self.flash.pages_per_block() {
                    self.active[ch] = None;
                    self.active_set.remove(&block);
                } else {
                    self.active[ch] = Some((block, next));
                }
                return Ok(ppa);
            }
        }
        // All channels exhausted: force GC and retry (GC is guaranteed to free
        // a block because logical capacity < physical capacity).
        let freed = self.collect_garbage(stats)?;
        debug_assert!(freed > 0, "garbage collection made no progress");
        self.allocate_ppa(stats)
    }

    /// Runs garbage collection if the free-block pool is low. Returns the
    /// latency spent.
    fn ensure_free_space(&mut self, stats: &AtomicTraffic) -> Result<u64, FlashError> {
        let low_water = self.cfg.channels + 1;
        let mut cost = 0;
        let mut guard = 0;
        while self.total_free_blocks() < low_water {
            let c = self.collect_garbage_cost(stats)?;
            if c == 0 {
                break;
            }
            cost += c;
            guard += 1;
            if guard > self.flash.total_blocks() {
                break;
            }
        }
        Ok(cost)
    }

    /// Greedy GC: relocate valid pages out of the block with the fewest valid
    /// pages, then erase it. Returns number of blocks freed.
    fn collect_garbage(&mut self, stats: &AtomicTraffic) -> Result<usize, FlashError> {
        Ok(if self.collect_garbage_cost(stats)? > 0 { 1 } else { 0 })
    }

    fn collect_garbage_cost(&mut self, stats: &AtomicTraffic) -> Result<u64, FlashError> {
        // Victim: fully-written, non-active block with minimum valid pages.
        let ppb = self.flash.pages_per_block();
        let victim = (0..self.flash.total_blocks())
            .filter(|b| !self.active_set.contains(b))
            .filter(|b| self.flash.block_fill(*b) == ppb)
            .min_by_key(|b| self.valid_count[*b as usize]);
        let Some(victim) = victim else { return Ok(0) };
        stats.trace().emit(
            crate::trace::TraceKind::GcVictim,
            victim,
            self.valid_count[victim as usize] as u64,
        );

        let mut cost = 0;
        let first = self.flash.first_page_of(victim);
        // Relocate valid pages.
        let live: Vec<(Ppa, Lpa)> = (0..ppb as u64)
            .filter_map(|off| {
                let ppa = first + off;
                self.p2l.get(&ppa).map(|lpa| (ppa, *lpa))
            })
            .collect();
        for (ppa, lpa) in live {
            let data = self.flash.read_page(ppa)?;
            stats.inc_flash_read(true);
            cost += self.cfg.flash_read_ns;
            let dst = self.allocate_ppa(stats)?;
            debug_assert_ne!(self.flash.block_of(dst), victim, "GC wrote into its own victim");
            self.flash.program_page(dst, &data)?;
            stats.inc_flash_write(true);
            cost += self.cfg.flash_write_ns;
            self.map(lpa, dst);
        }
        self.flash.erase_block(victim)?;
        stats.inc_flash_erase();
        cost += self.cfg.flash_erase_ns;
        self.valid_count[victim as usize] = 0;
        self.free_blocks[(victim % self.cfg.channels as u64) as usize].push_back(victim);
        Ok(cost)
    }
}

/// Number of independently locked stripes of the [`ShardedFtl`] L2P mapping
/// table. Sequential LPAs land on different stripes, so block-interface
/// streams and GC validation rarely contend on the same stripe lock.
pub const L2P_STRIPES: usize = 64;

/// Where the newest version of a logical page currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// Programmed on flash at this physical page address.
    Flash(Ppa),
    /// Sitting in this channel's write-buffer slice, not yet programmed.
    Buffered(usize),
}

/// The state owned by one flash channel, guarded by one mutex: the channel's
/// slice of the NAND array, its allocator (active block + free list), its
/// reverse mapping for GC, and its slice of the FTL write buffer.
#[derive(Debug)]
struct Channel {
    flash: ChannelFlash,
    free: VecDeque<BlockId>,
    /// Currently-filling block and its next page offset.
    active: Option<(BlockId, usize)>,
    /// Reverse map for this channel's pages, maintained lazily: entries are
    /// inserted at program time and validated against the L2P table during
    /// GC, so no cross-channel lock is ever needed to invalidate them.
    p2l: HashMap<Ppa, Lpa>,
    /// This channel's slice of the write buffer. Invariant: `lpa` appears in
    /// this buffer **iff** the L2P table maps it to `Loc::Buffered(channel)`;
    /// every transition in or out happens under this channel's lock plus the
    /// page's stripe lock.
    buffer: Vec<(Lpa, Vec<u8>)>,
    buffer_capacity: usize,
    /// Spare (erased, reserved) blocks kept out of the allocator. When a
    /// block is retired a spare is promoted into `free` one-for-one, so
    /// usable capacity is constant until the pool runs dry.
    spare: VecDeque<BlockId>,
    /// Retired (bad) blocks: permanently removed from allocation. Persisted
    /// in the crash image as the bad-block table.
    bad: Vec<BlockId>,
}

/// Result of draining one channel's write-buffer slice.
#[derive(Debug, Default)]
struct DrainResult {
    /// Latency spent on garbage collection during the drain.
    gc_cost: u64,
    /// Pages programmed (all on this one channel, so they serialize).
    programmed: usize,
    /// Pages that could not be placed because the channel ran out of erased
    /// blocks even after GC; they remain buffered and the caller migrates
    /// them to another channel.
    stranded: Vec<Lpa>,
    /// First media error encountered during the drain, if any. Pages after
    /// the error remain buffered (still durable in battery-backed DRAM).
    error: Option<FlashError>,
}

/// The concurrent FTL used by the device: a lock-striped L2P mapping table
/// over per-channel flash units.
///
/// * The **mapping table** is striped into [`L2P_STRIPES`] independently
///   locked stripes keyed by LPA.
/// * Each **channel** owns its own [`ChannelFlash`] slice, free list, active
///   block, reverse map and write-buffer slice behind its own mutex, so
///   programs, reads and GC on distinct channels proceed concurrently.
/// * Per-block **valid-page counts** are plain atomics (they are only a GC
///   victim-selection heuristic; GC re-validates every page against the L2P
///   table before relocating it).
///
/// Lock order: **channel → stripe**. Mapping lookups that need no channel
/// state take a stripe lock alone and release it before touching a channel;
/// paths that need both always lock the channel first and then re-validate
/// the mapping under the stripe lock (the mapping may have moved in between).
/// The only place two channel locks are ever held at once is
/// `ShardedFtl::migrate_buffered`, which acquires them in ascending index
/// order.
///
/// Observationally equivalent to [`Ftl`] under single-threaded use — the
/// property tests in `tests/channel_parallel_equiv.rs` pin this — though the
/// physical placement (and therefore GC traffic) differs.
#[derive(Debug)]
pub struct ShardedFtl {
    cfg: MssdConfig,
    stripes: Vec<Mutex<HashMap<Lpa, Loc>>>,
    channels: Vec<Mutex<Channel>>,
    /// Valid (live-mapped) pages per global block id.
    valid: Vec<AtomicUsize>,
    /// Round-robin cursor for picking the channel of a fresh page write.
    rr: AtomicUsize,
    /// Total pages currently in write-buffer slices (all channels).
    buffered: AtomicUsize,
    /// Spare blocks remaining across all channels. A cached gauge so the
    /// stats path never has to lock every channel (which would violate the
    /// one-channel-at-a-time discipline).
    spare_count: AtomicUsize,
    /// Latched when any channel retires a block with an empty spare pool:
    /// the device degrades to read-only instead of panicking.
    read_only: AtomicBool,
}

impl ShardedFtl {
    /// Creates a channel-parallel FTL over fresh per-channel flash units.
    pub fn new(cfg: MssdConfig) -> Self {
        let mut spare_total = 0usize;
        let channels: Vec<Mutex<Channel>> = (0..cfg.channels)
            .map(|c| {
                let flash = ChannelFlash::new(&cfg, c);
                let mut free: VecDeque<BlockId> = flash.block_ids().collect();
                // Reserve spares off the back of the free list — the
                // configured count clamped to what over-provisioning
                // affords, always leaving at least one allocatable block.
                let reserve =
                    cfg.effective_spare_blocks_per_channel().min(free.len().saturating_sub(1));
                let mut spare = VecDeque::with_capacity(reserve);
                for _ in 0..reserve {
                    if let Some(b) = free.pop_back() {
                        spare.push_front(b);
                    }
                }
                spare_total += spare.len();
                Mutex::new(Channel {
                    flash,
                    free,
                    active: None,
                    p2l: HashMap::new(),
                    buffer: Vec::new(),
                    buffer_capacity: (cfg.write_buffer_bytes / cfg.page_size / cfg.channels).max(1),
                    spare,
                    bad: Vec::new(),
                })
            })
            .collect();
        let total_blocks = cfg.physical_blocks() as usize;
        Self {
            stripes: (0..L2P_STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
            channels,
            valid: (0..total_blocks).map(|_| AtomicUsize::new(0)).collect(),
            rr: AtomicUsize::new(0),
            buffered: AtomicUsize::new(0),
            spare_count: AtomicUsize::new(spare_total),
            read_only: AtomicBool::new(false),
            cfg,
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.cfg.page_size
    }

    /// Number of logical pages exposed to the host.
    pub fn logical_pages(&self) -> u64 {
        self.cfg.logical_pages()
    }

    /// Number of logical pages currently mapped to flash.
    pub fn mapped_pages(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().values().filter(|l| matches!(l, Loc::Flash(_))).count())
            .sum()
    }

    /// Number of page writes currently sitting in write-buffer slices.
    pub fn buffered_pages(&self) -> usize {
        self.buffered.load(Ordering::Relaxed)
    }

    /// Whether a logical page has ever been written (mapped or buffered).
    pub fn is_mapped(&self, lpa: Lpa) -> bool {
        self.peek(lpa).is_some()
    }

    /// Fraction of physical pages holding live data.
    pub fn utilization(&self) -> f64 {
        self.mapped_pages() as f64 / self.cfg.physical_pages() as f64
    }

    /// Maximum block erase count (wear indicator) across all channels.
    pub fn max_wear(&self) -> u64 {
        self.channels.iter().map(|c| c.lock().flash.max_wear()).max().unwrap_or(0)
    }

    fn stripe_of(lpa: Lpa) -> usize {
        (lpa % L2P_STRIPES as u64) as usize
    }

    fn peek(&self, lpa: Lpa) -> Option<Loc> {
        self.stripes[Self::stripe_of(lpa)].lock().get(&lpa).copied()
    }

    fn block_of(&self, ppa: Ppa) -> BlockId {
        ppa / self.cfg.pages_per_block as u64
    }

    fn channel_of(&self, ppa: Ppa) -> usize {
        (self.block_of(ppa) % self.cfg.channels as u64) as usize
    }

    /// Reads a logical page: the channel's buffered copy if one exists, the
    /// flash copy otherwise. Returns the page contents (zeros if never
    /// written) and the latency in nanoseconds.
    ///
    /// Flash reads pass through the media-fault plan: an injected transient
    /// event corrupts the raw page, the per-page ECC corrects or detects it,
    /// and detection triggers a bounded read-retry ladder (each rung models
    /// an adjusted-read-voltage retry and charges a full flash read). A read
    /// still uncorrectable after [`MssdConfig::read_retry_limit`] retries
    /// surfaces as [`FlashError::Uncorrectable`].
    ///
    /// Only the one stripe lock and the one channel lock covering the page
    /// are taken; reads of pages on other channels proceed concurrently.
    pub fn read_page(
        &self,
        lpa: Lpa,
        stats: &AtomicTraffic,
        internal: bool,
    ) -> Result<(Vec<u8>, u64), FlashError> {
        loop {
            let Some(loc) = self.peek(lpa) else {
                return Ok((vec![0u8; self.cfg.page_size], 0));
            };
            let ch_idx = match loc {
                Loc::Buffered(c) => c,
                Loc::Flash(ppa) => self.channel_of(ppa),
            };
            let ch = self.channels[ch_idx].lock();
            // Re-validate under channel → stripe: the mapping may have moved
            // (flush, GC, migration) between the unlocked peek and the lock.
            let still = self.stripes[Self::stripe_of(lpa)].lock().get(&lpa).copied();
            if still != Some(loc) {
                continue;
            }
            match loc {
                Loc::Buffered(_) => {
                    // The buffered mapping should imply a buffer entry; if
                    // the slice raced ahead of the stripe, re-resolve rather
                    // than panic.
                    let Some(data) =
                        ch.buffer.iter().rev().find(|(l, _)| *l == lpa).map(|(_, d)| d.clone())
                    else {
                        continue;
                    };
                    return Ok((data, 0));
                }
                Loc::Flash(ppa) => {
                    stats.inc_flash_read(internal);
                    let raw = ch.flash.read_page(ppa)?;
                    let mut cost = self.cfg.flash_read_ns;
                    let wear = ch.flash.erase_count(self.block_of(ppa));
                    let Some(fault) = self.cfg.media.read_fault(wear) else {
                        return Ok((raw, cost));
                    };
                    // Injected transient event: corrupt the raw sensing
                    // deterministically, then run the ECC + retry ladder.
                    let parity = ch.flash.stored_parity(ppa);
                    let page_bits = raw.len() * 8;
                    for attempt in 0..=self.cfg.read_retry_limit {
                        if attempt > 0 {
                            stats.inc_ras_read_retries();
                            stats.inc_flash_read(internal);
                            cost += self.cfg.flash_read_ns;
                        }
                        let mut data = raw.clone();
                        for pos in fault.flip_positions(attempt, page_bits) {
                            ecc::flip_bit(&mut data, pos);
                        }
                        match ecc::decode(&mut data, parity) {
                            EccOutcome::Clean => return Ok((data, cost)),
                            EccOutcome::Corrected { .. } => {
                                stats.inc_ras_corrected_reads();
                                return Ok((data, cost));
                            }
                            EccOutcome::Uncorrectable => continue,
                        }
                    }
                    stats.inc_ras_uncorrectable_reads();
                    return Err(FlashError::Uncorrectable {
                        ppa,
                        retries: self.cfg.read_retry_limit,
                    });
                }
            }
        }
    }

    /// Queues a full-page write into the owning channel's write-buffer slice
    /// (the channel round-robins for fresh pages, sticks for re-writes of a
    /// still-buffered page). Returns the latency charged now — only a slice
    /// drain if the slice was full. The page becomes durable after
    /// [`ShardedFtl::flush_all`].
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::ReadOnly`] once the device has degraded (spare
    /// blocks exhausted); the write is not accepted. Media errors raised by
    /// a forced slice drain also propagate.
    pub fn buffer_write(
        &self,
        lpa: Lpa,
        data: Vec<u8>,
        stats: &AtomicTraffic,
    ) -> Result<u64, FlashError> {
        debug_assert!(lpa < self.logical_pages(), "lpa {lpa} out of range");
        if self.read_only.load(Ordering::SeqCst) {
            return Err(FlashError::ReadOnly);
        }
        let mut cost = 0;
        let mut target = match self.peek(lpa) {
            Some(Loc::Buffered(c)) => c,
            _ => self.rr.fetch_add(1, Ordering::Relaxed) % self.channels.len(),
        };
        let mut stranded_rounds = 0usize;
        loop {
            let mut ch = self.channels[target].lock();
            if ch.buffer.len() >= ch.buffer_capacity {
                let r = self.drain_buffer_locked(&mut ch, stats);
                cost += r.gc_cost + r.programmed as u64 * self.cfg.flash_write_ns;
                if let Some(e) = r.error {
                    // The forced drain hit an unrecoverable media condition
                    // (spares exhausted); refuse the new write.
                    return Err(e);
                }
                // A cut during the slice drain leaves the slice over
                // capacity; the page is still accepted below — buffer
                // acceptance is a DRAM move between counted fault steps, and
                // callers (device ops, log cleaning) gate themselves. Losing
                // it here would drop committed chunks the cleaner already
                // drained out of the log.
                if !r.stranded.is_empty() && !self.cfg.fault.is_cut() {
                    drop(ch);
                    for l in r.stranded {
                        self.migrate_buffered(l, target);
                    }
                    stranded_rounds += 1;
                    assert!(
                        stranded_rounds <= 4 * self.channels.len(),
                        "no channel can place buffered pages: device out of erased space"
                    );
                    continue;
                }
            }
            let mut stripe = self.stripes[Self::stripe_of(lpa)].lock();
            match stripe.get(&lpa).copied() {
                // Coalesce a pending write to the same page.
                Some(Loc::Buffered(c)) if c == target => {
                    if let Some(slot) = ch.buffer.iter_mut().rev().find(|(l, _)| *l == lpa) {
                        slot.1 = data;
                    } else {
                        // Slice out of sync with the mapping (should not
                        // happen); repair by inserting rather than panicking.
                        ch.buffer.push((lpa, data));
                        self.buffered.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(cost);
                }
                // The page got (re)buffered on another channel meanwhile —
                // coalesce there instead.
                Some(Loc::Buffered(c)) => {
                    drop(stripe);
                    drop(ch);
                    target = c;
                    continue;
                }
                prev => {
                    ch.buffer.push((lpa, data));
                    stripe.insert(lpa, Loc::Buffered(target));
                    self.buffered.fetch_add(1, Ordering::Relaxed);
                    if let Some(Loc::Flash(old)) = prev {
                        // The flash copy is stale now; its p2l entry is
                        // invalidated lazily by GC validation.
                        self.valid[self.block_of(old) as usize].fetch_sub(1, Ordering::Relaxed);
                    }
                    return Ok(cost);
                }
            }
        }
    }

    /// Programs every buffered page to flash, running per-channel GC as
    /// needed. Returns the latency in nanoseconds: channels drain in
    /// parallel, so the program cost is the largest per-channel batch, plus
    /// all GC work.
    ///
    /// # Errors
    ///
    /// Propagates the first unrecoverable media error hit while draining
    /// (spares exhausted mid-remap). Pages not yet programmed stay in the
    /// battery-backed buffer — durable, but no longer flushable.
    pub fn flush_all(&self, stats: &AtomicTraffic) -> Result<u64, FlashError> {
        let mut gc_cost = 0;
        let mut max_pages = 0usize;
        let mut first_err: Option<FlashError> = None;
        // Two passes: a page stranded on a full channel is migrated to the
        // next channel's slice and picked up there; a page that lands on an
        // already-drained channel simply stays buffered (it is battery-backed
        // device DRAM, and the next flush or slice drain programs it).
        for _pass in 0..2 {
            let mut any_stranded = false;
            for c in 0..self.channels.len() {
                let mut ch = self.channels[c].lock();
                let r = self.drain_buffer_locked(&mut ch, stats);
                drop(ch);
                gc_cost += r.gc_cost;
                max_pages = max_pages.max(r.programmed);
                if first_err.is_none() {
                    first_err = r.error;
                }
                any_stranded |= !r.stranded.is_empty();
                for l in r.stranded {
                    self.migrate_buffered(l, c);
                }
            }
            if !any_stranded || first_err.is_some() {
                break;
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(gc_cost + max_pages as u64 * self.cfg.flash_write_ns),
        }
    }

    /// Marks a logical page as no longer containing live data. Drops the
    /// buffered copy (if any) or invalidates the flash mapping.
    pub fn trim(&self, lpa: Lpa) {
        loop {
            let Some(loc) = self.peek(lpa) else { return };
            let ch_idx = match loc {
                Loc::Buffered(c) => c,
                Loc::Flash(ppa) => self.channel_of(ppa),
            };
            let mut ch = self.channels[ch_idx].lock();
            let mut stripe = self.stripes[Self::stripe_of(lpa)].lock();
            if stripe.get(&lpa).copied() != Some(loc) {
                continue;
            }
            match loc {
                Loc::Buffered(_) => {
                    if let Some(pos) = ch.buffer.iter().position(|(l, _)| *l == lpa) {
                        ch.buffer.remove(pos);
                        self.buffered.fetch_sub(1, Ordering::Relaxed);
                    }
                }
                Loc::Flash(ppa) => {
                    ch.p2l.remove(&ppa);
                    self.valid[self.block_of(ppa) as usize].fetch_sub(1, Ordering::Relaxed);
                }
            }
            stripe.remove(&lpa);
            return;
        }
    }

    /// Allocates the next page of the channel's active block, refilling the
    /// active block from the free list. `None` when the channel is out of
    /// erased space (the caller runs GC or strands the page).
    fn allocate_ppa_locked(ch: &mut Channel) -> Option<Ppa> {
        if ch.active.is_none() {
            ch.active = ch.free.pop_front().map(|b| (b, 0));
        }
        let (block, off) = ch.active?;
        let ppa = ch.flash.first_page_of(block) + off as u64;
        if off + 1 >= ch.flash.pages_per_block() {
            ch.active = None;
        } else {
            ch.active = Some((block, off + 1));
        }
        Some(ppa)
    }

    /// Keeps a small reserve of erased blocks in the channel. Returns the GC
    /// latency spent.
    fn ensure_free_space_locked(&self, ch: &mut Channel, stats: &AtomicTraffic) -> u64 {
        const LOW_WATER: usize = 2;
        let mut cost = 0;
        let mut guard = 0;
        while ch.free.len() < LOW_WATER {
            let c = self.collect_garbage_locked(ch, stats);
            if c == 0 {
                break;
            }
            cost += c;
            guard += 1;
            if guard > ch.flash.block_count() {
                break;
            }
        }
        cost
    }

    /// Greedy per-channel GC: relocates the still-live pages out of the
    /// fully-written block with the fewest valid pages, then erases it.
    /// Every candidate page is re-validated against the L2P table under its
    /// stripe lock before relocation — stale `p2l` entries (the page was
    /// overwritten from another channel) are simply discarded.
    ///
    /// Returns the latency spent, or 0 if no victim could make progress.
    fn collect_garbage_locked(&self, ch: &mut Channel, stats: &AtomicTraffic) -> u64 {
        if self.cfg.fault.is_cut() {
            return 0; // power off: no GC runs
        }
        let ppb = ch.flash.pages_per_block();
        let active_block = ch.active.map(|(b, _)| b);
        let victim = ch
            .flash
            .block_ids()
            .filter(|b| Some(*b) != active_block)
            .filter(|b| !ch.bad.contains(b))
            .filter(|b| ch.flash.block_fill(*b) == ppb)
            // Wear-aware greedy: fewest valid pages first, lowest erase
            // count as the tie-break so erase wear spreads across
            // equally-garbage-laden candidates.
            .min_by_key(|b| {
                (self.valid[*b as usize].load(Ordering::Relaxed), ch.flash.erase_count(*b))
            });
        let Some(victim) = victim else { return 0 };
        let first = ch.flash.first_page_of(victim);
        // Count the pages that are *really* live (p2l keeps stale entries
        // until GC; only the L2P table knows). Liveness can only shrink
        // between this count and the relocation loop below, so it is a safe
        // upper bound for the headroom check.
        let live_upper = (0..ppb as u64)
            .filter(|off| {
                let ppa = first + off;
                ch.p2l.get(&ppa).is_some_and(|lpa| {
                    self.stripes[Self::stripe_of(*lpa)].lock().get(lpa).copied()
                        == Some(Loc::Flash(ppa))
                })
            })
            .count();
        if live_upper >= ppb {
            // Erasing a fully-live block frees nothing.
            return 0;
        }
        let headroom = ch.active.map(|(_, off)| ppb - off).unwrap_or(0) + ch.free.len() * ppb;
        if headroom < live_upper {
            // Not enough erased space to relocate into; give up rather than
            // fail mid-relocation.
            return 0;
        }
        stats.trace().emit(crate::trace::TraceKind::GcVictim, victim, live_upper as u64);
        let mut cost = 0;
        for off in 0..ppb as u64 {
            let ppa = first + off;
            let Some(&lpa) = ch.p2l.get(&ppa) else { continue };
            // Validate and read under the stripe lock, then release it
            // before programming: the program may retire a failed block,
            // and retirement relocation takes other stripe locks (stripes
            // are leaf locks — never hold one across another's acquisition).
            {
                let stripe = self.stripes[Self::stripe_of(lpa)].lock();
                if stripe.get(&lpa).copied() != Some(Loc::Flash(ppa)) {
                    drop(stripe);
                    ch.p2l.remove(&ppa);
                    continue;
                }
            }
            // A cut mid-relocation aborts GC before the erase: already
            // relocated pages keep their new mapping, the victim keeps
            // its (now partly stale) data — nothing is lost.
            if !self.cfg.fault.step(FaultKind::FlashProgram) {
                return cost;
            }
            let Ok(data) = ch.flash.read_page(ppa) else {
                ch.p2l.remove(&ppa);
                continue;
            };
            stats.inc_flash_read(true);
            cost += self.cfg.flash_read_ns;
            let Some(dst) = Self::allocate_ppa_locked(ch) else {
                // Headroom was pre-checked, but a mid-GC retirement may have
                // shrunk it; abort the pass rather than fail hard.
                return cost;
            };
            debug_assert_ne!(self.block_of(dst), victim, "GC wrote into its own victim");
            let (dst, extra) = match self.program_allocated(ch, dst, &data, stats) {
                Ok(ok) => ok,
                Err(_) => return cost, // spares exhausted mid-relocation
            };
            cost += extra;
            stats.inc_flash_write(true);
            cost += self.cfg.flash_write_ns;
            // Re-validate: the mapping may have moved (e.g. the host
            // re-buffered the page from another channel) while no stripe
            // lock was held. If it did, `dst` holds dead data and is simply
            // left as garbage for a future GC pass.
            let mut stripe = self.stripes[Self::stripe_of(lpa)].lock();
            if stripe.get(&lpa).copied() == Some(Loc::Flash(ppa)) {
                ch.p2l.insert(dst, lpa);
                stripe.insert(lpa, Loc::Flash(dst));
                self.valid[self.block_of(dst) as usize].fetch_add(1, Ordering::Relaxed);
            }
            drop(stripe);
            ch.p2l.remove(&ppa);
        }
        if !self.cfg.fault.step(FaultKind::FlashErase) {
            return cost; // cut before the erase: the victim stays as garbage
        }
        if self.cfg.media.erase_fails() {
            // Injected permanent erase failure: the attempt still pays its
            // latency, then the block is retired instead of recycled.
            cost += self.cfg.flash_erase_ns;
            self.retire_block_locked(ch, victim, stats);
            return cost;
        }
        if ch.flash.erase_block(victim).is_err() {
            return cost; // structurally impossible; degrade to no-progress
        }
        stats.inc_flash_erase();
        cost += self.cfg.flash_erase_ns;
        self.valid[victim as usize].store(0, Ordering::Relaxed);
        ch.free.push_back(victim);
        cost
    }

    /// Programs `data` at the freshly allocated `ppa`, absorbing injected
    /// permanent program failures: the failed block is retired (a spare is
    /// promoted to replace it), its live pages are relocated by verified
    /// copyback, the in-flight page is remapped to a fresh allocation and
    /// the program retried.
    ///
    /// Returns the physical page that finally took the data plus the extra
    /// latency charged (each failed attempt still pays a full program; the
    /// caller records the one successful program in the traffic stats).
    /// Must be called with the channel lock held but **no stripe lock** —
    /// retirement relocation acquires stripe locks.
    fn program_allocated(
        &self,
        ch: &mut Channel,
        mut ppa: Ppa,
        data: &[u8],
        stats: &AtomicTraffic,
    ) -> Result<(Ppa, u64), FlashError> {
        let mut cost = 0;
        loop {
            if !self.cfg.media.program_fails() {
                ch.flash.program_page(ppa, data)?;
                return Ok((ppa, cost));
            }
            cost += self.cfg.flash_write_ns;
            let failed = self.block_of(ppa);
            // Retire first, then relocate: retirement pulls the failed
            // block out of the allocator, so the relocation below can never
            // allocate back into it.
            let have_spare = self.retire_block_locked(ch, failed, stats);
            cost += self.relocate_live_pages(ch, failed, stats);
            stats.inc_ras_remapped_pages();
            if !have_spare {
                return Err(FlashError::ReadOnly);
            }
            match Self::allocate_ppa_locked(ch) {
                Some(p) => ppa = p,
                None => {
                    self.read_only.store(true, Ordering::SeqCst);
                    return Err(FlashError::ReadOnly);
                }
            }
        }
    }

    /// Retires `block`: removes it from every allocation structure, zeroes
    /// its valid count and promotes one spare into the free list to keep
    /// usable capacity constant. Returns `false` — and latches the device
    /// read-only — when the channel's spare pool is empty.
    fn retire_block_locked(&self, ch: &mut Channel, block: BlockId, stats: &AtomicTraffic) -> bool {
        ch.bad.push(block);
        self.valid[block as usize].store(0, Ordering::Relaxed);
        stats.inc_ras_retired_blocks();
        if ch.active.map(|(b, _)| b) == Some(block) {
            ch.active = None;
        }
        ch.free.retain(|b| *b != block);
        let ok = if let Some(s) = ch.spare.pop_front() {
            ch.free.push_back(s);
            self.spare_count.fetch_sub(1, Ordering::Relaxed);
            true
        } else {
            self.read_only.store(true, Ordering::SeqCst);
            false
        };
        stats.set_ras_spares_remaining(self.spare_count.load(Ordering::Relaxed) as u64);
        ok
    }

    /// Relocates the live pages of a just-retired block by verified
    /// copyback. The copy itself is injection-free — the model treats the
    /// retirement path as a verified internal transfer, which bounds the
    /// cascade: the at-most `fill` live pages plus the in-flight page always
    /// fit the spare block promoted by the retirement. Returns the latency
    /// spent. Must be called with the channel lock held but no stripe lock.
    fn relocate_live_pages(&self, ch: &mut Channel, block: BlockId, stats: &AtomicTraffic) -> u64 {
        let mut cost = 0;
        let first = ch.flash.first_page_of(block);
        let fill = ch.flash.block_fill(block);
        for off in 0..fill as u64 {
            let ppa = first + off;
            let Some(&lpa) = ch.p2l.get(&ppa) else { continue };
            let mut stripe = self.stripes[Self::stripe_of(lpa)].lock();
            if stripe.get(&lpa).copied() != Some(Loc::Flash(ppa)) {
                drop(stripe);
                ch.p2l.remove(&ppa);
                continue;
            }
            let Ok(data) = ch.flash.read_page(ppa) else {
                drop(stripe);
                ch.p2l.remove(&ppa);
                continue;
            };
            stats.inc_flash_read(true);
            cost += self.cfg.flash_read_ns;
            let Some(dst) = Self::allocate_ppa_locked(ch) else {
                // No erased space even after the spare promotion; the
                // remaining live pages stay readable on the retired block.
                self.read_only.store(true, Ordering::SeqCst);
                break;
            };
            if ch.flash.program_page(dst, &data).is_err() {
                self.read_only.store(true, Ordering::SeqCst);
                break;
            }
            stats.inc_flash_write(true);
            cost += self.cfg.flash_write_ns;
            ch.p2l.insert(dst, lpa);
            stripe.insert(lpa, Loc::Flash(dst));
            self.valid[self.block_of(dst) as usize].fetch_add(1, Ordering::Relaxed);
            drop(stripe);
            ch.p2l.remove(&ppa);
        }
        cost
    }

    /// Drains the channel's write-buffer slice onto its flash. Pages the
    /// channel cannot place (out of erased blocks even after GC) stay
    /// buffered and are reported as stranded.
    fn drain_buffer_locked(&self, ch: &mut Channel, stats: &AtomicTraffic) -> DrainResult {
        let mut r = DrainResult::default();
        if ch.buffer.is_empty() {
            return r;
        }
        let pending = std::mem::take(&mut ch.buffer);
        let channel_index = ch.flash.channel();
        let mut iter = pending.into_iter();
        while let Some((lpa, data)) = iter.next() {
            // One counted fault step per page program: a cut here tears a
            // multi-page flush — pages already programmed are on NAND, the
            // rest stay in the battery-backed buffer slice (not stranded, so
            // the caller does not migrate them while power is off).
            if !self.cfg.fault.step(FaultKind::FlashProgram) {
                ch.buffer.push((lpa, data));
                for (l, d) in iter.by_ref() {
                    ch.buffer.push((l, d));
                }
                break;
            }
            r.gc_cost += self.ensure_free_space_locked(ch, stats);
            let Some(ppa) = Self::allocate_ppa_locked(ch) else {
                // Out of space: keep this page and the rest buffered, in
                // order, and let the caller migrate them to other channels.
                r.stranded.push(lpa);
                ch.buffer.push((lpa, data));
                for (l, d) in iter.by_ref() {
                    r.stranded.push(l);
                    ch.buffer.push((l, d));
                }
                break;
            };
            let ppa = match self.program_allocated(ch, ppa, &data, stats) {
                Ok((ppa, extra)) => {
                    r.gc_cost += extra;
                    ppa
                }
                Err(e) => {
                    // Unrecoverable media condition (spares exhausted):
                    // this page and the rest stay in the battery-backed
                    // buffer — durable, but no longer programmable.
                    r.error = Some(e);
                    ch.buffer.push((lpa, data));
                    for (l, d) in iter.by_ref() {
                        ch.buffer.push((l, d));
                    }
                    break;
                }
            };
            stats.inc_flash_write(false);
            ch.p2l.insert(ppa, lpa);
            r.programmed += 1;
            let mut stripe = self.stripes[Self::stripe_of(lpa)].lock();
            debug_assert_eq!(
                stripe.get(&lpa).copied(),
                Some(Loc::Buffered(channel_index)),
                "buffer entry out of sync with the mapping table"
            );
            stripe.insert(lpa, Loc::Flash(ppa));
            drop(stripe);
            self.valid[self.block_of(ppa) as usize].fetch_add(1, Ordering::Relaxed);
            self.buffered.fetch_sub(1, Ordering::Relaxed);
        }
        r
    }

    /// Moves a stranded buffered page from channel `from` to the next
    /// channel. The only code path that holds two channel locks at once;
    /// they are acquired in ascending index order.
    fn migrate_buffered(&self, lpa: Lpa, from: usize) {
        let to = (from + 1) % self.channels.len();
        if to == from {
            return; // single-channel device: nowhere to go
        }
        let (lo, hi) = (from.min(to), from.max(to));
        let mut g_lo = self.channels[lo].lock();
        let mut g_hi = self.channels[hi].lock();
        let (src, dst) =
            if from == lo { (&mut *g_lo, &mut *g_hi) } else { (&mut *g_hi, &mut *g_lo) };
        let mut stripe = self.stripes[Self::stripe_of(lpa)].lock();
        if stripe.get(&lpa).copied() != Some(Loc::Buffered(from)) {
            return; // trimmed or moved meanwhile
        }
        let Some(pos) = src.buffer.iter().position(|(l, _)| *l == lpa) else {
            return; // slice out of sync with the mapping: nothing to move
        };
        let entry = src.buffer.remove(pos);
        dst.buffer.push(entry);
        stripe.insert(lpa, Loc::Buffered(to));
    }

    // ------------------------------------------------------------------
    // RAS observability and the persistent bad-block table
    // ------------------------------------------------------------------

    /// All retired (bad) blocks across every channel, sorted. This is the
    /// bad-block table persisted into crash images: a device must never
    /// forget which blocks failed, or it would re-use them after power-up.
    pub fn bad_blocks(&self) -> Vec<BlockId> {
        let mut out = Vec::new();
        for c in &self.channels {
            out.extend(c.lock().bad.iter().copied());
        }
        out.sort_unstable();
        out
    }

    /// Spare blocks remaining across all channels (the RAS gauge).
    pub fn spares_remaining(&self) -> usize {
        self.spare_count.load(Ordering::Relaxed)
    }

    /// Whether the device has degraded to read-only: some retirement found
    /// its channel's spare pool empty. Reads keep working; every mutation
    /// fails with [`FlashError::ReadOnly`].
    pub fn is_read_only(&self) -> bool {
        self.read_only.load(Ordering::SeqCst)
    }

    /// Re-applies a persisted bad-block table to this (fresh, empty) FTL —
    /// the first step of a crash-image restore, before any page is
    /// re-programmed, so the allocator can never place restored data on a
    /// block that already failed.
    ///
    /// Each bad block is removed from wherever the fresh allocator holds it
    /// and one spare is promoted in its place, mirroring the original
    /// retirement; the spare gauge ends up where the crashed device left it.
    pub fn restore_bad_blocks(&self, bad: &[BlockId]) {
        for &b in bad {
            let c = (b % self.cfg.channels as u64) as usize;
            let mut ch = self.channels[c].lock();
            let consumed_spare = if let Some(pos) = ch.spare.iter().position(|x| *x == b) {
                ch.spare.remove(pos);
                true
            } else if let Some(pos) = ch.free.iter().position(|x| *x == b) {
                ch.free.remove(pos);
                if let Some(s) = ch.spare.pop_front() {
                    ch.free.push_back(s);
                    true
                } else {
                    false
                }
            } else {
                false
            };
            if ch.active.map(|(blk, _)| blk) == Some(b) {
                ch.active = None;
            }
            ch.bad.push(b);
            if consumed_spare {
                self.spare_count.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    // ------------------------------------------------------------------
    // Crash imaging and invariant checking (crashkit)
    // ------------------------------------------------------------------

    /// Exports the FTL's logical durable state for a crash image: pages
    /// programmed on NAND and pages still in the battery-backed write
    /// buffer, each keyed by LPA and sorted so the image is deterministic.
    /// Physical placement is deliberately not captured — it is not
    /// host-visible durable state. Only meaningful at a quiescent point.
    pub fn export_logical(&self) -> (Vec<LogicalPage>, Vec<LogicalPage>) {
        let mut mappings: Vec<(Lpa, Loc)> = Vec::new();
        for stripe in &self.stripes {
            let guard = stripe.lock();
            mappings.extend(guard.iter().map(|(lpa, loc)| (*lpa, *loc)));
        }
        mappings.sort_by_key(|(lpa, _)| *lpa);
        let mut flash_pages = Vec::new();
        let mut buffered = Vec::new();
        for (lpa, loc) in mappings {
            match loc {
                Loc::Flash(ppa) => {
                    let ch = self.channels[self.channel_of(ppa)].lock();
                    match ch.flash.read_page(ppa) {
                        Ok(data) => flash_pages.push((lpa, data)),
                        Err(e) => panic!("crash-image export: mapped ppa {ppa} unreadable: {e}"),
                    }
                }
                Loc::Buffered(c) => {
                    let ch = self.channels[c].lock();
                    match ch.buffer.iter().rev().find(|(l, _)| *l == lpa) {
                        Some((_, data)) => buffered.push((lpa, data.clone())),
                        None => panic!(
                            "crash-image export: lpa {lpa} mapped as buffered on channel {c} \
                             but absent from its slice"
                        ),
                    }
                }
            }
        }
        (flash_pages, buffered)
    }

    /// Rebuilds the logical state captured by [`ShardedFtl::export_logical`]
    /// into this (fresh, empty) FTL: NAND pages are re-programmed, buffered
    /// pages re-enter the write buffer. Traffic generated by the rebuild is
    /// discarded (it models no host-visible work).
    ///
    /// # Panics
    ///
    /// Panics if the FTL already holds mapped or buffered pages.
    pub fn restore_logical(&self, flash_pages: &[(Lpa, Vec<u8>)], buffered: &[(Lpa, Vec<u8>)]) {
        assert_eq!(
            self.mapped_pages() + self.buffered_pages(),
            0,
            "crash-image restore requires an empty FTL"
        );
        // The rebuild replays programs that already succeeded before the
        // cut: they must neither draw fresh media faults nor advance the
        // plan's deterministic op ordinals.
        self.cfg.media.suspend();
        let scratch = AtomicTraffic::new();
        let replay = |lpa: Lpa, data: &Vec<u8>| match self.buffer_write(lpa, data.clone(), &scratch)
        {
            Ok(_) => {}
            Err(e) => panic!("crash-image restore rejected page {lpa}: {e}"),
        };
        for (lpa, data) in flash_pages {
            replay(*lpa, data);
        }
        if let Err(e) = self.flush_all(&scratch) {
            panic!("crash-image restore flush failed: {e}");
        }
        for (lpa, data) in buffered {
            replay(*lpa, data);
        }
        self.cfg.media.resume();
    }

    /// Structural invariant check used by crashkit's post-recovery checkers:
    /// every L2P entry must point at a page its channel really programmed
    /// (or a live buffer slot), no two LPAs may share a physical page, and
    /// the buffered-page counter must agree with the buffer slices. Returns
    /// human-readable descriptions of every violation found (empty = clean).
    /// Only meaningful at a quiescent point.
    pub fn check_consistency(&self) -> Vec<String> {
        let mut problems = Vec::new();
        // RAS invariants first: a retired block must be out of every
        // allocation structure (one channel locked at a time).
        let mut all_bad: HashSet<BlockId> = HashSet::new();
        for (idx, c) in self.channels.iter().enumerate() {
            let ch = c.lock();
            for &b in &ch.bad {
                if ch.free.contains(&b) {
                    problems.push(format!("bad block {b} still on channel {idx} free list"));
                }
                if ch.spare.contains(&b) {
                    problems.push(format!("bad block {b} still in channel {idx} spare pool"));
                }
                if ch.active.map(|(blk, _)| blk) == Some(b) {
                    problems.push(format!("bad block {b} still active on channel {idx}"));
                }
                if !all_bad.insert(b) {
                    problems.push(format!("block {b} retired twice"));
                }
            }
        }
        let spare_total: usize = self.channels.iter().map(|c| c.lock().spare.len()).sum();
        if spare_total != self.spare_count.load(Ordering::Relaxed) {
            problems.push(format!(
                "spare gauge reads {} but channels hold {spare_total} spares",
                self.spare_count.load(Ordering::Relaxed)
            ));
        }
        let mut mappings: Vec<(Lpa, Loc)> = Vec::new();
        for stripe in &self.stripes {
            let guard = stripe.lock();
            mappings.extend(guard.iter().map(|(lpa, loc)| (*lpa, *loc)));
        }
        mappings.sort_by_key(|(lpa, _)| *lpa);
        let mut seen_ppa: HashMap<Ppa, Lpa> = HashMap::new();
        let mut buffered_mapped = 0usize;
        for (lpa, loc) in mappings {
            match loc {
                Loc::Flash(ppa) => {
                    if let Some(prev) = seen_ppa.insert(ppa, lpa) {
                        problems.push(format!(
                            "physical page {ppa} mapped by both lpa {prev} and lpa {lpa}"
                        ));
                    }
                    // A fully-relocated retirement leaves no live mappings
                    // on a bad block. The one exception: a device that
                    // degraded read-only mid-relocation legitimately leaves
                    // unrelocated (still readable) pages behind.
                    if all_bad.contains(&self.block_of(ppa)) && !self.is_read_only() {
                        problems.push(format!(
                            "lpa {lpa} maps to physical page {ppa} on retired block {}",
                            self.block_of(ppa)
                        ));
                    }
                    let ch = self.channels[self.channel_of(ppa)].lock();
                    if !ch.flash.is_programmed(ppa) {
                        problems.push(format!(
                            "lpa {lpa} maps to physical page {ppa} that was never programmed"
                        ));
                    }
                }
                Loc::Buffered(c) => {
                    buffered_mapped += 1;
                    if c >= self.channels.len() {
                        problems.push(format!("lpa {lpa} buffered on bogus channel {c}"));
                        continue;
                    }
                    let ch = self.channels[c].lock();
                    if !ch.buffer.iter().any(|(l, _)| *l == lpa) {
                        problems.push(format!(
                            "lpa {lpa} mapped as buffered on channel {c} but absent from its slice"
                        ));
                    }
                }
            }
        }
        let slice_total: usize = self.channels.iter().map(|c| c.lock().buffer.len()).sum();
        if slice_total != buffered_mapped {
            problems.push(format!(
                "buffer slices hold {slice_total} pages but {buffered_mapped} LPAs map to them"
            ));
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ftl() -> (Ftl, AtomicTraffic) {
        (Ftl::new(MssdConfig::small_test()), AtomicTraffic::new())
    }

    fn page(tag: u8, size: usize) -> Vec<u8> {
        vec![tag; size]
    }

    #[test]
    fn read_unwritten_is_zero_and_free() {
        let (f, st) = ftl();
        let (data, ns) = f.read_page(7, &st, false).unwrap();
        assert_eq!(data, vec![0u8; f.page_size()]);
        assert_eq!(ns, 0);
        assert_eq!(st.snapshot().flash_read_pages, 0);
    }

    #[test]
    fn write_then_read_from_buffer() {
        let (mut f, st) = ftl();
        let ps = f.page_size();
        f.buffer_write(3, page(0xAB, ps), &st).unwrap();
        // Still in buffer: no flash write yet, read served from buffer.
        assert_eq!(st.snapshot().flash_write_pages, 0);
        let (data, ns) = f.read_page(3, &st, false).unwrap();
        assert_eq!(data, page(0xAB, ps));
        assert_eq!(ns, 0);
    }

    #[test]
    fn flush_programs_pages() {
        let (mut f, st) = ftl();
        let ps = f.page_size();
        f.buffer_write(1, page(1, ps), &st).unwrap();
        f.buffer_write(2, page(2, ps), &st).unwrap();
        let cost = f.flush_buffer(&st).unwrap();
        assert!(cost > 0);
        assert_eq!(st.snapshot().flash_write_pages, 2);
        assert_eq!(f.mapped_pages(), 2);
        let (d, ns) = f.read_page(2, &st, false).unwrap();
        assert_eq!(d, page(2, ps));
        assert!(ns > 0);
        assert_eq!(st.snapshot().flash_read_pages, 1);
    }

    #[test]
    fn overwrite_invalidates_old_mapping() {
        let (mut f, st) = ftl();
        let ps = f.page_size();
        f.buffer_write(5, page(1, ps), &st).unwrap();
        f.flush_buffer(&st).unwrap();
        f.buffer_write(5, page(2, ps), &st).unwrap();
        f.flush_buffer(&st).unwrap();
        assert_eq!(f.mapped_pages(), 1);
        let (d, _) = f.read_page(5, &st, false).unwrap();
        assert_eq!(d, page(2, ps));
    }

    #[test]
    fn buffer_coalesces_same_lpa() {
        let (mut f, st) = ftl();
        let ps = f.page_size();
        f.buffer_write(9, page(1, ps), &st).unwrap();
        f.buffer_write(9, page(2, ps), &st).unwrap();
        assert_eq!(f.buffered_pages(), 1);
        f.flush_buffer(&st).unwrap();
        assert_eq!(st.snapshot().flash_write_pages, 1);
        let (d, _) = f.read_page(9, &st, false).unwrap();
        assert_eq!(d, page(2, ps));
    }

    #[test]
    fn channel_parallelism_reduces_latency() {
        let cfg = MssdConfig::small_test();
        let per_write = cfg.flash_write_ns;
        let channels = cfg.channels;
        let (mut f, st) = ftl();
        let ps = f.page_size();
        for i in 0..channels as u64 {
            f.buffer_write(i, page(i as u8, ps), &st).unwrap();
        }
        let cost = f.flush_buffer(&st).unwrap();
        // All pages fit in one parallel round (plus possible GC cost of 0).
        assert_eq!(cost, per_write);
    }

    #[test]
    fn trim_unmaps() {
        let (mut f, st) = ftl();
        let ps = f.page_size();
        f.buffer_write(4, page(7, ps), &st).unwrap();
        f.flush_buffer(&st).unwrap();
        assert!(f.is_mapped(4));
        f.trim(4);
        assert!(!f.is_mapped(4));
        let (d, ns) = f.read_page(4, &st, false).unwrap();
        assert_eq!(d, vec![0u8; ps]);
        assert_eq!(ns, 0);
    }

    #[test]
    fn sustained_overwrites_trigger_gc_and_stay_correct() {
        // Write far more page-versions than physical capacity to force GC.
        let cfg = MssdConfig::small_test();
        let logical = cfg.logical_pages();
        let mut f = Ftl::new(cfg);
        let st = AtomicTraffic::new();
        let ps = f.page_size();
        let working_set = (logical / 2).max(8);
        let mut version = 0u8;
        for round in 0..6u64 {
            version = version.wrapping_add(1);
            for lpa in 0..working_set {
                f.buffer_write(lpa, page(version ^ lpa as u8, ps), &st).unwrap();
            }
            f.flush_buffer(&st).unwrap();
            // Spot-check correctness each round.
            let probe = round % working_set;
            let (d, _) = f.read_page(probe, &st, false).unwrap();
            assert_eq!(d, page(version ^ probe as u8, ps), "round {round}");
        }
        assert!(st.snapshot().flash_erase_blocks > 0, "GC should have run");
        // Everything still readable with the final version.
        for lpa in 0..working_set {
            let (d, _) = f.read_page(lpa, &st, false).unwrap();
            assert_eq!(d, page(version ^ lpa as u8, ps), "lpa {lpa}");
        }
    }

    fn sharded() -> (ShardedFtl, AtomicTraffic) {
        (ShardedFtl::new(MssdConfig::small_test()), AtomicTraffic::new())
    }

    #[test]
    fn sharded_write_read_trim_roundtrip() {
        let (f, st) = sharded();
        let ps = f.page_size();
        assert_eq!(f.read_page(7, &st, false).unwrap(), (vec![0u8; ps], 0));
        f.buffer_write(3, page(0xAB, ps), &st).unwrap();
        assert_eq!(f.buffered_pages(), 1);
        assert!(f.is_mapped(3));
        // Buffered read: no flash access, no latency.
        let (data, ns) = f.read_page(3, &st, false).unwrap();
        assert_eq!(data, page(0xAB, ps));
        assert_eq!(ns, 0);
        assert_eq!(st.snapshot().flash_write_pages, 0);
        let cost = f.flush_all(&st).unwrap();
        assert!(cost > 0);
        assert_eq!(f.buffered_pages(), 0);
        assert_eq!(f.mapped_pages(), 1);
        let (data, ns) = f.read_page(3, &st, false).unwrap();
        assert_eq!(data, page(0xAB, ps));
        assert!(ns > 0);
        f.trim(3);
        assert!(!f.is_mapped(3));
        assert_eq!(f.read_page(3, &st, false).unwrap(), (vec![0u8; ps], 0));
    }

    #[test]
    fn sharded_coalesces_and_overwrites() {
        let (f, st) = sharded();
        let ps = f.page_size();
        f.buffer_write(9, page(1, ps), &st).unwrap();
        f.buffer_write(9, page(2, ps), &st).unwrap();
        assert_eq!(f.buffered_pages(), 1);
        f.flush_all(&st).unwrap();
        assert_eq!(st.snapshot().flash_write_pages, 1);
        // Overwrite of a flash-mapped page: newest wins after re-flush.
        f.buffer_write(9, page(3, ps), &st).unwrap();
        let (d, ns) = f.read_page(9, &st, false).unwrap();
        assert_eq!((d, ns), (page(3, ps), 0));
        f.flush_all(&st).unwrap();
        assert_eq!(f.mapped_pages(), 1);
        assert_eq!(f.read_page(9, &st, false).unwrap().0, page(3, ps));
    }

    #[test]
    fn sharded_flush_latency_is_channel_parallel() {
        let cfg = MssdConfig::small_test();
        let per_write = cfg.flash_write_ns;
        let channels = cfg.channels;
        let (f, st) = sharded();
        let ps = f.page_size();
        for i in 0..channels as u64 {
            f.buffer_write(i, page(i as u8, ps), &st).unwrap();
        }
        let cost = f.flush_all(&st).unwrap();
        // Round-robin placement puts one page per channel: one parallel round.
        assert_eq!(cost, per_write);
    }

    #[test]
    fn sharded_sustained_overwrites_trigger_gc_and_stay_correct() {
        let cfg = MssdConfig::small_test();
        let logical = cfg.logical_pages();
        let f = ShardedFtl::new(cfg);
        let st = AtomicTraffic::new();
        let ps = f.page_size();
        let working_set = (logical / 2).max(8);
        let mut version = 0u8;
        for round in 0..6u64 {
            version = version.wrapping_add(1);
            for lpa in 0..working_set {
                f.buffer_write(lpa, page(version ^ lpa as u8, ps), &st).unwrap();
            }
            f.flush_all(&st).unwrap();
            let probe = round % working_set;
            assert_eq!(f.read_page(probe, &st, false).unwrap().0, page(version ^ probe as u8, ps));
        }
        assert!(st.snapshot().flash_erase_blocks > 0, "GC should have run");
        for lpa in 0..working_set {
            assert_eq!(
                f.read_page(lpa, &st, false).unwrap().0,
                page(version ^ lpa as u8, ps),
                "lpa {lpa}"
            );
        }
        assert!(f.utilization() > 0.0);
        assert!(f.max_wear() > 0);
    }

    #[test]
    fn sharded_concurrent_disjoint_writers() {
        let cfg = MssdConfig::small_test();
        let f = std::sync::Arc::new(ShardedFtl::new(cfg));
        let st = std::sync::Arc::new(AtomicTraffic::new());
        let threads = 4u64;
        let per_thread = 64u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = std::sync::Arc::clone(&f);
                let st = std::sync::Arc::clone(&st);
                std::thread::spawn(move || {
                    let ps = f.page_size();
                    let base = t * per_thread;
                    for i in 0..per_thread {
                        f.buffer_write(base + i, page((t * 64 + i) as u8, ps), &st).unwrap();
                        if i % 16 == 15 {
                            f.flush_all(&st).unwrap();
                        }
                    }
                    for i in 0..per_thread {
                        let (d, _) = f.read_page(base + i, &st, false).unwrap();
                        assert_eq!(d, page((t * 64 + i) as u8, ps), "thread {t} page {i}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        f.flush_all(&st).unwrap();
        assert_eq!(f.mapped_pages(), (threads * per_thread) as usize);
        assert_eq!(f.buffered_pages(), 0);
    }

    #[test]
    fn utilization_tracks_mapped_fraction() {
        let (mut f, st) = ftl();
        assert_eq!(f.utilization(), 0.0);
        let ps = f.page_size();
        for lpa in 0..16 {
            f.buffer_write(lpa, page(1, ps), &st).unwrap();
        }
        f.flush_buffer(&st).unwrap();
        assert!(f.utilization() > 0.0);
        assert!(f.utilization() < 1.0);
    }

    // ------------------------------------------------------------------
    // RAS: ECC read path, retirement, bad-block table, degradation
    // ------------------------------------------------------------------

    use crate::fault::{MediaFaultConfig, MediaFaultPlan};

    fn sharded_with_media(media: MediaFaultConfig) -> (ShardedFtl, AtomicTraffic) {
        let cfg = MssdConfig::small_test().with_media_fault_plan(MediaFaultPlan::new(media));
        (ShardedFtl::new(cfg), AtomicTraffic::new())
    }

    #[test]
    fn soft_read_fault_is_corrected_or_retried_to_data() {
        // Every read draws a soft transient event; the ECC + retry ladder
        // must always hand back the original data.
        let (f, st) = sharded_with_media(MediaFaultConfig {
            seed: 11,
            read_error_rate: 1.0,
            ..Default::default()
        });
        let ps = f.page_size();
        for lpa in 0..8u64 {
            f.buffer_write(lpa, page(lpa as u8 ^ 0x5a, ps), &st).unwrap();
        }
        f.flush_all(&st).unwrap();
        for lpa in 0..8u64 {
            let (d, ns) = f.read_page(lpa, &st, false).unwrap();
            assert_eq!(d, page(lpa as u8 ^ 0x5a, ps), "lpa {lpa}");
            assert!(ns > 0);
        }
        let snap = st.snapshot();
        assert!(snap.ras_corrected_reads + snap.ras_read_retries > 0);
        assert_eq!(snap.ras_uncorrectable_reads, 0);
    }

    #[test]
    fn hard_read_fault_reports_uncorrectable_after_ladder() {
        // The first flash read is forced hard: pinned beyond correction on
        // every rung, so the ladder must exhaust and report a typed UECC.
        let (f, st) =
            sharded_with_media(MediaFaultConfig { seed: 2, fail_read_at: 1, ..Default::default() });
        let ps = f.page_size();
        f.buffer_write(5, page(0xc3, ps), &st).unwrap();
        f.flush_all(&st).unwrap();
        let err = f.read_page(5, &st, false).unwrap_err();
        match err {
            FlashError::Uncorrectable { retries, .. } => {
                assert_eq!(retries, f.cfg.read_retry_limit);
            }
            other => panic!("expected Uncorrectable, got {other}"),
        }
        let snap = st.snapshot();
        assert_eq!(snap.ras_uncorrectable_reads, 1);
        assert_eq!(snap.ras_read_retries as u32, f.cfg.read_retry_limit);
        // The event was transient (the NAND data itself is intact): the
        // device is not degraded and a later read of the page succeeds.
        assert!(!f.is_read_only());
        assert_eq!(f.read_page(5, &st, false).unwrap().0, page(0xc3, ps));
    }

    #[test]
    fn program_failure_retires_block_and_remaps_page() {
        let (f, st) = sharded_with_media(MediaFaultConfig {
            seed: 3,
            fail_program_at: 3,
            ..Default::default()
        });
        let ps = f.page_size();
        let spares_before = f.spares_remaining();
        for lpa in 0..8u64 {
            f.buffer_write(lpa, page(lpa as u8 | 0x80, ps), &st).unwrap();
        }
        f.flush_all(&st).unwrap();
        let snap = st.snapshot();
        assert_eq!(snap.ras_remapped_pages, 1);
        assert_eq!(snap.ras_retired_blocks, 1);
        assert_eq!(f.spares_remaining(), spares_before - 1);
        assert_eq!(f.bad_blocks().len(), 1);
        assert!(!f.is_read_only());
        // Every page, including the remapped one, reads back intact.
        for lpa in 0..8u64 {
            assert_eq!(f.read_page(lpa, &st, false).unwrap().0, page(lpa as u8 | 0x80, ps));
        }
        assert_eq!(f.check_consistency(), Vec::<String>::new());
    }

    #[test]
    fn spare_exhaustion_degrades_to_read_only() {
        // Every program fails: retirements chew through the spare pool and
        // the device must degrade to read-only instead of panicking.
        let (f, st) = sharded_with_media(MediaFaultConfig {
            seed: 4,
            program_fail_rate: 1.0,
            ..Default::default()
        });
        let ps = f.page_size();
        f.buffer_write(0, page(0x11, ps), &st).unwrap();
        let err = f.flush_all(&st).unwrap_err();
        assert_eq!(err, FlashError::ReadOnly);
        assert!(f.is_read_only());
        // One channel's pool (2 spares) was consumed before it gave up.
        assert_eq!(f.spares_remaining(), 2 * (f.cfg.channels - 1));
        // Writes are refused, reads still work (the page stayed buffered).
        assert_eq!(f.buffer_write(1, page(0x22, ps), &st).unwrap_err(), FlashError::ReadOnly);
        assert_eq!(f.read_page(0, &st, false).unwrap().0, page(0x11, ps));
    }

    #[test]
    fn bad_block_table_restores_into_fresh_ftl() {
        let (f, st) = sharded_with_media(MediaFaultConfig {
            seed: 5,
            fail_program_at: 2,
            ..Default::default()
        });
        let ps = f.page_size();
        for lpa in 0..6u64 {
            f.buffer_write(lpa, page(lpa as u8 + 1, ps), &st).unwrap();
        }
        f.flush_all(&st).unwrap();
        let bad = f.bad_blocks();
        assert_eq!(bad.len(), 1);
        let spares = f.spares_remaining();
        let (flash_pages, buffered) = f.export_logical();

        // Power-cycle: fresh FTL, bad-block table first, then the pages.
        let (g, st2) = sharded_with_media(MediaFaultConfig {
            seed: 5,
            fail_program_at: 2,
            ..Default::default()
        });
        g.restore_bad_blocks(&bad);
        assert_eq!(g.bad_blocks(), bad);
        assert_eq!(g.spares_remaining(), spares);
        g.restore_logical(&flash_pages, &buffered);
        for lpa in 0..6u64 {
            assert_eq!(g.read_page(lpa, &st2, false).unwrap().0, page(lpa as u8 + 1, ps));
        }
        // The restore consumed no media-fault ordinals, so the post-restore
        // plan state matches the pre-crash device's.
        assert_eq!(g.check_consistency(), Vec::<String>::new());
    }

    #[test]
    fn erase_failure_during_gc_retires_victim() {
        let media = MediaFaultConfig { seed: 6, fail_erase_at: 1, ..Default::default() };
        let cfg = MssdConfig::small_test().with_media_fault_plan(MediaFaultPlan::new(media));
        let logical = cfg.logical_pages();
        let f = ShardedFtl::new(cfg);
        let st = AtomicTraffic::new();
        let ps = f.page_size();
        let working_set = (logical / 2).max(8);
        let mut version = 0u8;
        for _ in 0..6u64 {
            version = version.wrapping_add(1);
            for lpa in 0..working_set {
                f.buffer_write(lpa, page(version ^ lpa as u8, ps), &st).unwrap();
            }
            f.flush_all(&st).unwrap();
        }
        let snap = st.snapshot();
        assert!(snap.flash_erase_blocks > 0, "GC should have run");
        assert_eq!(snap.ras_retired_blocks, 1, "first erase was forced to fail");
        assert_eq!(f.bad_blocks().len(), 1);
        for lpa in 0..working_set {
            assert_eq!(f.read_page(lpa, &st, false).unwrap().0, page(version ^ lpa as u8, ps));
        }
        assert_eq!(f.check_consistency(), Vec::<String>::new());
    }
}
