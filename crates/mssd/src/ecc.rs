//! Per-page ECC codec: an extended Hamming SECDED code over the whole page.
//!
//! Real NAND controllers protect every page with an error-correcting code
//! strong enough to absorb the raw bit-error rate of the media (BCH or LDPC
//! in practice). The simulator models the *contract* of such a code — correct
//! up to `t` raw bit flips, detect (and refuse to miscorrect) beyond — with a
//! single extended Hamming code spanning the page payload:
//!
//! * **t = 1**: any single flipped bit is located and corrected in place;
//! * **minimum distance 4**: any *two* flipped bits are detected as
//!   uncorrectable — never silently miscorrected — which is exactly the
//!   SECDED (single-error-correct, double-error-detect) guarantee;
//! * three or more flips are outside the code's guarantee, as for any real
//!   SECDED code. The media fault model never needs that regime to resolve
//!   cleanly: the read-retry ladder re-reads with fewer raw errors until the
//!   flip count is inside the guarantee or the retry budget is spent.
//!
//! The implementation uses the classic syndrome-as-position formulation: each
//! data bit is assigned the 1-based codeword position equal to its bit index
//! plus one, the column parity word is the XOR of the positions of all set
//! bits, and the overall parity bit is the payload popcount parity. On
//! decode, the XOR of the stored and recomputed parity words is the XOR of
//! the positions of all flipped bits: zero means clean, a single flip yields
//! its own position (overall parity odd), and a double flip yields a nonzero
//! position XOR with even overall parity, which is reported as uncorrectable.
//!
//! The parity footprint is `PARITY_BYTES` bytes per page regardless of page
//! size (positions fit in a `u32` for any page up to 512 MB), stored
//! out-of-band by the flash model — the analogue of the per-page OOB/spare
//! area on real NAND.

/// Maximum number of flipped bits the codec corrects ([`EccOutcome::Corrected`]).
pub const ECC_T: u32 = 1;

/// Guaranteed detection bound: up to this many flips are *reported* (either
/// corrected or flagged uncorrectable), never silently miscorrected.
pub const ECC_DETECT: u32 = 2;

/// Out-of-band parity footprint per page, in bytes (the packed
/// [`PageParity`]: a `u32` position-XOR word plus the overall parity bit).
pub const PARITY_BYTES: usize = 5;

/// The out-of-band parity word computed by [`encode`] and checked by
/// [`decode`]. Stored alongside the page by the flash model, never inline in
/// the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PageParity {
    /// XOR of the 1-based positions of every set payload bit.
    pub column: u32,
    /// Overall payload parity (popcount mod 2).
    pub overall: bool,
}

/// Result of [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccOutcome {
    /// The page matched its parity exactly.
    Clean,
    /// `bits` flipped bits were located and corrected in place.
    Corrected {
        /// Number of bits corrected (always `1` for this SECDED code).
        bits: u32,
    },
    /// The page is corrupted beyond the correction capability; the payload
    /// must not be trusted and the caller escalates (read retry, then UECC).
    Uncorrectable,
}

/// Computes the out-of-band parity for a page payload.
pub fn encode(data: &[u8]) -> PageParity {
    let mut column = 0u32;
    let mut ones = 0u32;
    for (i, &byte) in data.iter().enumerate() {
        let mut b = byte;
        let base = (i as u32) * 8;
        ones += b.count_ones();
        while b != 0 {
            let j = b.trailing_zeros();
            column ^= base + j + 1;
            b &= b - 1;
        }
    }
    PageParity { column, overall: ones & 1 == 1 }
}

/// Checks `data` against its stored parity, correcting up to [`ECC_T`] bit
/// flips in place. Two flips are always detected as
/// [`EccOutcome::Uncorrectable`]; the payload is left unmodified in that
/// case.
pub fn decode(data: &mut [u8], stored: PageParity) -> EccOutcome {
    let now = encode(data);
    let syndrome = now.column ^ stored.column;
    let odd_flips = now.overall != stored.overall;
    match (syndrome, odd_flips) {
        (0, false) => EccOutcome::Clean,
        (s, true) if s >= 1 && (s as usize) <= data.len() * 8 => {
            // A single flip's syndrome is its own 1-based position.
            let bit = (s - 1) as usize;
            data[bit / 8] ^= 1 << (bit % 8);
            EccOutcome::Corrected { bits: 1 }
        }
        // Even flip count with nonzero syndrome (the double-error case), a
        // syndrome outside the payload, or an odd-count/zero-syndrome
        // combination (≥3 flips cancelling): all are beyond t=1.
        _ => EccOutcome::Uncorrectable,
    }
}

/// Flips bit `bit` (0-based, page-wide) of `data`. Shared helper for the
/// media fault injector and the codec tests.
pub fn flip_bit(data: &mut [u8], bit: usize) {
    data[bit / 8] ^= 1 << (bit % 8);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(n: usize, seed: u64) -> Vec<u8> {
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn clean_page_decodes_clean() {
        let mut p = page(4096, 7);
        let parity = encode(&p);
        assert_eq!(decode(&mut p, parity), EccOutcome::Clean);
    }

    #[test]
    fn every_single_flip_in_a_small_page_is_corrected() {
        let orig = page(64, 3);
        let parity = encode(&orig);
        for bit in 0..orig.len() * 8 {
            let mut p = orig.clone();
            flip_bit(&mut p, bit);
            assert_eq!(decode(&mut p, parity), EccOutcome::Corrected { bits: 1 }, "bit {bit}");
            assert_eq!(p, orig, "bit {bit} not restored");
        }
    }

    #[test]
    fn every_double_flip_in_a_tiny_page_is_detected_never_miscorrected() {
        let orig = page(8, 11);
        let parity = encode(&orig);
        let bits = orig.len() * 8;
        for a in 0..bits {
            for b in (a + 1)..bits {
                let mut p = orig.clone();
                flip_bit(&mut p, a);
                flip_bit(&mut p, b);
                assert_eq!(decode(&mut p, parity), EccOutcome::Uncorrectable, "bits {a},{b}");
            }
        }
    }

    #[test]
    fn zero_filled_and_one_filled_pages_roundtrip() {
        for fill in [0u8, 0xff] {
            let mut p = vec![fill; 4096];
            let parity = encode(&p);
            assert_eq!(decode(&mut p, parity), EccOutcome::Clean);
            flip_bit(&mut p, 12345);
            assert_eq!(decode(&mut p, parity), EccOutcome::Corrected { bits: 1 });
            assert_eq!(p, vec![fill; 4096]);
        }
    }

    #[test]
    fn empty_page_is_degenerate_but_consistent() {
        let mut p: Vec<u8> = Vec::new();
        let parity = encode(&p);
        assert_eq!(parity, PageParity::default());
        assert_eq!(decode(&mut p, parity), EccOutcome::Clean);
    }
}
