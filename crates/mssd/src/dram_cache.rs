//! Page-granular device DRAM cache (baseline firmware behaviour).
//!
//! The baseline file systems in the paper run on the M-SSD "without firmware
//! changes (i.e., no log-structure memory in SSD DRAM), but we enabled the
//! data caching (256 MB) in SSD DRAM" (§5.1). This module is that conventional
//! write-back, LRU, page-granular cache. ByteFS does not use it — it
//! repurposes the same DRAM budget as the log-structured write log
//! ([`crate::log::WriteLog`]).
//!
//! Two layers live here:
//!
//! * [`DramPageCache`] — the single-threaded cache. Pages are stored
//!   `Arc`-backed and [`DramPageCache::get`] hands out zero-copy
//!   [`CachePageRef`]s (a refcount bump, never a 4 KB copy); byte-granular
//!   [`DramPageCache::modify`] copies-on-write via [`Arc::make_mut`] only
//!   when a read ref is still outstanding. This mirrors fskit's host-side
//!   `PageCache`.
//! * [`ShardedDramCache`] — the concurrent wrapper used by the device:
//!   [`CACHE_SHARDS`] lock-striped [`DramPageCache`]s keyed by LPA, each with
//!   a proportional slice of the DRAM budget, so baseline-mode accesses to
//!   different pages never contend on one cache-wide lock.

use std::collections::HashMap;
use std::ops::Deref;
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};

use crate::ftl::Lpa;

/// A zero-copy, read-only reference to a cached page.
///
/// Obtained from [`DramPageCache::get`]; cloning (or fetching) one only bumps
/// an `Arc` refcount. A later [`DramPageCache::modify`] of the same page
/// copies-on-write, so outstanding refs keep the contents they observed.
#[derive(Debug, Clone)]
pub struct CachePageRef(Arc<Vec<u8>>);

impl Deref for CachePageRef {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for CachePageRef {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl PartialEq<Vec<u8>> for CachePageRef {
    fn eq(&self, other: &Vec<u8>) -> bool {
        *self.0 == *other
    }
}

/// One cached flash page.
#[derive(Debug, Clone)]
struct CachedPage {
    data: Arc<Vec<u8>>,
    dirty: bool,
    last_use: u64,
}

/// An LRU write-back cache of flash pages held in device DRAM.
#[derive(Debug)]
pub struct DramPageCache {
    capacity_pages: usize,
    page_size: usize,
    pages: HashMap<Lpa, CachedPage>,
    tick: u64,
}

/// Unwraps an `Arc`-backed page for writeback, copying only if a
/// [`CachePageRef`] is still outstanding.
fn unwrap_page(data: Arc<Vec<u8>>) -> Vec<u8> {
    Arc::try_unwrap(data).unwrap_or_else(|arc| (*arc).clone())
}

impl DramPageCache {
    /// Creates a cache that can hold `capacity_bytes / page_size` pages
    /// (at least one).
    pub fn new(capacity_bytes: usize, page_size: usize) -> Self {
        Self {
            capacity_pages: (capacity_bytes / page_size).max(1),
            page_size,
            pages: HashMap::new(),
            tick: 0,
        }
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// `true` when no pages are cached.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Number of resident dirty pages.
    pub fn dirty_pages(&self) -> usize {
        self.pages.values().filter(|p| p.dirty).count()
    }

    /// Maximum number of resident pages.
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// Whether a page is resident.
    pub fn contains(&self, lpa: Lpa) -> bool {
        self.pages.contains_key(&lpa)
    }

    /// Returns a zero-copy reference to a cached page and refreshes its LRU
    /// position. No page data is copied — only an `Arc` refcount is bumped.
    pub fn get(&mut self, lpa: Lpa) -> Option<CachePageRef> {
        self.tick += 1;
        let tick = self.tick;
        let p = self.pages.get_mut(&lpa)?;
        p.last_use = tick;
        Some(CachePageRef(Arc::clone(&p.data)))
    }

    /// Inserts (or replaces) a page. Returns the pages that had to be evicted
    /// to make room, as `(lpa, data)` pairs — only dirty victims are returned,
    /// clean victims are silently dropped.
    pub fn insert(&mut self, lpa: Lpa, data: Vec<u8>, dirty: bool) -> Vec<(Lpa, Vec<u8>)> {
        debug_assert_eq!(data.len(), self.page_size, "cache stores whole pages");
        self.tick += 1;
        let entry = CachedPage { data: Arc::new(data), dirty, last_use: self.tick };
        match self.pages.get_mut(&lpa) {
            Some(existing) => {
                // Keep the dirty bit sticky: overwriting a dirty page with a
                // clean copy must not lose the pending writeback.
                let was_dirty = existing.dirty;
                *existing = entry;
                existing.dirty = dirty || was_dirty;
                Vec::new()
            }
            None => {
                self.pages.insert(lpa, entry);
                self.evict_to_capacity()
            }
        }
    }

    /// Applies a byte-granular modification to a cached page, marking it
    /// dirty. Copies-on-write only if a [`CachePageRef`] is outstanding.
    /// Returns `false` if the page is not resident.
    pub fn modify(&mut self, lpa: Lpa, offset: usize, bytes: &[u8]) -> bool {
        self.tick += 1;
        let tick = self.tick;
        match self.pages.get_mut(&lpa) {
            Some(p) => {
                let end = offset + bytes.len();
                debug_assert!(end <= self.page_size);
                Arc::make_mut(&mut p.data)[offset..end].copy_from_slice(bytes);
                p.dirty = true;
                p.last_use = tick;
                true
            }
            None => false,
        }
    }

    /// Drops a page from the cache regardless of its dirty state (used when the
    /// host overwrites the whole page through the block interface).
    pub fn discard(&mut self, lpa: Lpa) {
        self.pages.remove(&lpa);
    }

    /// Copies out the dirty pages without clearing their dirty bits (used
    /// for crash imaging: the cache is battery-backed device DRAM, so its
    /// unwritten dirty pages are part of the durable state).
    pub fn export_dirty(&self) -> Vec<(Lpa, Vec<u8>)> {
        let mut out: Vec<(Lpa, Vec<u8>)> = self
            .pages
            .iter()
            .filter(|(_, p)| p.dirty)
            .map(|(k, p)| (*k, (*p.data).clone()))
            .collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Removes the dirty bit from all pages and returns their contents (for
    /// FLUSH / power-loss handling). Pages stay resident.
    pub fn drain_dirty(&mut self) -> Vec<(Lpa, Vec<u8>)> {
        let dirty_keys: Vec<Lpa> =
            self.pages.iter().filter(|(_, p)| p.dirty).map(|(k, _)| *k).collect();
        let mut out = Vec::with_capacity(dirty_keys.len());
        for k in dirty_keys {
            if let Some(p) = self.pages.get_mut(&k) {
                p.dirty = false;
                out.push((k, (*p.data).clone()));
            }
        }
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Drops every cached page (clean and dirty) without writing anything
    /// back. Only used to model losing a *volatile* cache.
    pub fn clear(&mut self) {
        self.pages.clear();
    }

    fn evict_to_capacity(&mut self) -> Vec<(Lpa, Vec<u8>)> {
        let mut writebacks = Vec::new();
        while self.pages.len() > self.capacity_pages {
            let victim = self
                .pages
                .iter()
                .min_by_key(|(_, p)| p.last_use)
                .map(|(k, _)| *k)
                .expect("cache is non-empty");
            let page = self.pages.remove(&victim).expect("victim present");
            if page.dirty {
                writebacks.push((victim, unwrap_page(page.data)));
            }
        }
        writebacks
    }
}

/// Number of independently locked shards of the [`ShardedDramCache`].
///
/// Sequential LPAs round-robin over the shards, so block streams and disjoint
/// working sets spread across all locks.
pub const CACHE_SHARDS: usize = 16;

/// The concurrent device page cache used in baseline ([`crate::DramMode::PageCache`])
/// mode: [`CACHE_SHARDS`] LRU caches, each behind its own mutex with a
/// proportional slice of the DRAM budget.
///
/// The device locks exactly one shard per page-sized chunk of a request
/// (via [`ShardedDramCache::lock_shard`]) and performs the whole
/// hit-or-miss-and-fill sequence under that one lock, so accesses to
/// different shards proceed concurrently while same-page races stay
/// serialized. Lock order: a cache-shard lock may be held while taking FTL
/// channel/stripe locks, never the reverse.
#[derive(Debug)]
pub struct ShardedDramCache {
    shards: Vec<Mutex<DramPageCache>>,
}

impl ShardedDramCache {
    /// Creates a sharded cache over the given DRAM budget.
    pub fn new(capacity_bytes: usize, page_size: usize) -> Self {
        let per_shard = (capacity_bytes / CACHE_SHARDS).max(page_size);
        Self {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(DramPageCache::new(per_shard, page_size)))
                .collect(),
        }
    }

    /// The shard index serving `lpa`.
    pub fn shard_of(&self, lpa: Lpa) -> usize {
        (lpa % CACHE_SHARDS as u64) as usize
    }

    /// Locks and returns the shard serving `lpa`. The caller performs its
    /// whole per-page sequence (lookup, fill, modify, insert) under this one
    /// guard.
    pub fn lock_shard(&self, lpa: Lpa) -> MutexGuard<'_, DramPageCache> {
        self.shards[self.shard_of(lpa)].lock()
    }

    /// Number of resident dirty pages across all shards.
    pub fn dirty_pages(&self) -> usize {
        self.shards.iter().map(|s| s.lock().dirty_pages()).sum()
    }

    /// Number of resident pages across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// `true` when no pages are cached in any shard.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Removes the dirty bit from every page in every shard and returns the
    /// dirty contents in ascending LPA order (shards are visited one at a
    /// time, so this is a consistent set only at quiescent points).
    pub fn drain_dirty(&self) -> Vec<(Lpa, Vec<u8>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.lock().drain_dirty());
        }
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Drops a page regardless of its dirty state.
    pub fn discard(&self, lpa: Lpa) {
        self.lock_shard(lpa).discard(lpa);
    }

    /// Copies out every shard's dirty pages without clearing dirty bits, in
    /// ascending LPA order (crash imaging; see
    /// [`DramPageCache::export_dirty`]).
    pub fn export_dirty(&self) -> Vec<(Lpa, Vec<u8>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.lock().export_dirty());
        }
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Re-inserts pages as dirty (crash-image restoration into a fresh,
    /// empty cache). Evictions cannot happen while restoring what one cache
    /// of the same geometry previously held.
    pub fn restore_dirty(&self, pages: &[(Lpa, Vec<u8>)]) {
        for (lpa, data) in pages {
            let victims = self.lock_shard(*lpa).insert(*lpa, data.clone(), true);
            assert!(victims.is_empty(), "crash-image cache restore must not evict");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PS: usize = 4096;

    fn cache(pages: usize) -> DramPageCache {
        DramPageCache::new(pages * PS, PS)
    }

    fn page(tag: u8) -> Vec<u8> {
        vec![tag; PS]
    }

    #[test]
    fn insert_and_get() {
        let mut c = cache(4);
        assert!(c.insert(1, page(1), false).is_empty());
        assert_eq!(c.get(1).unwrap(), page(1));
        assert!(c.get(2).is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn get_is_zero_copy_and_cow_on_modify() {
        let mut c = cache(4);
        c.insert(7, page(1), false);
        let r1 = c.get(7).unwrap();
        let r2 = c.get(7).unwrap();
        // Both refs share the same allocation — no copy on read.
        assert!(Arc::ptr_eq(&r1.0, &r2.0));
        // A modify with refs outstanding copies-on-write: old refs keep the
        // contents they observed.
        assert!(c.modify(7, 0, &[9, 9]));
        assert_eq!(&r1[..2], &[1, 1]);
        assert_eq!(&c.get(7).unwrap()[..2], &[9, 9]);
        // With no refs outstanding, modify writes in place (no new alloc).
        drop(r1);
        drop(r2);
        let before = c.get(7).unwrap();
        let ptr_before = Arc::as_ptr(&before.0);
        drop(before);
        assert!(c.modify(7, 2, &[8]));
        assert_eq!(Arc::as_ptr(&c.get(7).unwrap().0), ptr_before);
    }

    #[test]
    fn lru_eviction_returns_dirty_victims_only() {
        let mut c = cache(2);
        c.insert(1, page(1), true);
        c.insert(2, page(2), false);
        // Touch 1 so 2 becomes the LRU victim.
        c.get(1);
        let evicted = c.insert(3, page(3), false);
        assert!(evicted.is_empty(), "clean victim should not be written back");
        assert!(!c.contains(2));
        // Now 1 (dirty) is the LRU.
        let evicted = c.insert(4, page(4), false);
        assert_eq!(evicted, vec![(1, page(1))]);
    }

    #[test]
    fn modify_marks_dirty() {
        let mut c = cache(2);
        c.insert(5, page(0), false);
        assert_eq!(c.dirty_pages(), 0);
        assert!(c.modify(5, 100, &[9, 9, 9]));
        assert_eq!(c.dirty_pages(), 1);
        let got = c.get(5).unwrap();
        assert_eq!(&got[100..103], &[9, 9, 9]);
        assert!(!c.modify(99, 0, &[1]));
    }

    #[test]
    fn reinsert_keeps_dirty_bit_sticky() {
        let mut c = cache(2);
        c.insert(1, page(1), true);
        c.insert(1, page(2), false);
        assert_eq!(c.dirty_pages(), 1);
        assert_eq!(c.get(1).unwrap(), page(2));
    }

    #[test]
    fn drain_dirty_cleans_pages_but_keeps_them_resident() {
        let mut c = cache(4);
        c.insert(1, page(1), true);
        c.insert(2, page(2), false);
        c.insert(3, page(3), true);
        let drained = c.drain_dirty();
        assert_eq!(drained, vec![(1, page(1)), (3, page(3))]);
        assert_eq!(c.dirty_pages(), 0);
        assert_eq!(c.len(), 3);
        assert!(c.drain_dirty().is_empty());
    }

    #[test]
    fn discard_and_clear() {
        let mut c = cache(4);
        c.insert(1, page(1), true);
        c.insert(2, page(2), true);
        c.discard(1);
        assert!(!c.contains(1));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.dirty_pages(), 0);
    }

    #[test]
    fn capacity_is_at_least_one_page() {
        let c = DramPageCache::new(10, PS);
        assert_eq!(c.capacity_pages(), 1);
    }

    #[test]
    fn sharded_cache_spreads_and_aggregates() {
        let c = ShardedDramCache::new(64 * PS, PS);
        assert!(c.is_empty());
        for lpa in 0..32u64 {
            c.lock_shard(lpa).insert(lpa, page(lpa as u8), lpa % 2 == 0);
        }
        assert_eq!(c.len(), 32);
        assert_eq!(c.dirty_pages(), 16);
        // Consecutive LPAs land on different shards.
        assert_ne!(c.shard_of(0), c.shard_of(1));
        let drained = c.drain_dirty();
        assert_eq!(drained.len(), 16);
        assert!(drained.windows(2).all(|w| w[0].0 < w[1].0), "sorted by lpa");
        assert_eq!(c.dirty_pages(), 0);
        c.discard(0);
        assert_eq!(c.len(), 31);
        assert_eq!(c.lock_shard(4).get(4).unwrap(), page(4));
    }

    #[test]
    fn sharded_cache_concurrent_smoke() {
        let c = std::sync::Arc::new(ShardedDramCache::new(256 * PS, PS));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let lpa = t * 64 + i % 64;
                        let mut shard = c.lock_shard(lpa);
                        if shard.get(lpa).is_none() {
                            shard.insert(lpa, page(t as u8), false);
                        }
                        shard.modify(lpa, 0, &[t as u8 + 1]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..4u64 {
            let got = c.lock_shard(t * 64).get(t * 64).unwrap();
            assert_eq!(got[0], t as u8 + 1);
        }
    }
}
