//! Page-granular device DRAM cache (baseline firmware behaviour).
//!
//! The baseline file systems in the paper run on the M-SSD "without firmware
//! changes (i.e., no log-structure memory in SSD DRAM), but we enabled the
//! data caching (256 MB) in SSD DRAM" (§5.1). This module is that conventional
//! write-back, LRU, page-granular cache. ByteFS does not use it — it
//! repurposes the same DRAM budget as the log-structured write log
//! ([`crate::log::WriteLog`]).

use std::collections::HashMap;

use crate::ftl::Lpa;

/// One cached flash page.
#[derive(Debug, Clone)]
struct CachedPage {
    data: Vec<u8>,
    dirty: bool,
    last_use: u64,
}

/// An LRU write-back cache of flash pages held in device DRAM.
#[derive(Debug)]
pub struct DramPageCache {
    capacity_pages: usize,
    page_size: usize,
    pages: HashMap<Lpa, CachedPage>,
    tick: u64,
}

impl DramPageCache {
    /// Creates a cache that can hold `capacity_bytes / page_size` pages
    /// (at least one).
    pub fn new(capacity_bytes: usize, page_size: usize) -> Self {
        Self {
            capacity_pages: (capacity_bytes / page_size).max(1),
            page_size,
            pages: HashMap::new(),
            tick: 0,
        }
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// `true` when no pages are cached.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Number of resident dirty pages.
    pub fn dirty_pages(&self) -> usize {
        self.pages.values().filter(|p| p.dirty).count()
    }

    /// Maximum number of resident pages.
    pub fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    /// Whether a page is resident.
    pub fn contains(&self, lpa: Lpa) -> bool {
        self.pages.contains_key(&lpa)
    }

    fn touch(&mut self, lpa: Lpa) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(p) = self.pages.get_mut(&lpa) {
            p.last_use = tick;
        }
    }

    /// Returns a copy of a cached page and refreshes its LRU position.
    pub fn get(&mut self, lpa: Lpa) -> Option<Vec<u8>> {
        if self.pages.contains_key(&lpa) {
            self.touch(lpa);
            Some(self.pages[&lpa].data.clone())
        } else {
            None
        }
    }

    /// Inserts (or replaces) a page. Returns the pages that had to be evicted
    /// to make room, as `(lpa, data)` pairs — only dirty victims are returned,
    /// clean victims are silently dropped.
    pub fn insert(&mut self, lpa: Lpa, data: Vec<u8>, dirty: bool) -> Vec<(Lpa, Vec<u8>)> {
        debug_assert_eq!(data.len(), self.page_size, "cache stores whole pages");
        self.tick += 1;
        let entry = CachedPage { data, dirty, last_use: self.tick };
        match self.pages.get_mut(&lpa) {
            Some(existing) => {
                // Keep the dirty bit sticky: overwriting a dirty page with a
                // clean copy must not lose the pending writeback.
                let was_dirty = existing.dirty;
                *existing = entry;
                existing.dirty = dirty || was_dirty;
                Vec::new()
            }
            None => {
                self.pages.insert(lpa, entry);
                self.evict_to_capacity()
            }
        }
    }

    /// Applies a byte-granular modification to a cached page, marking it
    /// dirty. Returns `false` if the page is not resident.
    pub fn modify(&mut self, lpa: Lpa, offset: usize, bytes: &[u8]) -> bool {
        self.tick += 1;
        let tick = self.tick;
        match self.pages.get_mut(&lpa) {
            Some(p) => {
                let end = offset + bytes.len();
                debug_assert!(end <= self.page_size);
                p.data[offset..end].copy_from_slice(bytes);
                p.dirty = true;
                p.last_use = tick;
                true
            }
            None => false,
        }
    }

    /// Drops a page from the cache regardless of its dirty state (used when the
    /// host overwrites the whole page through the block interface).
    pub fn discard(&mut self, lpa: Lpa) {
        self.pages.remove(&lpa);
    }

    /// Removes and returns all dirty pages (for FLUSH / power-loss handling).
    pub fn drain_dirty(&mut self) -> Vec<(Lpa, Vec<u8>)> {
        let dirty_keys: Vec<Lpa> =
            self.pages.iter().filter(|(_, p)| p.dirty).map(|(k, _)| *k).collect();
        let mut out = Vec::with_capacity(dirty_keys.len());
        for k in dirty_keys {
            if let Some(p) = self.pages.get_mut(&k) {
                p.dirty = false;
                out.push((k, p.data.clone()));
            }
        }
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Drops every cached page (clean and dirty) without writing anything
    /// back. Only used to model losing a *volatile* cache.
    pub fn clear(&mut self) {
        self.pages.clear();
    }

    fn evict_to_capacity(&mut self) -> Vec<(Lpa, Vec<u8>)> {
        let mut writebacks = Vec::new();
        while self.pages.len() > self.capacity_pages {
            let victim = self
                .pages
                .iter()
                .min_by_key(|(_, p)| p.last_use)
                .map(|(k, _)| *k)
                .expect("cache is non-empty");
            let page = self.pages.remove(&victim).expect("victim present");
            if page.dirty {
                writebacks.push((victim, page.data));
            }
        }
        writebacks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PS: usize = 4096;

    fn cache(pages: usize) -> DramPageCache {
        DramPageCache::new(pages * PS, PS)
    }

    fn page(tag: u8) -> Vec<u8> {
        vec![tag; PS]
    }

    #[test]
    fn insert_and_get() {
        let mut c = cache(4);
        assert!(c.insert(1, page(1), false).is_empty());
        assert_eq!(c.get(1), Some(page(1)));
        assert_eq!(c.get(2), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_returns_dirty_victims_only() {
        let mut c = cache(2);
        c.insert(1, page(1), true);
        c.insert(2, page(2), false);
        // Touch 1 so 2 becomes the LRU victim.
        c.get(1);
        let evicted = c.insert(3, page(3), false);
        assert!(evicted.is_empty(), "clean victim should not be written back");
        assert!(!c.contains(2));
        // Now 1 (dirty) is the LRU.
        let evicted = c.insert(4, page(4), false);
        assert_eq!(evicted, vec![(1, page(1))]);
    }

    #[test]
    fn modify_marks_dirty() {
        let mut c = cache(2);
        c.insert(5, page(0), false);
        assert_eq!(c.dirty_pages(), 0);
        assert!(c.modify(5, 100, &[9, 9, 9]));
        assert_eq!(c.dirty_pages(), 1);
        let got = c.get(5).unwrap();
        assert_eq!(&got[100..103], &[9, 9, 9]);
        assert!(!c.modify(99, 0, &[1]));
    }

    #[test]
    fn reinsert_keeps_dirty_bit_sticky() {
        let mut c = cache(2);
        c.insert(1, page(1), true);
        c.insert(1, page(2), false);
        assert_eq!(c.dirty_pages(), 1);
        assert_eq!(c.get(1), Some(page(2)));
    }

    #[test]
    fn drain_dirty_cleans_pages_but_keeps_them_resident() {
        let mut c = cache(4);
        c.insert(1, page(1), true);
        c.insert(2, page(2), false);
        c.insert(3, page(3), true);
        let drained = c.drain_dirty();
        assert_eq!(drained, vec![(1, page(1)), (3, page(3))]);
        assert_eq!(c.dirty_pages(), 0);
        assert_eq!(c.len(), 3);
        assert!(c.drain_dirty().is_empty());
    }

    #[test]
    fn discard_and_clear() {
        let mut c = cache(4);
        c.insert(1, page(1), true);
        c.insert(2, page(2), true);
        c.discard(1);
        assert!(!c.contains(1));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.dirty_pages(), 0);
    }

    #[test]
    fn capacity_is_at_least_one_page() {
        let c = DramPageCache::new(10, PS);
        assert_eq!(c.capacity_pages(), 1);
    }
}
