//! Deterministic power-failure injection: the device-side half of `crashkit`.
//!
//! Every **durability-relevant step** the device executes — a write-log chunk
//! append, a TxLog commit record, a sealed-region drain migration, a write
//! buffer acceptance, a NAND page program, a block erase — passes through the
//! [`FaultPlan`] installed in [`crate::MssdConfig::fault`]. The plan counts
//! the steps and, when armed with a cut point, denies the chosen step and
//! every step after it: from that instant the device behaves as if power was
//! lost mid-operation. Mutations that were about to happen simply do not
//! (a multi-page program is torn between pages, a sealed region is left
//! partially drained, a commit record is never appended), while reads keep
//! returning the state that *did* become durable.
//!
//! The default plan is [`FaultPlan::disabled`]: a single `Option` check on
//! the hot path and no other cost, so production configurations are
//! unaffected.
//!
//! Determinism: with `background_cleaning` off and a single-threaded host,
//! the step sequence is a pure function of the op stream, so the same seed
//! and the same cut index always produce the same crash state (pinned by the
//! crashkit determinism tests). With the background cleaner running, cleaner
//! steps interleave with host steps nondeterministically; the cut still
//! lands on *a* valid crash state, but reproduction is only guaranteed for
//! cleaner-off runs.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Taxonomy of durability-relevant steps (see `crates/crashkit/DESIGN.md`
/// for the full crash-point taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A byte-interface chunk appended to the write log (battery-backed DRAM).
    LogAppend,
    /// A commit record appended to the firmware TxLog.
    TxCommit,
    /// One page migrated out of a sealed log region by a cleaner drain step.
    SealDrain,
    /// A block-interface page accepted into the FTL write buffer (the
    /// acknowledgement point of a block write).
    BufferWrite,
    /// A block-interface journal page accepted (same mechanism as
    /// [`FaultKind::BufferWrite`], counted separately because journal commit
    /// protocols are the classic torn-write victims).
    JournalWrite,
    /// A byte-interface chunk absorbed by the baseline device page cache.
    CacheWrite,
    /// One NAND page programmed (host flush, cleaner merge, or GC
    /// relocation). Cutting inside a multi-page program tears it.
    FlashProgram,
    /// One NAND block erased by garbage collection.
    FlashErase,
}

impl FaultKind {
    /// All kinds, in a stable order (indexable by [`FaultKind::index`]).
    pub const ALL: [FaultKind; 8] = [
        FaultKind::LogAppend,
        FaultKind::TxCommit,
        FaultKind::SealDrain,
        FaultKind::BufferWrite,
        FaultKind::JournalWrite,
        FaultKind::CacheWrite,
        FaultKind::FlashProgram,
        FaultKind::FlashErase,
    ];

    /// Stable index of this kind into per-kind counter arrays.
    pub fn index(self) -> usize {
        match self {
            FaultKind::LogAppend => 0,
            FaultKind::TxCommit => 1,
            FaultKind::SealDrain => 2,
            FaultKind::BufferWrite => 3,
            FaultKind::JournalWrite => 4,
            FaultKind::CacheWrite => 5,
            FaultKind::FlashProgram => 6,
            FaultKind::FlashErase => 7,
        }
    }

    /// Short label used in reports, e.g. `"log-append"`.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::LogAppend => "log-append",
            FaultKind::TxCommit => "tx-commit",
            FaultKind::SealDrain => "seal-drain",
            FaultKind::BufferWrite => "buffer-write",
            FaultKind::JournalWrite => "journal-write",
            FaultKind::CacheWrite => "cache-write",
            FaultKind::FlashProgram => "flash-program",
            FaultKind::FlashErase => "flash-erase",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Shared mutable state of an armed plan. Cloning the owning [`FaultPlan`]
/// (which happens whenever an [`crate::MssdConfig`] is cloned into a device
/// component) shares this state, so every component of one device counts
/// into the same sequence.
#[derive(Debug, Default)]
struct FaultState {
    /// The 1-based step ordinal at which power is cut; 0 = count only.
    cut_at: u64,
    /// Total steps observed (including denied post-cut attempts).
    counter: AtomicU64,
    /// Per-kind step counts, indexed by [`FaultKind::index`].
    by_kind: [AtomicU64; 8],
    /// `FaultKind::index() + 1` of the step that tripped the cut (0 = none).
    cut_kind: AtomicUsize,
}

/// A fault-injection plan carried inside [`crate::MssdConfig`].
///
/// * [`FaultPlan::disabled`] (the `Default`) — no counting, no cutting.
/// * [`FaultPlan::count_only`] — counts durability steps; never cuts. Used
///   by the crashkit enumeration driver to size a workload's crash-point
///   space.
/// * [`FaultPlan::cut_at`] — counts and denies the `n`-th step and every
///   step after it (power off).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    state: Option<Arc<FaultState>>,
}

impl FaultPlan {
    /// A plan that observes nothing and never cuts (zero-cost default).
    pub fn disabled() -> Self {
        Self { state: None }
    }

    /// A plan that counts every durability step but never cuts power.
    pub fn count_only() -> Self {
        Self { state: Some(Arc::new(FaultState::default())) }
    }

    /// A plan that cuts power at the `step`-th durability step (1-based):
    /// that step and every later one are denied.
    ///
    /// # Panics
    ///
    /// Panics if `step` is 0 (use [`FaultPlan::count_only`] instead).
    pub fn cut_at(step: u64) -> Self {
        assert!(step > 0, "cut point is 1-based; use count_only() for no cut");
        Self { state: Some(Arc::new(FaultState { cut_at: step, ..Default::default() })) }
    }

    /// Whether this plan observes steps at all.
    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    /// Records one durability-relevant step of the given kind. Returns `true`
    /// when the step may proceed, `false` when power is (now) off and the
    /// mutation must not happen.
    #[inline]
    pub fn step(&self, kind: FaultKind) -> bool {
        let Some(st) = &self.state else { return true };
        let ordinal = st.counter.fetch_add(1, Ordering::SeqCst) + 1;
        st.by_kind[kind.index()].fetch_add(1, Ordering::Relaxed);
        if st.cut_at != 0 && ordinal >= st.cut_at {
            if ordinal == st.cut_at {
                st.cut_kind.store(kind.index() + 1, Ordering::SeqCst);
            }
            return false;
        }
        true
    }

    /// `true` once the cut point has been reached: power is off and no
    /// further durable mutation may happen.
    #[inline]
    pub fn is_cut(&self) -> bool {
        match &self.state {
            Some(st) => st.cut_at != 0 && st.counter.load(Ordering::SeqCst) >= st.cut_at,
            None => false,
        }
    }

    /// Total durability steps observed so far (the size of the crash-point
    /// space once the workload finished; includes denied post-cut attempts).
    pub fn total_steps(&self) -> u64 {
        self.state.as_ref().map(|st| st.counter.load(Ordering::SeqCst)).unwrap_or(0)
    }

    /// Steps observed of one kind.
    pub fn steps_of(&self, kind: FaultKind) -> u64 {
        self.state.as_ref().map(|st| st.by_kind[kind.index()].load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// The armed cut point (1-based), if any.
    pub fn cut_point(&self) -> Option<u64> {
        self.state.as_ref().and_then(|st| (st.cut_at != 0).then_some(st.cut_at))
    }

    /// The kind of the step that tripped the cut (once it has).
    pub fn cut_kind(&self) -> Option<FaultKind> {
        let st = self.state.as_ref()?;
        let idx = st.cut_kind.load(Ordering::SeqCst);
        (idx > 0).then(|| FaultKind::ALL[idx - 1])
    }

    /// Per-kind step counts in [`FaultKind::ALL`] order.
    pub fn histogram(&self) -> [(FaultKind, u64); 8] {
        let mut out = [(FaultKind::LogAppend, 0); 8];
        for (slot, kind) in out.iter_mut().zip(FaultKind::ALL) {
            *slot = (kind, self.steps_of(kind));
        }
        out
    }
}

/// Two plans are configuration-equal when they are armed the same way; the
/// runtime counters are deliberately ignored so a device config compares
/// equal to its clone mid-run.
impl PartialEq for FaultPlan {
    fn eq(&self, other: &Self) -> bool {
        match (&self.state, &other.state) {
            (None, None) => true,
            (Some(a), Some(b)) => a.cut_at == b.cut_at,
            _ => false,
        }
    }
}

/// Media op taxonomy for [`MediaFaultPlan`]: the three NAND operations that
/// can fail on real media.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MediaOpKind {
    /// A page read (transient: read-disturb / retention bit flips).
    Read,
    /// A page program (permanent: the block is going bad).
    Program,
    /// A block erase (permanent: the block is worn out).
    Erase,
}

impl MediaOpKind {
    /// All kinds, in a stable order (indexable by [`MediaOpKind::index`]).
    pub const ALL: [MediaOpKind; 3] = [MediaOpKind::Read, MediaOpKind::Program, MediaOpKind::Erase];

    /// Stable index of this kind into per-kind counter arrays.
    pub fn index(self) -> usize {
        match self {
            MediaOpKind::Read => 0,
            MediaOpKind::Program => 1,
            MediaOpKind::Erase => 2,
        }
    }

    /// Short label used in reports, e.g. `"read"`.
    pub fn label(self) -> &'static str {
        match self {
            MediaOpKind::Read => "read",
            MediaOpKind::Program => "program",
            MediaOpKind::Erase => "erase",
        }
    }
}

impl std::fmt::Display for MediaOpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Configuration of a [`MediaFaultPlan`]: per-op fault rates plus exact op
/// ordinals for bit-exact reproduction of a specific failure.
///
/// All rates are probabilities in `[0, 1]` drawn deterministically from
/// `seed` and the per-kind op ordinal, so the same seed over the same op
/// stream injects the same faults (the crashkit media determinism test pins
/// this). The `fail_*_at` fields are 1-based op ordinals that force a fault
/// at exactly that op regardless of the rates; `0` means "never".
#[derive(Debug, Clone, PartialEq)]
pub struct MediaFaultConfig {
    /// PRNG seed; every injection decision derives from it.
    pub seed: u64,
    /// Per-read probability of a transient raw bit-error event.
    pub read_error_rate: f64,
    /// Additional read-error-rate multiplier per block erase (wear): the
    /// effective rate is `read_error_rate * (1 + wear_factor * erase_count)`,
    /// modelling read-disturb/retention loss growing with block age.
    pub wear_factor: f64,
    /// Probability that a read-error event is *hard*: the retry ladder never
    /// recovers it and the read resolves as a UECC.
    pub hard_read_rate: f64,
    /// Per-program probability of a permanent program failure.
    pub program_fail_rate: f64,
    /// Per-erase probability of a permanent erase failure.
    pub erase_fail_rate: f64,
    /// Force a hard (uncorrectable) read error at this 1-based read ordinal.
    pub fail_read_at: u64,
    /// Force a program failure at this 1-based program ordinal.
    pub fail_program_at: u64,
    /// Force an erase failure at this 1-based erase ordinal.
    pub fail_erase_at: u64,
}

impl Default for MediaFaultConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            read_error_rate: 0.0,
            wear_factor: 0.0,
            hard_read_rate: 0.0,
            program_fail_rate: 0.0,
            erase_fail_rate: 0.0,
            fail_read_at: 0,
            fail_program_at: 0,
            fail_erase_at: 0,
        }
    }
}

/// Shared mutable state of a media plan (see [`FaultState`] for the sharing
/// rationale: config clones share one counter sequence per device).
#[derive(Debug)]
struct MediaState {
    cfg: MediaFaultConfig,
    /// Per-kind op ordinals, indexed by [`MediaOpKind::index`].
    ops: [AtomicU64; 3],
    /// Per-kind injected fault counts, indexed by [`MediaOpKind::index`].
    injected: [AtomicU64; 3],
    /// Suspension depth: while non-zero every draw returns clean *without*
    /// advancing an ordinal, so crash-image restores (which replay flash ops
    /// that already happened) neither fault nor perturb the sequence.
    suspended: AtomicU64,
}

/// SplitMix64: full-avalanche mix used for all injection decisions (and,
/// crate-wide, for any other deterministic seeded draw — retry jitter
/// shares it so one seed fixes a whole run).
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from a mixed word.
fn unit(z: u64) -> f64 {
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// The transient-read-error event drawn for one physical page read.
///
/// Carries everything the FTL's read-retry ladder needs: the initial raw
/// flip count, whether the event is hard (unrecoverable), and the identity
/// `(seed, ordinal)` from which the deterministic flip positions of every
/// retry attempt are derived.
#[derive(Debug, Clone, Copy)]
pub struct ReadFault {
    /// Raw flipped-bit count on the first read attempt.
    pub flips: u32,
    /// Hard event: retries do not reduce the flip count and the read must
    /// resolve as a UECC.
    pub hard: bool,
    /// 1-based read ordinal that drew this event.
    pub ordinal: u64,
    seed: u64,
}

impl ReadFault {
    /// Raw flip count observed on retry `attempt` (0 = the initial read).
    /// Each ladder step models an adjusted-read-voltage retry that halves
    /// the residual raw errors; hard events do not improve.
    pub fn flips_at(&self, attempt: u32) -> u32 {
        if self.hard {
            self.flips
        } else {
            self.flips >> attempt.min(31)
        }
    }

    /// Deterministic distinct bit positions (page-wide, 0-based) flipped on
    /// retry `attempt`. A function of `(seed, ordinal, attempt)` only, so a
    /// re-run with the same plan seed corrupts the same bits.
    pub fn flip_positions(&self, attempt: u32, page_bits: usize) -> Vec<usize> {
        let count = self.flips_at(attempt).min(page_bits as u32) as usize;
        let mut out = Vec::with_capacity(count);
        let mut state = mix64(self.seed ^ self.ordinal.rotate_left(17) ^ (attempt as u64) << 48);
        while out.len() < count {
            state = mix64(state);
            let pos = (state % page_bits as u64) as usize;
            if !out.contains(&pos) {
                out.push(pos);
            }
        }
        out
    }
}

/// Seeded, deterministic NAND media-fault injection, carried inside
/// [`crate::MssdConfig::media`].
///
/// Mirrors [`FaultPlan`]'s sharing model: cloning the plan (which happens
/// whenever a device config is cloned into a component) shares the per-kind
/// op counters, so every channel of one device draws from the same
/// deterministic sequence. The disabled default costs one `Option` check per
/// flash op.
///
/// Determinism has the same caveat as [`FaultPlan`]: with background
/// cleaning off and a single-threaded host, per-kind op ordinals are a pure
/// function of the op stream, so a seed reproduces the exact fault sequence;
/// with the cleaner on, injection is still seeded but interleaving-dependent.
#[derive(Debug, Clone, Default)]
pub struct MediaFaultPlan {
    state: Option<Arc<MediaState>>,
}

impl MediaFaultPlan {
    /// A plan that injects nothing (zero-cost default).
    pub fn disabled() -> Self {
        Self { state: None }
    }

    /// A plan armed with the given fault model.
    pub fn new(cfg: MediaFaultConfig) -> Self {
        Self {
            state: Some(Arc::new(MediaState {
                cfg,
                ops: Default::default(),
                injected: Default::default(),
                suspended: AtomicU64::new(0),
            })),
        }
    }

    /// Convenience: rate-based plan with the given per-op fault rates and
    /// default wear/hard parameters.
    pub fn rates(seed: u64, read: f64, program: f64, erase: f64) -> Self {
        Self::new(MediaFaultConfig {
            seed,
            read_error_rate: read,
            program_fail_rate: program,
            erase_fail_rate: erase,
            ..Default::default()
        })
    }

    /// Whether any injection is armed. When `false`, the device skips ECC
    /// encode/decode entirely (fault-free configurations pay nothing).
    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    /// Draws the transient-fault outcome for one physical page read of a
    /// block with the given `wear` (erase count). Advances the read ordinal;
    /// retries of the same read must reuse the returned [`ReadFault`] rather
    /// than drawing again. Returns `None` when the read is clean.
    pub fn read_fault(&self, wear: u64) -> Option<ReadFault> {
        let st = self.state.as_ref()?;
        if st.suspended.load(Ordering::SeqCst) > 0 {
            return None;
        }
        let ordinal = st.ops[MediaOpKind::Read.index()].fetch_add(1, Ordering::SeqCst) + 1;
        let forced = st.cfg.fail_read_at != 0 && ordinal == st.cfg.fail_read_at;
        let base = mix64(st.cfg.seed ^ ordinal.wrapping_mul(0xa076_1d64_78bd_642f));
        let rate = st.cfg.read_error_rate * (1.0 + st.cfg.wear_factor * wear as f64);
        if !forced && unit(base) >= rate {
            return None;
        }
        st.injected[MediaOpKind::Read.index()].fetch_add(1, Ordering::Relaxed);
        let hard = forced || unit(mix64(base ^ 0x5bf0_3635)) < st.cfg.hard_read_rate;
        // Flip counts stay within the SECDED guarantee (≤ ECC_DETECT = 2):
        // three or more simultaneous flips could alias to a valid single-bit
        // syndrome and miscorrect, which would model silent corruption the
        // device cannot promise to catch. Hard events pin the count at 2 —
        // detected but uncorrectable at every rung of the ladder. Soft
        // events draw 1 or 2 raw flips; a 2-flip event is detected at
        // attempt 0 and resolves on the first retry (2 >> 1 = 1, corrected).
        let flips = if hard {
            crate::ecc::ECC_DETECT
        } else {
            1 + (mix64(base ^ 0x93c4_67e3) % u64::from(crate::ecc::ECC_DETECT)) as u32
        };
        Some(ReadFault { flips, hard, ordinal, seed: st.cfg.seed })
    }

    /// Draws the outcome for one page program. Returns `true` when the
    /// program permanently fails (the active block must be retired and the
    /// page remapped).
    pub fn program_fails(&self) -> bool {
        self.permanent_fails(MediaOpKind::Program)
    }

    /// Draws the outcome for one block erase. Returns `true` when the erase
    /// permanently fails (the block must be retired).
    pub fn erase_fails(&self) -> bool {
        self.permanent_fails(MediaOpKind::Erase)
    }

    fn permanent_fails(&self, kind: MediaOpKind) -> bool {
        let Some(st) = &self.state else { return false };
        if st.suspended.load(Ordering::SeqCst) > 0 {
            return false;
        }
        let ordinal = st.ops[kind.index()].fetch_add(1, Ordering::SeqCst) + 1;
        let (rate, forced_at, salt) = match kind {
            MediaOpKind::Program => {
                (st.cfg.program_fail_rate, st.cfg.fail_program_at, 0x1d8e_4e27u64)
            }
            MediaOpKind::Erase => (st.cfg.erase_fail_rate, st.cfg.fail_erase_at, 0xeb44_accau64),
            MediaOpKind::Read => unreachable!("reads use read_fault()"),
        };
        let forced = forced_at != 0 && ordinal == forced_at;
        let draw = unit(mix64(st.cfg.seed ^ salt ^ ordinal.wrapping_mul(0xe703_7ed1_a0b4_28db)));
        let fails = forced || draw < rate;
        if fails {
            st.injected[kind.index()].fetch_add(1, Ordering::Relaxed);
        }
        fails
    }

    /// Suspends injection: until the matching [`MediaFaultPlan::resume`],
    /// every draw returns clean and advances no ordinal. Used while a crash
    /// image is restored — those flash ops already happened before the cut
    /// and must neither fault again nor shift the deterministic sequence.
    /// Nestable (depth-counted).
    pub fn suspend(&self) {
        if let Some(st) = &self.state {
            st.suspended.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Re-arms injection after a [`MediaFaultPlan::suspend`].
    pub fn resume(&self) {
        if let Some(st) = &self.state {
            let prev = st.suspended.fetch_sub(1, Ordering::SeqCst);
            debug_assert!(prev > 0, "resume() without matching suspend()");
        }
    }

    /// Ops observed of one kind so far.
    pub fn ops_of(&self, kind: MediaOpKind) -> u64 {
        self.state.as_ref().map(|st| st.ops[kind.index()].load(Ordering::SeqCst)).unwrap_or(0)
    }

    /// Faults injected of one kind so far.
    pub fn injected_of(&self, kind: MediaOpKind) -> u64 {
        self.state.as_ref().map(|st| st.injected[kind.index()].load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Total faults injected across all kinds.
    pub fn injected_total(&self) -> u64 {
        MediaOpKind::ALL.iter().map(|&k| self.injected_of(k)).sum()
    }
}

/// Two plans are configuration-equal when armed with the same fault model;
/// runtime counters are ignored (same rationale as [`FaultPlan`]'s
/// `PartialEq`).
impl PartialEq for MediaFaultPlan {
    fn eq(&self, other: &Self) -> bool {
        match (&self.state, &other.state) {
            (None, None) => true,
            (Some(a), Some(b)) => a.cfg == b.cfg,
            _ => false,
        }
    }
}

/// Fail-slow event taxonomy for [`HangFaultPlan`]: the three ways a host
/// command can hang instead of failing cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HangOpKind {
    /// The command completes, but late: extra latency is charged to the
    /// virtual clock before the completion is delivered.
    Stall,
    /// The command executes but its completion is dropped (or the stall never
    /// resolves): the host only learns its fate through a deadline + abort.
    Loss,
    /// The whole lane stops consuming its submission queue until it is reset.
    Wedge,
}

impl HangOpKind {
    /// All kinds, in a stable order (indexable by [`HangOpKind::index`]).
    pub const ALL: [HangOpKind; 3] = [HangOpKind::Stall, HangOpKind::Loss, HangOpKind::Wedge];

    /// Stable index of this kind into per-kind counter arrays.
    pub fn index(self) -> usize {
        match self {
            HangOpKind::Stall => 0,
            HangOpKind::Loss => 1,
            HangOpKind::Wedge => 2,
        }
    }

    /// Short label used in reports, e.g. `"stall"`.
    pub fn label(self) -> &'static str {
        match self {
            HangOpKind::Stall => "stall",
            HangOpKind::Loss => "loss",
            HangOpKind::Wedge => "wedge",
        }
    }
}

impl std::fmt::Display for HangOpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Configuration of a [`HangFaultPlan`]: per-command-group hang rates plus
/// exact group ordinals for bit-exact reproduction of a specific hang.
///
/// All rates are probabilities in `[0, 1]` drawn deterministically from
/// `seed` and the command-group ordinal, so the same seed over the same
/// submission stream injects the same hangs (pinned by the crashkit hang
/// determinism test). The `hang_*_at` fields are 1-based group ordinals that
/// force that fault at exactly that group regardless of the rates; `0` means
/// "never".
#[derive(Debug, Clone, PartialEq)]
pub struct HangFaultConfig {
    /// PRNG seed; every injection decision derives from it.
    pub seed: u64,
    /// Per-group probability of a stall (bounded or unbounded extra latency).
    pub stall_rate: f64,
    /// Minimum bounded-stall duration in virtual nanoseconds.
    pub stall_min_ns: u64,
    /// Maximum bounded-stall duration in virtual nanoseconds.
    pub stall_max_ns: u64,
    /// Probability that a drawn stall is *unbounded*: the completion never
    /// arrives on its own and the command resolves only through abort.
    pub unbounded_stall_rate: f64,
    /// Per-group probability that the group executes but its completion is
    /// dropped.
    pub loss_rate: f64,
    /// Per-group probability that the lane wedges (stops consuming its
    /// submission queue until reset).
    pub wedge_rate: f64,
    /// Force a (bounded) stall at this 1-based group ordinal.
    pub hang_stall_at: u64,
    /// Force a lost completion at this 1-based group ordinal.
    pub hang_loss_at: u64,
    /// Force a lane wedge at this 1-based group ordinal.
    pub hang_wedge_at: u64,
}

impl Default for HangFaultConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            stall_rate: 0.0,
            stall_min_ns: 100_000,
            stall_max_ns: 5_000_000,
            unbounded_stall_rate: 0.0,
            loss_rate: 0.0,
            wedge_rate: 0.0,
            hang_stall_at: 0,
            hang_loss_at: 0,
            hang_wedge_at: 0,
        }
    }
}

/// The fail-slow event drawn for one command group about to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HangFault {
    /// Stall the group. `extra_ns` is the bounded extra virtual latency, or
    /// `None` for an unbounded stall that only an abort resolves.
    Stall {
        /// Bounded extra delay, or `None` when the stall never resolves.
        extra_ns: Option<u64>,
    },
    /// Execute the group but drop its completion(s).
    Loss,
    /// Wedge the lane: the group (and everything behind it) stays in the
    /// submission queue until a lane reset.
    Wedge,
}

/// Shared mutable state of a hang plan (see [`FaultState`] for the sharing
/// rationale: config clones share one counter sequence per device).
#[derive(Debug)]
struct HangState {
    cfg: HangFaultConfig,
    /// Command-group ordinal: one draw per group execution attempt.
    ops: AtomicU64,
    /// Per-kind injected hang counts, indexed by [`HangOpKind::index`].
    injected: [AtomicU64; 3],
    /// Suspension depth: while non-zero every draw returns clean *without*
    /// advancing the ordinal, so recovery replay neither hangs nor perturbs
    /// the deterministic sequence.
    suspended: AtomicU64,
}

/// Seeded, deterministic fail-slow injection, carried inside
/// [`crate::MssdConfig::hang`]: command stalls (bounded or unbounded under
/// the virtual clock), lost completions, and whole-lane wedges.
///
/// Mirrors [`MediaFaultPlan`]'s sharing model: cloning the plan shares the
/// group counter, so every queue of one device draws from the same
/// deterministic sequence. The disabled default costs one `Option` check per
/// command group. Determinism has the same caveat as [`FaultPlan`]: it is
/// exact for single-threaded hosts with background cleaning off.
#[derive(Debug, Clone, Default)]
pub struct HangFaultPlan {
    state: Option<Arc<HangState>>,
}

impl HangFaultPlan {
    /// A plan that injects nothing (zero-cost default).
    pub fn disabled() -> Self {
        Self { state: None }
    }

    /// A plan armed with the given hang model.
    pub fn new(cfg: HangFaultConfig) -> Self {
        Self {
            state: Some(Arc::new(HangState {
                cfg,
                ops: AtomicU64::new(0),
                injected: Default::default(),
                suspended: AtomicU64::new(0),
            })),
        }
    }

    /// Convenience: rate-based plan with default stall bounds and no forced
    /// ordinals.
    pub fn rates(seed: u64, stall: f64, loss: f64, wedge: f64) -> Self {
        Self::new(HangFaultConfig {
            seed,
            stall_rate: stall,
            loss_rate: loss,
            wedge_rate: wedge,
            ..Default::default()
        })
    }

    /// Whether any injection is armed. When `false`, queues skip the draw
    /// entirely (fault-free configurations pay nothing).
    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    /// Draws the fail-slow outcome for one command group about to execute.
    /// Advances the group ordinal; retries of the same group draw again (a
    /// resubmitted command is a new submission as far as the host can tell).
    /// Returns `None` when the group proceeds normally.
    ///
    /// Wedge dominates loss dominates stall: a wedge stops the lane outright,
    /// so drawing the weaker faults for the same group would be unobservable.
    pub fn command_fault(&self) -> Option<HangFault> {
        let st = self.state.as_ref()?;
        if st.suspended.load(Ordering::SeqCst) > 0 {
            return None;
        }
        let ordinal = st.ops.fetch_add(1, Ordering::SeqCst) + 1;
        let base = mix64(st.cfg.seed ^ ordinal.wrapping_mul(0x2545_f491_4f6c_dd1d));
        let forced_wedge = st.cfg.hang_wedge_at != 0 && ordinal == st.cfg.hang_wedge_at;
        if forced_wedge || unit(mix64(base ^ 0x7a3d_90e4)) < st.cfg.wedge_rate {
            st.injected[HangOpKind::Wedge.index()].fetch_add(1, Ordering::Relaxed);
            return Some(HangFault::Wedge);
        }
        let forced_loss = st.cfg.hang_loss_at != 0 && ordinal == st.cfg.hang_loss_at;
        if forced_loss || unit(mix64(base ^ 0x41c6_4e6d)) < st.cfg.loss_rate {
            st.injected[HangOpKind::Loss.index()].fetch_add(1, Ordering::Relaxed);
            return Some(HangFault::Loss);
        }
        let forced_stall = st.cfg.hang_stall_at != 0 && ordinal == st.cfg.hang_stall_at;
        if forced_stall || unit(mix64(base ^ 0x9e91_26bf)) < st.cfg.stall_rate {
            st.injected[HangOpKind::Stall.index()].fetch_add(1, Ordering::Relaxed);
            // Forced stalls are bounded: the repro hook exists to pin a
            // specific late completion, not an abort path.
            let unbounded =
                !forced_stall && unit(mix64(base ^ 0x2f61_3b27)) < st.cfg.unbounded_stall_rate;
            if unbounded {
                return Some(HangFault::Stall { extra_ns: None });
            }
            let span = st.cfg.stall_max_ns.saturating_sub(st.cfg.stall_min_ns);
            let extra = st.cfg.stall_min_ns.saturating_add(if span > 0 {
                mix64(base ^ 0x5851_f42d) % (span + 1)
            } else {
                0
            });
            return Some(HangFault::Stall { extra_ns: Some(extra) });
        }
        None
    }

    /// Suspends injection: until the matching [`HangFaultPlan::resume`],
    /// every draw returns clean and advances no ordinal. Used while a crash
    /// image is restored / recovery replays, which must neither hang nor
    /// shift the deterministic sequence. Nestable (depth-counted).
    pub fn suspend(&self) {
        if let Some(st) = &self.state {
            st.suspended.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Re-arms injection after a [`HangFaultPlan::suspend`].
    pub fn resume(&self) {
        if let Some(st) = &self.state {
            let prev = st.suspended.fetch_sub(1, Ordering::SeqCst);
            debug_assert!(prev > 0, "resume() without matching suspend()");
        }
    }

    /// Command groups observed so far.
    pub fn ops_total(&self) -> u64 {
        self.state.as_ref().map(|st| st.ops.load(Ordering::SeqCst)).unwrap_or(0)
    }

    /// Hangs injected of one kind so far.
    pub fn injected_of(&self, kind: HangOpKind) -> u64 {
        self.state.as_ref().map(|st| st.injected[kind.index()].load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Total hangs injected across all kinds.
    pub fn injected_total(&self) -> u64 {
        HangOpKind::ALL.iter().map(|&k| self.injected_of(k)).sum()
    }
}

/// Two plans are configuration-equal when armed with the same hang model;
/// runtime counters are ignored (same rationale as [`FaultPlan`]'s
/// `PartialEq`).
impl PartialEq for HangFaultPlan {
    fn eq(&self, other: &Self) -> bool {
        match (&self.state, &other.state) {
            (None, None) => true,
            (Some(a), Some(b)) => a.cfg == b.cfg,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_always_proceeds() {
        let p = FaultPlan::disabled();
        for _ in 0..100 {
            assert!(p.step(FaultKind::LogAppend));
        }
        assert!(!p.is_cut());
        assert_eq!(p.total_steps(), 0);
        assert_eq!(p.cut_kind(), None);
    }

    #[test]
    fn count_only_counts_without_cutting() {
        let p = FaultPlan::count_only();
        for _ in 0..5 {
            assert!(p.step(FaultKind::FlashProgram));
        }
        assert!(p.step(FaultKind::TxCommit));
        assert_eq!(p.total_steps(), 6);
        assert_eq!(p.steps_of(FaultKind::FlashProgram), 5);
        assert_eq!(p.steps_of(FaultKind::TxCommit), 1);
        assert!(!p.is_cut());
    }

    #[test]
    fn cut_denies_the_chosen_step_and_everything_after() {
        let p = FaultPlan::cut_at(3);
        assert!(p.step(FaultKind::LogAppend));
        assert!(p.step(FaultKind::LogAppend));
        assert!(!p.is_cut());
        assert!(!p.step(FaultKind::TxCommit), "the cut step itself is denied");
        assert!(p.is_cut());
        assert!(!p.step(FaultKind::LogAppend), "power stays off");
        assert_eq!(p.cut_kind(), Some(FaultKind::TxCommit));
        assert_eq!(p.cut_point(), Some(3));
    }

    #[test]
    fn clones_share_the_counter() {
        let p = FaultPlan::cut_at(2);
        let q = p.clone();
        assert!(p.step(FaultKind::BufferWrite));
        assert!(!q.step(FaultKind::BufferWrite));
        assert!(p.is_cut() && q.is_cut());
    }

    #[test]
    fn config_equality_ignores_runtime_state() {
        let a = FaultPlan::cut_at(7);
        let b = FaultPlan::cut_at(7);
        a.step(FaultKind::LogAppend);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::disabled());
        assert_ne!(FaultPlan::count_only(), FaultPlan::cut_at(1));
        assert_eq!(FaultPlan::disabled(), FaultPlan::default());
    }

    #[test]
    fn kind_indices_are_stable_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for kind in FaultKind::ALL {
            assert!(seen.insert(kind.index()));
            assert_eq!(FaultKind::ALL[kind.index()], kind);
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn disabled_media_plan_injects_nothing() {
        let p = MediaFaultPlan::disabled();
        for _ in 0..100 {
            assert!(p.read_fault(5).is_none());
            assert!(!p.program_fails());
            assert!(!p.erase_fails());
        }
        assert_eq!(p.ops_of(MediaOpKind::Read), 0);
        assert_eq!(p.injected_total(), 0);
        assert!(!p.is_enabled());
    }

    #[test]
    fn media_plan_is_deterministic_per_seed() {
        let run = |seed| {
            let p = MediaFaultPlan::rates(seed, 0.3, 0.1, 0.1);
            let reads: Vec<_> = (0..200)
                .map(|i| p.read_fault(i % 7).map(|f| (f.flips, f.hard, f.ordinal)))
                .collect();
            let progs: Vec<bool> = (0..100).map(|_| p.program_fails()).collect();
            let erases: Vec<bool> = (0..100).map(|_| p.erase_fails()).collect();
            (reads, progs, erases, p.injected_total())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should differ");
        let (_, _, _, injected) = run(42);
        assert!(injected > 0, "rates this high must inject something");
    }

    #[test]
    fn exact_index_triggers_fire_exactly_once() {
        let p = MediaFaultPlan::new(MediaFaultConfig {
            seed: 9,
            fail_read_at: 3,
            fail_program_at: 2,
            fail_erase_at: 1,
            ..Default::default()
        });
        assert!(p.read_fault(0).is_none());
        assert!(p.read_fault(0).is_none());
        let f = p.read_fault(0).expect("forced at ordinal 3");
        assert!(f.hard, "forced read faults are hard");
        assert!(p.read_fault(0).is_none());
        assert!(!p.program_fails());
        assert!(p.program_fails());
        assert!(!p.program_fails());
        assert!(p.erase_fails());
        assert!(!p.erase_fails());
        assert_eq!(p.injected_total(), 3);
    }

    #[test]
    fn read_fault_ladder_halves_soft_flips_and_pins_hard_ones() {
        let soft = ReadFault { flips: 6, hard: false, ordinal: 1, seed: 1 };
        assert_eq!(
            (0..4).map(|a| soft.flips_at(a)).collect::<Vec<_>>(),
            vec![6, 3, 1, 0],
            "soft events decay to within ECC reach"
        );
        let hard = ReadFault { flips: 2, hard: true, ordinal: 1, seed: 1 };
        assert!((0..8).all(|a| hard.flips_at(a) == 2), "hard events never improve");
    }

    #[test]
    fn flip_positions_are_distinct_in_range_and_reproducible() {
        let f = ReadFault { flips: 6, hard: false, ordinal: 77, seed: 1234 };
        for attempt in 0..3 {
            let a = f.flip_positions(attempt, 4096 * 8);
            let b = f.flip_positions(attempt, 4096 * 8);
            assert_eq!(a, b);
            assert_eq!(a.len(), f.flips_at(attempt) as usize);
            let mut dedup = a.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), a.len(), "positions must be distinct");
            assert!(a.iter().all(|&p| p < 4096 * 8));
        }
        assert_ne!(
            f.flip_positions(0, 4096 * 8),
            f.flip_positions(1, 4096 * 8),
            "retries re-read different raw noise"
        );
    }

    #[test]
    fn wear_scales_read_error_rate() {
        let injected_at = |wear: u64| {
            let p = MediaFaultPlan::new(MediaFaultConfig {
                seed: 5,
                read_error_rate: 0.02,
                wear_factor: 1.0,
                ..Default::default()
            });
            for _ in 0..2000 {
                p.read_fault(wear);
            }
            p.injected_of(MediaOpKind::Read)
        };
        assert!(
            injected_at(40) > injected_at(0) * 2,
            "worn blocks must see markedly more read faults"
        );
    }

    #[test]
    fn media_config_equality_ignores_runtime_state() {
        let a = MediaFaultPlan::rates(3, 0.1, 0.0, 0.0);
        let b = MediaFaultPlan::rates(3, 0.1, 0.0, 0.0);
        a.read_fault(0);
        assert_eq!(a, b);
        assert_ne!(a, MediaFaultPlan::rates(4, 0.1, 0.0, 0.0));
        assert_ne!(a, MediaFaultPlan::disabled());
        assert_eq!(MediaFaultPlan::disabled(), MediaFaultPlan::default());
    }

    #[test]
    fn suspended_media_plan_draws_clean_without_advancing_ordinals() {
        // Every op faults when live; none fault and none count while
        // suspended; the ordinal sequence continues as if the suspended
        // window never happened.
        let p = MediaFaultPlan::rates(7, 1.0, 1.0, 1.0);
        assert!(p.read_fault(0).is_some());
        assert!(p.program_fails());
        p.suspend();
        p.suspend(); // nests
        assert!(p.read_fault(0).is_none());
        assert!(!p.program_fails());
        assert!(!p.erase_fails());
        p.resume();
        assert!(p.read_fault(0).is_none());
        p.resume();
        assert_eq!(p.ops_of(MediaOpKind::Read), 1);
        assert_eq!(p.ops_of(MediaOpKind::Program), 1);
        assert_eq!(p.ops_of(MediaOpKind::Erase), 0);
        let f = p.read_fault(0).expect("rate 1.0 always faults");
        assert_eq!(f.ordinal, 2);
        assert!(p.erase_fails());
        // Injected: the two pre-suspend draws, the post-resume read, the
        // erase — and nothing from the suspended window.
        assert_eq!(p.injected_total(), 4);
    }

    #[test]
    fn disabled_hang_plan_injects_nothing() {
        let p = HangFaultPlan::disabled();
        for _ in 0..100 {
            assert_eq!(p.command_fault(), None);
        }
        assert_eq!(p.ops_total(), 0);
        assert_eq!(p.injected_total(), 0);
        assert!(!p.is_enabled());
    }

    #[test]
    fn hang_plan_is_deterministic_per_seed() {
        let run = |seed| {
            let p = HangFaultPlan::rates(seed, 0.2, 0.1, 0.05);
            let draws: Vec<_> = (0..300).map(|_| p.command_fault()).collect();
            (draws, p.injected_total())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should differ");
        let (_, injected) = run(42);
        assert!(injected > 0, "rates this high must inject something");
    }

    #[test]
    fn forced_hang_ordinals_fire_exactly_once() {
        let p = HangFaultPlan::new(HangFaultConfig {
            seed: 9,
            hang_stall_at: 3,
            hang_loss_at: 2,
            hang_wedge_at: 1,
            ..Default::default()
        });
        assert_eq!(p.command_fault(), Some(HangFault::Wedge));
        assert_eq!(p.command_fault(), Some(HangFault::Loss));
        let stall = p.command_fault().expect("forced stall at ordinal 3");
        assert!(
            matches!(stall, HangFault::Stall { extra_ns: Some(_) }),
            "forced stalls are bounded, got {stall:?}"
        );
        assert_eq!(p.command_fault(), None);
        assert_eq!(p.injected_total(), 3);
        assert_eq!(p.injected_of(HangOpKind::Stall), 1);
        assert_eq!(p.injected_of(HangOpKind::Loss), 1);
        assert_eq!(p.injected_of(HangOpKind::Wedge), 1);
    }

    #[test]
    fn stall_durations_stay_in_bounds() {
        let p = HangFaultPlan::new(HangFaultConfig {
            seed: 11,
            stall_rate: 1.0,
            stall_min_ns: 500,
            stall_max_ns: 900,
            ..Default::default()
        });
        for _ in 0..200 {
            match p.command_fault() {
                Some(HangFault::Stall { extra_ns: Some(ns) }) => {
                    assert!((500..=900).contains(&ns), "stall of {ns}ns out of bounds");
                }
                other => panic!("stall rate 1.0 must always stall, got {other:?}"),
            }
        }
    }

    #[test]
    fn unbounded_stall_rate_marks_stalls_open_ended() {
        let p = HangFaultPlan::new(HangFaultConfig {
            seed: 13,
            stall_rate: 1.0,
            unbounded_stall_rate: 1.0,
            ..Default::default()
        });
        assert_eq!(p.command_fault(), Some(HangFault::Stall { extra_ns: None }));
        assert_eq!(p.injected_of(HangOpKind::Stall), 1);
    }

    #[test]
    fn hang_config_equality_ignores_runtime_state() {
        let a = HangFaultPlan::rates(3, 0.1, 0.0, 0.0);
        let b = HangFaultPlan::rates(3, 0.1, 0.0, 0.0);
        a.command_fault();
        assert_eq!(a, b);
        assert_ne!(a, HangFaultPlan::rates(4, 0.1, 0.0, 0.0));
        assert_ne!(a, HangFaultPlan::disabled());
        assert_eq!(HangFaultPlan::disabled(), HangFaultPlan::default());
    }

    #[test]
    fn suspended_hang_plan_draws_clean_without_advancing_ordinals() {
        let p = HangFaultPlan::rates(7, 1.0, 0.0, 0.0);
        assert!(p.command_fault().is_some());
        p.suspend();
        p.suspend(); // nests
        assert_eq!(p.command_fault(), None);
        assert_eq!(p.command_fault(), None);
        p.resume();
        assert_eq!(p.command_fault(), None);
        p.resume();
        assert_eq!(p.ops_total(), 1);
        assert!(p.command_fault().is_some());
        assert_eq!(p.ops_total(), 2);
        assert_eq!(p.injected_total(), 2);
    }
}
