//! Deterministic power-failure injection: the device-side half of `crashkit`.
//!
//! Every **durability-relevant step** the device executes — a write-log chunk
//! append, a TxLog commit record, a sealed-region drain migration, a write
//! buffer acceptance, a NAND page program, a block erase — passes through the
//! [`FaultPlan`] installed in [`crate::MssdConfig::fault`]. The plan counts
//! the steps and, when armed with a cut point, denies the chosen step and
//! every step after it: from that instant the device behaves as if power was
//! lost mid-operation. Mutations that were about to happen simply do not
//! (a multi-page program is torn between pages, a sealed region is left
//! partially drained, a commit record is never appended), while reads keep
//! returning the state that *did* become durable.
//!
//! The default plan is [`FaultPlan::disabled`]: a single `Option` check on
//! the hot path and no other cost, so production configurations are
//! unaffected.
//!
//! Determinism: with `background_cleaning` off and a single-threaded host,
//! the step sequence is a pure function of the op stream, so the same seed
//! and the same cut index always produce the same crash state (pinned by the
//! crashkit determinism tests). With the background cleaner running, cleaner
//! steps interleave with host steps nondeterministically; the cut still
//! lands on *a* valid crash state, but reproduction is only guaranteed for
//! cleaner-off runs.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Taxonomy of durability-relevant steps (see `crates/crashkit/DESIGN.md`
/// for the full crash-point taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A byte-interface chunk appended to the write log (battery-backed DRAM).
    LogAppend,
    /// A commit record appended to the firmware TxLog.
    TxCommit,
    /// One page migrated out of a sealed log region by a cleaner drain step.
    SealDrain,
    /// A block-interface page accepted into the FTL write buffer (the
    /// acknowledgement point of a block write).
    BufferWrite,
    /// A block-interface journal page accepted (same mechanism as
    /// [`FaultKind::BufferWrite`], counted separately because journal commit
    /// protocols are the classic torn-write victims).
    JournalWrite,
    /// A byte-interface chunk absorbed by the baseline device page cache.
    CacheWrite,
    /// One NAND page programmed (host flush, cleaner merge, or GC
    /// relocation). Cutting inside a multi-page program tears it.
    FlashProgram,
    /// One NAND block erased by garbage collection.
    FlashErase,
}

impl FaultKind {
    /// All kinds, in a stable order (indexable by [`FaultKind::index`]).
    pub const ALL: [FaultKind; 8] = [
        FaultKind::LogAppend,
        FaultKind::TxCommit,
        FaultKind::SealDrain,
        FaultKind::BufferWrite,
        FaultKind::JournalWrite,
        FaultKind::CacheWrite,
        FaultKind::FlashProgram,
        FaultKind::FlashErase,
    ];

    /// Stable index of this kind into per-kind counter arrays.
    pub fn index(self) -> usize {
        match self {
            FaultKind::LogAppend => 0,
            FaultKind::TxCommit => 1,
            FaultKind::SealDrain => 2,
            FaultKind::BufferWrite => 3,
            FaultKind::JournalWrite => 4,
            FaultKind::CacheWrite => 5,
            FaultKind::FlashProgram => 6,
            FaultKind::FlashErase => 7,
        }
    }

    /// Short label used in reports, e.g. `"log-append"`.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::LogAppend => "log-append",
            FaultKind::TxCommit => "tx-commit",
            FaultKind::SealDrain => "seal-drain",
            FaultKind::BufferWrite => "buffer-write",
            FaultKind::JournalWrite => "journal-write",
            FaultKind::CacheWrite => "cache-write",
            FaultKind::FlashProgram => "flash-program",
            FaultKind::FlashErase => "flash-erase",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Shared mutable state of an armed plan. Cloning the owning [`FaultPlan`]
/// (which happens whenever an [`crate::MssdConfig`] is cloned into a device
/// component) shares this state, so every component of one device counts
/// into the same sequence.
#[derive(Debug, Default)]
struct FaultState {
    /// The 1-based step ordinal at which power is cut; 0 = count only.
    cut_at: u64,
    /// Total steps observed (including denied post-cut attempts).
    counter: AtomicU64,
    /// Per-kind step counts, indexed by [`FaultKind::index`].
    by_kind: [AtomicU64; 8],
    /// `FaultKind::index() + 1` of the step that tripped the cut (0 = none).
    cut_kind: AtomicUsize,
}

/// A fault-injection plan carried inside [`crate::MssdConfig`].
///
/// * [`FaultPlan::disabled`] (the `Default`) — no counting, no cutting.
/// * [`FaultPlan::count_only`] — counts durability steps; never cuts. Used
///   by the crashkit enumeration driver to size a workload's crash-point
///   space.
/// * [`FaultPlan::cut_at`] — counts and denies the `n`-th step and every
///   step after it (power off).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    state: Option<Arc<FaultState>>,
}

impl FaultPlan {
    /// A plan that observes nothing and never cuts (zero-cost default).
    pub fn disabled() -> Self {
        Self { state: None }
    }

    /// A plan that counts every durability step but never cuts power.
    pub fn count_only() -> Self {
        Self { state: Some(Arc::new(FaultState::default())) }
    }

    /// A plan that cuts power at the `step`-th durability step (1-based):
    /// that step and every later one are denied.
    ///
    /// # Panics
    ///
    /// Panics if `step` is 0 (use [`FaultPlan::count_only`] instead).
    pub fn cut_at(step: u64) -> Self {
        assert!(step > 0, "cut point is 1-based; use count_only() for no cut");
        Self { state: Some(Arc::new(FaultState { cut_at: step, ..Default::default() })) }
    }

    /// Whether this plan observes steps at all.
    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    /// Records one durability-relevant step of the given kind. Returns `true`
    /// when the step may proceed, `false` when power is (now) off and the
    /// mutation must not happen.
    #[inline]
    pub fn step(&self, kind: FaultKind) -> bool {
        let Some(st) = &self.state else { return true };
        let ordinal = st.counter.fetch_add(1, Ordering::SeqCst) + 1;
        st.by_kind[kind.index()].fetch_add(1, Ordering::Relaxed);
        if st.cut_at != 0 && ordinal >= st.cut_at {
            if ordinal == st.cut_at {
                st.cut_kind.store(kind.index() + 1, Ordering::SeqCst);
            }
            return false;
        }
        true
    }

    /// `true` once the cut point has been reached: power is off and no
    /// further durable mutation may happen.
    #[inline]
    pub fn is_cut(&self) -> bool {
        match &self.state {
            Some(st) => st.cut_at != 0 && st.counter.load(Ordering::SeqCst) >= st.cut_at,
            None => false,
        }
    }

    /// Total durability steps observed so far (the size of the crash-point
    /// space once the workload finished; includes denied post-cut attempts).
    pub fn total_steps(&self) -> u64 {
        self.state.as_ref().map(|st| st.counter.load(Ordering::SeqCst)).unwrap_or(0)
    }

    /// Steps observed of one kind.
    pub fn steps_of(&self, kind: FaultKind) -> u64 {
        self.state.as_ref().map(|st| st.by_kind[kind.index()].load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// The armed cut point (1-based), if any.
    pub fn cut_point(&self) -> Option<u64> {
        self.state.as_ref().and_then(|st| (st.cut_at != 0).then_some(st.cut_at))
    }

    /// The kind of the step that tripped the cut (once it has).
    pub fn cut_kind(&self) -> Option<FaultKind> {
        let st = self.state.as_ref()?;
        let idx = st.cut_kind.load(Ordering::SeqCst);
        (idx > 0).then(|| FaultKind::ALL[idx - 1])
    }

    /// Per-kind step counts in [`FaultKind::ALL`] order.
    pub fn histogram(&self) -> [(FaultKind, u64); 8] {
        let mut out = [(FaultKind::LogAppend, 0); 8];
        for (slot, kind) in out.iter_mut().zip(FaultKind::ALL) {
            *slot = (kind, self.steps_of(kind));
        }
        out
    }
}

/// Two plans are configuration-equal when they are armed the same way; the
/// runtime counters are deliberately ignored so a device config compares
/// equal to its clone mid-run.
impl PartialEq for FaultPlan {
    fn eq(&self, other: &Self) -> bool {
        match (&self.state, &other.state) {
            (None, None) => true,
            (Some(a), Some(b)) => a.cut_at == b.cut_at,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_always_proceeds() {
        let p = FaultPlan::disabled();
        for _ in 0..100 {
            assert!(p.step(FaultKind::LogAppend));
        }
        assert!(!p.is_cut());
        assert_eq!(p.total_steps(), 0);
        assert_eq!(p.cut_kind(), None);
    }

    #[test]
    fn count_only_counts_without_cutting() {
        let p = FaultPlan::count_only();
        for _ in 0..5 {
            assert!(p.step(FaultKind::FlashProgram));
        }
        assert!(p.step(FaultKind::TxCommit));
        assert_eq!(p.total_steps(), 6);
        assert_eq!(p.steps_of(FaultKind::FlashProgram), 5);
        assert_eq!(p.steps_of(FaultKind::TxCommit), 1);
        assert!(!p.is_cut());
    }

    #[test]
    fn cut_denies_the_chosen_step_and_everything_after() {
        let p = FaultPlan::cut_at(3);
        assert!(p.step(FaultKind::LogAppend));
        assert!(p.step(FaultKind::LogAppend));
        assert!(!p.is_cut());
        assert!(!p.step(FaultKind::TxCommit), "the cut step itself is denied");
        assert!(p.is_cut());
        assert!(!p.step(FaultKind::LogAppend), "power stays off");
        assert_eq!(p.cut_kind(), Some(FaultKind::TxCommit));
        assert_eq!(p.cut_point(), Some(3));
    }

    #[test]
    fn clones_share_the_counter() {
        let p = FaultPlan::cut_at(2);
        let q = p.clone();
        assert!(p.step(FaultKind::BufferWrite));
        assert!(!q.step(FaultKind::BufferWrite));
        assert!(p.is_cut() && q.is_cut());
    }

    #[test]
    fn config_equality_ignores_runtime_state() {
        let a = FaultPlan::cut_at(7);
        let b = FaultPlan::cut_at(7);
        a.step(FaultKind::LogAppend);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::disabled());
        assert_ne!(FaultPlan::count_only(), FaultPlan::cut_at(1));
        assert_eq!(FaultPlan::disabled(), FaultPlan::default());
    }

    #[test]
    fn kind_indices_are_stable_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for kind in FaultKind::ALL {
            assert!(seen.insert(kind.index()));
            assert_eq!(FaultKind::ALL[kind.index()], kind);
            assert!(!kind.label().is_empty());
        }
    }
}
