//! Async host runtime: a small futures executor plus a reactor that
//! multiplexes thousands of logical clients over a bounded set of
//! [`HostQueue`] pairs.
//!
//! The multi-queue interface ([`crate::queue`]) caps concurrency at one OS
//! thread per SQ/CQ pair: `poll`/`wait` are synchronous, so a host wanting
//! 10k concurrent request streams would burn 10k threads. This module turns
//! command submission into a future — [`Reactor::submit`] /
//! [`Reactor::submit_batch`] resolve to the command's [`Completion`] — and
//! provides the minimal machinery to drive such futures without an external
//! async runtime (the workspace vendors no tokio):
//!
//! * [`Executor`] — a work-queue executor with an optional pool of worker
//!   threads. `workers = 0` is a fully deterministic single-threaded mode
//!   (the [`Executor::block_on`] caller drives everything), which is what
//!   crashkit's enumeration needs.
//! * [`Reactor`] — owns up to [`MAX_LANES`] *lanes*, each wrapping one
//!   [`HostQueue`]. Clients submit to a lane; the reactor rings doorbells,
//!   fans completions out to the registered wakers, and parks submitters
//!   when an SQ is at depth instead of returning
//!   [`QueueFull`](crate::queue::QueueFull).
//!
//! # Waker model
//!
//! Every in-flight batch registers exactly one waker, keyed by its **last**
//! command id: completions are delivered in submission order, so the last id
//! leaving the SQ implies the whole batch is resolvable. Wakers are stored
//! and woken under the lane lock — the same lock a doorbell runs under — so
//! a completion can never race past a registration (no lost wakeups). The
//! executor's idle protocol closes the other half of the race: every thread
//! that marks a lane dirty either services it itself or goes through
//! [`Executor`]'s pump-before-sleep path, so a dirty lane is always pumped
//! by *somebody* before all threads sleep.
//!
//! # Backpressure
//!
//! A full SQ parks the submitter in a FIFO list with a ticket. When
//! completions free capacity, the reactor grants slots to parked tickets
//! strictly in FIFO order (head-of-line: a large batch at the front blocks
//! later small ones rather than being starved by them) and wakes them; a
//! granted ticket has its capacity reserved, so the wakeup cannot lose the
//! race to a fresh submitter. Dropping a parked or granted future releases
//! its ticket and reservation.
//!
//! # Power failure
//!
//! When the device's fault plan trips, every lane latches `powered_off`,
//! wakes everything, and submission futures resolve with a typed
//! [`SubmitError`] instead of hanging: commands whose execution group the
//! cut landed inside report [`SubmitError::CutConsumed`] (effects in doubt —
//! crashkit's oracle treats the bytes as either-old-or-new), commands still
//! in an SQ (or parked, never submitted) report
//! [`SubmitError::CutUnsubmitted`] (no durable effect). Completions that
//! were already delivered before the cut are durable as usual.

use std::collections::{BTreeMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

use crate::device::Mssd;
use crate::fault::mix64;
use crate::queue::{Command, CommandId, Completion, HostQueue, ResetMode, WaitError};
use crate::trace::{self, CtxScope, TraceKind};

/// Maximum number of lanes (queue pairs) one [`Reactor`] multiplexes; bounded
/// by the width of the dirty-lane bitmask.
pub const MAX_LANES: usize = 64;

/// Default per-command deadline the reactor arms at SQ submission (virtual
/// nanoseconds): generous against the worst injectable bounded stall, tiny
/// against a real hang. Override with [`Reactor::set_command_timeout_ns`].
pub const DEFAULT_COMMAND_TIMEOUT_NS: u64 = 10_000_000;

/// How many requeue-resets the lane watchdog attempts before giving up on a
/// lane that wedges again immediately and failing its commands fast.
const MAX_WEDGE_RESETS: u32 = 8;

/// Capped exponential backoff with seeded, deterministic jitter — the one
/// retry schedule shared by every host-side retry loop (the reactor's
/// [`Reactor::submit_with_retry`] and `workloads`' concurrent driver), so a
/// single seed fixes the complete retry timeline of a run.
///
/// Delays are **virtual-clock** nanoseconds: a backoff charges
/// [`crate::Clock::advance`], never a wall-clock sleep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Seed for the jitter draws.
    pub seed: u64,
    /// Delay before the first retry (attempt 0), in virtual ns.
    pub base_delay_ns: u64,
    /// Cap on any single backoff delay, in virtual ns.
    pub max_delay_ns: u64,
    /// Retries after the initial attempt before the error is surfaced.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    /// 100 µs doubling to a 10 ms cap, up to 8 retries, seed 1.
    fn default() -> Self {
        Self { seed: 1, base_delay_ns: 100_000, max_delay_ns: 10_000_000, max_retries: 8 }
    }
}

impl RetryPolicy {
    /// The same schedule under a different jitter seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The virtual-ns delay before retry number `attempt` (0-based) of the
    /// actor identified by `key` (client index, thread id, …): exponential
    /// from [`base_delay_ns`](Self::base_delay_ns), capped at
    /// [`max_delay_ns`](Self::max_delay_ns), jittered into the upper half of
    /// the window so concurrent retriers decorrelate. Pure function of
    /// `(seed, key, attempt)`.
    pub fn backoff_ns(&self, key: u64, attempt: u32) -> u64 {
        let exp = self
            .base_delay_ns
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.max_delay_ns.max(self.base_delay_ns));
        if exp == 0 {
            return 0;
        }
        let half = exp / 2;
        let r = mix64(
            self.seed ^ key.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ ((u64::from(attempt) + 1) << 40),
        );
        half + r % (exp - half + 1)
    }
}

/// How a power cut resolved an awaited command (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The cut landed inside the command's (possibly coalesced) execution
    /// group: the device consumed it but delivered no completion. Its
    /// effects are in doubt.
    CutConsumed,
    /// Power failed before the command was consumed — it was parked or
    /// still in the SQ. It has no durable effect.
    CutUnsubmitted,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SubmitError::CutConsumed => "power cut consumed the command: effects in doubt",
            SubmitError::CutUnsubmitted => "power cut before the command executed",
        })
    }
}

impl std::error::Error for SubmitError {}

/// An event source the [`Executor`] drives when it runs out of ready tasks.
/// The only implementor in-tree is [`Reactor`], but keeping the trait small
/// lets tests plug in synthetic sources.
pub trait Pump: Send + Sync {
    /// Services pending events, delivering wakeups. Returns how many wakers
    /// were woken (0 = nothing to do).
    fn pump(&self) -> usize;
    /// Whether unserviced events exist. Checked under the executor's sleep
    /// lock so a racing event keeps the executor awake.
    fn pending(&self) -> bool;
    /// Called each time the executor's 5 ms safety-net sleep expires on its
    /// own (rather than being notified): `productive` says whether the
    /// expiry found real work (ready tasks or pending pump events), i.e.
    /// whether the net actually caught a raced wakeup. Default: ignore.
    /// [`Reactor`] forwards the split into the device's
    /// `exec_productive_wakeups` / `exec_spurious_wakeups` counters so the
    /// safety net's activity is observable instead of silent.
    fn note_safety_wakeup(&self, productive: bool) {
        let _ = productive;
    }
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

struct ExecInner {
    ready: Mutex<VecDeque<Arc<Task>>>,
    cv: Condvar,
    shutdown: AtomicBool,
    pumps: Mutex<Vec<Arc<dyn Pump>>>,
}

impl ExecInner {
    fn pump_all(&self) -> usize {
        let pumps = self.pumps.lock().expect("pump registry").clone();
        pumps.iter().map(|p| p.pump()).sum()
    }

    fn pumps_pending(&self) -> bool {
        self.pumps.lock().expect("pump registry").iter().any(|p| p.pending())
    }

    fn note_safety_wakeup(&self, productive: bool) {
        for p in self.pumps.lock().expect("pump registry").iter() {
            p.note_safety_wakeup(productive);
        }
    }
}

struct Task {
    future: Mutex<Option<Pin<Box<dyn Future<Output = ()> + Send>>>>,
    exec: Weak<ExecInner>,
    /// Wakeup dedup: set while the task sits in the ready queue.
    queued: AtomicBool,
}

impl Task {
    fn run(self: &Arc<Self>) {
        self.queued.store(false, Ordering::Release);
        let mut slot = self.future.lock().expect("task future");
        let Some(fut) = slot.as_mut() else { return };
        let waker = Waker::from(Arc::clone(self));
        let mut cx = Context::from_waker(&waker);
        if fut.as_mut().poll(&mut cx).is_ready() {
            *slot = None;
        }
    }
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        if self.queued.swap(true, Ordering::AcqRel) {
            return; // already queued
        }
        if let Some(inner) = self.exec.upgrade() {
            inner.ready.lock().expect("ready queue").push_back(self);
            inner.cv.notify_all();
        }
    }
}

/// Joins worker threads when the last [`Executor`] clone drops.
struct WorkerSet {
    inner: Arc<ExecInner>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Drop for WorkerSet {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        {
            let _g = self.inner.ready.lock().expect("ready queue");
            self.inner.cv.notify_all();
        }
        for h in self.handles.lock().expect("worker handles").drain(..) {
            let _ = h.join();
        }
    }
}

/// A small futures executor: FIFO ready queue, optional worker threads, and
/// registered [`Pump`]s it drives when idle. Cloning shares the executor;
/// worker threads stop when the last clone drops.
#[derive(Clone)]
pub struct Executor {
    inner: Arc<ExecInner>,
    _workers: Arc<WorkerSet>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("ready", &self.inner.ready.lock().expect("ready queue").len())
            .finish()
    }
}

impl Executor {
    /// Creates an executor with `workers` background threads. `workers = 0`
    /// spawns none: tasks then only run inside [`block_on`](Self::block_on)
    /// on the calling thread, which makes execution fully deterministic
    /// (crashkit depends on this mode).
    pub fn new(workers: usize) -> Self {
        let inner = Arc::new(ExecInner {
            ready: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            pumps: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let inner = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("mssd-exec-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn executor worker"),
            );
        }
        let workers =
            Arc::new(WorkerSet { inner: Arc::clone(&inner), handles: Mutex::new(handles) });
        Self { inner, _workers: workers }
    }

    /// Registers an event source the executor pumps when it has no ready
    /// tasks (and before any thread sleeps).
    pub fn register_pump(&self, pump: Arc<dyn Pump>) {
        self.inner.pumps.lock().expect("pump registry").push(pump);
    }

    /// Spawns a task, returning a [`JoinHandle`] future for its output.
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let shared =
            Arc::new(JoinShared { slot: Mutex::new(JoinSlot { result: None, waker: None }) });
        let s2 = Arc::clone(&shared);
        let task = Arc::new(Task {
            future: Mutex::new(Some(Box::pin(async move {
                let out = fut.await;
                let waker = {
                    let mut slot = s2.slot.lock().expect("join slot");
                    slot.result = Some(out);
                    slot.waker.take()
                };
                if let Some(w) = waker {
                    w.wake();
                }
            }))),
            exec: Arc::downgrade(&self.inner),
            queued: AtomicBool::new(false),
        });
        Wake::wake(task);
        JoinHandle { shared }
    }

    /// Runs `fut` to completion on the calling thread, driving spawned tasks
    /// and registered pumps in between polls. This is the sync↔async bridge:
    /// the caller's thread doubles as an executor worker until `fut`
    /// resolves.
    pub fn block_on<F: Future>(&self, fut: F) -> F::Output {
        struct RootWake {
            inner: Weak<ExecInner>,
            woken: AtomicBool,
        }
        impl Wake for RootWake {
            fn wake(self: Arc<Self>) {
                self.wake_by_ref();
            }
            fn wake_by_ref(self: &Arc<Self>) {
                self.woken.store(true, Ordering::Release);
                if let Some(inner) = self.inner.upgrade() {
                    let _g = inner.ready.lock().expect("ready queue");
                    inner.cv.notify_all();
                }
            }
        }
        let root =
            Arc::new(RootWake { inner: Arc::downgrade(&self.inner), woken: AtomicBool::new(true) });
        let waker = Waker::from(Arc::clone(&root));
        let mut cx = Context::from_waker(&waker);
        let mut fut = std::pin::pin!(fut);
        loop {
            if root.woken.swap(false, Ordering::AcqRel) {
                if let Poll::Ready(v) = fut.as_mut().poll(&mut cx) {
                    return v;
                }
            }
            let task = self.inner.ready.lock().expect("ready queue").pop_front();
            if let Some(t) = task {
                t.run();
                continue;
            }
            if self.inner.pump_all() > 0 || root.woken.load(Ordering::Acquire) {
                continue;
            }
            let guard = self.inner.ready.lock().expect("ready queue");
            if guard.is_empty()
                && !root.woken.load(Ordering::Acquire)
                && !self.inner.pumps_pending()
            {
                // The timeout is a safety net against wakeups raced from
                // threads outside the runtime; the pump-before-sleep
                // protocol makes it unnecessary in steady state.
                let (guard, timeout) = self
                    .inner
                    .cv
                    .wait_timeout(guard, Duration::from_millis(5))
                    .expect("executor condvar");
                if timeout.timed_out() {
                    let productive = !guard.is_empty()
                        || root.woken.load(Ordering::Acquire)
                        || self.inner.pumps_pending();
                    drop(guard);
                    self.inner.note_safety_wakeup(productive);
                }
            }
        }
    }
}

fn worker_loop(inner: &Arc<ExecInner>) {
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        let task = inner.ready.lock().expect("ready queue").pop_front();
        if let Some(t) = task {
            t.run();
            continue;
        }
        if inner.pump_all() > 0 {
            continue;
        }
        let guard = inner.ready.lock().expect("ready queue");
        if guard.is_empty() && !inner.shutdown.load(Ordering::Acquire) && !inner.pumps_pending() {
            let (guard, timeout) =
                inner.cv.wait_timeout(guard, Duration::from_millis(5)).expect("executor condvar");
            if timeout.timed_out() {
                let productive = !guard.is_empty() || inner.pumps_pending();
                drop(guard);
                inner.note_safety_wakeup(productive);
            }
        }
    }
}

struct JoinSlot<T> {
    result: Option<T>,
    waker: Option<Waker>,
}

struct JoinShared<T> {
    slot: Mutex<JoinSlot<T>>,
}

/// Future for a spawned task's output (returned by [`Executor::spawn`]).
pub struct JoinHandle<T> {
    shared: Arc<JoinShared<T>>,
}

impl<T> JoinHandle<T> {
    /// Whether the task has finished (its output may already be taken).
    pub fn is_finished(&self) -> bool {
        self.shared.slot.lock().expect("join slot").result.is_some()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut slot = self.shared.slot.lock().expect("join slot");
        if let Some(v) = slot.result.take() {
            return Poll::Ready(v);
        }
        slot.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// Cooperatively yields once: resolves on its second poll, re-queueing the
/// task behind everything already ready (FIFO fairness).
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
#[derive(Debug)]
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Reactor
// ---------------------------------------------------------------------------

struct ParkedTicket {
    ticket: u64,
    need: usize,
    waker: Waker,
}

struct Lane {
    hq: HostQueue,
    /// In-flight batches awaiting completion, keyed by last command id.
    waiting: BTreeMap<u64, Waker>,
    /// Submitters parked on a full SQ, FIFO.
    parked: VecDeque<ParkedTicket>,
    /// Capacity reservations handed to woken parked submitters
    /// (ticket → slots), so a wakeup cannot lose its slot to a fresh
    /// submitter.
    granted: BTreeMap<u64, usize>,
    granted_slots: usize,
    next_ticket: u64,
    powered_off: bool,
}

/// Multiplexes async command submission over a fixed set of [`HostQueue`]
/// lanes. Implements [`Pump`] so an [`Executor`] drives it when idle; see
/// the module docs for the waker, backpressure and power-cut contracts.
pub struct Reactor {
    dev: Arc<Mssd>,
    lanes: Vec<Mutex<Lane>>,
    /// Bit i set = lane i has unserviced submissions; cleared by
    /// [`pump`](Pump::pump).
    dirty: AtomicU64,
    /// Bit i set = lane i wedged at least once and was reset by the
    /// watchdog: [`lane_for`](Reactor::lane_for) steers new clients away.
    quarantined: AtomicU64,
    /// Relative deadline armed on every command at SQ submission (virtual
    /// ns); 0 disables deadlines.
    command_timeout_ns: AtomicU64,
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor").field("lanes", &self.lanes.len()).finish()
    }
}

impl Reactor {
    /// Creates a reactor with `lanes` queue pairs of the given SQ depth.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or exceeds [`MAX_LANES`], or `depth` is
    /// zero.
    pub fn new(dev: &Arc<Mssd>, lanes: usize, depth: usize) -> Arc<Self> {
        assert!((1..=MAX_LANES).contains(&lanes), "lanes must be in 1..={MAX_LANES}");
        let lanes = (0..lanes)
            .map(|_| {
                Mutex::new(Lane {
                    hq: dev.open_queue(depth),
                    waiting: BTreeMap::new(),
                    parked: VecDeque::new(),
                    granted: BTreeMap::new(),
                    granted_slots: 0,
                    next_ticket: 0,
                    powered_off: false,
                })
            })
            .collect();
        Arc::new(Self {
            dev: Arc::clone(dev),
            lanes,
            dirty: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            command_timeout_ns: AtomicU64::new(DEFAULT_COMMAND_TIMEOUT_NS),
        })
    }

    /// Number of lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Sets the per-command deadline armed at SQ submission (relative,
    /// virtual ns; 0 disables deadlines). Defaults to
    /// [`DEFAULT_COMMAND_TIMEOUT_NS`].
    pub fn set_command_timeout_ns(&self, timeout_ns: u64) {
        self.command_timeout_ns.store(timeout_ns, Ordering::Release);
    }

    /// Bitmask of lanes quarantined by the watchdog (bit i = lane i).
    pub fn quarantined_lanes(&self) -> u64 {
        self.quarantined.load(Ordering::Acquire)
    }

    /// The lane a logical client should submit to: a stable map of the
    /// client index (keeping each client's commands ordered on one queue),
    /// skipping quarantined lanes. Falls back to the home lane when every
    /// lane is quarantined — a reset lane still works, it has just proven
    /// hang-prone.
    pub fn lane_for(&self, client: usize) -> usize {
        let n = self.lanes.len();
        let home = client % n;
        let q = self.quarantined.load(Ordering::Acquire);
        if q & (1u64 << home) == 0 {
            return home;
        }
        (1..n).map(|off| (home + off) % n).find(|&cand| q & (1u64 << cand) == 0).unwrap_or(home)
    }

    /// Quarantines lane `idx` and publishes the gauge.
    fn quarantine(&self, idx: usize) {
        let prev = self.quarantined.fetch_or(1u64 << idx, Ordering::AcqRel);
        let mask = prev | (1u64 << idx);
        self.dev.stats_ref().set_quarantined_lanes(u64::from(mask.count_ones()));
    }

    /// Lane watchdog: called under the lane lock when a doorbell left the
    /// lane wedged. Models the host timer on the virtual clock — the hang
    /// becomes observable once the earliest armed deadline passes — then
    /// counts the timed-out commands, quarantines the lane, and
    /// requeue-resets it so every outstanding command re-runs (exactly-once
    /// safe: a wedge consumes nothing). A lane that wedges again on every
    /// re-ring is failed fast after [`MAX_WEDGE_RESETS`] attempts, so
    /// submitters get typed `Aborted` completions instead of a bare hang.
    fn recover_wedged_lane(&self, l: &mut Lane, idx: usize) {
        let clock = self.dev.clock();
        let now = clock.now_ns();
        if let Some(dl) = l.hq.next_deadline() {
            if dl > now {
                clock.advance(dl - now);
            }
        }
        for _ in l.hq.expired(clock.now_ns()) {
            self.dev.stats_ref().inc_hang_timeouts();
        }
        self.quarantine(idx);
        for _ in 0..MAX_WEDGE_RESETS {
            l.hq.reset(ResetMode::Requeue);
            if l.hq.pending() > 0 && !self.dev.fault_tripped() {
                l.hq.ring_doorbell();
            }
            if !l.hq.wedged() {
                return;
            }
        }
        l.hq.reset(ResetMode::FailFast);
    }

    /// Submits one command to `lane`, resolving to its completion. Parks
    /// (rather than erroring) while the SQ is full.
    pub fn submit(self: &Arc<Self>, lane: usize, cmd: Command) -> SubmitOne {
        SubmitOne { inner: self.submit_batch(lane, vec![cmd]) }
    }

    /// Submits a batch of commands contiguously to `lane`'s SQ — adjacent
    /// byte writes in the batch coalesce in the doorbell exactly as they
    /// would from a dedicated sync thread. Resolves to one outcome per
    /// command, in order.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or larger than the lane's SQ depth (it
    /// could never be granted capacity).
    pub fn submit_batch(self: &Arc<Self>, lane: usize, cmds: Vec<Command>) -> Submit {
        assert!(!cmds.is_empty(), "empty batch");
        assert!(lane < self.lanes.len(), "lane out of range");
        Submit {
            reactor: Arc::clone(self),
            lane,
            state: SubmitState::Queued { cmds, ticket: None },
        }
    }

    /// Submits `client`'s command with host-level retry: a completion whose
    /// status is transient ([`crate::FlashError::Aborted`] from a hang
    /// timeout or lane reset, or an uncorrectable-read retry) is
    /// resubmitted after a [`RetryPolicy::backoff_ns`] delay charged to the
    /// **virtual** clock, re-routing through [`lane_for`](Self::lane_for)
    /// each attempt so a quarantined lane is left behind. Resolves to the
    /// final outcome plus the number of retries taken (also counted into
    /// the device's `retries` RAS counter). Power-cut errors are returned
    /// immediately — no retry can resolve power loss.
    ///
    /// Retries are at-least-once: an in-doubt abort (`AbortedInDoubt`) may
    /// have executed, so only idempotent commands should ride this path —
    /// every [`Command`] in this crate is (byte/block writes of fixed data,
    /// reads, trim, flush, commit of an already-staged transaction).
    pub fn submit_with_retry(
        self: &Arc<Self>,
        client: usize,
        cmd: Command,
        policy: RetryPolicy,
    ) -> impl Future<Output = (Result<Completion, SubmitError>, u32)> {
        let reactor = Arc::clone(self);
        async move {
            let mut attempt = 0u32;
            loop {
                let lane = reactor.lane_for(client);
                let out = reactor.submit(lane, cmd.clone()).await;
                let transient =
                    matches!(&out, Ok(c) if c.status.as_ref().is_err_and(|e| e.is_transient()));
                if !transient || attempt >= policy.max_retries {
                    return (out, attempt);
                }
                reactor.dev.clock().advance(policy.backoff_ns(client as u64, attempt));
                reactor.dev.stats_ref().inc_retries();
                attempt += 1;
                yield_now().await;
            }
        }
    }

    fn mark_dirty(&self, lane: usize) {
        self.dirty.fetch_or(1u64 << lane, Ordering::AcqRel);
    }

    /// Rings `lane`'s doorbell and fans out wakeups: completion waiters
    /// whose batch left the SQ, then FIFO capacity grants to parked
    /// submitters. On a tripped fault plan, latches `powered_off` and wakes
    /// everything so futures resolve with [`SubmitError`]s instead of
    /// hanging. A doorbell that wedges the lane triggers
    /// [`recover_wedged_lane`](Reactor::recover_wedged_lane) **inside this
    /// call** — the wedge cleared the dirty bit's reason to exist, so no
    /// later pump would come back for it. Must be called with the lane lock
    /// held; `idx` is the lane's index (for the quarantine mask).
    fn service(&self, l: &mut Lane, idx: usize) -> usize {
        let mut wakeups = 0usize;
        if !l.powered_off && l.hq.pending() > 0 {
            l.hq.ring_doorbell();
        }
        let cut = self.dev.fault_tripped();
        if !cut && l.hq.wedged() {
            self.recover_wedged_lane(l, idx);
        }
        let Lane { hq, waiting, parked, granted, granted_slots, powered_off, .. } = l;
        if cut {
            *powered_off = true;
            for (_, w) in std::mem::take(waiting) {
                w.wake();
                wakeups += 1;
            }
            for p in parked.drain(..) {
                p.waker.wake();
                wakeups += 1;
            }
            granted.clear();
            *granted_slots = 0;
            return wakeups;
        }
        waiting.retain(|cid, w| {
            if hq.in_submission(CommandId(*cid)) {
                true
            } else {
                w.wake_by_ref();
                wakeups += 1;
                false
            }
        });
        let sink = self.dev.stats_ref().trace();
        let _s = sink
            .enabled()
            .then(|| CtxScope::enter(trace::ctx().with_queue(hq.id()).with_lane(idx as u16)));
        let mut free = hq.depth().saturating_sub(hq.pending() + *granted_slots);
        while let Some(front) = parked.front() {
            if front.need > free {
                break; // head-of-line: FIFO order beats best-fit
            }
            let p = parked.pop_front().expect("checked front");
            free -= p.need;
            *granted_slots += p.need;
            granted.insert(p.ticket, p.need);
            sink.emit(TraceKind::ReactorWake, p.need as u64, p.ticket);
            p.waker.wake();
            wakeups += 1;
        }
        wakeups
    }
}

impl Pump for Reactor {
    fn pump(&self) -> usize {
        let cut = self.dev.fault_tripped();
        let mask = self.dirty.swap(0, Ordering::AcqRel);
        if mask == 0 && !cut {
            return 0;
        }
        let mut wakeups = 0;
        for (i, lane) in self.lanes.iter().enumerate() {
            if !cut && mask & (1u64 << i) == 0 {
                continue;
            }
            let mut l = lane.lock().expect("lane mutex");
            wakeups += self.service(&mut l, i);
        }
        wakeups
    }

    fn pending(&self) -> bool {
        self.dirty.load(Ordering::Acquire) != 0
    }

    fn note_safety_wakeup(&self, productive: bool) {
        let stats = self.dev.stats_ref();
        if productive {
            stats.inc_exec_productive_wakeups();
        } else {
            stats.inc_exec_spurious_wakeups();
        }
    }
}

enum SubmitState {
    Queued { cmds: Vec<Command>, ticket: Option<u64> },
    InFlight { cids: Vec<u64>, outcomes: Vec<Option<Result<Completion, SubmitError>>> },
    Done,
}

/// Future of a batch submission (see [`Reactor::submit_batch`]): resolves to
/// one `Result<Completion, SubmitError>` per command, in submission order.
/// Dropping it before completion releases its parked ticket or capacity
/// grant; completions of an abandoned in-flight batch are discarded.
pub struct Submit {
    reactor: Arc<Reactor>,
    lane: usize,
    state: SubmitState,
}

impl Submit {
    /// Resolves every outcome it can; returns `Ready` when all are in.
    /// Call with the lane lock held.
    fn poll_inflight(
        reactor: &Reactor,
        state: &mut SubmitState,
        l: &mut Lane,
        cx: &mut Context<'_>,
    ) -> Poll<Vec<Result<Completion, SubmitError>>> {
        let SubmitState::InFlight { cids, outcomes } = state else {
            unreachable!("poll_inflight on non-inflight state")
        };
        let mut all = true;
        for (i, cid) in cids.iter().enumerate() {
            if outcomes[i].is_some() {
                continue;
            }
            // Fast path: batches are woken in CQ order, so this batch's
            // completions usually sit right at the CQ front — pop them off
            // in O(1) instead of binary-searching every id.
            if l.hq.peek().is_some_and(|c| c.id.0 == *cid) {
                outcomes[i] = Some(Ok(l.hq.poll().expect("peeked front")));
                continue;
            }
            match l.hq.try_complete(CommandId(*cid)) {
                Ok(Some(c)) => outcomes[i] = Some(Ok(c)),
                Ok(None) => {
                    if l.powered_off {
                        outcomes[i] = Some(Err(SubmitError::CutUnsubmitted));
                    } else {
                        all = false;
                    }
                }
                Err(WaitError::PowerCutConsumed) => {
                    outcomes[i] = Some(Err(SubmitError::CutConsumed));
                }
                Err(WaitError::CompletionLost) if l.powered_off => {
                    // The device consumed the command, the completion never
                    // arrived, and then power failed: indistinguishable from
                    // a cut inside the group.
                    outcomes[i] = Some(Err(SubmitError::CutConsumed));
                }
                Err(WaitError::CompletionLost) => {
                    // The device consumed the command but its completion
                    // will never arrive (dropped completion or unbounded
                    // stall). Model the host timer: wait out the command's
                    // deadline on the virtual clock, then abort — the typed
                    // `Aborted` completion flows back so callers can retry.
                    let clock = reactor.dev.clock();
                    if let Some(dl) = l.hq.deadline_of(CommandId(*cid)) {
                        let now = clock.now_ns();
                        if dl > now {
                            clock.advance(dl - now);
                        }
                    }
                    reactor.dev.stats_ref().inc_hang_timeouts();
                    l.hq.abort(CommandId(*cid)).expect("lost command aborts");
                    let c =
                        l.hq.try_complete(CommandId(*cid))
                            .expect("abort delivered a completion")
                            .expect("aborted completion present");
                    outcomes[i] = Some(Ok(c));
                }
                Err(e) => panic!("async submit lost completion of cid {cid}: {e}"),
            }
        }
        if all {
            let last = *cids.last().expect("non-empty batch");
            l.waiting.remove(&last);
            let outcomes =
                std::mem::take(outcomes).into_iter().map(|o| o.expect("all resolved")).collect();
            *state = SubmitState::Done;
            return Poll::Ready(outcomes);
        }
        // Completions arrive in submission order, so waiting on the last
        // cid covers the whole batch (a cut wakes everything regardless).
        let last = *cids.last().expect("non-empty batch");
        l.waiting.insert(last, cx.waker().clone());
        Poll::Pending
    }
}

impl Future for Submit {
    type Output = Vec<Result<Completion, SubmitError>>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let reactor = Arc::clone(&this.reactor);
        let mut l = reactor.lanes[this.lane].lock().expect("lane mutex");
        match &mut this.state {
            SubmitState::Queued { cmds, ticket } => {
                if l.powered_off {
                    let n = cmds.len();
                    this.state = SubmitState::Done;
                    return Poll::Ready(vec![Err(SubmitError::CutUnsubmitted); n]);
                }
                let need = cmds.len();
                assert!(need <= l.hq.depth(), "batch larger than SQ depth");
                let has_grant = ticket.is_some_and(|t| l.granted.contains_key(&t));
                if has_grant {
                    let t = ticket.expect("grant implies ticket");
                    let slots = l.granted.remove(&t).expect("checked grant");
                    l.granted_slots -= slots;
                } else {
                    let free = l.hq.depth().saturating_sub(l.hq.pending() + l.granted_slots);
                    if !l.parked.is_empty() || free < need {
                        match *ticket {
                            // Spurious poll while parked: refresh the
                            // waker in place, keep FIFO position.
                            Some(t) => {
                                if let Some(p) = l.parked.iter_mut().find(|p| p.ticket == t) {
                                    p.waker = cx.waker().clone();
                                }
                            }
                            None => {
                                let t = l.next_ticket;
                                l.next_ticket += 1;
                                *ticket = Some(t);
                                l.parked.push_back(ParkedTicket {
                                    ticket: t,
                                    need,
                                    waker: cx.waker().clone(),
                                });
                                let sink = reactor.dev.stats_ref().trace();
                                if sink.enabled() {
                                    let _s = CtxScope::enter(
                                        trace::ctx()
                                            .with_queue(l.hq.id())
                                            .with_lane(this.lane as u16),
                                    );
                                    sink.emit(TraceKind::ReactorPark, need as u64, t);
                                }
                            }
                        }
                        return Poll::Pending;
                    }
                }
                let cmds = std::mem::take(cmds);
                let timeout = reactor.command_timeout_ns.load(Ordering::Acquire);
                let deadline = if timeout == 0 {
                    u64::MAX
                } else {
                    reactor.dev.clock().now_ns().saturating_add(timeout)
                };
                let mut cids = Vec::with_capacity(need);
                for cmd in cmds {
                    let id =
                        l.hq.submit_with_deadline(cmd, deadline).expect("capacity was reserved");
                    cids.push(id.0);
                }
                let last = *cids.last().expect("non-empty batch");
                l.waiting.insert(last, cx.waker().clone());
                this.state = SubmitState::InFlight { cids, outcomes: vec![None; need] };
                // Deliberately no doorbell here: the SQ keeps filling
                // while other tasks run (maximizing coalescing) and the
                // executor pumps the lane the moment it has nothing
                // ready — the async analogue of batched submission.
                drop(l);
                reactor.mark_dirty(this.lane);
                Poll::Pending
            }
            SubmitState::InFlight { .. } => {
                Submit::poll_inflight(&reactor, &mut this.state, &mut l, cx)
            }
            SubmitState::Done => panic!("Submit polled after completion"),
        }
    }
}

impl Drop for Submit {
    fn drop(&mut self) {
        let state = std::mem::replace(&mut self.state, SubmitState::Done);
        match state {
            SubmitState::Queued { ticket: Some(t), .. } => {
                let mut l = self.reactor.lanes[self.lane].lock().expect("lane mutex");
                if let Some(slots) = l.granted.remove(&t) {
                    l.granted_slots -= slots;
                }
                l.parked.retain(|p| p.ticket != t);
                drop(l);
                // Released capacity may unpark someone behind us.
                self.reactor.mark_dirty(self.lane);
            }
            SubmitState::InFlight { cids, .. } => {
                let mut l = self.reactor.lanes[self.lane].lock().expect("lane mutex");
                for cid in cids {
                    l.waiting.remove(&cid);
                    // Discard already-delivered completions; ones still in
                    // flight will sit in the CQ until the lane drops.
                    let _ = l.hq.try_complete(CommandId(cid));
                }
            }
            _ => {}
        }
    }
}

/// Future of a single-command submission (see [`Reactor::submit`]).
pub struct SubmitOne {
    inner: Submit,
}

impl Future for SubmitOne {
    type Output = Result<Completion, SubmitError>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        match Pin::new(&mut self.get_mut().inner).poll(cx) {
            Poll::Ready(mut v) => Poll::Ready(v.pop().expect("one outcome per command")),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// An [`Executor`] wired to a [`Reactor`]: the one-call entry point for
/// running async device work. Cloning shares both halves.
#[derive(Clone, Debug)]
pub struct Runtime {
    exec: Executor,
    reactor: Arc<Reactor>,
}

impl Runtime {
    /// Creates a runtime over `dev` with `workers` executor threads (0 =
    /// deterministic caller-driven mode) and `lanes` queue pairs of `depth`.
    pub fn new(dev: &Arc<Mssd>, workers: usize, lanes: usize, depth: usize) -> Self {
        let exec = Executor::new(workers);
        let reactor = Reactor::new(dev, lanes, depth);
        exec.register_pump(Arc::clone(&reactor) as Arc<dyn Pump>);
        Self { exec, reactor }
    }

    /// The executor half.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// The reactor half.
    pub fn reactor(&self) -> &Arc<Reactor> {
        &self.reactor
    }

    /// See [`Executor::spawn`].
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        self.exec.spawn(fut)
    }

    /// See [`Executor::block_on`].
    pub fn block_on<F: Future>(&self, fut: F) -> F::Output {
        self.exec.block_on(fut)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MssdConfig;
    use crate::device::DramMode;
    use crate::stats::Category;

    fn dev() -> Arc<Mssd> {
        Mssd::new(MssdConfig::small_test(), DramMode::WriteLog)
    }

    #[test]
    fn block_on_plain_future() {
        let exec = Executor::new(0);
        assert_eq!(exec.block_on(async { 40 + 2 }), 42);
    }

    #[test]
    fn spawn_and_join() {
        let exec = Executor::new(0);
        let h1 = exec.spawn(async { 1u32 });
        let h2 = exec.spawn(async {
            yield_now().await;
            2u32
        });
        assert_eq!(exec.block_on(async move { h1.await + h2.await }), 3);
    }

    #[test]
    fn spawn_runs_on_worker_threads() {
        let exec = Executor::new(2);
        let handles: Vec<_> = (0..16).map(|i| exec.spawn(async move { i * i })).collect();
        let total: i32 = exec.block_on(async move {
            let mut sum = 0;
            for h in handles {
                sum += h.await;
            }
            sum
        });
        assert_eq!(total, (0..16).map(|i| i * i).sum());
    }

    #[test]
    fn async_submit_roundtrip() {
        let d = dev();
        let rt = Runtime::new(&d, 0, 2, 8);
        let r = Arc::clone(rt.reactor());
        let out = rt.block_on(async move {
            r.submit(
                0,
                Command::ByteWrite { addr: 0, data: vec![9; 64], txid: None, cat: Category::Data },
            )
            .await
            .expect("write completes");
            r.submit(1, Command::ByteRead { addr: 0, len: 64, cat: Category::Data })
                .await
                .expect("read completes")
        });
        assert_eq!(out.data, Some(vec![9; 64]));
    }

    #[test]
    fn batch_preserves_doorbell_coalescing() {
        let d = dev();
        let rt = Runtime::new(&d, 0, 1, 32);
        let r = Arc::clone(rt.reactor());
        let cmds: Vec<Command> = (0..8u64)
            .map(|i| Command::ByteWrite {
                addr: 8192 + i * 64,
                data: vec![i as u8 + 1; 64],
                txid: None,
                cat: Category::Data,
            })
            .collect();
        let outcomes = rt.block_on(async move { r.submit_batch(0, cmds).await });
        assert_eq!(outcomes.len(), 8);
        assert!(outcomes.iter().all(|o| o.is_ok()));
        assert_eq!(d.snapshot().log_entries, 1, "batch merged into one log append");
    }

    #[test]
    fn backpressure_parks_and_wakes_fifo() {
        // Lane depth 2, six single-command clients: completion order must
        // equal submission order even though four of them park.
        let d = dev();
        let rt = Runtime::new(&d, 0, 1, 2);
        let order = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..6u64)
            .map(|i| {
                let r = Arc::clone(rt.reactor());
                let order = Arc::clone(&order);
                rt.spawn(async move {
                    let c = r
                        .submit(
                            0,
                            Command::ByteWrite {
                                addr: i * 4096,
                                data: vec![i as u8; 64],
                                txid: None,
                                cat: Category::Data,
                            },
                        )
                        .await
                        .expect("completes");
                    assert!(c.is_ok());
                    order.lock().unwrap().push(i);
                })
            })
            .collect();
        rt.block_on(async move {
            for h in handles {
                h.await;
            }
        });
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4, 5], "FIFO wakeup order");
    }

    #[test]
    fn no_lost_wakeups_under_concurrent_fan_in() {
        // Many clients over few lanes with worker threads; a lost wakeup
        // would hang the test (the harness timeout is the watchdog).
        let d = dev();
        let rt = Runtime::new(&d, 4, 4, 8);
        let handles: Vec<_> = (0..64u64)
            .map(|i| {
                let r = Arc::clone(rt.reactor());
                rt.spawn(async move {
                    let lane = r.lane_for(i as usize);
                    for j in 0..20u64 {
                        let c = r
                            .submit(
                                lane,
                                Command::ByteWrite {
                                    addr: (i * 64 + j) * 512,
                                    data: vec![(i ^ j) as u8; 64],
                                    txid: None,
                                    cat: Category::Data,
                                },
                            )
                            .await
                            .expect("completes");
                        assert!(c.is_ok());
                    }
                })
            })
            .collect();
        rt.block_on(async move {
            for h in handles {
                h.await;
            }
        });
    }

    #[test]
    fn power_cut_resolves_parked_and_inflight_futures() {
        use crate::fault::FaultPlan;
        // Count steps first, then cut midway so some commands complete,
        // some are consumed in-doubt, and parked submitters never run.
        let cfg = MssdConfig::small_test();
        let run = |d: Arc<Mssd>| {
            let rt = Runtime::new(&d, 0, 1, 2);
            let handles: Vec<_> = (0..8u64)
                .map(|i| {
                    let r = Arc::clone(rt.reactor());
                    rt.spawn(async move {
                        r.submit(
                            0,
                            Command::ByteWrite {
                                addr: i * 4096,
                                data: vec![i as u8 + 1; 64],
                                txid: None,
                                cat: Category::Data,
                            },
                        )
                        .await
                    })
                })
                .collect();
            rt.block_on(async move {
                let mut out = Vec::new();
                for h in handles {
                    out.push(h.await);
                }
                out
            })
        };
        let probe =
            Mssd::new(cfg.clone().with_fault_plan(FaultPlan::count_only()), DramMode::WriteLog);
        let total = {
            let out = run(Arc::clone(&probe));
            assert!(out.iter().all(|o| o.is_ok()));
            probe.fault_plan().total_steps()
        };
        assert!(total >= 8);
        let cut_at = total / 2;
        let d =
            Mssd::new(cfg.with_fault_plan(FaultPlan::cut_at(cut_at.max(1))), DramMode::WriteLog);
        let out = run(Arc::clone(&d));
        assert_eq!(out.len(), 8, "every future resolves — none may hang");
        let ok = out.iter().filter(|o| o.is_ok()).count();
        let consumed = out.iter().filter(|o| matches!(o, Err(SubmitError::CutConsumed))).count();
        let unsubmitted =
            out.iter().filter(|o| matches!(o, Err(SubmitError::CutUnsubmitted))).count();
        assert_eq!(ok + consumed + unsubmitted, 8);
        assert!(consumed <= 1, "at most one group is in doubt per lane");
        assert!(unsubmitted >= 1, "the cut must strand later submitters");
        assert!(ok >= 1, "the cut landed midway, so early writes completed");
    }

    #[test]
    fn retry_policy_backoff_is_deterministic_jittered_and_capped() {
        let p = RetryPolicy::default();
        for attempt in 0..12 {
            let a = p.backoff_ns(7, attempt);
            let b = p.backoff_ns(7, attempt);
            assert_eq!(a, b, "pure function of (seed, key, attempt)");
            assert!(a <= p.max_delay_ns, "capped");
            let exp = p.base_delay_ns.saturating_mul(1 << attempt.min(20)).min(p.max_delay_ns);
            assert!(a >= exp / 2, "jitter stays in the upper half-window");
        }
        assert_ne!(p.backoff_ns(7, 3), p.backoff_ns(8, 3), "keys decorrelate");
        assert_ne!(
            p.backoff_ns(7, 3),
            p.with_seed(99).backoff_ns(7, 3),
            "seed changes the timeline"
        );
    }

    #[test]
    fn lost_completion_times_out_and_resolves_as_aborted() {
        use crate::fault::{HangFaultConfig, HangFaultPlan};
        let d =
            Mssd::new(
                MssdConfig::small_test().with_hang_fault_plan(HangFaultPlan::new(
                    HangFaultConfig { seed: 5, hang_loss_at: 1, ..Default::default() },
                )),
                DramMode::WriteLog,
            );
        let rt = Runtime::new(&d, 0, 1, 8);
        let r = Arc::clone(rt.reactor());
        let before = d.clock().now_ns();
        let out = rt.block_on(async move {
            r.submit(
                0,
                Command::ByteWrite { addr: 0, data: vec![3; 64], txid: None, cat: Category::Data },
            )
            .await
        });
        let c = out.expect("future resolves — no bare hang");
        assert_eq!(c.status, Err(crate::flash::FlashError::Aborted));
        let t = d.traffic();
        assert_eq!(t.hang_timeouts, 1);
        assert_eq!(t.aborts, 1);
        assert!(
            d.clock().now_ns() - before >= DEFAULT_COMMAND_TIMEOUT_NS,
            "the host timer waited out the deadline on the virtual clock"
        );
    }

    #[test]
    fn wedged_lane_is_reset_quarantined_and_work_completes() {
        use crate::fault::{HangFaultConfig, HangFaultPlan};
        let d =
            Mssd::new(
                MssdConfig::small_test().with_hang_fault_plan(HangFaultPlan::new(
                    HangFaultConfig { seed: 5, hang_wedge_at: 1, ..Default::default() },
                )),
                DramMode::WriteLog,
            );
        let rt = Runtime::new(&d, 0, 2, 8);
        let r = Arc::clone(rt.reactor());
        assert_eq!(r.lane_for(0), 0);
        let r2 = Arc::clone(&r);
        let out = rt.block_on(async move {
            r2.submit(
                0,
                Command::ByteWrite { addr: 0, data: vec![8; 64], txid: None, cat: Category::Data },
            )
            .await
        });
        assert!(out.expect("watchdog un-wedges the lane").is_ok());
        assert_eq!(d.byte_read(0, 64, Category::Data), vec![8; 64], "requeued command re-ran");
        let t = d.traffic();
        assert!(t.lane_resets >= 1);
        assert_eq!(t.hang_timeouts, 1);
        assert_eq!(t.quarantined_lanes, 1);
        assert_eq!(r.quarantined_lanes(), 1 << 0);
        assert_eq!(r.lane_for(0), 1, "new work is routed around the quarantined lane");
        assert_eq!(r.lane_for(1), 1, "healthy lanes keep their home mapping");
    }

    #[test]
    fn submit_with_retry_recovers_from_an_injected_hang() {
        use crate::fault::{HangFaultConfig, HangFaultPlan};
        let d =
            Mssd::new(
                MssdConfig::small_test().with_hang_fault_plan(HangFaultPlan::new(
                    HangFaultConfig { seed: 5, hang_loss_at: 1, ..Default::default() },
                )),
                DramMode::WriteLog,
            );
        let rt = Runtime::new(&d, 0, 1, 8);
        let r = Arc::clone(rt.reactor());
        let (out, attempts) = rt.block_on(async move {
            r.submit_with_retry(
                0,
                Command::ByteWrite { addr: 0, data: vec![6; 64], txid: None, cat: Category::Data },
                RetryPolicy::default(),
            )
            .await
        });
        assert!(out.expect("resolves").is_ok(), "the retry succeeded");
        assert_eq!(attempts, 1, "one retry after the hang timeout");
        assert_eq!(d.traffic().retries, 1);
        assert_eq!(d.byte_read(0, 64, Category::Data), vec![6; 64]);
    }

    #[test]
    fn dropping_parked_future_releases_its_ticket_and_grant() {
        use std::future::poll_fn;
        let d = dev();
        let w = |addr: u64, v: u8| Command::ByteWrite {
            addr,
            data: vec![v; 64],
            txid: None,
            cat: Category::Data,
        };
        let rt = Runtime::new(&d, 0, 1, 1);
        let r = Arc::clone(rt.reactor());
        let out = rt.block_on(async move {
            // Fill the depth-1 SQ and park a second submitter behind it.
            let mut first = r.submit(0, w(0, 1));
            let mut parked = r.submit(0, w(4096, 2));
            poll_fn(|cx| {
                assert!(Pin::new(&mut first).poll(cx).is_pending(), "first fills the SQ");
                assert!(Pin::new(&mut parked).poll(cx).is_pending(), "second parks");
                Poll::Ready(())
            })
            .await;
            // Awaiting `first` makes the executor pump: the ring frees a
            // slot, which is immediately *granted* to the parked future.
            first.await.expect("first completes").status.expect("write ok");
            // Abandon the granted future: its reserved slot must be
            // released, or the next submitter would park forever (the test
            // would hang — the harness timeout is the watchdog).
            drop(parked);
            r.submit(0, w(8192, 3)).await
        });
        assert!(out.expect("third submit completes").is_ok());
    }
}
