//! Traffic and latency accounting.
//!
//! The ByteFS evaluation is largely about *where the bytes go*: Figures 1, 8
//! and 9 break host↔SSD traffic down by file-system data structure, Figures 10
//! and 11 report internal flash traffic, and Table 2 reports read/write
//! amplification. Every device operation in this crate is therefore tagged
//! with a [`Category`] (which data structure initiated it) and an
//! [`Interface`] (byte or block), and the device accumulates a
//! [`TrafficCounter`] that the harness snapshots before/after a workload.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// The file-system data structure a device access is attributed to.
///
/// These mirror the legend of Figure 1 in the paper (Data, Inode, Dentry,
/// Bitmap, Superblock, Data Pointer, Journaling, Other).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Category {
    /// File contents.
    Data,
    /// Inode blocks / inode entries.
    Inode,
    /// Directory entries.
    Dentry,
    /// Block and inode allocation bitmaps (or NAT/SIT in F2FS-like systems).
    Bitmap,
    /// The superblock and other global metadata.
    Superblock,
    /// Extent nodes / indirect block pointers (file offset → LBA mappings).
    DataPointer,
    /// Journal / write-ahead-log traffic.
    Journal,
    /// Anything else (e.g. padding, firmware-internal host traffic).
    Other,
}

impl Category {
    /// All categories in display order.
    pub const ALL: [Category; 8] = [
        Category::Data,
        Category::Inode,
        Category::Dentry,
        Category::Bitmap,
        Category::Superblock,
        Category::DataPointer,
        Category::Journal,
        Category::Other,
    ];

    /// `true` for the categories the paper classifies as metadata.
    pub fn is_metadata(self) -> bool {
        !matches!(self, Category::Data)
    }

    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Category::Data => "data",
            Category::Inode => "inode",
            Category::Dentry => "dentry",
            Category::Bitmap => "bitmap",
            Category::Superblock => "superblock",
            Category::DataPointer => "data_pointer",
            Category::Journal => "journal",
            Category::Other => "other",
        }
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which of the M-SSD's two host interfaces served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Interface {
    /// PCIe/CXL memory-mapped cacheline access.
    Byte,
    /// NVMe block command.
    Block,
}

impl std::fmt::Display for Interface {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Interface::Byte => f.write_str("byte"),
            Interface::Block => f.write_str("block"),
        }
    }
}

/// Direction of a host access, from the host's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Host reads from the device.
    Read,
    /// Host writes to the device.
    Write,
}

/// Bytes moved between host and device, keyed by category, interface and
/// direction, plus internal flash traffic and latency accumulators.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrafficCounter {
    host_read: BTreeMap<(Category, Interface), u64>,
    host_write: BTreeMap<(Category, Interface), u64>,
    /// Pages read from NAND flash.
    pub flash_read_pages: u64,
    /// Pages programmed to NAND flash.
    pub flash_write_pages: u64,
    /// Blocks erased (garbage collection / log cleaning).
    pub flash_erase_blocks: u64,
    /// Flash page reads caused by internal work (GC, log cleaning RMW).
    pub flash_internal_read_pages: u64,
    /// Flash page writes caused by internal work (GC relocation).
    pub flash_internal_write_pages: u64,
    /// Number of host byte-interface requests.
    pub byte_requests: u64,
    /// Number of host block-interface requests.
    pub block_requests: u64,
    /// Number of firmware transaction commits.
    pub tx_commits: u64,
    /// Number of log-cleaning passes executed.
    pub log_cleanings: u64,
    /// Total virtual nanoseconds spent in host-visible device operations.
    pub device_busy_ns: u64,
}

impl TrafficCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a host access of `bytes` bytes.
    pub fn record_host(
        &mut self,
        dir: Direction,
        cat: Category,
        iface: Interface,
        bytes: u64,
    ) {
        let map = match dir {
            Direction::Read => &mut self.host_read,
            Direction::Write => &mut self.host_write,
        };
        *map.entry((cat, iface)).or_insert(0) += bytes;
        match iface {
            Interface::Byte => self.byte_requests += 1,
            Interface::Block => self.block_requests += 1,
        }
    }

    /// Total host-read bytes (all categories and interfaces).
    pub fn host_read_bytes(&self) -> u64 {
        self.host_read.values().sum()
    }

    /// Total host-written bytes (all categories and interfaces).
    pub fn host_write_bytes(&self) -> u64 {
        self.host_write.values().sum()
    }

    /// Host bytes for one direction and category, summed over interfaces.
    pub fn host_bytes_by_category(&self, dir: Direction, cat: Category) -> u64 {
        let map = match dir {
            Direction::Read => &self.host_read,
            Direction::Write => &self.host_write,
        };
        map.iter().filter(|((c, _), _)| *c == cat).map(|(_, v)| *v).sum()
    }

    /// Host bytes for one direction and interface, summed over categories.
    pub fn host_bytes_by_interface(&self, dir: Direction, iface: Interface) -> u64 {
        let map = match dir {
            Direction::Read => &self.host_read,
            Direction::Write => &self.host_write,
        };
        map.iter().filter(|((_, i), _)| *i == iface).map(|(_, v)| *v).sum()
    }

    /// Host metadata bytes (all categories except `Data`) for one direction.
    pub fn host_metadata_bytes(&self, dir: Direction) -> u64 {
        Category::ALL
            .iter()
            .filter(|c| c.is_metadata())
            .map(|c| self.host_bytes_by_category(dir, *c))
            .sum()
    }

    /// Host data bytes (category `Data`) for one direction.
    pub fn host_data_bytes(&self, dir: Direction) -> u64 {
        self.host_bytes_by_category(dir, Category::Data)
    }

    /// Total flash bytes read, including internal reads, given the page size.
    pub fn flash_read_bytes(&self, page_size: usize) -> u64 {
        (self.flash_read_pages + self.flash_internal_read_pages) * page_size as u64
    }

    /// Total flash bytes written, including internal writes, given the page size.
    pub fn flash_write_bytes(&self, page_size: usize) -> u64 {
        (self.flash_write_pages + self.flash_internal_write_pages) * page_size as u64
    }

    /// Returns `self - earlier`, i.e. the traffic that happened after the
    /// `earlier` snapshot was taken.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not actually an earlier snapshot
    /// of the same counter (any counter would have to go backwards).
    pub fn delta_since(&self, earlier: &TrafficCounter) -> TrafficCounter {
        fn sub_map(
            a: &BTreeMap<(Category, Interface), u64>,
            b: &BTreeMap<(Category, Interface), u64>,
        ) -> BTreeMap<(Category, Interface), u64> {
            let mut out = a.clone();
            for (k, v) in b {
                let cur = out.entry(*k).or_insert(0);
                debug_assert!(*cur >= *v, "traffic counter went backwards for {k:?}");
                *cur = cur.saturating_sub(*v);
            }
            out.retain(|_, v| *v > 0);
            out
        }
        TrafficCounter {
            host_read: sub_map(&self.host_read, &earlier.host_read),
            host_write: sub_map(&self.host_write, &earlier.host_write),
            flash_read_pages: self.flash_read_pages - earlier.flash_read_pages,
            flash_write_pages: self.flash_write_pages - earlier.flash_write_pages,
            flash_erase_blocks: self.flash_erase_blocks - earlier.flash_erase_blocks,
            flash_internal_read_pages: self.flash_internal_read_pages
                - earlier.flash_internal_read_pages,
            flash_internal_write_pages: self.flash_internal_write_pages
                - earlier.flash_internal_write_pages,
            byte_requests: self.byte_requests - earlier.byte_requests,
            block_requests: self.block_requests - earlier.block_requests,
            tx_commits: self.tx_commits - earlier.tx_commits,
            log_cleanings: self.log_cleanings - earlier.log_cleanings,
            device_busy_ns: self.device_busy_ns - earlier.device_busy_ns,
        }
    }

    /// Per-category breakdown of host traffic for one direction, as
    /// `(category, bytes)` pairs in display order, omitting zero rows.
    pub fn breakdown(&self, dir: Direction) -> Vec<(Category, u64)> {
        Category::ALL
            .iter()
            .map(|c| (*c, self.host_bytes_by_category(dir, *c)))
            .filter(|(_, v)| *v > 0)
            .collect()
    }
}

/// An immutable snapshot of the device state used by the measurement harness.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Traffic counters at the time of the snapshot.
    pub traffic: TrafficCounter,
    /// Virtual time at the time of the snapshot (nanoseconds).
    pub now_ns: u64,
    /// Current utilization of the write log region in bytes (0 when the device
    /// DRAM is configured as a page cache).
    pub log_used_bytes: usize,
    /// Number of live entries in the write log index.
    pub log_entries: usize,
    /// Number of dirty pages in the device page cache (baseline mode).
    pub cache_dirty_pages: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut t = TrafficCounter::new();
        t.record_host(Direction::Write, Category::Inode, Interface::Byte, 64);
        t.record_host(Direction::Write, Category::Data, Interface::Block, 4096);
        t.record_host(Direction::Read, Category::Data, Interface::Block, 8192);
        assert_eq!(t.host_write_bytes(), 4160);
        assert_eq!(t.host_read_bytes(), 8192);
        assert_eq!(t.host_metadata_bytes(Direction::Write), 64);
        assert_eq!(t.host_data_bytes(Direction::Write), 4096);
        assert_eq!(t.byte_requests, 1);
        assert_eq!(t.block_requests, 2);
    }

    #[test]
    fn breakdown_skips_zero_rows() {
        let mut t = TrafficCounter::new();
        t.record_host(Direction::Write, Category::Dentry, Interface::Byte, 128);
        let rows = t.breakdown(Direction::Write);
        assert_eq!(rows, vec![(Category::Dentry, 128)]);
        assert!(t.breakdown(Direction::Read).is_empty());
    }

    #[test]
    fn by_interface_filters() {
        let mut t = TrafficCounter::new();
        t.record_host(Direction::Write, Category::Inode, Interface::Byte, 64);
        t.record_host(Direction::Write, Category::Inode, Interface::Block, 4096);
        assert_eq!(t.host_bytes_by_interface(Direction::Write, Interface::Byte), 64);
        assert_eq!(t.host_bytes_by_interface(Direction::Write, Interface::Block), 4096);
    }

    #[test]
    fn delta_subtracts() {
        let mut t = TrafficCounter::new();
        t.record_host(Direction::Write, Category::Data, Interface::Block, 4096);
        t.flash_write_pages = 1;
        let snap = t.clone();
        t.record_host(Direction::Write, Category::Data, Interface::Block, 4096);
        t.record_host(Direction::Read, Category::Inode, Interface::Block, 4096);
        t.flash_write_pages = 3;
        t.device_busy_ns = 500;
        let d = t.delta_since(&snap);
        assert_eq!(d.host_write_bytes(), 4096);
        assert_eq!(d.host_read_bytes(), 4096);
        assert_eq!(d.flash_write_pages, 2);
        assert_eq!(d.device_busy_ns, 500);
    }

    #[test]
    fn metadata_classification() {
        assert!(!Category::Data.is_metadata());
        for c in Category::ALL {
            if c != Category::Data {
                assert!(c.is_metadata(), "{c} should be metadata");
            }
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = Category::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Category::ALL.len());
    }

    #[test]
    fn flash_byte_accounting_includes_internal() {
        let mut t = TrafficCounter::new();
        t.flash_read_pages = 2;
        t.flash_internal_read_pages = 1;
        t.flash_write_pages = 4;
        assert_eq!(t.flash_read_bytes(4096), 3 * 4096);
        assert_eq!(t.flash_write_bytes(4096), 4 * 4096);
    }
}
