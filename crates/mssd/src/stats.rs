//! Traffic and latency accounting.
//!
//! The ByteFS evaluation is largely about *where the bytes go*: Figures 1, 8
//! and 9 break host↔SSD traffic down by file-system data structure, Figures 10
//! and 11 report internal flash traffic, and Table 2 reports read/write
//! amplification. Every device operation in this crate is therefore tagged
//! with a [`Category`] (which data structure initiated it) and an
//! [`Interface`] (byte or block).
//!
//! Recording happens in an [`AtomicTraffic`]: a bank of per-`(category,
//! interface, direction)` `AtomicU64`s, so stats accounting on the device hot
//! path never takes a lock (all orderings are `Relaxed` — the counters are
//! monotonic tallies with no cross-counter invariants readers may assume
//! mid-run). The harness reads it through [`AtomicTraffic::snapshot`], which
//! yields the plain [`TrafficCounter`] value type used by every report.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::trace::{TraceKind, TraceSink};

/// The file-system data structure a device access is attributed to.
///
/// These mirror the legend of Figure 1 in the paper (Data, Inode, Dentry,
/// Bitmap, Superblock, Data Pointer, Journaling, Other).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Category {
    /// File contents.
    Data,
    /// Inode blocks / inode entries.
    Inode,
    /// Directory entries.
    Dentry,
    /// Block and inode allocation bitmaps (or NAT/SIT in F2FS-like systems).
    Bitmap,
    /// The superblock and other global metadata.
    Superblock,
    /// Extent nodes / indirect block pointers (file offset → LBA mappings).
    DataPointer,
    /// Journal / write-ahead-log traffic.
    Journal,
    /// Anything else (e.g. padding, firmware-internal host traffic).
    Other,
}

impl Category {
    /// Number of categories (the length of [`Category::ALL`]).
    pub const COUNT: usize = 8;

    /// Position of this category in [`Category::ALL`], used to index the
    /// atomic counter banks.
    pub fn index(self) -> usize {
        match self {
            Category::Data => 0,
            Category::Inode => 1,
            Category::Dentry => 2,
            Category::Bitmap => 3,
            Category::Superblock => 4,
            Category::DataPointer => 5,
            Category::Journal => 6,
            Category::Other => 7,
        }
    }

    /// All categories in display order.
    pub const ALL: [Category; 8] = [
        Category::Data,
        Category::Inode,
        Category::Dentry,
        Category::Bitmap,
        Category::Superblock,
        Category::DataPointer,
        Category::Journal,
        Category::Other,
    ];

    /// `true` for the categories the paper classifies as metadata.
    pub fn is_metadata(self) -> bool {
        !matches!(self, Category::Data)
    }

    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Category::Data => "data",
            Category::Inode => "inode",
            Category::Dentry => "dentry",
            Category::Bitmap => "bitmap",
            Category::Superblock => "superblock",
            Category::DataPointer => "data_pointer",
            Category::Journal => "journal",
            Category::Other => "other",
        }
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which of the M-SSD's two host interfaces served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Interface {
    /// PCIe/CXL memory-mapped cacheline access.
    Byte,
    /// NVMe block command.
    Block,
}

impl Interface {
    /// Number of interfaces.
    pub const COUNT: usize = 2;

    /// Stable index of this interface (byte = 0, block = 1), used to index the
    /// atomic counter banks.
    pub fn index(self) -> usize {
        match self {
            Interface::Byte => 0,
            Interface::Block => 1,
        }
    }
}

impl std::fmt::Display for Interface {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Interface::Byte => f.write_str("byte"),
            Interface::Block => f.write_str("block"),
        }
    }
}

/// Direction of a host access, from the host's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Host reads from the device.
    Read,
    /// Host writes to the device.
    Write,
}

/// Number of per-queue accounting slots in [`AtomicTraffic`]. Slot 0 belongs
/// to the synchronous depth-1 shim (direct [`crate::Mssd`] calls with no
/// ambient queue); slots 1.. are handed out round-robin to
/// [`crate::queue::HostQueue`]s, so on devices with more than
/// `QUEUE_SLOTS - 1` live queues two queues may share a slot (the per-queue
/// numbers then aggregate — never lost, only merged).
pub const QUEUE_SLOTS: usize = 32;

/// Per-queue latency/throughput counters of one submission/completion queue
/// slot, as materialized by [`AtomicTraffic::snapshot`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QueueLat {
    /// Commands completed through this queue slot.
    pub ops: u64,
    /// Doorbell rings (batches) processed. Zero for the sync shim slot, which
    /// completes each command at submission.
    pub batches: u64,
    /// Commands absorbed into a preceding adjacent byte-write by doorbell
    /// coalescing (each saved a separate log append).
    pub coalesced_cmds: u64,
    /// Total virtual nanoseconds of completed-command device latency.
    pub lat_total_ns: u64,
    /// Largest single-command virtual latency observed, in nanoseconds.
    pub lat_max_ns: u64,
}

impl QueueLat {
    /// Mean per-command virtual latency in nanoseconds (0 when idle).
    pub fn avg_ns(&self) -> u64 {
        self.lat_total_ns.checked_div(self.ops).unwrap_or(0)
    }

    fn is_empty(&self) -> bool {
        self.ops == 0 && self.batches == 0 && self.coalesced_cmds == 0
    }
}

/// Bytes moved between host and device, keyed by category, interface and
/// direction, plus internal flash traffic and latency accumulators.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrafficCounter {
    host_read: BTreeMap<(Category, Interface), u64>,
    host_write: BTreeMap<(Category, Interface), u64>,
    /// Pages read from NAND flash.
    pub flash_read_pages: u64,
    /// Pages programmed to NAND flash.
    pub flash_write_pages: u64,
    /// Blocks erased (garbage collection / log cleaning).
    pub flash_erase_blocks: u64,
    /// Flash page reads caused by internal work (GC, log cleaning RMW).
    pub flash_internal_read_pages: u64,
    /// Flash page writes caused by internal work (GC relocation).
    pub flash_internal_write_pages: u64,
    /// Number of host byte-interface requests.
    pub byte_requests: u64,
    /// Number of host block-interface requests.
    pub block_requests: u64,
    /// Number of firmware transaction commits.
    pub tx_commits: u64,
    /// Number of log-cleaning passes executed.
    pub log_cleanings: u64,
    /// Number of times a foreground writer stalled on log space admission and
    /// had to reclaim (drain sealed regions or full stop-the-world clean)
    /// itself instead of the background cleaner.
    pub log_fg_stalls: u64,
    /// Flash pages merged out of sealed log regions by the background
    /// cleaner (not counting foreground-stall reclaims).
    pub log_bg_cleaned_pages: u64,
    /// Total virtual nanoseconds spent in host-visible device operations.
    pub device_busy_ns: u64,
    /// RAS: flash reads whose raw bit errors the ECC corrected.
    pub ras_corrected_reads: u64,
    /// RAS: flash reads that resolved as uncorrectable ECC errors (UECC)
    /// after exhausting the read-retry ladder.
    pub ras_uncorrectable_reads: u64,
    /// RAS: read-retry attempts performed (ladder rungs after the initial
    /// read, whether or not they eventually recovered the page).
    pub ras_read_retries: u64,
    /// RAS: pages remapped to a fresh block after a permanent program
    /// failure.
    pub ras_remapped_pages: u64,
    /// RAS: blocks retired to the bad-block table (program or erase failure).
    pub ras_retired_blocks: u64,
    /// RAS: spare blocks currently remaining across all channels. A gauge,
    /// not a tally: [`TrafficCounter::delta_since`] keeps the later
    /// snapshot's value.
    pub ras_spares_remaining: u64,
    /// RAS: commands that hit their host deadline (watchdog timeout) before
    /// completing — injected stalls past the deadline, lost completions,
    /// wedged lanes.
    pub hang_timeouts: u64,
    /// RAS: NVMe-style aborts issued by the host (deadline timeout or lane
    /// reset resolution).
    pub aborts: u64,
    /// RAS: lane-level queue resets (wedge recovery or explicit).
    pub lane_resets: u64,
    /// RAS: host-level command retries after a transient failure or abort
    /// (capped exponential backoff, see `mssd::RetryPolicy`).
    pub retries: u64,
    /// RAS: reactor lanes currently quarantined after a wedge. A gauge, not
    /// a tally: [`TrafficCounter::delta_since`] keeps the later snapshot's
    /// value.
    pub quarantined_lanes: u64,
    /// Executor safety-net timer wakeups that found no runnable work
    /// (pure polls). High spurious counts with zero productive ones mean
    /// "idle"; see `exec_productive_wakeups`.
    pub exec_spurious_wakeups: u64,
    /// Executor safety-net timer wakeups that rescued real work (a lost
    /// wakeup, pump backlog): these are the ones a watchdog reads as "the
    /// notify path is missing wakeups", distinguishing hung from idle.
    pub exec_productive_wakeups: u64,
    /// Per-queue-slot submission/completion accounting (slot 0 = the
    /// synchronous depth-1 shim). Empty slots are omitted.
    pub queues: BTreeMap<u16, QueueLat>,
}

impl TrafficCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a host access of `bytes` bytes.
    pub fn record_host(&mut self, dir: Direction, cat: Category, iface: Interface, bytes: u64) {
        let map = match dir {
            Direction::Read => &mut self.host_read,
            Direction::Write => &mut self.host_write,
        };
        *map.entry((cat, iface)).or_insert(0) += bytes;
        match iface {
            Interface::Byte => self.byte_requests += 1,
            Interface::Block => self.block_requests += 1,
        }
    }

    /// Total host-read bytes (all categories and interfaces).
    pub fn host_read_bytes(&self) -> u64 {
        self.host_read.values().sum()
    }

    /// Total host-written bytes (all categories and interfaces).
    pub fn host_write_bytes(&self) -> u64 {
        self.host_write.values().sum()
    }

    /// Host bytes for one direction and category, summed over interfaces.
    pub fn host_bytes_by_category(&self, dir: Direction, cat: Category) -> u64 {
        let map = match dir {
            Direction::Read => &self.host_read,
            Direction::Write => &self.host_write,
        };
        map.iter().filter(|((c, _), _)| *c == cat).map(|(_, v)| *v).sum()
    }

    /// Host bytes for one direction and interface, summed over categories.
    pub fn host_bytes_by_interface(&self, dir: Direction, iface: Interface) -> u64 {
        let map = match dir {
            Direction::Read => &self.host_read,
            Direction::Write => &self.host_write,
        };
        map.iter().filter(|((_, i), _)| *i == iface).map(|(_, v)| *v).sum()
    }

    /// Host metadata bytes (all categories except `Data`) for one direction.
    pub fn host_metadata_bytes(&self, dir: Direction) -> u64 {
        Category::ALL
            .iter()
            .filter(|c| c.is_metadata())
            .map(|c| self.host_bytes_by_category(dir, *c))
            .sum()
    }

    /// Host data bytes (category `Data`) for one direction.
    pub fn host_data_bytes(&self, dir: Direction) -> u64 {
        self.host_bytes_by_category(dir, Category::Data)
    }

    /// Total flash bytes read, including internal reads, given the page size.
    pub fn flash_read_bytes(&self, page_size: usize) -> u64 {
        (self.flash_read_pages + self.flash_internal_read_pages) * page_size as u64
    }

    /// Total flash bytes written, including internal writes, given the page size.
    pub fn flash_write_bytes(&self, page_size: usize) -> u64 {
        (self.flash_write_pages + self.flash_internal_write_pages) * page_size as u64
    }

    /// Returns `self - earlier`, i.e. the traffic that happened after the
    /// `earlier` snapshot was taken.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not actually an earlier snapshot
    /// of the same counter (any counter would have to go backwards).
    pub fn delta_since(&self, earlier: &TrafficCounter) -> TrafficCounter {
        fn sub_map(
            a: &BTreeMap<(Category, Interface), u64>,
            b: &BTreeMap<(Category, Interface), u64>,
        ) -> BTreeMap<(Category, Interface), u64> {
            let mut out = a.clone();
            for (k, v) in b {
                let cur = out.entry(*k).or_insert(0);
                debug_assert!(*cur >= *v, "traffic counter went backwards for {k:?}");
                *cur = cur.saturating_sub(*v);
            }
            out.retain(|_, v| *v > 0);
            out
        }
        TrafficCounter {
            host_read: sub_map(&self.host_read, &earlier.host_read),
            host_write: sub_map(&self.host_write, &earlier.host_write),
            flash_read_pages: self.flash_read_pages - earlier.flash_read_pages,
            flash_write_pages: self.flash_write_pages - earlier.flash_write_pages,
            flash_erase_blocks: self.flash_erase_blocks - earlier.flash_erase_blocks,
            flash_internal_read_pages: self.flash_internal_read_pages
                - earlier.flash_internal_read_pages,
            flash_internal_write_pages: self.flash_internal_write_pages
                - earlier.flash_internal_write_pages,
            byte_requests: self.byte_requests - earlier.byte_requests,
            block_requests: self.block_requests - earlier.block_requests,
            tx_commits: self.tx_commits - earlier.tx_commits,
            log_cleanings: self.log_cleanings - earlier.log_cleanings,
            log_fg_stalls: self.log_fg_stalls - earlier.log_fg_stalls,
            log_bg_cleaned_pages: self.log_bg_cleaned_pages - earlier.log_bg_cleaned_pages,
            device_busy_ns: self.device_busy_ns - earlier.device_busy_ns,
            ras_corrected_reads: self.ras_corrected_reads - earlier.ras_corrected_reads,
            ras_uncorrectable_reads: self.ras_uncorrectable_reads - earlier.ras_uncorrectable_reads,
            ras_read_retries: self.ras_read_retries - earlier.ras_read_retries,
            ras_remapped_pages: self.ras_remapped_pages - earlier.ras_remapped_pages,
            ras_retired_blocks: self.ras_retired_blocks - earlier.ras_retired_blocks,
            // A gauge (current spare inventory), not a monotonic tally: the
            // delta keeps the later snapshot's reading.
            ras_spares_remaining: self.ras_spares_remaining,
            hang_timeouts: self.hang_timeouts - earlier.hang_timeouts,
            aborts: self.aborts - earlier.aborts,
            lane_resets: self.lane_resets - earlier.lane_resets,
            retries: self.retries - earlier.retries,
            // A gauge (currently quarantined lanes), not a monotonic tally.
            quarantined_lanes: self.quarantined_lanes,
            exec_spurious_wakeups: self.exec_spurious_wakeups - earlier.exec_spurious_wakeups,
            exec_productive_wakeups: self.exec_productive_wakeups - earlier.exec_productive_wakeups,
            queues: {
                let mut out = BTreeMap::new();
                for (id, q) in &self.queues {
                    let base = earlier.queues.get(id).cloned().unwrap_or_default();
                    let d = QueueLat {
                        ops: q.ops - base.ops,
                        batches: q.batches - base.batches,
                        coalesced_cmds: q.coalesced_cmds - base.coalesced_cmds,
                        lat_total_ns: q.lat_total_ns - base.lat_total_ns,
                        // A running maximum cannot be subtracted; the delta
                        // keeps the later snapshot's value (an upper bound on
                        // the interval's true max).
                        lat_max_ns: q.lat_max_ns,
                    };
                    if !d.is_empty() {
                        out.insert(*id, d);
                    }
                }
                out
            },
        }
    }

    /// Per-queue accounting for one slot (zeroed default when the slot is
    /// idle).
    pub fn queue_lat(&self, id: u16) -> QueueLat {
        self.queues.get(&id).cloned().unwrap_or_default()
    }

    /// Commands completed across every queue slot, including the sync shim.
    pub fn queue_ops_total(&self) -> u64 {
        self.queues.values().map(|q| q.ops).sum()
    }

    /// Per-category breakdown of host traffic for one direction, as
    /// `(category, bytes)` pairs in display order, omitting zero rows.
    pub fn breakdown(&self, dir: Direction) -> Vec<(Category, u64)> {
        Category::ALL
            .iter()
            .map(|c| (*c, self.host_bytes_by_category(dir, *c)))
            .filter(|(_, v)| *v > 0)
            .collect()
    }
}

/// A value on its own cache line, shared by every hot counter in the crate.
///
/// Hot-path counters are hammered by every thread on every operation; packing
/// several into one line would make each relaxed add invalidate the
/// neighbours' line (false sharing). A padded cell is 64 bytes and there are
/// only a few dozen per device, so the memory cost is trivial.
#[derive(Debug, Default)]
#[repr(align(64))]
pub(crate) struct CachePadded<T>(pub(crate) T);

impl CachePadded<AtomicU64> {
    fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    fn max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn clear(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Lock-free per-queue-slot counters (one bank per [`QUEUE_SLOTS`] slot).
#[derive(Debug, Default)]
struct AtomicQueueLat {
    ops: CachePadded<AtomicU64>,
    batches: CachePadded<AtomicU64>,
    coalesced_cmds: CachePadded<AtomicU64>,
    lat_total_ns: CachePadded<AtomicU64>,
    lat_max_ns: CachePadded<AtomicU64>,
}

impl AtomicQueueLat {
    fn snapshot(&self) -> QueueLat {
        QueueLat {
            ops: self.ops.get(),
            batches: self.batches.get(),
            coalesced_cmds: self.coalesced_cmds.get(),
            lat_total_ns: self.lat_total_ns.get(),
            lat_max_ns: self.lat_max_ns.get(),
        }
    }

    fn clear(&self) {
        self.ops.clear();
        self.batches.clear();
        self.coalesced_cmds.clear();
        self.lat_total_ns.clear();
        self.lat_max_ns.clear();
    }
}

/// Lock-free traffic accounting: one cache-line-padded `AtomicU64` per
/// `(direction, category, interface)` host-bytes cell plus one per scalar
/// counter.
///
/// The device hot path records into this with plain `Relaxed` atomic adds —
/// no mutex is ever taken for stats. Reports are produced by materializing a
/// [`TrafficCounter`] snapshot. Because individual counters are updated
/// independently, a snapshot taken while other threads are mid-operation is
/// only approximately consistent across counters (each counter is exact);
/// the harness always snapshots at quiescent points.
#[derive(Debug, Default)]
pub struct AtomicTraffic {
    host_read: [[CachePadded<AtomicU64>; Interface::COUNT]; Category::COUNT],
    host_write: [[CachePadded<AtomicU64>; Interface::COUNT]; Category::COUNT],
    flash_read_pages: CachePadded<AtomicU64>,
    flash_write_pages: CachePadded<AtomicU64>,
    flash_erase_blocks: CachePadded<AtomicU64>,
    flash_internal_read_pages: CachePadded<AtomicU64>,
    flash_internal_write_pages: CachePadded<AtomicU64>,
    byte_requests: CachePadded<AtomicU64>,
    block_requests: CachePadded<AtomicU64>,
    tx_commits: CachePadded<AtomicU64>,
    log_cleanings: CachePadded<AtomicU64>,
    log_fg_stalls: CachePadded<AtomicU64>,
    log_bg_cleaned_pages: CachePadded<AtomicU64>,
    device_busy_ns: CachePadded<AtomicU64>,
    ras_corrected_reads: CachePadded<AtomicU64>,
    ras_uncorrectable_reads: CachePadded<AtomicU64>,
    ras_read_retries: CachePadded<AtomicU64>,
    ras_remapped_pages: CachePadded<AtomicU64>,
    ras_retired_blocks: CachePadded<AtomicU64>,
    ras_spares_remaining: CachePadded<AtomicU64>,
    hang_timeouts: CachePadded<AtomicU64>,
    aborts: CachePadded<AtomicU64>,
    lane_resets: CachePadded<AtomicU64>,
    retries: CachePadded<AtomicU64>,
    quarantined_lanes: CachePadded<AtomicU64>,
    exec_spurious_wakeups: CachePadded<AtomicU64>,
    exec_productive_wakeups: CachePadded<AtomicU64>,
    queues: [AtomicQueueLat; QUEUE_SLOTS],
    /// The device's trace sink. It lives here because the stats bank is
    /// already threaded through every instrumented component; events whose
    /// semantics coincide with a counter are emitted from that counter's
    /// `inc_*` wrapper, so the two observability planes can never disagree.
    trace: TraceSink,
}

impl AtomicTraffic {
    /// Creates a zeroed counter bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a host access of `bytes` bytes (lock-free).
    pub fn record_host(&self, dir: Direction, cat: Category, iface: Interface, bytes: u64) {
        let bank = match dir {
            Direction::Read => &self.host_read,
            Direction::Write => &self.host_write,
        };
        bank[cat.index()][iface.index()].add(bytes);
        match iface {
            Interface::Byte => self.byte_requests.add(1),
            Interface::Block => self.block_requests.add(1),
        };
    }

    /// The device's trace sink (see [`crate::trace`]).
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Counts one flash page read (`internal` marks firmware-internal work).
    pub fn inc_flash_read(&self, internal: bool) {
        if internal {
            self.flash_internal_read_pages.add(1);
        } else {
            self.flash_read_pages.add(1);
        }
        self.trace.emit(TraceKind::FlashRead, internal as u64, 0);
    }

    /// Counts one flash page program (`internal` marks GC relocation).
    pub fn inc_flash_write(&self, internal: bool) {
        if internal {
            self.flash_internal_write_pages.add(1);
        } else {
            self.flash_write_pages.add(1);
        }
        self.trace.emit(TraceKind::FlashProgram, internal as u64, 0);
    }

    /// Counts one block erase.
    pub fn inc_flash_erase(&self) {
        self.flash_erase_blocks.add(1);
    }

    /// Counts one firmware transaction commit.
    pub fn inc_tx_commits(&self) {
        self.tx_commits.add(1);
    }

    /// Counts one log-cleaning pass.
    pub fn inc_log_cleanings(&self) {
        self.log_cleanings.add(1);
        self.trace.emit(TraceKind::LogDrain, 0, 0);
    }

    /// Counts one foreground space-admission stall (a writer had to reclaim
    /// log space itself).
    pub fn inc_log_fg_stalls(&self) {
        self.log_fg_stalls.add(1);
    }

    /// Counts flash pages merged out of sealed regions by the background
    /// cleaner.
    pub fn add_log_bg_cleaned_pages(&self, pages: u64) {
        self.log_bg_cleaned_pages.add(pages);
    }

    /// Accumulates host-visible device busy time.
    pub fn add_device_busy_ns(&self, ns: u64) {
        self.device_busy_ns.add(ns);
    }

    /// Counts one ECC-corrected flash read.
    pub fn inc_ras_corrected_reads(&self) {
        self.ras_corrected_reads.add(1);
    }

    /// Counts one uncorrectable (UECC) flash read.
    pub fn inc_ras_uncorrectable_reads(&self) {
        self.ras_uncorrectable_reads.add(1);
    }

    /// Counts one read-retry ladder rung.
    pub fn inc_ras_read_retries(&self) {
        self.ras_read_retries.add(1);
        self.trace.emit(TraceKind::EccRetry, 0, 0);
    }

    /// Counts one page remapped after a permanent program failure.
    pub fn inc_ras_remapped_pages(&self) {
        self.ras_remapped_pages.add(1);
    }

    /// Counts one block retired to the bad-block table.
    pub fn inc_ras_retired_blocks(&self) {
        self.ras_retired_blocks.add(1);
        self.trace.emit(TraceKind::BadBlockRetire, 0, 0);
    }

    /// Sets the spare-blocks-remaining gauge (current inventory across all
    /// channels).
    pub fn set_ras_spares_remaining(&self, spares: u64) {
        self.ras_spares_remaining.0.store(spares, Ordering::Relaxed);
    }

    /// Counts one command that hit its host deadline before completing.
    pub fn inc_hang_timeouts(&self) {
        self.hang_timeouts.add(1);
        self.trace.emit(TraceKind::DeadlineTimeout, 0, 0);
    }

    /// Counts one host-issued abort.
    pub fn inc_aborts(&self) {
        self.aborts.add(1);
        self.trace.emit(TraceKind::Abort, 0, 0);
    }

    /// Counts one lane-level queue reset.
    pub fn inc_lane_resets(&self) {
        self.lane_resets.add(1);
        self.trace.emit(TraceKind::LaneReset, 0, 0);
    }

    /// Counts one host-level command retry (backoff path).
    pub fn inc_retries(&self) {
        self.retries.add(1);
        self.trace.emit(TraceKind::RetryBackoff, 0, 0);
    }

    /// Sets the quarantined-lanes gauge (lanes currently fenced off after a
    /// wedge).
    pub fn set_quarantined_lanes(&self, lanes: u64) {
        self.quarantined_lanes.0.store(lanes, Ordering::Relaxed);
    }

    /// Counts one executor safety-net wakeup that found no work (spurious).
    pub fn inc_exec_spurious_wakeups(&self) {
        self.exec_spurious_wakeups.add(1);
    }

    /// Counts one executor safety-net wakeup that rescued real work.
    pub fn inc_exec_productive_wakeups(&self) {
        self.exec_productive_wakeups.add(1);
    }

    /// Records one completed command on queue slot `queue` (slot index is
    /// taken modulo [`QUEUE_SLOTS`]): bumps the op count and accumulates its
    /// virtual latency. Lock-free.
    pub fn record_queue_op(&self, queue: u16, lat_ns: u64) {
        let cell = &self.queues[queue as usize % QUEUE_SLOTS];
        cell.ops.add(1);
        cell.lat_total_ns.add(lat_ns);
        cell.lat_max_ns.max(lat_ns);
    }

    /// Records one doorbell batch on queue slot `queue`: `coalesced` counts
    /// the commands that were absorbed into a preceding adjacent byte write.
    pub fn record_queue_batch(&self, queue: u16, coalesced: u64) {
        let cell = &self.queues[queue as usize % QUEUE_SLOTS];
        cell.batches.add(1);
        cell.coalesced_cmds.add(coalesced);
    }

    /// Current flash page programs including internal ones (used by recovery
    /// reporting without paying for a full snapshot).
    pub fn flash_writes_total(&self) -> u64 {
        self.flash_write_pages.get() + self.flash_internal_write_pages.get()
    }

    /// Materializes a plain [`TrafficCounter`] from the current counters.
    pub fn snapshot(&self) -> TrafficCounter {
        fn bank_to_map(
            bank: &[[CachePadded<AtomicU64>; Interface::COUNT]; Category::COUNT],
        ) -> BTreeMap<(Category, Interface), u64> {
            let mut map = BTreeMap::new();
            for cat in Category::ALL {
                for iface in [Interface::Byte, Interface::Block] {
                    let v = bank[cat.index()][iface.index()].get();
                    if v > 0 {
                        map.insert((cat, iface), v);
                    }
                }
            }
            map
        }
        TrafficCounter {
            host_read: bank_to_map(&self.host_read),
            host_write: bank_to_map(&self.host_write),
            flash_read_pages: self.flash_read_pages.get(),
            flash_write_pages: self.flash_write_pages.get(),
            flash_erase_blocks: self.flash_erase_blocks.get(),
            flash_internal_read_pages: self.flash_internal_read_pages.get(),
            flash_internal_write_pages: self.flash_internal_write_pages.get(),
            byte_requests: self.byte_requests.get(),
            block_requests: self.block_requests.get(),
            tx_commits: self.tx_commits.get(),
            log_cleanings: self.log_cleanings.get(),
            log_fg_stalls: self.log_fg_stalls.get(),
            log_bg_cleaned_pages: self.log_bg_cleaned_pages.get(),
            device_busy_ns: self.device_busy_ns.get(),
            ras_corrected_reads: self.ras_corrected_reads.get(),
            ras_uncorrectable_reads: self.ras_uncorrectable_reads.get(),
            ras_read_retries: self.ras_read_retries.get(),
            ras_remapped_pages: self.ras_remapped_pages.get(),
            ras_retired_blocks: self.ras_retired_blocks.get(),
            ras_spares_remaining: self.ras_spares_remaining.get(),
            hang_timeouts: self.hang_timeouts.get(),
            aborts: self.aborts.get(),
            lane_resets: self.lane_resets.get(),
            retries: self.retries.get(),
            quarantined_lanes: self.quarantined_lanes.get(),
            exec_spurious_wakeups: self.exec_spurious_wakeups.get(),
            exec_productive_wakeups: self.exec_productive_wakeups.get(),
            queues: {
                let mut map = BTreeMap::new();
                for (id, cell) in self.queues.iter().enumerate() {
                    let q = cell.snapshot();
                    if !q.is_empty() {
                        map.insert(id as u16, q);
                    }
                }
                map
            },
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for bank in [&self.host_read, &self.host_write] {
            for row in bank.iter() {
                for cell in row {
                    cell.clear();
                }
            }
        }
        for cell in [
            &self.flash_read_pages,
            &self.flash_write_pages,
            &self.flash_erase_blocks,
            &self.flash_internal_read_pages,
            &self.flash_internal_write_pages,
            &self.byte_requests,
            &self.block_requests,
            &self.tx_commits,
            &self.log_cleanings,
            &self.log_fg_stalls,
            &self.log_bg_cleaned_pages,
            &self.device_busy_ns,
            &self.ras_corrected_reads,
            &self.ras_uncorrectable_reads,
            &self.ras_read_retries,
            &self.ras_remapped_pages,
            &self.ras_retired_blocks,
            &self.ras_spares_remaining,
            &self.hang_timeouts,
            &self.aborts,
            &self.lane_resets,
            &self.retries,
            &self.quarantined_lanes,
            &self.exec_spurious_wakeups,
            &self.exec_productive_wakeups,
        ] {
            cell.clear();
        }
        for q in &self.queues {
            q.clear();
        }
    }
}

/// An immutable snapshot of the device state used by the measurement harness.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Traffic counters at the time of the snapshot.
    pub traffic: TrafficCounter,
    /// Virtual time at the time of the snapshot (nanoseconds).
    pub now_ns: u64,
    /// Current utilization of the write log region in bytes (0 when the device
    /// DRAM is configured as a page cache).
    pub log_used_bytes: usize,
    /// Number of live entries in the write log index.
    pub log_entries: usize,
    /// Number of dirty pages in the device page cache (baseline mode).
    pub cache_dirty_pages: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut t = TrafficCounter::new();
        t.record_host(Direction::Write, Category::Inode, Interface::Byte, 64);
        t.record_host(Direction::Write, Category::Data, Interface::Block, 4096);
        t.record_host(Direction::Read, Category::Data, Interface::Block, 8192);
        assert_eq!(t.host_write_bytes(), 4160);
        assert_eq!(t.host_read_bytes(), 8192);
        assert_eq!(t.host_metadata_bytes(Direction::Write), 64);
        assert_eq!(t.host_data_bytes(Direction::Write), 4096);
        assert_eq!(t.byte_requests, 1);
        assert_eq!(t.block_requests, 2);
    }

    #[test]
    fn breakdown_skips_zero_rows() {
        let mut t = TrafficCounter::new();
        t.record_host(Direction::Write, Category::Dentry, Interface::Byte, 128);
        let rows = t.breakdown(Direction::Write);
        assert_eq!(rows, vec![(Category::Dentry, 128)]);
        assert!(t.breakdown(Direction::Read).is_empty());
    }

    #[test]
    fn by_interface_filters() {
        let mut t = TrafficCounter::new();
        t.record_host(Direction::Write, Category::Inode, Interface::Byte, 64);
        t.record_host(Direction::Write, Category::Inode, Interface::Block, 4096);
        assert_eq!(t.host_bytes_by_interface(Direction::Write, Interface::Byte), 64);
        assert_eq!(t.host_bytes_by_interface(Direction::Write, Interface::Block), 4096);
    }

    #[test]
    fn delta_subtracts() {
        let mut t = TrafficCounter::new();
        t.record_host(Direction::Write, Category::Data, Interface::Block, 4096);
        t.flash_write_pages = 1;
        t.ras_corrected_reads = 2;
        t.ras_spares_remaining = 8;
        let snap = t.clone();
        t.record_host(Direction::Write, Category::Data, Interface::Block, 4096);
        t.record_host(Direction::Read, Category::Inode, Interface::Block, 4096);
        t.flash_write_pages = 3;
        t.device_busy_ns = 500;
        t.ras_corrected_reads = 5;
        t.ras_spares_remaining = 6;
        let d = t.delta_since(&snap);
        assert_eq!(d.host_write_bytes(), 4096);
        assert_eq!(d.host_read_bytes(), 4096);
        assert_eq!(d.flash_write_pages, 2);
        assert_eq!(d.device_busy_ns, 500);
        assert_eq!(d.ras_corrected_reads, 3);
        assert_eq!(d.ras_spares_remaining, 6, "gauge keeps the later reading");
    }

    #[test]
    fn metadata_classification() {
        assert!(!Category::Data.is_metadata());
        for c in Category::ALL {
            if c != Category::Data {
                assert!(c.is_metadata(), "{c} should be metadata");
            }
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = Category::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Category::ALL.len());
    }

    #[test]
    fn atomic_traffic_snapshot_matches_plain_counter() {
        let a = AtomicTraffic::new();
        a.record_host(Direction::Write, Category::Inode, Interface::Byte, 64);
        a.record_host(Direction::Write, Category::Data, Interface::Block, 4096);
        a.record_host(Direction::Read, Category::Data, Interface::Block, 8192);
        a.inc_flash_write(false);
        a.inc_flash_write(true);
        a.inc_flash_read(false);
        a.inc_flash_erase();
        a.inc_tx_commits();
        a.inc_log_cleanings();
        a.add_device_busy_ns(500);
        a.inc_ras_corrected_reads();
        a.inc_ras_read_retries();
        a.inc_ras_read_retries();
        a.inc_ras_uncorrectable_reads();
        a.inc_ras_remapped_pages();
        a.inc_ras_retired_blocks();
        a.set_ras_spares_remaining(7);
        a.inc_hang_timeouts();
        a.inc_aborts();
        a.inc_aborts();
        a.inc_lane_resets();
        a.inc_retries();
        a.set_quarantined_lanes(2);
        a.inc_exec_spurious_wakeups();
        a.inc_exec_productive_wakeups();

        let mut t = TrafficCounter::new();
        t.record_host(Direction::Write, Category::Inode, Interface::Byte, 64);
        t.record_host(Direction::Write, Category::Data, Interface::Block, 4096);
        t.record_host(Direction::Read, Category::Data, Interface::Block, 8192);
        t.flash_write_pages = 1;
        t.flash_internal_write_pages = 1;
        t.flash_read_pages = 1;
        t.flash_erase_blocks = 1;
        t.tx_commits = 1;
        t.log_cleanings = 1;
        t.device_busy_ns = 500;
        t.ras_corrected_reads = 1;
        t.ras_read_retries = 2;
        t.ras_uncorrectable_reads = 1;
        t.ras_remapped_pages = 1;
        t.ras_retired_blocks = 1;
        t.ras_spares_remaining = 7;
        t.hang_timeouts = 1;
        t.aborts = 2;
        t.lane_resets = 1;
        t.retries = 1;
        t.quarantined_lanes = 2;
        t.exec_spurious_wakeups = 1;
        t.exec_productive_wakeups = 1;

        assert_eq!(a.snapshot(), t);
        assert_eq!(a.flash_writes_total(), 2);
        a.reset();
        assert_eq!(a.snapshot(), TrafficCounter::new());
    }

    #[test]
    fn atomic_traffic_is_race_free_across_threads() {
        let a = std::sync::Arc::new(AtomicTraffic::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let a = std::sync::Arc::clone(&a);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        a.record_host(Direction::Write, Category::Data, Interface::Byte, 64);
                        a.inc_flash_write(false);
                        a.add_device_busy_ns(3);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = a.snapshot();
        assert_eq!(snap.host_write_bytes(), 4 * 10_000 * 64);
        assert_eq!(snap.byte_requests, 40_000);
        assert_eq!(snap.flash_write_pages, 40_000);
        assert_eq!(snap.device_busy_ns, 120_000);
    }

    #[test]
    fn category_indices_match_display_order() {
        for (i, cat) in Category::ALL.iter().enumerate() {
            assert_eq!(cat.index(), i);
        }
        assert_eq!(Interface::Byte.index(), 0);
        assert_eq!(Interface::Block.index(), 1);
    }

    #[test]
    fn flash_byte_accounting_includes_internal() {
        let mut t = TrafficCounter::new();
        t.flash_read_pages = 2;
        t.flash_internal_read_pages = 1;
        t.flash_write_pages = 4;
        assert_eq!(t.flash_read_bytes(4096), 3 * 4096);
        assert_eq!(t.flash_write_bytes(4096), 4 * 4096);
    }
}
