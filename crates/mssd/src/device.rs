//! The memory-semantic SSD device: dual byte/block host interface, firmware
//! write log or page cache, transactions and recovery.
//!
//! [`Mssd`] is the single object file systems talk to. It is `Send + Sync`
//! and built so that the byte-interface hot path scales with threads instead
//! of serializing on one device-wide lock:
//!
//! * traffic/latency accounting is lock-free ([`AtomicTraffic`] — plain
//!   relaxed atomic adds, never a mutex);
//! * the write-log index is sharded by the paper's first-layer partition key
//!   (LPA / 16 MB) with an independent lock per shard
//!   ([`crate::log::ShardedWriteLog`]), so byte writes and log-served byte
//!   reads in different partitions never contend;
//! * the FTL + flash array (and, in baseline mode, the device page cache)
//!   sit behind their own mutex, taken only when flash must actually be
//!   touched;
//! * the firmware TxLog has its own small mutex, so `COMMIT` does not block
//!   writers.
//!
//! Lock order (to avoid deadlock): **flash → txlog → log shards**. Any
//! operation that takes more than one of these acquires them in that order;
//! the sharded log itself only ever locks shards one at a time or all of them
//! in ascending index order (cleaning).
//!
//! Concurrency contract: individual operations are thread-safe, but a
//! multi-page request is atomic only **per page-sized chunk**, not as a
//! whole — a concurrent reader of a range another thread is writing may see
//! some pages new and some old. This mirrors real dual-interface hardware
//! (MMIO gives at most cacheline atomicity; NVMe gives per-command, not
//! cross-command, ordering); the old implementation's whole-request atomicity
//! was an artifact of its single device-wide mutex. Callers needing
//! cross-page atomicity use transactions (`txid` + `COMMIT`).
//!
//! Every operation advances the shared virtual [`Clock`] by the modelled
//! latency and records traffic in the device's [`AtomicTraffic`].
//!
//! The firmware behaviour depends on [`DramMode`]:
//!
//! * [`DramMode::WriteLog`] — the ByteFS firmware of §4.3: byte writes append
//!   to the log-structured write log, block writes invalidate log entries and
//!   go through the FTL write buffer, flash pages are *not* cached in device
//!   DRAM (coordinated caching), and `COMMIT`/`RECOVER` are supported.
//! * [`DramMode::PageCache`] — an unmodified M-SSD as used by the baseline
//!   file systems: the same DRAM budget acts as a page-granular write-back
//!   cache serving both interfaces.

use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::clock::Clock;
use crate::config::MssdConfig;
use crate::dram_cache::DramPageCache;
use crate::ftl::{Ftl, Lpa};
use crate::log::ShardedWriteLog;
use crate::stats::{AtomicTraffic, Category, Direction, Interface, StatsSnapshot, TrafficCounter};
use crate::txn::{TxId, TxLog};

/// How the firmware manages the device DRAM region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DramMode {
    /// Log-structured write log + coordinated caching (ByteFS firmware).
    WriteLog,
    /// Conventional page-granular write-back cache (baseline firmware).
    PageCache,
}

/// Summary of a `RECOVER()` command (§4.7 / §5.5).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Log entries scanned during recovery.
    pub scanned_entries: usize,
    /// Entries discarded because their transaction never committed.
    pub discarded_entries: usize,
    /// Flash pages written while flushing committed entries.
    pub flushed_pages: usize,
    /// Virtual time the recovery took, in nanoseconds.
    pub duration_ns: u64,
}

/// The flash-side state: FTL (mapping, write buffer, GC) plus, in baseline
/// mode, the device-DRAM page cache. One mutex — taken only when flash or the
/// device cache is actually involved.
#[derive(Debug)]
struct FlashUnit {
    ftl: Ftl,
    cache: DramPageCache,
}

/// The memory-semantic SSD device model.
pub struct Mssd {
    cfg: MssdConfig,
    mode: DramMode,
    clock: Arc<Clock>,
    stats: AtomicTraffic,
    log: ShardedWriteLog,
    txlog: Mutex<TxLog>,
    flash: Mutex<FlashUnit>,
}

impl std::fmt::Debug for Mssd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mssd")
            .field("capacity_bytes", &self.cfg.capacity_bytes)
            .field("mode", &self.mode)
            .field("now_ns", &self.clock.now_ns())
            .finish()
    }
}

impl Mssd {
    /// Creates a device with the given configuration and firmware mode.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`MssdConfig::validate`]).
    pub fn new(cfg: MssdConfig, mode: DramMode) -> Arc<Self> {
        Self::with_clock(cfg, mode, Clock::new())
    }

    /// Creates a device sharing an existing clock (so host-side costs and
    /// device costs accumulate on the same timeline).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn with_clock(cfg: MssdConfig, mode: DramMode, clock: Arc<Clock>) -> Arc<Self> {
        if let Err(msg) = cfg.validate() {
            panic!("invalid MssdConfig: {msg}");
        }
        let flash = FlashUnit {
            ftl: Ftl::new(cfg.clone()),
            cache: DramPageCache::new(cfg.dram_region_bytes, cfg.page_size),
        };
        Arc::new(Self {
            log: ShardedWriteLog::new(&cfg),
            txlog: Mutex::new(TxLog::new(cfg.txlog_bytes)),
            flash: Mutex::new(flash),
            stats: AtomicTraffic::new(),
            cfg,
            mode,
            clock,
        })
    }

    /// The device configuration.
    pub fn config(&self) -> &MssdConfig {
        &self.cfg
    }

    /// The firmware DRAM mode.
    pub fn dram_mode(&self) -> DramMode {
        self.mode
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> Arc<Clock> {
        Arc::clone(&self.clock)
    }

    /// Device capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.cfg.capacity_bytes
    }

    /// Device page size in bytes.
    pub fn page_size(&self) -> usize {
        self.cfg.page_size
    }

    /// Number of logical pages (blocks) exposed through the block interface.
    pub fn logical_pages(&self) -> u64 {
        self.cfg.logical_pages()
    }

    /// Charges `ns` of host-visible device time: advances the shared clock and
    /// accumulates the busy counter. Entirely lock-free.
    fn charge(&self, ns: u64) {
        if ns > 0 {
            self.clock.advance(ns);
            self.stats.add_device_busy_ns(ns);
        }
    }

    // ------------------------------------------------------------------
    // Byte interface (PCIe/CXL MMIO)
    // ------------------------------------------------------------------

    /// Writes `data` at absolute device byte address `addr` through the byte
    /// interface. If `txid` is given the write belongs to that transaction and
    /// becomes durable at commit; otherwise it is treated as immediately
    /// committed.
    ///
    /// In [`DramMode::WriteLog`] this is the sharded hot path: the only lock
    /// taken is the one write-log shard covering each touched partition
    /// (flash is involved only when the log overflows).
    ///
    /// # Panics
    ///
    /// Panics if the address range exceeds the device capacity.
    pub fn byte_write(&self, addr: u64, data: &[u8], txid: Option<TxId>, cat: Category) {
        assert!(
            addr + data.len() as u64 <= self.cfg.capacity_bytes,
            "byte_write beyond device capacity"
        );
        if data.is_empty() {
            return;
        }
        self.stats.record_host(Direction::Write, cat, Interface::Byte, data.len() as u64);
        let mut cost = self.cfg.byte_access_ns(data.len(), false);
        let page_size = self.cfg.page_size as u64;
        // In baseline mode every chunk goes through the device cache, which
        // lives behind the flash lock; take it once for the whole request.
        let mut flash = (self.mode == DramMode::PageCache).then(|| self.flash.lock());
        let mut off = 0usize;
        while off < data.len() {
            let cur_addr = addr + off as u64;
            let lpa: Lpa = cur_addr / page_size;
            let in_page = (cur_addr % page_size) as usize;
            let span = (self.cfg.page_size - in_page).min(data.len() - off);
            let chunk = &data[off..off + span];
            match &mut flash {
                None => cost += self.log_append(lpa, in_page, chunk, txid),
                Some(unit) => cost += self.cache_modify(unit, lpa, in_page, chunk),
            }
            off += span;
        }
        drop(flash);
        // Opportunistic background cleaning once the threshold is crossed.
        if self.mode == DramMode::WriteLog && self.log.needs_cleaning() {
            self.clean_log(false);
        }
        self.charge(cost);
    }

    /// Reads `len` bytes at absolute device byte address `addr` through the
    /// byte interface.
    ///
    /// Ranges fully covered by write-log entries are served under a single
    /// shard lock; only uncovered ranges touch the FTL.
    ///
    /// # Panics
    ///
    /// Panics if the address range exceeds the device capacity.
    pub fn byte_read(&self, addr: u64, len: usize, cat: Category) -> Vec<u8> {
        assert!(
            addr + len as u64 <= self.cfg.capacity_bytes,
            "byte_read beyond device capacity"
        );
        let mut out = Vec::with_capacity(len);
        if len == 0 {
            return out;
        }
        self.stats.record_host(Direction::Read, cat, Interface::Byte, len as u64);
        let mut cost = self.cfg.byte_access_ns(len, true);
        let page_size = self.cfg.page_size as u64;
        let mut flash = (self.mode == DramMode::PageCache).then(|| self.flash.lock());
        let mut off = 0usize;
        while off < len {
            let cur_addr = addr + off as u64;
            let lpa: Lpa = cur_addr / page_size;
            let in_page = (cur_addr % page_size) as usize;
            let span = (self.cfg.page_size - in_page).min(len - off);
            match &mut flash {
                None => {
                    // Fast path: the log fully covers the range (shard lock
                    // only). Slow path: fetch the flash page, then overlay
                    // whatever the log has.
                    match self.log.read_covered(lpa, in_page, span) {
                        Some(bytes) => out.extend_from_slice(&bytes),
                        None => {
                            // Hold the flash lock across read + merge: a
                            // concurrent cleaning (which takes flash first)
                            // could otherwise drain the log between the two
                            // and the overlay would be lost.
                            let unit = self.flash.lock();
                            let (mut page, ns) = unit.ftl.read_page(lpa, &self.stats, false);
                            cost += ns;
                            self.log.merge_into(lpa, &mut page);
                            drop(unit);
                            out.extend_from_slice(&page[in_page..in_page + span]);
                        }
                    }
                }
                Some(unit) => {
                    let page = match unit.cache.get(lpa) {
                        Some(p) => p,
                        None => {
                            let (page, ns) = unit.ftl.read_page(lpa, &self.stats, false);
                            cost += ns;
                            cost += self.cache_insert(unit, lpa, page.clone(), false);
                            page
                        }
                    };
                    out.extend_from_slice(&page[in_page..in_page + span]);
                }
            }
            off += span;
        }
        drop(flash);
        self.charge(cost);
        out
    }

    /// The persistence barrier a host issues after MMIO writes: a cache-line
    /// flush followed by a zero-length "write-verify read" that forces posted
    /// PCIe writes to complete (§4.2). Charges one byte-interface read
    /// round-trip.
    pub fn persist_barrier(&self) {
        self.charge(self.cfg.byte_read_ns);
    }

    // ------------------------------------------------------------------
    // Block interface (NVMe)
    // ------------------------------------------------------------------

    /// Reads `count` consecutive 4 KB blocks starting at logical block `lba`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the device capacity.
    pub fn block_read(&self, lba: u64, count: usize, cat: Category) -> Vec<u8> {
        assert!(
            lba + count as u64 <= self.logical_pages(),
            "block_read beyond device capacity"
        );
        let page_size = self.cfg.page_size;
        let mut out = Vec::with_capacity(count * page_size);
        if count == 0 {
            return out;
        }
        self.stats.record_host(
            Direction::Read,
            cat,
            Interface::Block,
            (count * page_size) as u64,
        );
        let mut cost =
            self.cfg.nvme_overhead_ns + self.cfg.transfer_ns(count * page_size, true);
        let mut flash_reads = 0usize;
        let mut unit = self.flash.lock();
        for i in 0..count as u64 {
            let lpa = lba + i;
            match self.mode {
                DramMode::WriteLog => {
                    let (mut page, ns) = unit.ftl.read_page(lpa, &self.stats, false);
                    if ns > 0 {
                        flash_reads += 1;
                    }
                    self.log.merge_into(lpa, &mut page);
                    out.extend_from_slice(&page);
                }
                DramMode::PageCache => match unit.cache.get(lpa) {
                    Some(p) => out.extend_from_slice(&p),
                    None => {
                        let (page, _) = unit.ftl.read_page(lpa, &self.stats, false);
                        flash_reads += 1;
                        cost += self.cache_insert(&mut unit, lpa, page.clone(), false);
                        out.extend_from_slice(&page);
                    }
                },
            }
        }
        drop(unit);
        // Flash reads proceed channel-parallel.
        if flash_reads > 0 {
            cost += flash_reads.div_ceil(self.cfg.channels) as u64 * self.cfg.flash_read_ns;
        }
        self.charge(cost);
        out
    }

    /// Writes whole blocks starting at logical block `lba`. `data` length must
    /// be a multiple of the page size.
    ///
    /// The write is acknowledged once it reaches device DRAM (write buffer or
    /// cache); durability to flash is forced by [`Mssd::flush`].
    ///
    /// # Panics
    ///
    /// Panics if `data` is not page-aligned in length or the range exceeds the
    /// device capacity.
    pub fn block_write(&self, lba: u64, data: &[u8], cat: Category) {
        let page_size = self.cfg.page_size;
        assert!(
            data.len().is_multiple_of(page_size) && !data.is_empty(),
            "block_write length must be a non-zero multiple of the page size"
        );
        let count = data.len() / page_size;
        assert!(
            lba + count as u64 <= self.logical_pages(),
            "block_write beyond device capacity"
        );
        self.stats.record_host(Direction::Write, cat, Interface::Block, data.len() as u64);
        let mut cost = self.cfg.nvme_overhead_ns + self.cfg.transfer_ns(data.len(), false);
        let mut unit = self.flash.lock();
        for i in 0..count {
            let lpa = lba + i as u64;
            let page = data[i * page_size..(i + 1) * page_size].to_vec();
            match self.mode {
                DramMode::WriteLog => {
                    // The host page cache always holds the newest data, so log
                    // entries for this page are stale and dropped (§4.4).
                    self.log.invalidate_page(lpa);
                    cost += unit.ftl.buffer_write(lpa, page, &self.stats);
                }
                DramMode::PageCache => {
                    cost += self.cache_insert(&mut unit, lpa, page, true);
                }
            }
        }
        drop(unit);
        self.charge(cost);
    }

    /// Marks blocks as unused (TRIM). The FS calls this when freeing data
    /// blocks so the FTL stops relocating dead data.
    pub fn trim(&self, lba: u64, count: usize) {
        let mut unit = self.flash.lock();
        for i in 0..count as u64 {
            self.log.invalidate_page(lba + i);
            unit.cache.discard(lba + i);
            unit.ftl.trim(lba + i);
        }
    }

    /// NVMe FLUSH: makes all acknowledged block writes durable on flash.
    /// Block-interface file systems call this on `fsync`.
    pub fn flush(&self) {
        let mut unit = self.flash.lock();
        let mut cost = 0;
        if self.mode == DramMode::PageCache {
            let dirty = unit.cache.drain_dirty();
            for (lpa, page) in dirty {
                cost += unit.ftl.buffer_write(lpa, page, &self.stats);
            }
        }
        cost += unit.ftl.flush_buffer(&self.stats);
        drop(unit);
        cost += self.cfg.nvme_overhead_ns;
        self.charge(cost);
    }

    // ------------------------------------------------------------------
    // Transactions and recovery (WriteLog mode)
    // ------------------------------------------------------------------

    /// Custom NVMe command `COMMIT(TxID)`: appends a commit record to the
    /// firmware TxLog. Transactional byte writes become durable (redo-able)
    /// once their TxID is committed.
    ///
    /// # Panics
    ///
    /// Panics if the device is not in [`DramMode::WriteLog`].
    pub fn commit(&self, txid: TxId) {
        assert_eq!(self.mode, DramMode::WriteLog, "COMMIT requires the write-log firmware");
        let mut cost = self.cfg.nvme_overhead_ns;
        // Concurrent committers can refill the TxLog between our cleaning
        // pass (which clears it) and the retry, so loop rather than assume
        // one retry suffices; dropping a commit record would silently lose
        // the transaction at recovery.
        let mut attempts = 0;
        while !self.txlog.lock().commit(txid) {
            // TxLog full: clean synchronously (which clears it), then retry.
            cost += self.clean_log(true);
            attempts += 1;
            assert!(attempts < 64, "TxLog still full after repeated cleaning");
        }
        self.stats.inc_tx_commits();
        self.charge(cost);
    }

    /// Whether a transaction has a commit record in the firmware TxLog.
    pub fn is_committed(&self, txid: TxId) -> bool {
        self.txlog.lock().is_committed(txid)
    }

    /// Forces a full log-cleaning pass in the foreground (used by unmount and
    /// by tests). Charges the cleaning latency.
    pub fn force_clean(&self) {
        let cost = self.clean_log(true);
        self.charge(cost);
    }

    /// Simulates a power failure. Device DRAM (write log, TxLog, device cache)
    /// is battery-backed, so nothing device-side is lost; only the host loses
    /// its volatile state. The FTL write buffer is flushed by the
    /// battery-backed capacitor logic, mirroring real SSD behaviour.
    pub fn crash(&self) {
        let mut unit = self.flash.lock();
        if self.mode == DramMode::PageCache {
            let dirty = unit.cache.drain_dirty();
            for (lpa, page) in dirty {
                unit.ftl.buffer_write(lpa, page, &self.stats);
            }
        }
        unit.ftl.flush_buffer(&self.stats);
        // No time is charged: the host is down during the power loss.
    }

    /// Custom NVMe command `RECOVER()`: scans the write log, discards
    /// uncommitted entries, flushes committed entries to flash in TxLog order
    /// and clears the log (§4.7).
    pub fn recover(&self) -> RecoveryReport {
        // Recovery is a stop-the-world command: flash, TxLog, then all log
        // shards (inside drain_for_cleaning), following the global lock order.
        let mut unit = self.flash.lock();
        let mut txlog = self.txlog.lock();
        let start = self.clock.now_ns();
        let scanned = self.log.entries();
        // Loading the device DRAM image + scanning every entry.
        let mut cost = self.cfg.transfer_ns(self.cfg.dram_region_bytes, true);
        cost += scanned as u64 * 120;

        let flash_writes_before = self.stats.flash_writes_total();
        let batch = self.log.drain_for_cleaning(|tx| txlog.is_committed(tx));
        let discarded = batch.migrated.len();
        let mut flush_cost = 0;
        for (lpa, chunks) in &batch.pages {
            flush_cost +=
                Self::apply_chunks_to_flash(&self.cfg, &mut unit.ftl, &self.stats, *lpa, chunks);
        }
        flush_cost += unit.ftl.flush_buffer(&self.stats);
        txlog.clear();
        self.stats.inc_log_cleanings();
        cost += flush_cost;

        let flushed_pages = self.stats.flash_writes_total() - flash_writes_before;
        drop(txlog);
        drop(unit);
        self.charge(cost);
        RecoveryReport {
            scanned_entries: scanned,
            discarded_entries: discarded,
            flushed_pages: flushed_pages as usize,
            duration_ns: self.clock.now_ns() - start,
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Snapshot of traffic counters and firmware state.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            traffic: self.stats.snapshot(),
            now_ns: self.clock.now_ns(),
            log_used_bytes: self.log.used_bytes(),
            log_entries: self.log.entries(),
            cache_dirty_pages: self.flash.lock().cache.dirty_pages(),
        }
    }

    /// Current traffic counters (convenience wrapper over [`Mssd::snapshot`]).
    pub fn traffic(&self) -> TrafficCounter {
        self.stats.snapshot()
    }

    /// Resets the traffic counters (the clock keeps running).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    // ------------------------------------------------------------------
    // Internal helpers
    // ------------------------------------------------------------------

    /// Appends one chunk to the sharded write log, cleaning synchronously when
    /// the region is full. Returns the foreground cost.
    fn log_append(&self, lpa: Lpa, offset: usize, data: &[u8], txid: Option<TxId>) -> u64 {
        let mut cost = 0;
        // Under concurrency another writer may re-fill the region between our
        // failed append and the retry, so loop; a bounded number of attempts
        // distinguishes contention from an entry that can never fit.
        for _ in 0..64 {
            match self.log.append(lpa, offset, data, txid) {
                Ok(()) => return cost,
                Err(_) => {
                    // The log is completely full: the writer stalls behind a
                    // synchronous cleaning pass.
                    cost += self.clean_log(true);
                }
            }
        }
        panic!("write-log entry of {} bytes cannot fit even after cleaning", data.len());
    }

    fn cache_modify(&self, unit: &mut FlashUnit, lpa: Lpa, offset: usize, data: &[u8]) -> u64 {
        let mut cost = 0;
        if !unit.cache.modify(lpa, offset, data) {
            // Miss: fetch the backing page, apply the modification, cache it.
            let (mut page, ns) = unit.ftl.read_page(lpa, &self.stats, false);
            cost += ns;
            page[offset..offset + data.len()].copy_from_slice(data);
            cost += self.cache_insert(unit, lpa, page, true);
        }
        cost
    }

    fn cache_insert(&self, unit: &mut FlashUnit, lpa: Lpa, page: Vec<u8>, dirty: bool) -> u64 {
        let mut cost = 0;
        let evicted = unit.cache.insert(lpa, page, dirty);
        for (victim, data) in evicted {
            cost += unit.ftl.buffer_write(victim, data, &self.stats);
        }
        cost
    }

    /// Read-modify-write of one flash page from a set of committed log chunks
    /// (Algorithm 1, lines 3-11). Returns the foreground cost.
    fn apply_chunks_to_flash(
        cfg: &MssdConfig,
        ftl: &mut Ftl,
        stats: &AtomicTraffic,
        lpa: Lpa,
        chunks: &[crate::log::ChunkEntry],
    ) -> u64 {
        let mut cost = 0;
        let covered: usize = {
            // Cheap full-coverage check: distinct bytes covered.
            let mut ranges: Vec<(usize, usize)> =
                chunks.iter().map(|c| (c.offset, c.end())).collect();
            ranges.sort_unstable();
            let mut total = 0;
            let mut covered_to = 0usize;
            for (s, e) in ranges {
                let s = s.max(covered_to);
                if e > s {
                    total += e - s;
                    covered_to = e;
                }
            }
            total
        };
        let partial = covered < cfg.page_size;
        let mut page = if partial && ftl.is_mapped(lpa) {
            let (page, ns) = ftl.read_page(lpa, stats, true);
            cost += ns;
            page
        } else {
            vec![0u8; cfg.page_size]
        };
        for c in chunks {
            page[c.offset..c.end()].copy_from_slice(&c.data);
        }
        cost += ftl.buffer_write(lpa, page, stats);
        cost
    }

    /// Full log-cleaning pass (Algorithm 1). When `foreground` is false the
    /// flash work is recorded in the traffic counters but no latency is
    /// charged — the paper performs cleaning in the background with double
    /// buffering so it stays off the critical path.
    ///
    /// Takes flash, then the TxLog, then (inside the drain) every log shard —
    /// the global lock order — so concurrent writers simply queue behind the
    /// drain, mirroring the paper's stop-and-switch log regions.
    fn clean_log(&self, foreground: bool) -> u64 {
        let mut unit = self.flash.lock();
        let mut txlog = self.txlog.lock();
        let batch = self.log.drain_for_cleaning(|tx| txlog.is_committed(tx));
        if batch.pages.is_empty() && batch.migrated.is_empty() {
            return 0;
        }
        let mut cost = 0;
        for (lpa, chunks) in &batch.pages {
            cost +=
                Self::apply_chunks_to_flash(&self.cfg, &mut unit.ftl, &self.stats, *lpa, chunks);
        }
        cost += unit.ftl.flush_buffer(&self.stats);
        self.log.reinstate(batch.migrated);
        txlog.clear();
        self.stats.inc_log_cleanings();
        if foreground {
            cost
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(mode: DramMode) -> Arc<Mssd> {
        Mssd::new(MssdConfig::small_test(), mode)
    }

    #[test]
    fn byte_write_read_roundtrip_writelog() {
        let d = dev(DramMode::WriteLog);
        d.byte_write(4096 + 128, &[0xAAu8; 64], None, Category::Inode);
        let back = d.byte_read(4096 + 128, 64, Category::Inode);
        assert_eq!(back, vec![0xAA; 64]);
        let snap = d.snapshot();
        assert!(snap.log_entries >= 1);
        assert_eq!(snap.traffic.host_bytes_by_category(Direction::Write, Category::Inode), 64);
    }

    #[test]
    fn byte_write_read_roundtrip_pagecache() {
        let d = dev(DramMode::PageCache);
        d.byte_write(8192 + 64, &[0x5Au8; 128], None, Category::Dentry);
        let back = d.byte_read(8192 + 64, 128, Category::Dentry);
        assert_eq!(back, vec![0x5A; 128]);
        assert_eq!(d.snapshot().log_entries, 0, "page-cache mode must not use the log");
    }

    #[test]
    fn byte_write_across_page_boundary() {
        let d = dev(DramMode::WriteLog);
        let addr = 4096 - 32;
        let data: Vec<u8> = (0..64u8).collect();
        d.byte_write(addr, &data, None, Category::Data);
        assert_eq!(d.byte_read(addr, 64, Category::Data), data);
    }

    #[test]
    fn block_write_then_block_read() {
        let d = dev(DramMode::WriteLog);
        let page = vec![7u8; 4096];
        d.block_write(3, &page, Category::Data);
        let back = d.block_read(3, 1, Category::Data);
        assert_eq!(back, page);
    }

    #[test]
    fn block_read_merges_log_entries() {
        let d = dev(DramMode::WriteLog);
        let page = vec![1u8; 4096];
        d.block_write(5, &page, Category::Data);
        d.flush();
        // Byte-granular update of 64 bytes at offset 256 of block 5.
        d.byte_write(5 * 4096 + 256, &[9u8; 64], None, Category::Data);
        let back = d.block_read(5, 1, Category::Data);
        assert_eq!(&back[..256], &vec![1u8; 256][..]);
        assert_eq!(&back[256..320], &[9u8; 64][..]);
        assert_eq!(&back[320..], &vec![1u8; 4096 - 320][..]);
    }

    #[test]
    fn block_write_invalidates_stale_log_entries() {
        let d = dev(DramMode::WriteLog);
        d.byte_write(7 * 4096, &[3u8; 64], None, Category::Data);
        assert!(d.snapshot().log_entries >= 1);
        d.block_write(7, &vec![8u8; 4096], Category::Data);
        assert_eq!(d.snapshot().log_entries, 0);
        assert_eq!(d.block_read(7, 1, Category::Data), vec![8u8; 4096]);
    }

    #[test]
    fn transactional_write_durable_only_after_commit() {
        let d = dev(DramMode::WriteLog);
        let tx_committed = TxId(1);
        let tx_lost = TxId(2);
        d.byte_write(4096, &[0xC0u8; 64], Some(tx_committed), Category::Inode);
        d.byte_write(8192, &[0xDDu8; 64], Some(tx_lost), Category::Inode);
        d.commit(tx_committed);
        d.crash();
        let report = d.recover();
        assert_eq!(report.discarded_entries, 1);
        assert!(report.flushed_pages >= 1);
        assert!(report.duration_ns > 0);
        // The committed write survived, the uncommitted one reads as zero.
        assert_eq!(d.byte_read(4096, 64, Category::Inode), vec![0xC0; 64]);
        assert_eq!(d.byte_read(8192, 64, Category::Inode), vec![0u8; 64]);
    }

    #[test]
    fn clock_advances_with_latency_model() {
        let d = dev(DramMode::WriteLog);
        let t0 = d.clock().now_ns();
        d.byte_write(0, &[1u8; 64], None, Category::Bitmap);
        let t1 = d.clock().now_ns();
        assert!(t1 - t0 >= d.config().byte_write_ns);
        d.byte_read(0, 64, Category::Bitmap);
        let t2 = d.clock().now_ns();
        assert!(t2 - t1 >= d.config().byte_read_ns);
        // Block read of an unmapped page: no flash access, just transfer+overhead.
        d.block_read(100, 1, Category::Data);
        let t3 = d.clock().now_ns();
        assert!(t3 - t2 >= d.config().nvme_overhead_ns);
    }

    #[test]
    fn flush_makes_buffered_block_writes_durable() {
        let d = dev(DramMode::WriteLog);
        d.block_write(0, &vec![4u8; 4096], Category::Journal);
        let before = d.traffic().flash_write_pages;
        d.flush();
        let after = d.traffic().flash_write_pages;
        assert!(after > before, "flush must program buffered pages");
    }

    #[test]
    fn pagecache_mode_flush_writes_dirty_pages() {
        let d = dev(DramMode::PageCache);
        d.block_write(1, &vec![2u8; 4096], Category::Data);
        assert!(d.snapshot().cache_dirty_pages >= 1);
        d.flush();
        assert_eq!(d.snapshot().cache_dirty_pages, 0);
        assert!(d.traffic().flash_write_pages >= 1);
    }

    #[test]
    fn log_overflow_triggers_cleaning() {
        let mut cfg = MssdConfig::small_test();
        cfg.dram_region_bytes = 16 << 10; // tiny 16 KB log
        let d = Mssd::new(cfg, DramMode::WriteLog);
        // Write far more than the log holds.
        for i in 0..1000u64 {
            d.byte_write((i % 512) * 64, &[i as u8; 64], None, Category::Data);
        }
        let t = d.traffic();
        assert!(t.log_cleanings > 0, "cleaning should have run");
        assert!(t.flash_write_pages + t.flash_internal_write_pages > 0);
    }

    #[test]
    fn coordinated_caching_keeps_block_reads_out_of_device_dram() {
        let d = dev(DramMode::WriteLog);
        d.block_write(9, &vec![1u8; 4096], Category::Data);
        d.flush();
        d.block_read(9, 1, Category::Data);
        let first = d.traffic().flash_read_pages;
        d.block_read(9, 1, Category::Data);
        let second = d.traffic().flash_read_pages;
        assert_eq!(second, first + 1, "write-log firmware must not cache read pages");

        let d2 = dev(DramMode::PageCache);
        d2.block_write(9, &vec![1u8; 4096], Category::Data);
        d2.flush();
        d2.block_read(9, 1, Category::Data);
        let first = d2.traffic().flash_read_pages;
        d2.block_read(9, 1, Category::Data);
        let second = d2.traffic().flash_read_pages;
        assert_eq!(second, first, "page-cache firmware serves repeat reads from DRAM");
    }

    #[test]
    fn trim_drops_state_everywhere() {
        let d = dev(DramMode::WriteLog);
        d.block_write(11, &vec![6u8; 4096], Category::Data);
        d.flush();
        d.byte_write(11 * 4096, &[7u8; 64], None, Category::Data);
        d.trim(11, 1);
        assert_eq!(d.block_read(11, 1, Category::Data), vec![0u8; 4096]);
    }

    #[test]
    #[should_panic(expected = "beyond device capacity")]
    fn byte_write_out_of_range_panics() {
        let d = dev(DramMode::WriteLog);
        let cap = d.capacity_bytes();
        d.byte_write(cap - 10, &[0u8; 64], None, Category::Data);
    }

    #[test]
    fn recovery_is_idempotent_when_log_is_empty() {
        let d = dev(DramMode::WriteLog);
        let r1 = d.recover();
        assert_eq!(r1.scanned_entries, 0);
        assert_eq!(r1.flushed_pages, 0);
        let r2 = d.recover();
        assert_eq!(r2.scanned_entries, 0);
    }
}
