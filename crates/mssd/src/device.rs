//! The memory-semantic SSD device: dual byte/block host interface, firmware
//! write log or page cache, transactions and recovery.
//!
//! [`Mssd`] is the single object file systems talk to. It is `Send + Sync`
//! and built so that *both* host interfaces scale with threads instead of
//! serializing on one device-wide lock:
//!
//! * traffic/latency accounting is lock-free ([`AtomicTraffic`] — plain
//!   relaxed atomic adds, never a mutex);
//! * the write-log index is sharded by the paper's first-layer partition key
//!   (LPA / 16 MB) with an independent lock per shard
//!   ([`crate::log::ShardedWriteLog`]), double-buffered into active + sealed
//!   regions per shard;
//! * the flash path is channel-parallel ([`crate::ftl::ShardedFtl`]): a
//!   lock-striped L2P mapping table over per-channel units (active block,
//!   free list, page store, write-buffer slice), so programs/reads on
//!   distinct channels proceed concurrently in real time — not just in the
//!   virtual-latency model;
//! * in baseline mode the device page cache is lock-striped by LPA
//!   ([`crate::dram_cache::ShardedDramCache`]);
//! * the firmware TxLog has its own small mutex, so `COMMIT` does not block
//!   writers;
//! * host requests can enter through NVMe-style submission/completion queue
//!   pairs ([`Mssd::open_queue`] / [`crate::queue::HostQueue`]) with batched
//!   doorbells that coalesce adjacent byte writes before they hit the log;
//!   every synchronous method below is a **depth-1 shim** over the same
//!   command executor, attributed to queue accounting slot 0 (or the
//!   thread's ambient queue).
//!
//! **Log cleaning is a background activity** (the paper's double-buffered
//! design): when the log crosses its utilization threshold, a dedicated
//! cleaner thread seals each shard's active region (a brief per-shard flip)
//! and drains the sealed regions to flash page by page, holding only one
//! shard lock at a time. Foreground writers keep appending to the fresh
//! active regions and are charged no cleaning latency. Only when space
//! admission fails outright (the log is completely full) does the writer
//! fall back to reclaiming in the foreground — first by draining sealed
//! pages itself, then, if nothing is drainable, via a stop-the-world pass.
//! Recovery and `force_clean` remain stop-the-world.
//!
//! Lock order (to avoid deadlock):
//! **log shard → txlog → flash channel → L2P stripe**, and in baseline mode
//! **cache shard → flash channel → L2P stripe**. Any operation that takes
//! more than one of these acquires them in that order. Log shards are locked
//! one at a time (appends, reads, cleaner steps) or all of them in ascending
//! index order (stop-the-world drain); flash channel locks are only ever
//! held two at once inside `ShardedFtl::migrate_buffered`, in ascending
//! index order; L2P stripes are leaf locks. The cleaner-thread signalling
//! mutex is independent and never held across any of the above.
//!
//! Concurrency contract: individual operations are thread-safe, but a
//! multi-page request is atomic only **per page-sized chunk**, not as a
//! whole — a concurrent reader of a range another thread is writing may see
//! some pages new and some old. This mirrors real dual-interface hardware
//! (MMIO gives at most cacheline atomicity; NVMe gives per-command, not
//! cross-command, ordering). Callers needing cross-page atomicity use
//! transactions (`txid` + `COMMIT`).
//!
//! Every operation advances the shared virtual [`Clock`] by the modelled
//! latency and records traffic in the device's [`AtomicTraffic`].
//!
//! The firmware behaviour depends on [`DramMode`]:
//!
//! * [`DramMode::WriteLog`] — the ByteFS firmware of §4.3: byte writes append
//!   to the log-structured write log, block writes invalidate log entries and
//!   go through the FTL write buffer, flash pages are *not* cached in device
//!   DRAM (coordinated caching), and `COMMIT`/`RECOVER` are supported.
//! * [`DramMode::PageCache`] — an unmodified M-SSD as used by the baseline
//!   file systems: the same DRAM budget acts as a page-granular write-back
//!   cache serving both interfaces.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::clock::Clock;
use crate::config::MssdConfig;
use crate::dram_cache::{DramPageCache, ShardedDramCache};
use crate::fault::{FaultKind, FaultPlan};
use crate::flash::{BlockId, FlashError};
use crate::ftl::{Lpa, ShardedFtl};
use crate::log::{ChunkEntry, LogEntryImage, SealedStep, ShardedWriteLog, LOG_SHARDS};
use crate::queue::HostQueue;
use crate::stats::{
    AtomicTraffic, Category, Direction, Interface, StatsSnapshot, TrafficCounter, QUEUE_SLOTS,
};
use crate::txn::{TxId, TxLog};

/// How the firmware manages the device DRAM region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DramMode {
    /// Log-structured write log + coordinated caching (ByteFS firmware).
    WriteLog,
    /// Conventional page-granular write-back cache (baseline firmware).
    PageCache,
}

/// Summary of a `RECOVER()` command (§4.7 / §5.5).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Log entries scanned during recovery.
    pub scanned_entries: usize,
    /// Entries discarded because their transaction never committed.
    pub discarded_entries: usize,
    /// Flash pages written while flushing committed entries.
    pub flushed_pages: usize,
    /// Virtual time the recovery took, in nanoseconds.
    pub duration_ns: u64,
}

/// The durable state of a device at a power-failure instant: exactly what a
/// real M-SSD keeps across power loss — NAND contents plus battery-backed
/// device DRAM (write log, TxLog, FTL write buffer, device page cache).
/// Produced by [`Mssd::crash_image`], consumed by [`Mssd::from_crash_image`].
///
/// Crash harnesses may mutate an image before restoring it to model
/// violations of the battery assumption (e.g. clearing `buffered_pages`
/// models a failed capacitor flush, truncating `txlog` models torn commit
/// records); the crashkit checkers must then catch the resulting
/// inconsistency.
#[derive(Debug, Clone)]
pub struct CrashImage {
    /// Firmware mode the image was captured in.
    pub mode: DramMode,
    /// Write-log entries (battery-backed DRAM), sorted by `(lpa, seq)`.
    pub log_entries: Vec<LogEntryImage>,
    /// The log's next sequence number.
    pub log_seq: u64,
    /// Committed TxIDs in commit order (battery-backed TxLog).
    pub txlog: Vec<TxId>,
    /// Logical pages programmed on NAND, sorted by LPA.
    pub flash_pages: Vec<(Lpa, Vec<u8>)>,
    /// Pages accepted into the FTL write buffer but not yet programmed
    /// (battery-backed; a real device flushes them from capacitor power).
    pub buffered_pages: Vec<(Lpa, Vec<u8>)>,
    /// Dirty pages of the device page cache (baseline mode; battery-backed).
    pub cache_pages: Vec<(Lpa, Vec<u8>)>,
    /// Retired (bad) physical blocks, sorted. The bad-block table is part of
    /// the durable state: a real device persists it in NAND metadata so a
    /// power cycle never re-issues programs to a block that failed one.
    pub bad_blocks: Vec<BlockId>,
}

impl CrashImage {
    /// Order-independent-stable FNV-1a digest over the full durable state.
    /// Two identical crash states always digest equal (the collections are
    /// sorted at capture), which is what the determinism tests pin.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x1000_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                h ^= u64::from(*b);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(&[self.mode as u8]);
        eat(&self.log_seq.to_le_bytes());
        // Every variable-length field is length-prefixed and every
        // collection count-prefixed, so field/entry boundaries cannot
        // alias between two different images.
        eat(&(self.log_entries.len() as u64).to_le_bytes());
        for e in &self.log_entries {
            eat(&e.lpa.to_le_bytes());
            eat(&(e.offset as u64).to_le_bytes());
            eat(&e.seq.to_le_bytes());
            eat(&[u8::from(e.sealed), u8::from(e.txid.is_some())]);
            eat(&e.txid.map(|t| t.0).unwrap_or(0).to_le_bytes());
            eat(&(e.data.len() as u64).to_le_bytes());
            eat(&e.data);
        }
        eat(&(self.txlog.len() as u64).to_le_bytes());
        for tx in &self.txlog {
            eat(&tx.0.to_le_bytes());
        }
        for set in [&self.flash_pages, &self.buffered_pages, &self.cache_pages] {
            eat(&(set.len() as u64).to_le_bytes());
            for (lpa, data) in set.iter() {
                eat(&lpa.to_le_bytes());
                eat(data);
            }
        }
        eat(&(self.bad_blocks.len() as u64).to_le_bytes());
        for b in &self.bad_blocks {
            eat(&b.to_le_bytes());
        }
        h
    }

    /// One-line summary for reports, e.g. counts of each captured component.
    pub fn summary(&self) -> String {
        format!(
            "{} log entries, {} commits, {} flash pages, {} buffered, {} cached-dirty, {} bad blocks",
            self.log_entries.len(),
            self.txlog.len(),
            self.flash_pages.len(),
            self.buffered_pages.len(),
            self.cache_pages.len(),
            self.bad_blocks.len()
        )
    }
}

/// Pages the background cleaner merges per shard-lock acquisition. Small, so
/// a writer that collides with the cleaner on one shard waits for at most a
/// few page merges, not a whole region drain.
const CLEANER_PAGES_PER_STEP: usize = 8;

/// Signalling state shared between the device and its cleaner thread. Uses
/// `std::sync` because the vendored `parking_lot` has no `Condvar`; this
/// mutex is independent of the data-path lock order and is never held across
/// any data-path lock.
#[derive(Debug, Default)]
struct CleanerShared {
    state: StdMutex<CleanerState>,
    /// Signalled when there is cleaning work (or shutdown).
    kick: Condvar,
    /// Signalled when the cleaner finishes a pass (for quiesce).
    idle: Condvar,
    /// Contention filter for [`Mssd::kick_cleaner`]: writers above the log
    /// threshold kick on every byte write, and without this flag they would
    /// all re-serialize on the signalling mutex. `true` means a kick is
    /// already in flight; the cleaner clears it when it starts a pass.
    kick_pending: AtomicBool,
}

#[derive(Debug, Default)]
struct CleanerState {
    pending: bool,
    shutdown: bool,
    busy: bool,
}

/// Everything the cleaner thread needs, by `Arc` — it deliberately does not
/// hold the `Mssd` itself, so dropping the last device handle (which joins
/// the thread) cannot cycle.
struct CleanerCtx {
    cfg: MssdConfig,
    log: Arc<ShardedWriteLog>,
    flash: Arc<ShardedFtl>,
    txlog: Arc<Mutex<TxLog>>,
    stats: Arc<AtomicTraffic>,
    shared: Arc<CleanerShared>,
}

struct CleanerHandle {
    shared: Arc<CleanerShared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

/// The memory-semantic SSD device model.
pub struct Mssd {
    cfg: MssdConfig,
    mode: DramMode,
    clock: Arc<Clock>,
    stats: Arc<AtomicTraffic>,
    log: Arc<ShardedWriteLog>,
    txlog: Arc<Mutex<TxLog>>,
    flash: Arc<ShardedFtl>,
    cache: ShardedDramCache,
    cleaner: Option<CleanerHandle>,
    /// Monotonic counter handing out per-queue accounting slots
    /// (see [`Mssd::open_queue`]).
    next_queue: AtomicUsize,
}

impl std::fmt::Debug for Mssd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mssd")
            .field("capacity_bytes", &self.cfg.capacity_bytes)
            .field("mode", &self.mode)
            .field("now_ns", &self.clock.now_ns())
            .finish()
    }
}

impl Mssd {
    /// Creates a device with the given configuration and firmware mode.
    ///
    /// In [`DramMode::WriteLog`] with `cfg.background_cleaning` set (the
    /// default), this spawns the background log-cleaner thread; it is joined
    /// when the last `Arc<Mssd>` is dropped.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`MssdConfig::validate`]).
    pub fn new(cfg: MssdConfig, mode: DramMode) -> Arc<Self> {
        Self::with_clock(cfg, mode, Clock::new())
    }

    /// Creates a device sharing an existing clock (so host-side costs and
    /// device costs accumulate on the same timeline).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn with_clock(cfg: MssdConfig, mode: DramMode, clock: Arc<Clock>) -> Arc<Self> {
        if let Err(msg) = cfg.validate() {
            panic!("invalid MssdConfig: {msg}");
        }
        let log = Arc::new(ShardedWriteLog::new(&cfg));
        let flash = Arc::new(ShardedFtl::new(cfg.clone()));
        let txlog = Arc::new(Mutex::new(TxLog::new(cfg.txlog_bytes)));
        let stats = Arc::new(AtomicTraffic::new());
        stats.trace().attach_clock(Arc::clone(&clock));
        stats.set_ras_spares_remaining(flash.spares_remaining() as u64);
        let cache = ShardedDramCache::new(cfg.dram_region_bytes, cfg.page_size);
        let cleaner = (mode == DramMode::WriteLog && cfg.background_cleaning).then(|| {
            let shared = Arc::new(CleanerShared::default());
            let ctx = CleanerCtx {
                cfg: cfg.clone(),
                log: Arc::clone(&log),
                flash: Arc::clone(&flash),
                txlog: Arc::clone(&txlog),
                stats: Arc::clone(&stats),
                shared: Arc::clone(&shared),
            };
            let thread = std::thread::Builder::new()
                .name("mssd-log-cleaner".into())
                .spawn(move || cleaner_main(ctx))
                .expect("spawn log-cleaner thread");
            CleanerHandle { shared, thread: Some(thread) }
        });
        Arc::new(Self {
            cfg,
            mode,
            clock,
            stats,
            log,
            txlog,
            flash,
            cache,
            cleaner,
            next_queue: AtomicUsize::new(0),
        })
    }

    /// Opens a new host submission/completion queue pair of the given depth
    /// (see [`crate::queue::HostQueue`]). Accounting slots `1..QUEUE_SLOTS`
    /// are assigned round-robin; slot 0 is reserved for the synchronous
    /// depth-1 shim.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn open_queue(self: &Arc<Self>, depth: usize) -> HostQueue {
        let n = self.next_queue.fetch_add(1, Ordering::Relaxed);
        let id = 1 + (n % (QUEUE_SLOTS - 1)) as u16;
        HostQueue::new(Arc::clone(self), id, depth)
    }

    /// The device's lock-free stats bank (used by the queue machinery).
    pub(crate) fn stats_ref(&self) -> &AtomicTraffic {
        &self.stats
    }

    /// The device's trace sink (see [`crate::trace`]). Drain it after a
    /// traced run to export Perfetto JSON or a text op trace.
    pub fn trace_sink(&self) -> &crate::trace::TraceSink {
        self.stats.trace()
    }

    /// Turns structured event tracing on or off. Off (the default) costs one
    /// relaxed atomic load per instrumentation point; tracing never advances
    /// the virtual clock or changes simulated behavior either way.
    pub fn set_tracing(&self, on: bool) {
        self.stats.trace().set_enabled(on);
    }

    /// The device configuration.
    pub fn config(&self) -> &MssdConfig {
        &self.cfg
    }

    /// The firmware DRAM mode.
    pub fn dram_mode(&self) -> DramMode {
        self.mode
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> Arc<Clock> {
        Arc::clone(&self.clock)
    }

    /// Device capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.cfg.capacity_bytes
    }

    /// Device page size in bytes.
    pub fn page_size(&self) -> usize {
        self.cfg.page_size
    }

    /// Number of logical pages (blocks) exposed through the block interface.
    pub fn logical_pages(&self) -> u64 {
        self.cfg.logical_pages()
    }

    /// Charges `ns` of host-visible device time: advances the shared clock and
    /// accumulates the busy counter. Entirely lock-free.
    fn charge(&self, ns: u64) {
        if ns > 0 {
            self.clock.advance(ns);
            self.stats.add_device_busy_ns(ns);
        }
    }

    // ------------------------------------------------------------------
    // Byte interface (PCIe/CXL MMIO)
    // ------------------------------------------------------------------

    /// Writes `data` at absolute device byte address `addr` through the byte
    /// interface. If `txid` is given the write belongs to that transaction and
    /// becomes durable at commit; otherwise it is treated as immediately
    /// committed.
    ///
    /// In [`DramMode::WriteLog`] this is the sharded hot path: the only lock
    /// taken is the one write-log shard covering each touched partition.
    /// Crossing the cleaning threshold merely kicks the background cleaner;
    /// flash is involved in the foreground only when space admission fails.
    ///
    /// # Panics
    ///
    /// Panics if the address range exceeds the device capacity, or on a
    /// media error (read-only degradation, uncorrectable backing read) — use
    /// [`Mssd::try_byte_write`] to observe those as typed errors.
    pub fn byte_write(&self, addr: u64, data: &[u8], txid: Option<TxId>, cat: Category) {
        match self.try_byte_write(addr, data, txid, cat) {
            Ok(()) => {}
            Err(e) => panic!("byte_write at {addr:#x} failed: {e}"),
        }
    }

    /// Fallible form of [`Mssd::byte_write`].
    ///
    /// # Errors
    ///
    /// [`FlashError::ReadOnly`] once the device has degraded (spare blocks
    /// exhausted); in baseline mode, media errors from the cache's
    /// read-modify-write or dirty-eviction path also propagate.
    pub fn try_byte_write(
        &self,
        addr: u64,
        data: &[u8],
        txid: Option<TxId>,
        cat: Category,
    ) -> Result<(), FlashError> {
        let (status, cost) = self.exec_byte_write(addr, data, txid, cat);
        self.stats.record_queue_op(crate::queue::ambient_queue(), cost);
        status
    }

    /// Executor behind [`Mssd::byte_write`], shared with the batched queue
    /// path; returns the command status and the charged virtual cost.
    pub(crate) fn exec_byte_write(
        &self,
        addr: u64,
        data: &[u8],
        txid: Option<TxId>,
        cat: Category,
    ) -> (Result<(), FlashError>, u64) {
        assert!(
            addr + data.len() as u64 <= self.cfg.capacity_bytes,
            "byte_write beyond device capacity"
        );
        if data.is_empty() {
            return (Ok(()), 0);
        }
        if self.flash.is_read_only() {
            // Degraded device: every mutation is refused with a typed error
            // before any durable side effect.
            return (Err(FlashError::ReadOnly), 0);
        }
        self.stats.record_host(Direction::Write, cat, Interface::Byte, data.len() as u64);
        let mut cost = self.cfg.byte_access_ns(data.len(), false);
        let page_size = self.cfg.page_size as u64;
        let mut off = 0usize;
        while off < data.len() {
            let cur_addr = addr + off as u64;
            let lpa: Lpa = cur_addr / page_size;
            let in_page = (cur_addr % page_size) as usize;
            let span = (self.cfg.page_size - in_page).min(data.len() - off);
            let chunk = &data[off..off + span];
            // One counted fault step per chunk: a power cut mid-write tears
            // the host store at cacheline/page-chunk granularity.
            match self.mode {
                DramMode::WriteLog => {
                    if self.cfg.fault.step(FaultKind::LogAppend) {
                        cost += self.log_append(lpa, in_page, chunk, txid);
                    }
                }
                DramMode::PageCache => {
                    if self.cfg.fault.step(FaultKind::CacheWrite) {
                        match self.cache_write_chunk(lpa, in_page, chunk) {
                            Ok(ns) => cost += ns,
                            Err(e) => {
                                // Chunks before the failure were accepted —
                                // the documented per-chunk atomicity.
                                self.charge(cost);
                                return (Err(e), cost);
                            }
                        }
                    }
                }
            }
            off += span;
        }
        // Crossing the threshold starts background cleaning; with the
        // cleaner disabled, fall back to an inline stop-the-world pass
        // (uncharged, like the background path — the reference behaviour).
        if self.mode == DramMode::WriteLog
            && self.log.needs_cleaning()
            && !self.cfg.fault.is_cut()
            && !self.kick_cleaner()
        {
            self.clean_all(false);
        }
        self.charge(cost);
        (Ok(()), cost)
    }

    /// Reads `len` bytes at absolute device byte address `addr` through the
    /// byte interface.
    ///
    /// Ranges fully covered by write-log entries are served under a single
    /// shard lock; only uncovered ranges touch the FTL (channel-parallel).
    ///
    /// # Panics
    ///
    /// Panics if the address range exceeds the device capacity, or on an
    /// uncorrectable media error — use [`Mssd::try_byte_read`] to observe a
    /// UECC as a typed error.
    pub fn byte_read(&self, addr: u64, len: usize, cat: Category) -> Vec<u8> {
        match self.try_byte_read(addr, len, cat) {
            Ok(data) => data,
            Err(e) => panic!("byte_read at {addr:#x} failed: {e}"),
        }
    }

    /// Fallible form of [`Mssd::byte_read`].
    ///
    /// # Errors
    ///
    /// [`FlashError::Uncorrectable`] when a backing flash page fails ECC
    /// even after the read-retry ladder.
    pub fn try_byte_read(
        &self,
        addr: u64,
        len: usize,
        cat: Category,
    ) -> Result<Vec<u8>, FlashError> {
        let (data, cost) = self.exec_byte_read(addr, len, cat);
        self.stats.record_queue_op(crate::queue::ambient_queue(), cost);
        data
    }

    /// Executor behind [`Mssd::byte_read`], shared with the batched queue
    /// path; returns the payload (or media error) and the charged virtual
    /// cost.
    pub(crate) fn exec_byte_read(
        &self,
        addr: u64,
        len: usize,
        cat: Category,
    ) -> (Result<Vec<u8>, FlashError>, u64) {
        assert!(addr + len as u64 <= self.cfg.capacity_bytes, "byte_read beyond device capacity");
        let mut out = Vec::with_capacity(len);
        if len == 0 {
            return (Ok(out), 0);
        }
        self.stats.record_host(Direction::Read, cat, Interface::Byte, len as u64);
        let mut cost = self.cfg.byte_access_ns(len, true);
        let page_size = self.cfg.page_size as u64;
        let mut off = 0usize;
        while off < len {
            let cur_addr = addr + off as u64;
            let lpa: Lpa = cur_addr / page_size;
            let in_page = (cur_addr % page_size) as usize;
            let span = (self.cfg.page_size - in_page).min(len - off);
            match self.mode {
                DramMode::WriteLog => {
                    // The whole read-through happens under the page's shard
                    // lock, so a concurrent cleaner step on this page cannot
                    // drain entries between the flash fetch and the overlay.
                    // `read_range` expects an infallible fetch, so a media
                    // error is parked outside the closure and re-raised
                    // after the shard lock drops.
                    let mut media_err = None;
                    let (bytes, ns) = self.log.read_range(lpa, in_page, span, || {
                        match self.flash.read_page(lpa, &self.stats, false) {
                            Ok(fetched) => fetched,
                            Err(e) => {
                                media_err = Some(e);
                                (vec![0u8; self.cfg.page_size], 0)
                            }
                        }
                    });
                    cost += ns;
                    if let Some(e) = media_err {
                        self.charge(cost);
                        return (Err(e), cost);
                    }
                    out.extend_from_slice(&bytes);
                }
                DramMode::PageCache => {
                    let mut shard = self.cache.lock_shard(lpa);
                    match shard.get(lpa) {
                        Some(p) => out.extend_from_slice(&p[in_page..in_page + span]),
                        None => {
                            let (page, ns) = match self.flash.read_page(lpa, &self.stats, false) {
                                Ok(fetched) => fetched,
                                Err(e) => {
                                    self.charge(cost);
                                    return (Err(e), cost);
                                }
                            };
                            cost += ns;
                            out.extend_from_slice(&page[in_page..in_page + span]);
                            // A read-miss fill can evict a dirty victim into
                            // the FTL — a durable mutation, skipped once
                            // power is off.
                            if !self.cfg.fault.is_cut() {
                                match self.cache_fill(&mut shard, lpa, page, false) {
                                    Ok(ns) => cost += ns,
                                    Err(e) => {
                                        self.charge(cost);
                                        return (Err(e), cost);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            off += span;
        }
        self.charge(cost);
        (Ok(out), cost)
    }

    /// The persistence barrier a host issues after MMIO writes: a cache-line
    /// flush followed by a zero-length "write-verify read" that forces posted
    /// PCIe writes to complete (§4.2). Charges one byte-interface read
    /// round-trip.
    pub fn persist_barrier(&self) {
        self.charge(self.cfg.byte_read_ns);
    }

    // ------------------------------------------------------------------
    // Block interface (NVMe)
    // ------------------------------------------------------------------

    /// Reads `count` consecutive 4 KB blocks starting at logical block `lba`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the device capacity, or on an
    /// uncorrectable media error — use [`Mssd::try_block_read`] to observe
    /// a UECC as a typed error.
    pub fn block_read(&self, lba: u64, count: usize, cat: Category) -> Vec<u8> {
        match self.try_block_read(lba, count, cat) {
            Ok(data) => data,
            Err(e) => panic!("block_read at lba {lba} failed: {e}"),
        }
    }

    /// Fallible form of [`Mssd::block_read`].
    ///
    /// # Errors
    ///
    /// [`FlashError::Uncorrectable`] when a flash page fails ECC even after
    /// the read-retry ladder.
    pub fn try_block_read(
        &self,
        lba: u64,
        count: usize,
        cat: Category,
    ) -> Result<Vec<u8>, FlashError> {
        let (data, cost) = self.exec_block_read(lba, count, cat);
        self.stats.record_queue_op(crate::queue::ambient_queue(), cost);
        data
    }

    /// Executor behind [`Mssd::block_read`], shared with the batched queue
    /// path; returns the payload (or media error) and the charged virtual
    /// cost.
    pub(crate) fn exec_block_read(
        &self,
        lba: u64,
        count: usize,
        cat: Category,
    ) -> (Result<Vec<u8>, FlashError>, u64) {
        assert!(lba + count as u64 <= self.logical_pages(), "block_read beyond device capacity");
        let page_size = self.cfg.page_size;
        let mut out = Vec::with_capacity(count * page_size);
        if count == 0 {
            return (Ok(out), 0);
        }
        self.stats.record_host(Direction::Read, cat, Interface::Block, (count * page_size) as u64);
        let mut cost = self.cfg.nvme_overhead_ns + self.cfg.transfer_ns(count * page_size, true);
        let mut flash_reads = 0usize;
        for i in 0..count as u64 {
            let lpa = lba + i;
            match self.mode {
                DramMode::WriteLog => {
                    let mut media_err = None;
                    let (page, ns) = self.log.read_range(lpa, 0, page_size, || {
                        match self.flash.read_page(lpa, &self.stats, false) {
                            Ok(fetched) => fetched,
                            Err(e) => {
                                media_err = Some(e);
                                (vec![0u8; page_size], 0)
                            }
                        }
                    });
                    if let Some(e) = media_err {
                        self.charge(cost);
                        return (Err(e), cost);
                    }
                    if ns > 0 {
                        flash_reads += 1;
                    }
                    out.extend_from_slice(&page);
                }
                DramMode::PageCache => {
                    let mut shard = self.cache.lock_shard(lpa);
                    match shard.get(lpa) {
                        Some(p) => out.extend_from_slice(&p),
                        None => {
                            let (page, _) = match self.flash.read_page(lpa, &self.stats, false) {
                                Ok(fetched) => fetched,
                                Err(e) => {
                                    self.charge(cost);
                                    return (Err(e), cost);
                                }
                            };
                            flash_reads += 1;
                            out.extend_from_slice(&page);
                            if !self.cfg.fault.is_cut() {
                                match self.cache_fill(&mut shard, lpa, page, false) {
                                    Ok(ns) => cost += ns,
                                    Err(e) => {
                                        self.charge(cost);
                                        return (Err(e), cost);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        // Flash reads proceed channel-parallel.
        if flash_reads > 0 {
            cost += flash_reads.div_ceil(self.cfg.channels) as u64 * self.cfg.flash_read_ns;
        }
        self.charge(cost);
        (Ok(out), cost)
    }

    /// Writes whole blocks starting at logical block `lba`. `data` length must
    /// be a multiple of the page size.
    ///
    /// The write is acknowledged once it reaches device DRAM (write buffer or
    /// cache); durability to flash is forced by [`Mssd::flush`].
    ///
    /// # Panics
    ///
    /// Panics if `data` is not page-aligned in length or the range exceeds
    /// the device capacity, or on a media error (read-only degradation) —
    /// use [`Mssd::try_block_write`] to observe those as typed errors.
    pub fn block_write(&self, lba: u64, data: &[u8], cat: Category) {
        match self.try_block_write(lba, data, cat) {
            Ok(()) => {}
            Err(e) => panic!("block_write at lba {lba} failed: {e}"),
        }
    }

    /// Fallible form of [`Mssd::block_write`].
    ///
    /// # Errors
    ///
    /// [`FlashError::ReadOnly`] once the device has degraded (spare blocks
    /// exhausted). Pages before the failing one were accepted — the
    /// documented per-page atomicity of multi-page commands.
    pub fn try_block_write(&self, lba: u64, data: &[u8], cat: Category) -> Result<(), FlashError> {
        let (status, cost) = self.exec_block_write(lba, data, cat);
        self.stats.record_queue_op(crate::queue::ambient_queue(), cost);
        status
    }

    /// Executor behind [`Mssd::block_write`], shared with the batched queue
    /// path; returns the command status and the charged virtual cost.
    pub(crate) fn exec_block_write(
        &self,
        lba: u64,
        data: &[u8],
        cat: Category,
    ) -> (Result<(), FlashError>, u64) {
        let page_size = self.cfg.page_size;
        assert!(
            data.len().is_multiple_of(page_size) && !data.is_empty(),
            "block_write length must be a non-zero multiple of the page size"
        );
        let count = data.len() / page_size;
        assert!(lba + count as u64 <= self.logical_pages(), "block_write beyond device capacity");
        if self.flash.is_read_only() {
            return (Err(FlashError::ReadOnly), 0);
        }
        self.stats.record_host(Direction::Write, cat, Interface::Block, data.len() as u64);
        let mut cost = self.cfg.nvme_overhead_ns + self.cfg.transfer_ns(data.len(), false);
        // Journal pages are counted as their own fault kind: torn journal
        // writes are the classic crash-consistency hazard the block file
        // systems defend against.
        let kind =
            if cat == Category::Journal { FaultKind::JournalWrite } else { FaultKind::BufferWrite };
        for i in 0..count {
            let lpa = lba + i as u64;
            // One counted fault step per page: a cut tears multi-page block
            // writes at page granularity (pages before the cut are
            // acknowledged into device DRAM, pages after never arrive).
            if !self.cfg.fault.step(kind) {
                break;
            }
            let page = data[i * page_size..(i + 1) * page_size].to_vec();
            match self.mode {
                DramMode::WriteLog => {
                    // The host page cache always holds the newest data, so log
                    // entries for this page are stale and dropped (§4.4) —
                    // atomically with the buffer write, under the shard lock,
                    // so a cleaner step cannot merge a drained stale chunk on
                    // top of the fresh block data. `invalidate_page_and`
                    // expects an infallible action, so a media error is
                    // parked outside the closure and re-raised after it.
                    let mut media_err = None;
                    let (_, ns) = self.log.invalidate_page_and(lpa, || {
                        match self.flash.buffer_write(lpa, page, &self.stats) {
                            Ok(ns) => ns,
                            Err(e) => {
                                media_err = Some(e);
                                0
                            }
                        }
                    });
                    cost += ns;
                    if let Some(e) = media_err {
                        self.charge(cost);
                        return (Err(e), cost);
                    }
                }
                DramMode::PageCache => {
                    let mut shard = self.cache.lock_shard(lpa);
                    match self.cache_fill(&mut shard, lpa, page, true) {
                        Ok(ns) => cost += ns,
                        Err(e) => {
                            self.charge(cost);
                            return (Err(e), cost);
                        }
                    }
                }
            }
        }
        self.charge(cost);
        (Ok(()), cost)
    }

    /// Marks blocks as unused (TRIM). The FS calls this when freeing data
    /// blocks so the FTL stops relocating dead data.
    pub fn trim(&self, lba: u64, count: usize) {
        let cost = self.exec_trim(lba, count);
        self.stats.record_queue_op(crate::queue::ambient_queue(), cost);
    }

    /// Executor behind [`Mssd::trim`], shared with the batched queue path.
    /// TRIM charges no host-visible latency; returns 0.
    pub(crate) fn exec_trim(&self, lba: u64, count: usize) -> u64 {
        if self.cfg.fault.is_cut() {
            return 0; // power off: the TRIM never reaches the device
        }
        for i in 0..count as u64 {
            let lpa = lba + i;
            match self.mode {
                DramMode::WriteLog => {
                    self.log.invalidate_page_and(lpa, || self.flash.trim(lpa));
                }
                DramMode::PageCache => {
                    self.cache.discard(lpa);
                    self.flash.trim(lpa);
                }
            }
        }
        0
    }

    /// NVMe FLUSH: makes all acknowledged block writes durable on flash.
    /// Block-interface file systems call this on `fsync`.
    ///
    /// # Panics
    ///
    /// Panics on a media error (read-only degradation while pages were
    /// still buffered) — use [`Mssd::try_flush`] for the typed error.
    pub fn flush(&self) {
        match self.try_flush() {
            Ok(()) => {}
            Err(e) => panic!("flush failed: {e}"),
        }
    }

    /// Fallible form of [`Mssd::flush`].
    ///
    /// # Errors
    ///
    /// [`FlashError::ReadOnly`] when buffered pages can no longer be
    /// programmed because the device degraded; they stay in the
    /// battery-backed buffer.
    pub fn try_flush(&self) -> Result<(), FlashError> {
        let (status, cost) = self.exec_flush();
        self.stats.record_queue_op(crate::queue::ambient_queue(), cost);
        status
    }

    /// Executor behind [`Mssd::flush`], shared with the batched queue path;
    /// returns the command status and the charged virtual cost.
    pub(crate) fn exec_flush(&self) -> (Result<(), FlashError>, u64) {
        if self.cfg.fault.is_cut() {
            return (Ok(()), 0); // power off: the FLUSH command never executes
        }
        let mut cost = 0;
        let mut status = Ok(());
        if self.mode == DramMode::PageCache {
            for (lpa, page) in self.cache.drain_dirty() {
                match self.flash.buffer_write(lpa, page, &self.stats) {
                    Ok(ns) => cost += ns,
                    // Keep draining so every page that still fits is
                    // accepted; report the first failure.
                    Err(e) if status.is_ok() => status = Err(e),
                    Err(_) => {}
                }
            }
        }
        match self.flash.flush_all(&self.stats) {
            Ok(ns) => cost += ns,
            Err(e) if status.is_ok() => status = Err(e),
            Err(_) => {}
        }
        cost += self.cfg.nvme_overhead_ns;
        self.charge(cost);
        (status, cost)
    }

    // ------------------------------------------------------------------
    // Transactions and recovery (WriteLog mode)
    // ------------------------------------------------------------------

    /// Custom NVMe command `COMMIT(TxID)`: appends a commit record to the
    /// firmware TxLog. Transactional byte writes become durable (redo-able)
    /// once their TxID is committed.
    ///
    /// # Panics
    ///
    /// Panics if the device is not in [`DramMode::WriteLog`].
    pub fn commit(&self, txid: TxId) {
        let cost = self.exec_commit(txid);
        self.stats.record_queue_op(crate::queue::ambient_queue(), cost);
    }

    /// Executor behind [`Mssd::commit`], shared with the batched queue
    /// path; returns the charged virtual cost.
    pub(crate) fn exec_commit(&self, txid: TxId) -> u64 {
        assert_eq!(self.mode, DramMode::WriteLog, "COMMIT requires the write-log firmware");
        // One counted fault step: a cut exactly here loses the commit record
        // — the transaction's log entries survive in battery-backed DRAM but
        // recovery discards them (the §4.7 contract).
        if !self.cfg.fault.step(FaultKind::TxCommit) {
            return 0;
        }
        let mut cost = self.cfg.nvme_overhead_ns;
        // Concurrent committers can refill the TxLog between our cleaning
        // pass (which clears it) and the retry, so loop rather than assume
        // one retry suffices; dropping a commit record would silently lose
        // the transaction at recovery.
        let mut attempts = 0;
        while !self.txlog.lock().commit(txid) {
            // TxLog full: a stop-the-world clean propagates every committed
            // entry to flash, after which the TxLog can be cleared.
            cost += self.clean_all(true);
            attempts += 1;
            assert!(attempts < 64, "TxLog still full after repeated cleaning");
        }
        self.stats.inc_tx_commits();
        self.charge(cost);
        cost
    }

    /// Whether a transaction has a commit record in the firmware TxLog.
    pub fn is_committed(&self, txid: TxId) -> bool {
        self.txlog.lock().is_committed(txid)
    }

    /// Forces a full log-cleaning pass in the foreground (used by unmount and
    /// by tests). Charges the cleaning latency.
    pub fn force_clean(&self) {
        let cost = self.clean_all(true);
        self.charge(cost);
    }

    /// Seals every log shard's active region without draining it, as the
    /// background cleaner does before a pass. Exposed so crash tests can
    /// exercise recovery with sealed-but-undrained regions.
    pub fn seal_log_regions(&self) {
        self.log.seal_all();
        self.stats.trace().emit(crate::trace::TraceKind::LogSeal, 0, 0);
    }

    /// Blocks until the background cleaner is idle with no pending work.
    /// No-op when background cleaning is disabled.
    pub fn quiesce_cleaning(&self) {
        let Some(cl) = &self.cleaner else { return };
        let mut st = cl.shared.state.lock().expect("cleaner state lock");
        while st.busy || st.pending {
            st = cl.shared.idle.wait(st).expect("cleaner idle wait");
        }
    }

    /// Simulates a power failure. Device DRAM (write log, TxLog, device cache)
    /// is battery-backed, so nothing device-side is lost; only the host loses
    /// its volatile state. The FTL write buffer is flushed by the
    /// battery-backed capacitor logic, mirroring real SSD behaviour.
    pub fn crash(&self) {
        if self.mode == DramMode::PageCache {
            for (lpa, page) in self.cache.drain_dirty() {
                // Best effort: a degraded device simply keeps the page in
                // battery-backed DRAM (captured by the crash image anyway).
                let _ = self.flash.buffer_write(lpa, page, &self.stats);
            }
        }
        let _ = self.flash.flush_all(&self.stats);
        // No time is charged: the host is down during the power loss.
    }

    /// Custom NVMe command `RECOVER()`: scans the write log (sealed and
    /// active regions), discards uncommitted entries, flushes committed
    /// entries to flash and clears the log (§4.7).
    pub fn recover(&self) -> RecoveryReport {
        if self.cfg.fault.is_cut() {
            // Power is off; recovery runs on the restored device instead
            // (see `Mssd::from_crash_image`).
            return RecoveryReport {
                scanned_entries: 0,
                discarded_entries: 0,
                flushed_pages: 0,
                duration_ns: 0,
            };
        }
        // Recovery replay must not draw fail-slow faults: the commands it
        // replays already happened, and a hang drawn here would perturb the
        // plan's deterministic group ordinals (same rationale as the media
        // plan's suspension during the FTL rebuild).
        self.cfg.hang.suspend();
        // Recovery is a stop-the-world command: every log shard, then the
        // TxLog, then the flash channels — the global lock order.
        let mut all = self.log.lock_all();
        let mut txlog = self.txlog.lock();
        let start = self.clock.now_ns();
        let scanned = self.log.entries();
        // Loading the device DRAM image + scanning every entry.
        let mut cost = self.cfg.transfer_ns(self.cfg.dram_region_bytes, true);
        cost += scanned as u64 * 120;

        let flash_writes_before = self.stats.flash_writes_total();
        // Recovery semantics: uncommitted entries are discarded, so every
        // committed chunk merges (seq order settles overlaps).
        let batch = all.drain_discarding(|tx| txlog.is_committed(tx));
        let discarded = batch.migrated.len();
        let mut scratch = Vec::new();
        let mut flush_cost = 0;
        for (lpa, chunks) in &batch.pages {
            flush_cost += apply_chunks_to_flash(
                &self.cfg,
                &self.flash,
                &self.stats,
                *lpa,
                chunks,
                &mut scratch,
            );
        }
        // A device that degraded to read-only mid-recovery keeps the merged
        // pages in the battery-backed buffer; nothing is lost.
        if let Ok(ns) = self.flash.flush_all(&self.stats) {
            flush_cost += ns;
        }
        txlog.clear();
        self.stats.inc_log_cleanings();
        cost += flush_cost;

        let flushed_pages = self.stats.flash_writes_total() - flash_writes_before;
        drop(txlog);
        drop(all);
        self.cfg.hang.resume();
        self.charge(cost);
        RecoveryReport {
            scanned_entries: scanned,
            discarded_entries: discarded,
            flushed_pages: flushed_pages as usize,
            duration_ns: self.clock.now_ns() - start,
        }
    }

    // ------------------------------------------------------------------
    // Power-failure injection and crash imaging (crashkit)
    // ------------------------------------------------------------------

    /// The fault-injection plan this device runs under (disabled by
    /// default).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.cfg.fault
    }

    /// `true` once the installed fault plan has cut power: every durable
    /// mutation from that instant on was denied. Crash-test drivers poll
    /// this at op boundaries to stop their workload.
    pub fn fault_tripped(&self) -> bool {
        self.cfg.fault.is_cut()
    }

    /// Captures the device's durable state — everything that survives a
    /// power failure: NAND contents (logical view), the battery-backed FTL
    /// write buffer, the write log, the TxLog and the device page cache's
    /// dirty pages. Restore it into a fresh device with
    /// [`Mssd::from_crash_image`] to model the power coming back, possibly
    /// under a different firmware configuration.
    ///
    /// The image is deterministic (all collections sorted), so
    /// `crash_image().digest()` pins a crash state for reproduction tests.
    /// Call at a quiescent point; the background cleaner is quiesced first.
    pub fn crash_image(&self) -> CrashImage {
        self.quiesce_cleaning();
        let (log_entries, log_seq) = self.log.export_entries();
        let txlog = self.txlog.lock().commit_order().to_vec();
        let (flash_pages, buffered_pages) = self.flash.export_logical();
        let cache_pages = self.cache.export_dirty();
        CrashImage {
            mode: self.mode,
            log_entries,
            log_seq,
            txlog,
            flash_pages,
            buffered_pages,
            cache_pages,
            bad_blocks: self.flash.bad_blocks(),
        }
    }

    /// Builds a powered-on device holding the durable state of a crash
    /// image: NAND pages are re-programmed, buffered pages re-enter the
    /// battery-backed write buffer (real SSDs flush them from capacitor
    /// power; keeping them buffered is equivalent and lets checkers observe
    /// the pre-flush state), log entries and TxLog records are restored
    /// verbatim. The new configuration may differ in firmware policy (e.g.
    /// `background_cleaning`), which is how crashkit verifies that recovery
    /// does not depend on the cleaning mode.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid, if the mode disagrees with the image, or
    /// if the image does not fit the configured geometry.
    pub fn from_crash_image(cfg: MssdConfig, mode: DramMode, image: &CrashImage) -> Arc<Self> {
        assert_eq!(mode, image.mode, "crash image was taken in a different DRAM mode");
        let dev = Self::with_clock(cfg, mode, Clock::new());
        // Bad blocks first: the restored FTL must never place restored pages
        // (or its active blocks) on a block that failed a program or erase.
        dev.flash.restore_bad_blocks(&image.bad_blocks);
        dev.flash.restore_logical(&image.flash_pages, &image.buffered_pages);
        dev.log.restore_entries(&image.log_entries, image.log_seq);
        {
            let mut txlog = dev.txlog.lock();
            for tx in &image.txlog {
                assert!(txlog.commit(*tx), "restored TxLog overflows the configured txlog_bytes");
            }
        }
        dev.cache.restore_dirty(&image.cache_pages);
        dev.reset_stats();
        dev
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Snapshot of traffic counters and firmware state.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            traffic: self.stats.snapshot(),
            now_ns: self.clock.now_ns(),
            log_used_bytes: self.log.used_bytes(),
            log_entries: self.log.entries(),
            cache_dirty_pages: self.cache.dirty_pages(),
        }
    }

    /// Current traffic counters (convenience wrapper over [`Mssd::snapshot`]).
    pub fn traffic(&self) -> TrafficCounter {
        self.stats.snapshot()
    }

    /// Resets the traffic counters (the clock keeps running). The
    /// spares-remaining gauge is re-seeded from the FTL rather than zeroed.
    pub fn reset_stats(&self) {
        self.stats.reset();
        self.stats.set_ras_spares_remaining(self.flash.spares_remaining() as u64);
    }

    /// `true` once the device has degraded to read-only because a channel
    /// exhausted its spare blocks. Writes return [`FlashError::ReadOnly`];
    /// reads keep working.
    pub fn is_read_only(&self) -> bool {
        self.flash.is_read_only()
    }

    /// The device's current bad-block table (sorted), as persisted in a
    /// [`CrashImage`].
    pub fn bad_blocks(&self) -> Vec<BlockId> {
        self.flash.bad_blocks()
    }

    /// Structural invariant check of the flash path (see
    /// [`ShardedFtl::check_consistency`]); crashkit checkers run this after
    /// every restore + recovery. Only meaningful at a quiescent point.
    pub fn check_consistency(&self) -> Vec<String> {
        self.flash.check_consistency()
    }

    // ------------------------------------------------------------------
    // Internal helpers
    // ------------------------------------------------------------------

    /// Wakes the background cleaner. Returns `false` when there is none
    /// (background cleaning disabled or baseline mode).
    fn kick_cleaner(&self) -> bool {
        let Some(cl) = &self.cleaner else { return false };
        // Fast path: a kick is already in flight — whoever set the flag will
        // (or did) take the mutex and notify; piling on would re-serialize
        // every writer on the signalling lock.
        if cl.shared.kick_pending.swap(true, Ordering::Relaxed) {
            return true;
        }
        cl.shared.state.lock().expect("cleaner state lock").pending = true;
        cl.shared.kick.notify_all();
        true
    }

    /// Appends one chunk to the sharded write log. When space admission
    /// fails the writer reclaims in the foreground. Returns the foreground
    /// cost.
    fn log_append(&self, lpa: Lpa, offset: usize, data: &[u8], txid: Option<TxId>) -> u64 {
        let mut cost = 0;
        // Under concurrency other writers may re-fill the freed space between
        // our reclaim and the retry, so loop; a bounded number of attempts
        // distinguishes contention from an entry that can never fit.
        for _ in 0..64 {
            if self.cfg.fault.is_cut() {
                return cost; // power died during a reclaim: the append is lost
            }
            match self.log.append(lpa, offset, data, txid) {
                Ok(()) => return cost,
                Err(_) => cost += self.reclaim_space(),
            }
        }
        panic!("write-log entry of {} bytes cannot fit even after cleaning", data.len());
    }

    /// Foreground fallback when log space admission fails: seal everything
    /// and drain sealed pages (the same incremental path the background
    /// cleaner uses, so both can work different shards concurrently),
    /// charging the merge cost to the stalled writer. Falls back to a full
    /// stop-the-world pass only when nothing sealed is drainable.
    fn reclaim_space(&self) -> u64 {
        self.stats.inc_log_fg_stalls();
        self.kick_cleaner();
        self.log.seal_all();
        self.stats.trace().emit(crate::trace::TraceKind::LogSeal, 0, 0);
        let before = self.log.used_bytes();
        // Free a meaningful fraction of the region per stall so admission
        // retries do not immediately stall again.
        let target = (self.cfg.dram_region_bytes / 8).max(1);
        let mut cost = 0;
        let mut merged_chunks = 0usize;
        let mut scratch = Vec::new();
        'shards: for shard in 0..LOG_SHARDS {
            loop {
                let step = drain_sealed_shard(
                    &self.cfg,
                    &self.log,
                    &self.flash,
                    &self.txlog,
                    &self.stats,
                    shard,
                    CLEANER_PAGES_PER_STEP,
                    &mut scratch,
                );
                cost += step.cost;
                merged_chunks += step.chunks;
                if step.pages == 0 {
                    break;
                }
                if before.saturating_sub(self.log.used_bytes()) >= target {
                    break 'shards;
                }
            }
        }
        if merged_chunks > 0 {
            // A cleaning pass ends by programming the merged pages
            // (Algorithm 1): flush the FTL write buffer. On a degraded
            // device the pages stay safely buffered.
            if let Ok(ns) = self.flash.flush_all(&self.stats) {
                cost += ns;
            }
            self.stats.inc_log_cleanings();
        } else {
            // Nothing drained freed any space (everything sealed was
            // uncommitted and merely migrated, or other reclaimers got there
            // first): stop-the-world.
            cost += self.clean_all(true);
        }
        cost
    }

    /// Full stop-the-world log-cleaning pass: locks every shard, drains both
    /// regions, merges committed entries into flash, reinstates uncommitted
    /// ones and clears the TxLog — all before releasing the shard locks, so
    /// no reader can observe entries that are in neither the log nor flash,
    /// and no commit record for post-drain appends can be lost.
    ///
    /// When `foreground` is false the flash work is recorded in the traffic
    /// counters but no latency is charged (used as the inline fallback when
    /// the background cleaner is disabled).
    fn clean_all(&self, foreground: bool) -> u64 {
        if self.cfg.fault.is_cut() {
            return 0; // power off: no cleaning pass starts
        }
        let mut all = self.log.lock_all();
        let mut txlog = self.txlog.lock();
        let batch = all.drain(|tx| txlog.is_committed(tx));
        if batch.pages.is_empty() && batch.migrated.is_empty() {
            // The log is empty, so no commit record is still needed: clearing
            // here lets a full TxLog make progress even when the background
            // cleaner (which never clears it) already drained the log.
            txlog.clear();
            return 0;
        }
        let mut cost = 0;
        let mut scratch = Vec::new();
        for (lpa, chunks) in &batch.pages {
            cost += apply_chunks_to_flash(
                &self.cfg,
                &self.flash,
                &self.stats,
                *lpa,
                chunks,
                &mut scratch,
            );
        }
        if let Ok(ns) = self.flash.flush_all(&self.stats) {
            cost += ns;
        }
        all.reinstate(batch.migrated);
        txlog.clear();
        self.stats.inc_log_cleanings();
        drop(txlog);
        drop(all);
        if foreground {
            cost
        } else {
            0
        }
    }

    /// Serves a byte-interface write chunk from the sharded device cache
    /// (baseline mode), filling from flash on a miss. The whole sequence
    /// runs under the page's cache-shard lock.
    fn cache_write_chunk(&self, lpa: Lpa, offset: usize, chunk: &[u8]) -> Result<u64, FlashError> {
        let mut cost = 0;
        let mut shard = self.cache.lock_shard(lpa);
        if !shard.modify(lpa, offset, chunk) {
            // Miss: fetch the backing page, apply the modification, cache it.
            let (mut page, ns) = self.flash.read_page(lpa, &self.stats, false)?;
            cost += ns;
            page[offset..offset + chunk.len()].copy_from_slice(chunk);
            cost += self.cache_fill(&mut shard, lpa, page, true)?;
        }
        Ok(cost)
    }

    /// Inserts a page into a locked cache shard, writing evicted dirty
    /// victims through to the FTL (cache shard → flash channel lock order).
    fn cache_fill(
        &self,
        shard: &mut DramPageCache,
        lpa: Lpa,
        page: Vec<u8>,
        dirty: bool,
    ) -> Result<u64, FlashError> {
        let mut cost = 0;
        for (victim, data) in shard.insert(lpa, page, dirty) {
            cost += self.flash.buffer_write(victim, data, &self.stats)?;
        }
        Ok(cost)
    }
}

impl Drop for Mssd {
    fn drop(&mut self) {
        if let Some(mut cl) = self.cleaner.take() {
            cl.shared.state.lock().expect("cleaner state lock").shutdown = true;
            cl.shared.kick.notify_all();
            if let Some(thread) = cl.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

/// One incremental cleaning step: drains up to `max_pages` pages of a
/// shard's sealed region, merging committed chunks into flash while the
/// shard lock is held (lock order: shard → txlog → channel → stripe).
/// Shared by the background cleaner thread and the foreground stall path.
#[allow(clippy::too_many_arguments)]
fn drain_sealed_shard(
    cfg: &MssdConfig,
    log: &ShardedWriteLog,
    flash: &ShardedFtl,
    txlog: &Mutex<TxLog>,
    stats: &AtomicTraffic,
    shard: usize,
    max_pages: usize,
    scratch: &mut Vec<(usize, usize)>,
) -> SealedStep {
    log.drain_sealed_step(
        shard,
        max_pages,
        // One TxLog snapshot per step, taken after the shard lock (shard →
        // txlog order) and held for the whole step: every chunk of a page
        // must see the same commit verdicts (see drain_sealed_step docs).
        || {
            let guard = txlog.lock();
            move |tx: TxId| guard.is_committed(tx)
        },
        |lpa, chunks| apply_chunks_to_flash(cfg, flash, stats, lpa, chunks, scratch),
    )
}

/// Read-modify-write of one flash page from a set of committed log chunks
/// (Algorithm 1, lines 3-11). Returns the foreground cost. `scratch` is a
/// range buffer reused across the pages of a cleaning batch.
fn apply_chunks_to_flash(
    cfg: &MssdConfig,
    flash: &ShardedFtl,
    stats: &AtomicTraffic,
    lpa: Lpa,
    chunks: &[ChunkEntry],
    scratch: &mut Vec<(usize, usize)>,
) -> u64 {
    let mut cost = 0;
    let partial = !chunks_cover_full_page(chunks, cfg.page_size, scratch);
    let mut page = if partial && flash.is_mapped(lpa) {
        // The cleaner's internal read-modify-write runs with media-fault
        // injection suspended: it is not a host-visible read path, and an
        // injected transient here would silently zero the unmerged
        // remainder of the page instead of surfacing as a typed error.
        cfg.media.suspend();
        let fetched = flash.read_page(lpa, stats, true);
        cfg.media.resume();
        match fetched {
            Ok((page, ns)) => {
                cost += ns;
                page
            }
            Err(_) => vec![0u8; cfg.page_size],
        }
    } else {
        vec![0u8; cfg.page_size]
    };
    for c in chunks {
        page[c.offset..c.end()].copy_from_slice(&c.data);
    }
    // A device that degraded to read-only mid-pass drops the merged page;
    // its chunks were drained already, matching the device's degraded
    // write-refusal semantics.
    if let Ok(ns) = flash.buffer_write(lpa, page, stats) {
        cost += ns;
    }
    cost
}

/// Whether the chunks fully cover `[0, page_size)`, deciding if the cleaner
/// can skip the read half of the read-modify-write.
///
/// Single pass for the common cases (one whole-page chunk, or chunks already
/// in ascending offset order); only out-of-order chunk lists fall back to
/// sorting ranges — in `scratch`, which the caller reuses across the whole
/// batch, so no per-page allocation either way.
fn chunks_cover_full_page(
    chunks: &[ChunkEntry],
    page_size: usize,
    scratch: &mut Vec<(usize, usize)>,
) -> bool {
    let mut covered_to = 0usize;
    let mut in_order = true;
    for c in chunks {
        if c.offset == 0 && c.data.len() >= page_size {
            return true;
        }
        if c.offset <= covered_to {
            covered_to = covered_to.max(c.end());
        } else {
            in_order = false;
            break;
        }
    }
    if in_order {
        return covered_to >= page_size;
    }
    scratch.clear();
    scratch.extend(chunks.iter().map(|c| (c.offset, c.end())));
    scratch.sort_unstable();
    let mut covered_to = 0usize;
    for &(start, end) in scratch.iter() {
        if start > covered_to {
            return false;
        }
        covered_to = covered_to.max(end);
    }
    covered_to >= page_size
}

/// Body of the background cleaner thread: wait for a kick, then seal and
/// drain until the log is back under control, holding only one shard lock at
/// a time. The flash work it performs is recorded in the traffic counters
/// but charged to nobody — the paper's double-buffered cleaning keeps it off
/// the host's critical path.
fn cleaner_main(ctx: CleanerCtx) {
    let mut scratch: Vec<(usize, usize)> = Vec::new();
    loop {
        {
            let mut st = ctx.shared.state.lock().expect("cleaner state lock");
            while !st.pending && !st.shutdown {
                st = ctx.shared.kick.wait(st).expect("cleaner kick wait");
            }
            if st.shutdown {
                return;
            }
            st.pending = false;
            st.busy = true;
            // Under the state mutex, so a writer's swap(true)+lock+set
            // sequence can never be consumed-and-cleared half way.
            ctx.shared.kick_pending.store(false, Ordering::Relaxed);
        }
        let mut merged_pages = 0u64;
        loop {
            if ctx.shared.state.lock().expect("cleaner state lock").shutdown {
                break;
            }
            // A degraded (read-only) device cannot program merged pages;
            // leave the log entries where they are — they stay readable and
            // battery-backed.
            if ctx.flash.is_read_only() {
                break;
            }
            if ctx.log.needs_cleaning() {
                ctx.log.seal_all();
                ctx.stats.trace().emit(crate::trace::TraceKind::LogSeal, 0, 0);
            }
            // Progress means committed chunks were merged (log space freed).
            // Sweeps that only migrate uncommitted chunks back to the active
            // region free nothing, and repeating them would spin the cleaner
            // at 100% CPU until the host commits — break and wait for the
            // next kick instead.
            let mut progressed = false;
            for shard in 0..LOG_SHARDS {
                let step = drain_sealed_shard(
                    &ctx.cfg,
                    &ctx.log,
                    &ctx.flash,
                    &ctx.txlog,
                    &ctx.stats,
                    shard,
                    CLEANER_PAGES_PER_STEP,
                    &mut scratch,
                );
                if step.chunks > 0 {
                    progressed = true;
                    merged_pages += step.merged_pages as u64;
                }
            }
            if !progressed {
                break;
            }
        }
        if merged_pages > 0 {
            // End of pass: program the merged pages (Algorithm 1). The cost
            // is discarded — background cleaning is off the critical path.
            let _ = ctx.flash.flush_all(&ctx.stats);
            ctx.stats.add_log_bg_cleaned_pages(merged_pages);
            ctx.stats.inc_log_cleanings();
        }
        let mut st = ctx.shared.state.lock().expect("cleaner state lock");
        st.busy = false;
        ctx.shared.idle.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(mode: DramMode) -> Arc<Mssd> {
        Mssd::new(MssdConfig::small_test(), mode)
    }

    #[test]
    fn byte_write_read_roundtrip_writelog() {
        let d = dev(DramMode::WriteLog);
        d.byte_write(4096 + 128, &[0xAAu8; 64], None, Category::Inode);
        let back = d.byte_read(4096 + 128, 64, Category::Inode);
        assert_eq!(back, vec![0xAA; 64]);
        let snap = d.snapshot();
        assert!(snap.log_entries >= 1);
        assert_eq!(snap.traffic.host_bytes_by_category(Direction::Write, Category::Inode), 64);
    }

    #[test]
    fn byte_write_read_roundtrip_pagecache() {
        let d = dev(DramMode::PageCache);
        d.byte_write(8192 + 64, &[0x5Au8; 128], None, Category::Dentry);
        let back = d.byte_read(8192 + 64, 128, Category::Dentry);
        assert_eq!(back, vec![0x5A; 128]);
        assert_eq!(d.snapshot().log_entries, 0, "page-cache mode must not use the log");
    }

    #[test]
    fn byte_write_across_page_boundary() {
        let d = dev(DramMode::WriteLog);
        let addr = 4096 - 32;
        let data: Vec<u8> = (0..64u8).collect();
        d.byte_write(addr, &data, None, Category::Data);
        assert_eq!(d.byte_read(addr, 64, Category::Data), data);
    }

    #[test]
    fn block_write_then_block_read() {
        let d = dev(DramMode::WriteLog);
        let page = vec![7u8; 4096];
        d.block_write(3, &page, Category::Data);
        let back = d.block_read(3, 1, Category::Data);
        assert_eq!(back, page);
    }

    #[test]
    fn block_read_merges_log_entries() {
        let d = dev(DramMode::WriteLog);
        let page = vec![1u8; 4096];
        d.block_write(5, &page, Category::Data);
        d.flush();
        // Byte-granular update of 64 bytes at offset 256 of block 5.
        d.byte_write(5 * 4096 + 256, &[9u8; 64], None, Category::Data);
        let back = d.block_read(5, 1, Category::Data);
        assert_eq!(&back[..256], &vec![1u8; 256][..]);
        assert_eq!(&back[256..320], &[9u8; 64][..]);
        assert_eq!(&back[320..], &vec![1u8; 4096 - 320][..]);
    }

    #[test]
    fn block_write_invalidates_stale_log_entries() {
        let d = dev(DramMode::WriteLog);
        d.byte_write(7 * 4096, &[3u8; 64], None, Category::Data);
        assert!(d.snapshot().log_entries >= 1);
        d.block_write(7, &vec![8u8; 4096], Category::Data);
        assert_eq!(d.snapshot().log_entries, 0);
        assert_eq!(d.block_read(7, 1, Category::Data), vec![8u8; 4096]);
    }

    #[test]
    fn transactional_write_durable_only_after_commit() {
        let d = dev(DramMode::WriteLog);
        let tx_committed = TxId(1);
        let tx_lost = TxId(2);
        d.byte_write(4096, &[0xC0u8; 64], Some(tx_committed), Category::Inode);
        d.byte_write(8192, &[0xDDu8; 64], Some(tx_lost), Category::Inode);
        d.commit(tx_committed);
        d.crash();
        let report = d.recover();
        assert_eq!(report.discarded_entries, 1);
        assert!(report.flushed_pages >= 1);
        assert!(report.duration_ns > 0);
        // The committed write survived, the uncommitted one reads as zero.
        assert_eq!(d.byte_read(4096, 64, Category::Inode), vec![0xC0; 64]);
        assert_eq!(d.byte_read(8192, 64, Category::Inode), vec![0u8; 64]);
    }

    #[test]
    fn clock_advances_with_latency_model() {
        let d = dev(DramMode::WriteLog);
        let t0 = d.clock().now_ns();
        d.byte_write(0, &[1u8; 64], None, Category::Bitmap);
        let t1 = d.clock().now_ns();
        assert!(t1 - t0 >= d.config().byte_write_ns);
        d.byte_read(0, 64, Category::Bitmap);
        let t2 = d.clock().now_ns();
        assert!(t2 - t1 >= d.config().byte_read_ns);
        // Block read of an unmapped page: no flash access, just transfer+overhead.
        d.block_read(100, 1, Category::Data);
        let t3 = d.clock().now_ns();
        assert!(t3 - t2 >= d.config().nvme_overhead_ns);
    }

    #[test]
    fn flush_makes_buffered_block_writes_durable() {
        let d = dev(DramMode::WriteLog);
        d.block_write(0, &vec![4u8; 4096], Category::Journal);
        let before = d.traffic().flash_write_pages;
        d.flush();
        let after = d.traffic().flash_write_pages;
        assert!(after > before, "flush must program buffered pages");
    }

    #[test]
    fn pagecache_mode_flush_writes_dirty_pages() {
        let d = dev(DramMode::PageCache);
        d.block_write(1, &vec![2u8; 4096], Category::Data);
        assert!(d.snapshot().cache_dirty_pages >= 1);
        d.flush();
        assert_eq!(d.snapshot().cache_dirty_pages, 0);
        assert!(d.traffic().flash_write_pages >= 1);
    }

    #[test]
    fn log_overflow_triggers_cleaning() {
        let mut cfg = MssdConfig::small_test();
        cfg.dram_region_bytes = 16 << 10; // tiny 16 KB log
        let d = Mssd::new(cfg, DramMode::WriteLog);
        // Write far more than the log holds.
        for i in 0..1000u64 {
            d.byte_write((i % 512) * 64, &[i as u8; 64], None, Category::Data);
        }
        d.quiesce_cleaning();
        let t = d.traffic();
        assert!(t.log_cleanings > 0, "cleaning should have run");
        assert!(t.flash_write_pages + t.flash_internal_write_pages > 0);
    }

    #[test]
    fn background_cleaner_drains_without_foreground_help() {
        // A log big enough that no append ever fails admission, with writes
        // that cross the threshold: only the background cleaner can have
        // drained it.
        let mut cfg = MssdConfig::small_test();
        cfg.dram_region_bytes = 64 << 10;
        cfg.log_clean_threshold = 0.3;
        let d = Mssd::new(cfg, DramMode::WriteLog);
        for i in 0..300u64 {
            d.byte_write((i % 256) * 64, &[i as u8; 64], None, Category::Data);
        }
        d.quiesce_cleaning();
        let t = d.traffic();
        assert!(t.log_cleanings > 0, "background cleaner should have run");
        assert!(t.log_bg_cleaned_pages > 0, "chunks should be merged in the background");
        // Every slot still reads back its last-written value.
        for slot in 0..256u64 {
            let last = slot + ((300 - 1 - slot) / 256) * 256; // last i with i%256==slot
            let got = d.byte_read(slot * 64, 64, Category::Data);
            assert_eq!(got, vec![last as u8; 64], "slot {slot}");
        }
    }

    #[test]
    fn inline_cleaning_when_background_disabled() {
        let mut cfg = MssdConfig::small_test();
        cfg.dram_region_bytes = 16 << 10;
        cfg.background_cleaning = false;
        let d = Mssd::new(cfg, DramMode::WriteLog);
        for i in 0..1000u64 {
            d.byte_write((i % 512) * 64, &[i as u8; 64], None, Category::Data);
        }
        let t = d.traffic();
        assert!(t.log_cleanings > 0, "inline stop-the-world cleaning should have run");
        // quiesce is a no-op without a cleaner thread.
        d.quiesce_cleaning();
    }

    #[test]
    fn sealed_regions_stay_readable_and_recoverable() {
        let d = dev(DramMode::WriteLog);
        let committed = TxId(5);
        let lost = TxId(6);
        d.byte_write(0, &[0x11u8; 64], Some(committed), Category::Data);
        d.byte_write(4096, &[0x22u8; 64], Some(lost), Category::Data);
        d.byte_write(8192, &[0x33u8; 64], None, Category::Data);
        d.commit(committed);
        // Seal every shard: entries now live in sealed-but-undrained regions.
        d.seal_log_regions();
        assert!(d.snapshot().log_entries >= 3);
        // Reads merge sealed regions.
        assert_eq!(d.byte_read(0, 64, Category::Data), vec![0x11; 64]);
        assert_eq!(d.byte_read(8192, 64, Category::Data), vec![0x33; 64]);
        // New appends land in the fresh active region and overlay correctly.
        d.byte_write(0, &[0x44u8; 32], None, Category::Data);
        let back = d.byte_read(0, 64, Category::Data);
        assert_eq!(&back[..32], &[0x44u8; 32][..]);
        assert_eq!(&back[32..], &[0x11u8; 32][..]);
        // Crash with the sealed regions undrained: recovery flushes committed
        // entries (sealed and active) and discards the uncommitted one.
        d.crash();
        let report = d.recover();
        assert_eq!(report.discarded_entries, 1);
        assert_eq!(d.snapshot().log_entries, 0);
        let back = d.byte_read(0, 64, Category::Data);
        assert_eq!(&back[..32], &[0x44u8; 32][..]);
        assert_eq!(&back[32..], &[0x11u8; 32][..]);
        assert_eq!(d.byte_read(4096, 64, Category::Data), vec![0u8; 64]);
        assert_eq!(d.byte_read(8192, 64, Category::Data), vec![0x33; 64]);
    }

    #[test]
    fn coordinated_caching_keeps_block_reads_out_of_device_dram() {
        let d = dev(DramMode::WriteLog);
        d.block_write(9, &vec![1u8; 4096], Category::Data);
        d.flush();
        d.block_read(9, 1, Category::Data);
        let first = d.traffic().flash_read_pages;
        d.block_read(9, 1, Category::Data);
        let second = d.traffic().flash_read_pages;
        assert_eq!(second, first + 1, "write-log firmware must not cache read pages");

        let d2 = dev(DramMode::PageCache);
        d2.block_write(9, &vec![1u8; 4096], Category::Data);
        d2.flush();
        d2.block_read(9, 1, Category::Data);
        let first = d2.traffic().flash_read_pages;
        d2.block_read(9, 1, Category::Data);
        let second = d2.traffic().flash_read_pages;
        assert_eq!(second, first, "page-cache firmware serves repeat reads from DRAM");
    }

    #[test]
    fn trim_drops_state_everywhere() {
        let d = dev(DramMode::WriteLog);
        d.block_write(11, &vec![6u8; 4096], Category::Data);
        d.flush();
        d.byte_write(11 * 4096, &[7u8; 64], None, Category::Data);
        d.trim(11, 1);
        assert_eq!(d.block_read(11, 1, Category::Data), vec![0u8; 4096]);
    }

    #[test]
    #[should_panic(expected = "beyond device capacity")]
    fn byte_write_out_of_range_panics() {
        let d = dev(DramMode::WriteLog);
        let cap = d.capacity_bytes();
        d.byte_write(cap - 10, &[0u8; 64], None, Category::Data);
    }

    #[test]
    fn late_commit_cannot_resurrect_over_newer_flash_merged_data() {
        // Found by the crashkit enumeration: an uncommitted chunk survives
        // cleaning while a newer committed chunk of the same page merges to
        // flash; once the older transaction commits, its log entry used to
        // overlay the newer flash bytes on reads. Cleaning now defers such
        // committed chunks until the older chunk resolves.
        let d = dev(DramMode::WriteLog);
        let tx = TxId(9);
        d.byte_write(0, &[49u8; 64], Some(tx), Category::Data); // older, uncommitted
        d.byte_write(0, &[89u8; 64], None, Category::Data); // newer, immediately committed
        d.force_clean();
        assert_eq!(d.byte_read(0, 64, Category::Data), vec![89u8; 64], "after cleaning");
        d.commit(tx);
        assert_eq!(
            d.byte_read(0, 64, Category::Data),
            vec![89u8; 64],
            "a late commit must not resurrect overwritten bytes"
        );
        d.force_clean();
        assert_eq!(d.byte_read(0, 64, Category::Data), vec![89u8; 64], "after second cleaning");
        d.crash();
        d.recover();
        assert_eq!(d.byte_read(0, 64, Category::Data), vec![89u8; 64], "after recovery");
    }

    #[test]
    fn cleaning_clips_uncommitted_chunks_under_newer_committed_ranges() {
        // An uncommitted chunk partially overwritten by a newer committed
        // write: cleaning merges the committed bytes to flash and clips the
        // overlap off the surviving chunk, so its later commit exposes only
        // the bytes nothing newer touched.
        let d = dev(DramMode::WriteLog);
        let tx = TxId(5);
        d.byte_write(0, &[11u8; 128], Some(tx), Category::Data); // [0,128) uncommitted
        d.byte_write(64, &[22u8; 64], None, Category::Data); // [64,128) newer, committed
        d.force_clean();
        let back = d.byte_read(0, 128, Category::Data);
        assert_eq!(&back[..64], &[11u8; 64][..], "unshadowed half still visible");
        assert_eq!(&back[64..], &[22u8; 64][..], "newer committed bytes merged");
        d.commit(tx);
        let back = d.byte_read(0, 128, Category::Data);
        assert_eq!(&back[..64], &[11u8; 64][..]);
        assert_eq!(&back[64..], &[22u8; 64][..], "commit must not resurrect clipped bytes");
        d.crash();
        d.recover();
        let back = d.byte_read(0, 128, Category::Data);
        assert_eq!(&back[..64], &[11u8; 64][..], "committed remainder survives recovery");
        assert_eq!(&back[64..], &[22u8; 64][..]);
    }

    #[test]
    fn a_stale_open_transaction_cannot_pin_the_log_full() {
        // Regression: one never-committed chunk plus sustained committed
        // traffic to the same page must keep cleaning productive (the
        // clipped survivor is bounded) instead of panicking on a log that
        // can never shrink.
        let mut cfg = MssdConfig::small_test();
        cfg.dram_region_bytes = 8 << 10;
        cfg.background_cleaning = false;
        let d = Mssd::new(cfg, DramMode::WriteLog);
        d.byte_write(0, &[1u8; 64], Some(TxId(999)), Category::Data); // never commits
        for i in 0..5_000u64 {
            d.byte_write((i % 60) * 64, &[i as u8; 64], None, Category::Data);
        }
        assert!(d.traffic().log_cleanings > 0);
        // The stale chunk was fully shadowed by committed writes to slot 0
        // and clipped away; everything reads as the newest committed tag.
        let last = 4980; // last i with i % 60 == 0
        assert_eq!(d.byte_read(0, 64, Category::Data), vec![last as u8; 64]);
    }

    #[test]
    fn crash_image_roundtrip_preserves_durable_state() {
        let d = dev(DramMode::WriteLog);
        let committed = TxId(3);
        let lost = TxId(4);
        d.block_write(2, &vec![5u8; 4096], Category::Data);
        d.flush();
        d.block_write(3, &vec![6u8; 4096], Category::Data); // stays buffered
        d.byte_write(10 * 4096, &[0x11u8; 64], Some(committed), Category::Inode);
        d.byte_write(11 * 4096, &[0x22u8; 64], Some(lost), Category::Inode);
        d.byte_write(12 * 4096, &[0x33u8; 64], None, Category::Data);
        d.commit(committed);

        let image = d.crash_image();
        assert!(image.log_entries.len() >= 3);
        assert_eq!(image.txlog, vec![committed]);
        assert!(!image.flash_pages.is_empty());
        assert!(!image.buffered_pages.is_empty());
        assert_eq!(image.digest(), d.crash_image().digest(), "imaging is repeatable");

        let d2 = Mssd::from_crash_image(MssdConfig::small_test(), DramMode::WriteLog, &image);
        let report = d2.recover();
        assert_eq!(report.discarded_entries, 1, "uncommitted tx entry discarded");
        assert_eq!(d2.byte_read(10 * 4096, 64, Category::Inode), vec![0x11; 64]);
        assert_eq!(d2.byte_read(11 * 4096, 64, Category::Inode), vec![0u8; 64]);
        assert_eq!(d2.byte_read(12 * 4096, 64, Category::Data), vec![0x33; 64]);
        assert_eq!(d2.block_read(2, 1, Category::Data), vec![5u8; 4096]);
        assert_eq!(d2.block_read(3, 1, Category::Data), vec![6u8; 4096]);
        assert!(d2.flash.check_consistency().is_empty());
    }

    #[test]
    fn fault_cut_tears_a_page_crossing_byte_write() {
        // A write spanning three pages splits into three log chunks; cut at
        // the 3rd durability step: pages 0-1 land, page 2 never does.
        let mut cfg = MssdConfig::small_test();
        cfg.fault = crate::fault::FaultPlan::cut_at(3);
        let d = Mssd::new(cfg, DramMode::WriteLog);
        let addr = 4096 - 64;
        d.byte_write(addr, &[7u8; 64 + 4096 + 64], None, Category::Data);
        assert!(d.fault_tripped());
        assert_eq!(d.fault_plan().cut_kind(), Some(FaultKind::LogAppend));
        let image = d.crash_image();
        assert_eq!(image.log_entries.len(), 2, "only the pre-cut chunks are durable");
        let d2 = Mssd::from_crash_image(MssdConfig::small_test(), DramMode::WriteLog, &image);
        d2.recover();
        let back = d2.byte_read(addr, 64 + 4096 + 64, Category::Data);
        assert_eq!(&back[..64 + 4096], &[7u8; 64 + 4096][..], "chunks before the cut survive");
        assert_eq!(&back[64 + 4096..], &[0u8; 64][..], "the torn-off chunk never happened");
        // Post-cut writes are denied entirely.
        d.byte_write(8 * 4096, &[9u8; 64], None, Category::Data);
        assert_eq!(d.crash_image().log_entries.len(), 2);
    }

    #[test]
    fn fault_count_only_observes_without_changing_behaviour() {
        let mut cfg = MssdConfig::small_test();
        cfg.fault = crate::fault::FaultPlan::count_only();
        let d = Mssd::new(cfg, DramMode::WriteLog);
        // Crosses one page boundary: two log chunks.
        d.byte_write(4096 - 64, &[1u8; 128], None, Category::Data);
        d.block_write(5, &vec![2u8; 8192], Category::Data);
        d.commit(TxId(1));
        d.flush();
        let plan = d.fault_plan();
        assert_eq!(plan.steps_of(FaultKind::LogAppend), 2);
        assert_eq!(plan.steps_of(FaultKind::BufferWrite), 2);
        assert_eq!(plan.steps_of(FaultKind::TxCommit), 1);
        assert!(plan.steps_of(FaultKind::FlashProgram) >= 2);
        assert!(!d.fault_tripped());
        assert_eq!(d.byte_read(4096 - 64, 128, Category::Data), vec![1u8; 128]);
    }

    #[test]
    fn recovery_is_idempotent_when_log_is_empty() {
        let d = dev(DramMode::WriteLog);
        let r1 = d.recover();
        assert_eq!(r1.scanned_entries, 0);
        assert_eq!(r1.flushed_pages, 0);
        let r2 = d.recover();
        assert_eq!(r2.scanned_entries, 0);
    }
}
