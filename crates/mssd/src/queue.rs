//! Multi-queue host interface: NVMe-style per-core submission/completion
//! queue pairs with batched doorbell submission.
//!
//! The rest of the stack is internally parallel (sharded write log,
//! channel-parallel FTL, background cleaning), but until this module every
//! host request entered the device through one synchronous call per
//! operation, paying full per-command overhead at the host boundary. A
//! [`HostQueue`] amortizes that boundary the way real NVMe queue pairs do:
//!
//! * the host [`submit`](HostQueue::submit)s [`Command`]s into a bounded
//!   submission queue (SQ) without touching the device;
//! * [`ring_doorbell`](HostQueue::ring_doorbell) hands the whole batch to
//!   the firmware, which **coalesces adjacent byte writes** (same
//!   transaction, same category, contiguous addresses) into single log
//!   appends before they hit the sharded write log — one shard-lock
//!   acquisition and one skip-list insert instead of one per command;
//! * completions land in a completion queue (CQ) the host drains
//!   asynchronously via [`poll`](HostQueue::poll) or blocks on via
//!   [`wait`](HostQueue::wait), each carrying the command's virtual device
//!   latency and any read payload.
//!
//! # Queue lifecycle
//!
//! A queue pair is created with [`crate::Mssd::open_queue`] and owned by one
//! submitting thread (the per-core model: queues are not shared, the device
//! is). Dropping the queue discards unsubmitted commands and undelivered
//! completions — exactly what happens to host queue memory at power loss.
//!
//! # Completion ordering
//!
//! Commands of one queue execute in submission order; a doorbell never
//! reorders, it only merges adjacent byte writes (which preserves the byte
//! image and the durability class of every merged command). Completions are
//! delivered in submission order too. Across *different* queues there is no
//! ordering — as on real hardware, cross-queue ordering is the host's
//! problem (our workloads partition address ranges per queue).
//!
//! # Power failure
//!
//! A doorbell checks for a tripped [`crate::FaultPlan`] before every
//! command group: once power is cut, nothing further executes and the
//! remaining submission-queue entries are left in place — crashkit's
//! `device-mq` scenario asserts they have **no** durable effect, while
//! commands whose completion was produced (even if the host never polled
//! it) are durable under the normal contract, and the one group the cut
//! landed inside is in-doubt.
//!
//! The synchronous [`crate::Mssd`] API (`byte_write`, `block_read`, …) is a
//! depth-1 shim over this machinery: each call executes the same command
//! path immediately and records itself against queue slot 0 (or the
//! thread's ambient queue, see [`HostQueue::make_ambient`]).

use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use crate::device::Mssd;
use crate::fault::{HangFault, HangFaultPlan};
use crate::flash::FlashError;
use crate::stats::Category;
use crate::trace::{self, CtxScope, TraceKind};
use crate::txn::TxId;

/// Upper bound on the bytes a doorbell merges into one coalesced byte
/// write. Bounds the memory of a merged append and keeps a single merged
/// command from monopolizing a log shard.
pub const COALESCE_MAX_BYTES: usize = 64 << 10;

/// Per-queue identifier of a submitted command, returned by
/// [`HostQueue::submit`] and echoed in its [`Completion`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CommandId(pub u64);

/// One host command, covering both interfaces plus the custom firmware
/// commands (§4.2/§4.7: `COMMIT`, TRIM, FLUSH).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Byte-interface write of `data` at device byte address `addr`,
    /// optionally transactional.
    ByteWrite {
        /// Absolute device byte address.
        addr: u64,
        /// Payload.
        data: Vec<u8>,
        /// Transaction the write belongs to (durable at commit), if any.
        txid: Option<TxId>,
        /// Accounting category.
        cat: Category,
    },
    /// Byte-interface read of `len` bytes at `addr`.
    ByteRead {
        /// Absolute device byte address.
        addr: u64,
        /// Bytes to read.
        len: usize,
        /// Accounting category.
        cat: Category,
    },
    /// Block-interface write of whole pages starting at `lba` (`data` must
    /// be a non-empty multiple of the page size).
    BlockWrite {
        /// First logical block.
        lba: u64,
        /// Page-aligned payload.
        data: Vec<u8>,
        /// Accounting category.
        cat: Category,
    },
    /// Block-interface read of `count` pages starting at `lba`.
    BlockRead {
        /// First logical block.
        lba: u64,
        /// Number of pages.
        count: usize,
        /// Accounting category.
        cat: Category,
    },
    /// NVMe FLUSH: force acknowledged block writes to flash.
    Flush,
    /// TRIM `count` blocks starting at `lba`.
    Trim {
        /// First logical block.
        lba: u64,
        /// Number of blocks.
        count: usize,
    },
    /// Custom `COMMIT(TxID)` command (write-log firmware only).
    Commit {
        /// Transaction to commit.
        txid: TxId,
    },
}

/// A completed command: its id, a status code, the read payload (for
/// `ByteRead` / `BlockRead`), and the virtual device latency attributed to
/// it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// Id the command was submitted under.
    pub id: CommandId,
    /// Command status: `Ok(())` on success, the media error the firmware
    /// reported (uncorrectable read, read-only degradation), or
    /// [`FlashError::Aborted`] when the host aborted the command (deadline
    /// timeout, lane reset). Mirrors the NVMe completion status field.
    /// Commands coalesced into one merged write share the merged write's
    /// status.
    pub status: Result<(), FlashError>,
    /// Read payload, `None` for non-read commands and failed reads.
    pub data: Option<Vec<u8>>,
    /// Virtual nanoseconds of device time attributed to this command.
    /// Commands coalesced into one merged write share the merged write's
    /// cost evenly.
    pub latency_ns: u64,
}

impl Completion {
    /// Whether the command completed successfully.
    pub fn is_ok(&self) -> bool {
        self.status.is_ok()
    }
}

/// Error returned by [`HostQueue::submit`] when the submission queue is at
/// its configured depth; ring the doorbell (or drain completions) first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("submission queue full: ring the doorbell before submitting more")
    }
}

impl std::error::Error for QueueFull {}

/// Why [`HostQueue::wait`] (or [`HostQueue::try_complete`]) cannot produce a
/// completion for a command id. Replaces the old ambiguous `None`, which
/// collapsed "consumed by a power cut" and "you asked for a bogus id" into
/// one value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitError {
    /// The command was consumed by the device when the power cut landed
    /// inside its (possibly coalesced) execution group: its effects are
    /// in-doubt — crashkit treats the target bytes as `Either` old or new.
    PowerCutConsumed,
    /// Power was cut before the command was consumed: it is still sitting
    /// in the SQ and will never execute. Its effects never happened.
    PowerCutPending,
    /// The id was never returned by [`HostQueue::submit`] on this queue.
    NeverSubmitted,
    /// The command completed, but its completion was already delivered by an
    /// earlier [`poll`](HostQueue::poll) / [`wait`](HostQueue::wait).
    AlreadyDelivered,
    /// The device consumed the command but its completion will never arrive
    /// (an injected hang: dropped completion or unbounded stall). The host
    /// resolves it with [`HostQueue::abort`], which delivers a typed
    /// [`FlashError::Aborted`] completion.
    CompletionLost,
    /// The lane is wedged: the submission queue is not being consumed and
    /// the command cannot make progress until [`HostQueue::reset`].
    LaneWedged,
}

impl std::fmt::Display for WaitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WaitError::PowerCutConsumed => "command consumed by power cut: effects in doubt",
            WaitError::PowerCutPending => "power cut before the command executed",
            WaitError::NeverSubmitted => "command id was never submitted on this queue",
            WaitError::AlreadyDelivered => "completion was already delivered",
            WaitError::CompletionLost => "completion lost (injected hang): abort to resolve",
            WaitError::LaneWedged => "lane wedged: reset the queue to make progress",
        })
    }
}

impl std::error::Error for WaitError {}

/// What [`HostQueue::abort`] did to the command, making the in-doubt
/// taxonomy explicit: an abort never leaves a command in an ambiguous state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortOutcome {
    /// Too late: the command already completed. Its (real) completion is
    /// still in the CQ — nothing was changed.
    AlreadyCompleted,
    /// The command was removed from the submission queue before the device
    /// consumed it. Its effects never happened; resubmitting is exactly-once
    /// safe. A typed [`FlashError::Aborted`] completion was delivered.
    AbortedUnexecuted,
    /// The command was consumed but its completion was lost: its effects are
    /// in-doubt (same taxonomy as a power cut landing inside the group). A
    /// typed [`FlashError::Aborted`] completion was delivered; resubmitting
    /// is idempotent at the device level.
    AbortedInDoubt,
}

/// How [`HostQueue::reset`] disposes of outstanding submission-queue
/// commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResetMode {
    /// Keep unexecuted commands in the SQ: they run on the next doorbell.
    /// Safe because they were never consumed (exactly-once preserved).
    Requeue,
    /// Complete every outstanding SQ command with [`FlashError::Aborted`]
    /// instead of re-running it.
    FailFast,
}

/// Typed outcome of a [`HostQueue::reset`]: every outstanding command is
/// accounted for — requeued, or aborted with a delivered completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResetReport {
    /// Unexecuted commands left in the SQ to re-run ([`ResetMode::Requeue`]).
    pub requeued: usize,
    /// Commands completed with [`FlashError::Aborted`]: every lost
    /// completion, plus the whole SQ under [`ResetMode::FailFast`].
    pub aborted: usize,
    /// Whether the lane was wedged when the reset was issued.
    pub was_wedged: bool,
}

thread_local! {
    /// The queue slot sync (depth-1 shim) operations on this thread are
    /// attributed to. Slot 0 unless a [`HostQueue::make_ambient`] guard is
    /// live.
    static AMBIENT_QUEUE: Cell<u16> = const { Cell::new(0) };
}

/// The queue slot the calling thread's synchronous device operations are
/// currently attributed to (0 = the default sync-shim slot).
pub fn ambient_queue() -> u16 {
    AMBIENT_QUEUE.with(|c| c.get())
}

/// Restores the previous ambient queue slot on drop (see
/// [`HostQueue::make_ambient`]).
#[derive(Debug)]
pub struct AmbientQueueGuard {
    prev: u16,
}

impl Drop for AmbientQueueGuard {
    fn drop(&mut self) {
        AMBIENT_QUEUE.with(|c| c.set(self.prev));
    }
}

/// One NVMe-style submission/completion queue pair over a shared [`Mssd`].
///
/// Owned by a single submitting thread; the device itself is the shared,
/// internally-parallel object. See the module docs for lifecycle, ordering
/// and power-failure semantics.
pub struct HostQueue {
    dev: Arc<Mssd>,
    id: u16,
    depth: usize,
    next_cid: u64,
    sq: VecDeque<(CommandId, Command)>,
    /// Completions in delivery (= submission) order. Command ids are handed
    /// out monotonically and a doorbell never reorders, so the CQ is always
    /// sorted by id — lookups by [`CommandId`] are binary searches, not
    /// scans.
    cq: VecDeque<Completion>,
    /// Ids of the one command group a power cut landed inside: consumed by
    /// the device, effects in doubt, no completion will ever be delivered.
    in_doubt: BTreeSet<u64>,
    /// Fail-slow injection plan shared with the device config (clone shares
    /// the deterministic draw sequence).
    hang: HangFaultPlan,
    /// `true` once an injected wedge stopped this lane: doorbells are no-ops
    /// until [`HostQueue::reset`].
    wedged: bool,
    /// Ids consumed by the device whose completion will never arrive (lost
    /// completion or unbounded stall). Resolved only by abort / reset.
    lost: BTreeSet<u64>,
    /// Ids removed from the SQ by abort or fail-fast reset. Needed to keep
    /// [`HostQueue::in_submission`]'s contiguous-range check truthful: these
    /// ids sit inside the SQ's id range but are no longer in it.
    aborted: BTreeSet<u64>,
    /// Absolute virtual-clock deadlines (`Clock::now_ns` scale) per
    /// outstanding command id; removed on delivery.
    deadlines: BTreeMap<u64, u64>,
}

impl std::fmt::Debug for HostQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostQueue")
            .field("id", &self.id)
            .field("depth", &self.depth)
            .field("pending", &self.sq.len())
            .field("completions", &self.cq.len())
            .finish()
    }
}

impl HostQueue {
    /// Creates a queue pair of the given depth on `dev` with accounting
    /// slot `id`. Use [`Mssd::open_queue`], which assigns slots round-robin.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub(crate) fn new(dev: Arc<Mssd>, id: u16, depth: usize) -> Self {
        assert!(depth > 0, "queue depth must be at least 1");
        let hang = dev.config().hang.clone();
        Self {
            dev,
            id,
            depth,
            next_cid: 1,
            sq: VecDeque::new(),
            cq: VecDeque::new(),
            in_doubt: BTreeSet::new(),
            hang,
            wedged: false,
            lost: BTreeSet::new(),
            aborted: BTreeSet::new(),
            deadlines: BTreeMap::new(),
        }
    }

    /// The device this queue submits to.
    pub fn device(&self) -> &Arc<Mssd> {
        &self.dev
    }

    /// This queue's accounting slot (see [`crate::stats::QUEUE_SLOTS`]).
    pub fn id(&self) -> u16 {
        self.id
    }

    /// Configured submission-queue depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Commands submitted but not yet executed (still in the SQ).
    pub fn pending(&self) -> usize {
        self.sq.len()
    }

    /// Completions produced but not yet polled (still in the CQ).
    pub fn completions_pending(&self) -> usize {
        self.cq.len()
    }

    /// Enqueues a command without touching the device.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the SQ already holds `depth` commands.
    pub fn submit(&mut self, cmd: Command) -> Result<CommandId, QueueFull> {
        if self.sq.len() >= self.depth {
            return Err(QueueFull);
        }
        let id = CommandId(self.next_cid);
        self.next_cid += 1;
        self.sq.push_back((id, cmd));
        let sink = self.dev.stats_ref().trace();
        if sink.enabled() {
            let _s = CtxScope::enter(trace::ctx().with_queue(self.id).with_cmd(id.0));
            sink.emit(TraceKind::SqSubmit, self.sq.len() as u64, 0);
        }
        Ok(id)
    }

    /// Submits, ringing the doorbell first when the SQ is full.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] only when even a doorbell cannot drain the SQ —
    /// i.e. power has been cut and the remaining commands will never
    /// execute.
    pub fn submit_auto(&mut self, cmd: Command) -> Result<CommandId, QueueFull> {
        if self.sq.len() >= self.depth {
            self.ring_doorbell();
        }
        self.submit(cmd)
    }

    /// Rings the doorbell: the firmware consumes the submission queue in
    /// order, coalescing adjacent byte writes, and delivers completions.
    /// Returns the number of completions produced by this ring.
    ///
    /// With a tripped fault plan the batch stops at the cut: commands after
    /// the interrupted group stay in the SQ and never execute.
    pub fn ring_doorbell(&mut self) -> usize {
        if self.wedged || self.sq.is_empty() {
            // An empty doorbell is a no-op: in particular it must not touch
            // the per-queue stats bank, or a caller mixing `submit_auto`
            // with manual rings would inflate the batch count. A wedged lane
            // consumes nothing until it is reset.
            return 0;
        }
        let dev = Arc::clone(&self.dev);
        let mut delivered = 0usize;
        let mut coalesced = 0u64;
        while !self.sq.is_empty() {
            if dev.fault_tripped() {
                break; // power is off: the rest of the SQ never executes
            }
            // Fail-slow draw, one per group about to be consumed. A wedge
            // stops the lane before the group is taken off the SQ.
            let fault = self.hang.command_fault();
            if fault == Some(HangFault::Wedge) {
                self.wedged = true;
                break;
            }
            let (ids, cmd) = self.pop_group();
            // Attribute this whole group — the doorbell, coalescing, every
            // flash op `execute` triggers, and the completions — to the
            // group's first command id, so a command's journey reads as one
            // track in the exported trace.
            let sink = dev.stats_ref().trace();
            let _group_scope = sink
                .enabled()
                .then(|| CtxScope::enter(trace::ctx().with_queue(self.id).with_cmd(ids[0].0)));
            sink.emit(TraceKind::Doorbell, ids.len() as u64, self.sq.len() as u64);
            if ids.len() > 1 {
                sink.emit(TraceKind::Coalesce, ids.len() as u64 - 1, 0);
            }
            if fault == Some(HangFault::Stall { extra_ns: None }) {
                // Unbounded stall: the device consumed the group but it
                // never executes and never completes — only an abort
                // resolves it. Effects never happen (the host cannot tell;
                // the abort path reports in-doubt).
                self.lost.extend(ids.iter().map(|id| id.0));
                continue;
            }
            let (status, data, mut cost) = execute(&dev, &cmd);
            if dev.fault_tripped() {
                // The cut landed inside this group: its effects are in
                // doubt, so no completion is delivered for it — and it
                // counts toward neither ops nor coalesced_cmds.
                self.in_doubt.extend(ids.iter().map(|id| id.0));
                for id in &ids {
                    self.deadlines.remove(&id.0);
                }
                break;
            }
            match fault {
                Some(HangFault::Loss) => {
                    // Executed, completion dropped on the wire: effects are
                    // durable but the host only learns through a deadline.
                    self.lost.extend(ids.iter().map(|id| id.0));
                    continue;
                }
                Some(HangFault::Stall { extra_ns: Some(extra) }) => {
                    // Bounded stall: the completion arrives, late. The extra
                    // time is real device time under the virtual clock.
                    dev.clock().advance(extra);
                    cost += extra;
                }
                _ => {}
            }
            coalesced += ids.len() as u64 - 1;
            // A read's payload goes to the last (only) member; coalesced
            // byte writes share the merged cost evenly, remainder to the
            // first, so the per-queue totals stay exact. A merged write's
            // status is shared by every member.
            let share = cost / ids.len() as u64;
            let mut remainder = cost - share * ids.len() as u64;
            for id in ids {
                let lat = share + remainder;
                remainder = 0;
                self.deadlines.remove(&id.0);
                sink.emit_cmd(TraceKind::CqComplete, id.0, lat, u64::from(status.is_err()));
                self.push_completion(Completion {
                    id,
                    status: status.clone(),
                    data: data.clone(),
                    latency_ns: lat,
                });
                dev.stats_ref().record_queue_op(self.id, lat);
                delivered += 1;
            }
        }
        // A ring that delivered nothing (power already off, or the cut
        // landed inside the first group) did no batch work worth recording
        // — same rule as the empty-SQ early return above.
        if delivered > 0 {
            dev.stats_ref().record_queue_batch(self.id, coalesced);
        }
        delivered
    }

    /// Pops the next command group off the SQ: either one command, or a run
    /// of adjacent byte writes (contiguous addresses, same transaction and
    /// category, merged size ≤ [`COALESCE_MAX_BYTES`]) merged into one.
    fn pop_group(&mut self) -> (Vec<CommandId>, Command) {
        let (cid, cmd) = self.sq.pop_front().expect("pop_group on empty SQ");
        let mut ids = vec![cid];
        let Command::ByteWrite { addr, mut data, txid, cat } = cmd else {
            return (ids, cmd);
        };
        loop {
            match self.sq.front() {
                Some((_, Command::ByteWrite { addr: a, data: d, txid: t, cat: c }))
                    if *a == addr + data.len() as u64
                        && *t == txid
                        && *c == cat
                        && data.len() + d.len() <= COALESCE_MAX_BYTES =>
                {
                    let (cid, cmd) = self.sq.pop_front().expect("checked front");
                    let Command::ByteWrite { data: d, .. } = cmd else { unreachable!() };
                    data.extend_from_slice(&d);
                    ids.push(cid);
                }
                _ => break,
            }
        }
        (ids, Command::ByteWrite { addr, data, txid, cat })
    }

    /// Polls the completion queue: the oldest undelivered completion, if
    /// any. Does not ring the doorbell.
    pub fn poll(&mut self) -> Option<Completion> {
        self.cq.pop_front()
    }

    /// The oldest undelivered completion, without delivering it. Lets a
    /// caller draining a batch in submission order pop completions off the
    /// front ([`poll`](HostQueue::poll), O(1)) instead of binary-searching
    /// every id ([`try_complete`](HostQueue::try_complete)).
    pub fn peek(&self) -> Option<&Completion> {
        self.cq.front()
    }

    /// Whether `id` is still sitting in the submission queue (submitted but
    /// not yet consumed by a doorbell). The SQ holds a contiguous run of ids
    /// (push-back monotonic, pop-front only) *minus* any ids an abort or a
    /// fail-fast reset plucked out, so this is a front/back range check plus
    /// an aborted-set lookup.
    pub fn in_submission(&self, id: CommandId) -> bool {
        match (self.sq.front(), self.sq.back()) {
            (Some((lo, _)), Some((hi, _))) => {
                id.0 >= lo.0 && id.0 <= hi.0 && !self.aborted.contains(&id.0)
            }
            _ => false,
        }
    }

    /// Whether `id`'s completion is sitting in the CQ, without delivering
    /// it. O(log n) binary search over the id-sorted CQ.
    pub fn completion_ready(&self, id: CommandId) -> bool {
        self.cq.binary_search_by_key(&id.0, |c| c.id.0).is_ok()
    }

    /// Delivers `id`'s completion if it is ready, **without ringing the
    /// doorbell**. Returns `Ok(None)` while the command is still in the SQ
    /// (ring, then try again). This is the non-blocking primitive the async
    /// reactor's completion futures poll; [`wait`](HostQueue::wait) is the
    /// ring-then-retry composition of it.
    ///
    /// # Errors
    ///
    /// [`WaitError::NeverSubmitted`] if `id` was never handed out by this
    /// queue, [`WaitError::PowerCutConsumed`] if a power cut landed inside
    /// the command's execution group, [`WaitError::AlreadyDelivered`] if the
    /// completion was already polled or waited out.
    pub fn try_complete(&mut self, id: CommandId) -> Result<Option<Completion>, WaitError> {
        if id.0 == 0 || id.0 >= self.next_cid {
            return Err(WaitError::NeverSubmitted);
        }
        if let Ok(pos) = self.cq.binary_search_by_key(&id.0, |c| c.id.0) {
            return Ok(self.cq.remove(pos));
        }
        if self.in_submission(id) {
            return Ok(None);
        }
        if self.lost.contains(&id.0) {
            return Err(WaitError::CompletionLost);
        }
        if self.in_doubt.contains(&id.0) {
            return Err(WaitError::PowerCutConsumed);
        }
        Err(WaitError::AlreadyDelivered)
    }

    /// Waits for one command's completion: rings the doorbell if the
    /// command is still in the SQ, then removes and returns its completion.
    ///
    /// # Errors
    ///
    /// A typed [`WaitError`] saying exactly why the completion will never
    /// arrive: [`WaitError::PowerCutConsumed`] (the cut landed inside the
    /// command's execution group — effects in doubt),
    /// [`WaitError::PowerCutPending`] (power failed before the command was
    /// consumed — no effect), [`WaitError::NeverSubmitted`], or
    /// [`WaitError::AlreadyDelivered`].
    pub fn wait(&mut self, id: CommandId) -> Result<Completion, WaitError> {
        if let Some(c) = self.try_complete(id)? {
            return Ok(c);
        }
        self.ring_doorbell();
        match self.try_complete(id)? {
            Some(c) => Ok(c),
            // Still in the SQ after a ring: the ring went nowhere, which
            // only happens once power is off or the lane wedged.
            None => {
                Err(if self.wedged { WaitError::LaneWedged } else { WaitError::PowerCutPending })
            }
        }
    }

    /// Enqueues a command with an absolute virtual-clock deadline
    /// (`Clock::now_ns` scale). The deadline does not expire the command by
    /// itself — it is the input to the host's watchdog, which reads
    /// [`HostQueue::expired`] and resolves overdue ids via
    /// [`HostQueue::abort`]. `0` and `u64::MAX` mean "no deadline".
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the SQ already holds `depth` commands.
    pub fn submit_with_deadline(
        &mut self,
        cmd: Command,
        deadline_ns: u64,
    ) -> Result<CommandId, QueueFull> {
        let id = self.submit(cmd)?;
        if deadline_ns != 0 && deadline_ns != u64::MAX {
            self.deadlines.insert(id.0, deadline_ns);
        }
        Ok(id)
    }

    /// The absolute deadline armed for `id`, if it is still outstanding.
    pub fn deadline_of(&self, id: CommandId) -> Option<u64> {
        self.deadlines.get(&id.0).copied()
    }

    /// The earliest deadline among outstanding (undelivered) commands: the
    /// instant the host watchdog would fire next.
    pub fn next_deadline(&self) -> Option<u64> {
        self.deadlines.values().min().copied()
    }

    /// Ids whose deadline is at or before `now_ns` and whose completion has
    /// not been delivered (still in the SQ, or lost). These are the commands
    /// the watchdog must [`abort`](HostQueue::abort) or recover via
    /// [`reset`](HostQueue::reset).
    pub fn expired(&self, now_ns: u64) -> Vec<CommandId> {
        self.deadlines
            .iter()
            .filter(|&(_, &dl)| dl <= now_ns)
            .map(|(&id, _)| CommandId(id))
            .collect()
    }

    /// `true` once an injected wedge stopped this lane: doorbells are no-ops
    /// and nothing completes until [`HostQueue::reset`].
    pub fn wedged(&self) -> bool {
        self.wedged
    }

    /// Commands consumed by the device whose completion will never arrive
    /// (dropped completion / unbounded stall) and that have not been aborted
    /// yet.
    pub fn lost_completions(&self) -> usize {
        self.lost.len()
    }

    /// NVMe-style abort: resolves `id` with a typed outcome, never an
    /// ambiguous `None`. A command still in the SQ is removed (it never
    /// executed); a consumed-but-lost command is failed (its effects are
    /// in-doubt — the same taxonomy as a power cut landing inside its
    /// group). In both cases a completion with status
    /// [`FlashError::Aborted`] is delivered to the CQ so pollers and waiters
    /// observe the resolution. Counts into the device's `aborts` RAS
    /// counter.
    ///
    /// # Errors
    ///
    /// [`WaitError::NeverSubmitted`] for an id this queue never handed out;
    /// [`WaitError::PowerCutConsumed`] when the command was consumed by a
    /// power cut (an abort cannot resolve power loss). Aborting a command
    /// that already finished — whether its completion is still in the CQ or
    /// was already delivered — is a benign no-op reported as
    /// [`AbortOutcome::AlreadyCompleted`].
    pub fn abort(&mut self, id: CommandId) -> Result<AbortOutcome, WaitError> {
        // Attribute the Abort event (emitted by `inc_aborts`) to the command.
        let _s = self
            .dev
            .stats_ref()
            .trace()
            .enabled()
            .then(|| CtxScope::enter(trace::ctx().with_queue(self.id).with_cmd(id.0)));
        if id.0 == 0 || id.0 >= self.next_cid {
            return Err(WaitError::NeverSubmitted);
        }
        if self.completion_ready(id) {
            return Ok(AbortOutcome::AlreadyCompleted);
        }
        if self.in_submission(id) {
            let pos = self
                .sq
                .iter()
                .position(|(cid, _)| *cid == id)
                .expect("in_submission implies an SQ entry");
            self.sq.remove(pos);
            self.aborted.insert(id.0);
            self.deadlines.remove(&id.0);
            self.deliver_aborted(id.0);
            self.dev.stats_ref().inc_aborts();
            return Ok(AbortOutcome::AbortedUnexecuted);
        }
        if self.lost.remove(&id.0) {
            self.deadlines.remove(&id.0);
            self.deliver_aborted(id.0);
            self.dev.stats_ref().inc_aborts();
            return Ok(AbortOutcome::AbortedInDoubt);
        }
        if self.in_doubt.contains(&id.0) {
            return Err(WaitError::PowerCutConsumed);
        }
        Ok(AbortOutcome::AlreadyCompleted)
    }

    /// Lane-level reset: clears a wedge and resolves every outstanding
    /// command with a typed outcome. Lost completions always fail fast (the
    /// device already consumed them; waiting longer cannot help);
    /// unexecuted SQ commands are either left to re-run
    /// ([`ResetMode::Requeue`] — exactly-once safe, they were never
    /// consumed) or failed with [`FlashError::Aborted`]
    /// ([`ResetMode::FailFast`]). Counts into the device's `lane_resets`
    /// RAS counter.
    pub fn reset(&mut self, mode: ResetMode) -> ResetReport {
        // Attribute the LaneReset event (emitted by `inc_lane_resets`).
        let _s = self
            .dev
            .stats_ref()
            .trace()
            .enabled()
            .then(|| CtxScope::enter(trace::ctx().with_queue(self.id)));
        let was_wedged = self.wedged;
        self.wedged = false;
        let mut aborted = 0usize;
        for id in std::mem::take(&mut self.lost) {
            self.deadlines.remove(&id);
            self.deliver_aborted(id);
            aborted += 1;
        }
        let requeued = match mode {
            ResetMode::Requeue => self.sq.len(),
            ResetMode::FailFast => {
                while let Some((id, _)) = self.sq.pop_front() {
                    self.aborted.insert(id.0);
                    self.deadlines.remove(&id.0);
                    self.deliver_aborted(id.0);
                    aborted += 1;
                }
                0
            }
        };
        self.dev.stats_ref().inc_lane_resets();
        ResetReport { requeued, aborted, was_wedged }
    }

    /// Inserts an [`FlashError::Aborted`] completion for `id` at its sorted
    /// position.
    fn deliver_aborted(&mut self, id: u64) {
        self.push_completion(Completion {
            id: CommandId(id),
            status: Err(FlashError::Aborted),
            data: None,
            latency_ns: 0,
        });
    }

    /// Inserts a completion at its id-sorted position. Normal doorbell
    /// deliveries are monotonic (this degenerates to a push_back), but an
    /// abort can resolve an id *ahead* of still-queued lower ids — whose
    /// later completions must then slot in before it, so every insertion
    /// goes through the same sorted path to keep
    /// [`HostQueue::try_complete`]'s binary search valid.
    fn push_completion(&mut self, c: Completion) {
        let pos = self.cq.partition_point(|e| e.id.0 < c.id.0);
        self.cq.insert(pos, c);
    }

    /// Makes this queue the calling thread's *ambient* queue: until the
    /// guard drops, synchronous device calls (the depth-1 shim) on this
    /// thread are attributed to this queue's accounting slot. This is how
    /// `workloads::run_concurrent` attributes each shard's file-system
    /// traffic to the shard's queue without threading a handle through
    /// every layer.
    pub fn make_ambient(&self) -> AmbientQueueGuard {
        let prev = AMBIENT_QUEUE.with(|c| c.replace(self.id));
        AmbientQueueGuard { prev }
    }
}

/// Executes one (possibly merged) command against the device, returning the
/// completion status, the read payload and the virtual device cost. This is
/// the single execution path shared by doorbell batches and the synchronous
/// depth-1 shim.
pub(crate) fn execute(dev: &Mssd, cmd: &Command) -> (Result<(), FlashError>, Option<Vec<u8>>, u64) {
    match cmd {
        Command::ByteWrite { addr, data, txid, cat } => {
            let (status, cost) = dev.exec_byte_write(*addr, data, *txid, *cat);
            (status, None, cost)
        }
        Command::ByteRead { addr, len, cat } => {
            let (data, cost) = dev.exec_byte_read(*addr, *len, *cat);
            match data {
                Ok(data) => (Ok(()), Some(data), cost),
                Err(e) => (Err(e), None, cost),
            }
        }
        Command::BlockWrite { lba, data, cat } => {
            let (status, cost) = dev.exec_block_write(*lba, data, *cat);
            (status, None, cost)
        }
        Command::BlockRead { lba, count, cat } => {
            let (data, cost) = dev.exec_block_read(*lba, *count, *cat);
            match data {
                Ok(data) => (Ok(()), Some(data), cost),
                Err(e) => (Err(e), None, cost),
            }
        }
        Command::Flush => {
            let (status, cost) = dev.exec_flush();
            (status, None, cost)
        }
        Command::Trim { lba, count } => (Ok(()), None, dev.exec_trim(*lba, *count)),
        Command::Commit { txid } => (Ok(()), None, dev.exec_commit(*txid)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MssdConfig;
    use crate::device::DramMode;

    fn dev() -> Arc<Mssd> {
        Mssd::new(MssdConfig::small_test(), DramMode::WriteLog)
    }

    #[test]
    fn submit_ring_poll_roundtrip() {
        let d = dev();
        let mut q = d.open_queue(8);
        let w = q
            .submit(Command::ByteWrite {
                addr: 4096,
                data: vec![7u8; 64],
                txid: None,
                cat: Category::Inode,
            })
            .unwrap();
        let r = q.submit(Command::ByteRead { addr: 4096, len: 64, cat: Category::Inode }).unwrap();
        assert_eq!(q.pending(), 2);
        assert_eq!(q.ring_doorbell(), 2);
        assert_eq!(q.pending(), 0);
        let cw = q.poll().expect("write completion");
        assert_eq!(cw.id, w);
        assert_eq!(cw.data, None);
        let cr = q.poll().expect("read completion");
        assert_eq!(cr.id, r);
        assert_eq!(cr.data, Some(vec![7u8; 64]));
        assert!(q.poll().is_none());
    }

    #[test]
    fn queue_full_and_submit_auto() {
        let d = dev();
        let mut q = d.open_queue(2);
        let cmd = || Command::ByteRead { addr: 0, len: 64, cat: Category::Data };
        q.submit(cmd()).unwrap();
        q.submit(cmd()).unwrap();
        assert_eq!(q.submit(cmd()), Err(QueueFull));
        // submit_auto rings for us.
        q.submit_auto(cmd()).unwrap();
        assert_eq!(q.completions_pending(), 2);
        assert_eq!(q.pending(), 1);
    }

    #[test]
    fn adjacent_byte_writes_coalesce_into_one_log_append() {
        let d = dev();
        let mut q = d.open_queue(16);
        // 8 contiguous cacheline writes -> one merged append.
        for i in 0..8u64 {
            q.submit(Command::ByteWrite {
                addr: 8192 + i * 64,
                data: vec![i as u8 + 1; 64],
                txid: None,
                cat: Category::Data,
            })
            .unwrap();
        }
        q.ring_doorbell();
        let snap = d.snapshot();
        assert_eq!(snap.log_entries, 1, "adjacent writes must merge into one entry");
        let ql = snap.traffic.queue_lat(q.id());
        assert_eq!(ql.ops, 8);
        assert_eq!(ql.batches, 1);
        assert_eq!(ql.coalesced_cmds, 7);
        for i in 0..8u64 {
            assert_eq!(d.byte_read(8192 + i * 64, 64, Category::Data), vec![i as u8 + 1; 64]);
        }
    }

    #[test]
    fn non_adjacent_or_cross_tx_writes_do_not_coalesce() {
        let d = dev();
        let mut q = d.open_queue(8);
        q.submit(Command::ByteWrite {
            addr: 0,
            data: vec![1; 64],
            txid: None,
            cat: Category::Data,
        })
        .unwrap();
        // Gap.
        q.submit(Command::ByteWrite {
            addr: 192,
            data: vec![2; 64],
            txid: None,
            cat: Category::Data,
        })
        .unwrap();
        // Adjacent but transactional.
        q.submit(Command::ByteWrite {
            addr: 256,
            data: vec![3; 64],
            txid: Some(TxId(9)),
            cat: Category::Data,
        })
        .unwrap();
        q.ring_doorbell();
        assert_eq!(d.snapshot().traffic.queue_lat(q.id()).coalesced_cmds, 0);
        assert_eq!(d.snapshot().log_entries, 3);
    }

    #[test]
    fn wait_rings_and_returns_the_right_completion() {
        let d = dev();
        let mut q = d.open_queue(8);
        let a = q
            .submit(Command::ByteWrite {
                addr: 0,
                data: vec![5; 64],
                txid: None,
                cat: Category::Data,
            })
            .unwrap();
        let b = q.submit(Command::ByteRead { addr: 0, len: 64, cat: Category::Data }).unwrap();
        let cb = q.wait(b).expect("read completes");
        assert_eq!(cb.data, Some(vec![5; 64]));
        let ca = q.wait(a).expect("write completion still retrievable");
        assert!(ca.latency_ns > 0);
        assert_eq!(q.wait(b), Err(WaitError::AlreadyDelivered));
    }

    #[test]
    fn wait_distinguishes_never_submitted_from_already_delivered() {
        let d = dev();
        let mut q = d.open_queue(4);
        assert_eq!(q.wait(CommandId(0)), Err(WaitError::NeverSubmitted));
        assert_eq!(q.wait(CommandId(7)), Err(WaitError::NeverSubmitted));
        let a = q.submit(Command::ByteRead { addr: 0, len: 64, cat: Category::Data }).unwrap();
        assert!(!q.completion_ready(a));
        assert!(q.in_submission(a));
        q.wait(a).expect("completes");
        assert!(!q.in_submission(a));
        assert_eq!(q.wait(a), Err(WaitError::AlreadyDelivered));
        assert_eq!(q.try_complete(a), Err(WaitError::AlreadyDelivered));
    }

    #[test]
    fn try_complete_does_not_ring() {
        let d = dev();
        let mut q = d.open_queue(4);
        let a = q.submit(Command::ByteRead { addr: 0, len: 64, cat: Category::Data }).unwrap();
        assert_eq!(q.try_complete(a), Ok(None), "still in the SQ, no implicit ring");
        assert_eq!(q.pending(), 1);
        q.ring_doorbell();
        assert!(q.completion_ready(a));
        let c = q.try_complete(a).unwrap().expect("delivered");
        assert_eq!(c.id, a);
    }

    #[test]
    fn wait_reports_power_cut_consumed_and_pending() {
        use crate::fault::FaultPlan;
        // Count the device steps of one ring, then cut inside the second
        // command's execution so the first completes, the second is
        // consumed-in-doubt and the third never leaves the SQ.
        let cfg = MssdConfig::small_test();
        let submit3 = |q: &mut HostQueue| {
            // A gap between writes prevents coalescing: three groups.
            let mut ids = Vec::new();
            for i in 0..3u64 {
                ids.push(
                    q.submit(Command::ByteWrite {
                        addr: i * 4096,
                        data: vec![i as u8 + 1; 64],
                        txid: None,
                        cat: Category::Data,
                    })
                    .unwrap(),
                );
            }
            ids
        };
        let probe =
            Mssd::new(cfg.clone().with_fault_plan(FaultPlan::count_only()), DramMode::WriteLog);
        let mut q = probe.open_queue(4);
        submit3(&mut q);
        q.ring_doorbell();
        let total = probe.fault_plan().total_steps();
        assert!(total >= 3, "three appends take at least three steps");
        // Cut at the last step: it lands inside the final group of the ring.
        let d =
            Mssd::new(cfg.clone().with_fault_plan(FaultPlan::cut_at(total)), DramMode::WriteLog);
        let mut q = d.open_queue(4);
        let ids = submit3(&mut q);
        q.ring_doorbell();
        assert!(d.fault_tripped());
        q.wait(ids[0]).expect("first group completed before the cut");
        assert_eq!(q.wait(ids[2]), Err(WaitError::PowerCutConsumed));
        // And a cut at step 1 leaves later commands pending forever.
        let d = Mssd::new(cfg.with_fault_plan(FaultPlan::cut_at(1)), DramMode::WriteLog);
        let mut q = d.open_queue(4);
        let ids = submit3(&mut q);
        q.ring_doorbell();
        assert_eq!(q.wait(ids[2]), Err(WaitError::PowerCutPending));
        assert!(q.in_submission(ids[2]), "unconsumed command stays in the SQ");
    }

    #[test]
    fn empty_doorbells_record_no_batch() {
        let d = dev();
        let mut q = d.open_queue(4);
        assert_eq!(q.ring_doorbell(), 0);
        let cmd = || Command::ByteRead { addr: 0, len: 64, cat: Category::Data };
        // submit_auto on a non-full SQ must not ring.
        q.submit_auto(cmd()).unwrap();
        assert_eq!(q.completions_pending(), 0);
        q.ring_doorbell();
        assert_eq!(q.ring_doorbell(), 0, "SQ drained: second ring is a no-op");
        let ql = d.traffic().queue_lat(q.id());
        assert_eq!(ql.batches, 1, "only the ring that consumed commands counts");
        assert_eq!(ql.ops, 1);
    }

    #[test]
    fn batched_commit_makes_transaction_durable() {
        let d = dev();
        let mut q = d.open_queue(8);
        let tx = TxId(3);
        q.submit(Command::ByteWrite {
            addr: 4096,
            data: vec![0xEE; 64],
            txid: Some(tx),
            cat: Category::Inode,
        })
        .unwrap();
        q.submit(Command::Commit { txid: tx }).unwrap();
        q.ring_doorbell();
        assert!(d.is_committed(tx));
        d.recover();
        assert_eq!(d.byte_read(4096, 64, Category::Inode), vec![0xEE; 64]);
    }

    #[test]
    fn deadlines_track_expiry_and_clear_on_delivery() {
        let d = dev();
        let mut q = d.open_queue(4);
        let now = d.clock().now_ns();
        let a = q
            .submit_with_deadline(
                Command::ByteRead { addr: 0, len: 64, cat: Category::Data },
                now + 1_000,
            )
            .unwrap();
        let b = q
            .submit_with_deadline(
                Command::ByteRead { addr: 4096, len: 64, cat: Category::Data },
                u64::MAX,
            )
            .unwrap();
        assert_eq!(q.deadline_of(a), Some(now + 1_000));
        assert_eq!(q.deadline_of(b), None, "u64::MAX means no deadline");
        assert_eq!(q.next_deadline(), Some(now + 1_000));
        assert!(q.expired(now).is_empty());
        d.clock().advance(2_000);
        assert_eq!(q.expired(d.clock().now_ns()), vec![a]);
        q.ring_doorbell();
        assert_eq!(q.deadline_of(a), None, "delivery clears the deadline");
        assert!(q.expired(u64::MAX).is_empty());
        assert_eq!(q.next_deadline(), None);
    }

    #[test]
    fn abort_of_unexecuted_command_is_typed_and_preserves_the_rest() {
        let d = dev();
        let mut q = d.open_queue(4);
        // A gap prevents coalescing: two groups.
        let a = q
            .submit(Command::ByteWrite {
                addr: 0,
                data: vec![1; 64],
                txid: None,
                cat: Category::Data,
            })
            .unwrap();
        let b = q
            .submit(Command::ByteWrite {
                addr: 4096,
                data: vec![2; 64],
                txid: None,
                cat: Category::Data,
            })
            .unwrap();
        assert_eq!(q.abort(b), Ok(AbortOutcome::AbortedUnexecuted));
        assert!(!q.in_submission(b), "aborted id is out of the SQ");
        assert!(q.in_submission(a), "other commands are untouched");
        let cb = q.try_complete(b).unwrap().expect("typed aborted completion");
        assert_eq!(cb.status, Err(FlashError::Aborted));
        q.ring_doorbell();
        assert!(q.wait(a).expect("survivor completes").is_ok());
        assert_eq!(d.byte_read(4096, 64, Category::Data), vec![0; 64], "abortee never executed");
        assert_eq!(q.abort(a), Ok(AbortOutcome::AlreadyCompleted));
        assert_eq!(q.wait(b), Err(WaitError::AlreadyDelivered));
        assert_eq!(d.traffic().aborts, 1);
    }

    #[test]
    fn lost_completion_is_typed_and_resolves_via_abort() {
        use crate::fault::{HangFaultConfig, HangFaultPlan};
        let d =
            Mssd::new(
                MssdConfig::small_test().with_hang_fault_plan(HangFaultPlan::new(
                    HangFaultConfig { seed: 3, hang_loss_at: 1, ..Default::default() },
                )),
                DramMode::WriteLog,
            );
        let mut q = d.open_queue(4);
        let a = q
            .submit(Command::ByteWrite {
                addr: 0,
                data: vec![9; 64],
                txid: None,
                cat: Category::Data,
            })
            .unwrap();
        assert_eq!(q.ring_doorbell(), 0, "the completion was dropped");
        assert_eq!(q.lost_completions(), 1);
        assert_eq!(q.try_complete(a), Err(WaitError::CompletionLost));
        assert_eq!(q.wait(a), Err(WaitError::CompletionLost));
        assert_eq!(q.abort(a), Ok(AbortOutcome::AbortedInDoubt));
        assert_eq!(q.lost_completions(), 0);
        let c = q.wait(a).expect("abort delivered a completion");
        assert_eq!(c.status, Err(FlashError::Aborted));
        // Loss means the device *did* execute the command: in-doubt resolves
        // to "effects durable" here, and a retry would be idempotent.
        assert_eq!(d.byte_read(0, 64, Category::Data), vec![9; 64]);
    }

    #[test]
    fn wedge_stops_the_lane_until_requeue_reset() {
        use crate::fault::{HangFaultConfig, HangFaultPlan};
        let d =
            Mssd::new(
                MssdConfig::small_test().with_hang_fault_plan(HangFaultPlan::new(
                    HangFaultConfig { seed: 3, hang_wedge_at: 1, ..Default::default() },
                )),
                DramMode::WriteLog,
            );
        let mut q = d.open_queue(4);
        let a = q
            .submit(Command::ByteWrite {
                addr: 0,
                data: vec![4; 64],
                txid: None,
                cat: Category::Data,
            })
            .unwrap();
        let b = q.submit(Command::ByteRead { addr: 0, len: 64, cat: Category::Data }).unwrap();
        assert_eq!(q.ring_doorbell(), 0);
        assert!(q.wedged());
        assert_eq!(q.wait(a), Err(WaitError::LaneWedged));
        assert_eq!(q.pending(), 2, "wedged lane consumes nothing");
        let report = q.reset(ResetMode::Requeue);
        assert_eq!(report, ResetReport { requeued: 2, aborted: 0, was_wedged: true });
        assert!(!q.wedged());
        assert_eq!(q.ring_doorbell(), 2, "requeued commands run after the reset");
        assert!(q.wait(a).expect("write completes").is_ok());
        assert_eq!(q.wait(b).expect("read completes").data, Some(vec![4; 64]));
        assert_eq!(d.traffic().lane_resets, 1);
    }

    #[test]
    fn failfast_reset_aborts_everything_outstanding() {
        use crate::fault::{HangFaultConfig, HangFaultPlan};
        let d =
            Mssd::new(
                MssdConfig::small_test().with_hang_fault_plan(HangFaultPlan::new(
                    HangFaultConfig { seed: 3, hang_wedge_at: 1, ..Default::default() },
                )),
                DramMode::WriteLog,
            );
        let mut q = d.open_queue(4);
        let a = q.submit(Command::ByteRead { addr: 0, len: 64, cat: Category::Data }).unwrap();
        let b = q.submit(Command::ByteRead { addr: 4096, len: 64, cat: Category::Data }).unwrap();
        q.ring_doorbell();
        assert!(q.wedged());
        let report = q.reset(ResetMode::FailFast);
        assert_eq!(report, ResetReport { requeued: 0, aborted: 2, was_wedged: true });
        assert_eq!(q.pending(), 0);
        for id in [a, b] {
            let c = q.wait(id).expect("typed aborted completion");
            assert_eq!(c.status, Err(FlashError::Aborted));
        }
    }

    #[test]
    fn unbounded_stall_consumes_without_executing() {
        use crate::fault::{HangFaultConfig, HangFaultPlan};
        let d = Mssd::new(
            MssdConfig::small_test().with_hang_fault_plan(HangFaultPlan::new(HangFaultConfig {
                seed: 3,
                stall_rate: 1.0,
                unbounded_stall_rate: 1.0,
                ..Default::default()
            })),
            DramMode::WriteLog,
        );
        let mut q = d.open_queue(4);
        let a = q
            .submit(Command::ByteWrite {
                addr: 0,
                data: vec![7; 64],
                txid: None,
                cat: Category::Data,
            })
            .unwrap();
        assert_eq!(q.ring_doorbell(), 0);
        assert_eq!(q.lost_completions(), 1);
        assert_eq!(q.abort(a), Ok(AbortOutcome::AbortedInDoubt));
        // In-doubt resolves to "never executed" for an unbounded stall.
        assert_eq!(d.byte_read(0, 64, Category::Data), vec![0; 64]);
    }

    #[test]
    fn bounded_stall_inflates_latency_under_the_virtual_clock() {
        use crate::fault::{HangFaultConfig, HangFaultPlan};
        let d = Mssd::new(
            MssdConfig::small_test().with_hang_fault_plan(HangFaultPlan::new(HangFaultConfig {
                seed: 3,
                stall_rate: 1.0,
                stall_min_ns: 500_000,
                stall_max_ns: 500_000,
                ..Default::default()
            })),
            DramMode::WriteLog,
        );
        let mut q = d.open_queue(4);
        let a = q.submit(Command::ByteRead { addr: 0, len: 64, cat: Category::Data }).unwrap();
        let before = d.clock().now_ns();
        q.ring_doorbell();
        let c = q.wait(a).expect("stalled command still completes");
        assert!(c.is_ok());
        assert!(c.latency_ns >= 500_000, "stall charged to the completion");
        assert!(d.clock().now_ns() - before >= 500_000, "stall advanced the virtual clock");
    }

    #[test]
    fn ambient_guard_attributes_sync_ops_to_the_queue() {
        let d = dev();
        let q = d.open_queue(4);
        {
            let _g = q.make_ambient();
            d.byte_write(0, &[1u8; 64], None, Category::Data);
        }
        d.byte_write(64, &[2u8; 64], None, Category::Data);
        let t = d.traffic();
        assert_eq!(t.queue_lat(q.id()).ops, 1, "ambient op lands on the queue slot");
        assert_eq!(t.queue_lat(0).ops, 1, "post-guard op lands on the sync slot");
    }
}
