//! Multi-queue host interface: NVMe-style per-core submission/completion
//! queue pairs with batched doorbell submission.
//!
//! The rest of the stack is internally parallel (sharded write log,
//! channel-parallel FTL, background cleaning), but until this module every
//! host request entered the device through one synchronous call per
//! operation, paying full per-command overhead at the host boundary. A
//! [`HostQueue`] amortizes that boundary the way real NVMe queue pairs do:
//!
//! * the host [`submit`](HostQueue::submit)s [`Command`]s into a bounded
//!   submission queue (SQ) without touching the device;
//! * [`ring_doorbell`](HostQueue::ring_doorbell) hands the whole batch to
//!   the firmware, which **coalesces adjacent byte writes** (same
//!   transaction, same category, contiguous addresses) into single log
//!   appends before they hit the sharded write log — one shard-lock
//!   acquisition and one skip-list insert instead of one per command;
//! * completions land in a completion queue (CQ) the host drains
//!   asynchronously via [`poll`](HostQueue::poll) or blocks on via
//!   [`wait`](HostQueue::wait), each carrying the command's virtual device
//!   latency and any read payload.
//!
//! # Queue lifecycle
//!
//! A queue pair is created with [`crate::Mssd::open_queue`] and owned by one
//! submitting thread (the per-core model: queues are not shared, the device
//! is). Dropping the queue discards unsubmitted commands and undelivered
//! completions — exactly what happens to host queue memory at power loss.
//!
//! # Completion ordering
//!
//! Commands of one queue execute in submission order; a doorbell never
//! reorders, it only merges adjacent byte writes (which preserves the byte
//! image and the durability class of every merged command). Completions are
//! delivered in submission order too. Across *different* queues there is no
//! ordering — as on real hardware, cross-queue ordering is the host's
//! problem (our workloads partition address ranges per queue).
//!
//! # Power failure
//!
//! A doorbell checks for a tripped [`crate::FaultPlan`] before every
//! command group: once power is cut, nothing further executes and the
//! remaining submission-queue entries are left in place — crashkit's
//! `device-mq` scenario asserts they have **no** durable effect, while
//! commands whose completion was produced (even if the host never polled
//! it) are durable under the normal contract, and the one group the cut
//! landed inside is in-doubt.
//!
//! The synchronous [`crate::Mssd`] API (`byte_write`, `block_read`, …) is a
//! depth-1 shim over this machinery: each call executes the same command
//! path immediately and records itself against queue slot 0 (or the
//! thread's ambient queue, see [`HostQueue::make_ambient`]).

use std::cell::Cell;
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

use crate::device::Mssd;
use crate::flash::FlashError;
use crate::stats::Category;
use crate::txn::TxId;

/// Upper bound on the bytes a doorbell merges into one coalesced byte
/// write. Bounds the memory of a merged append and keeps a single merged
/// command from monopolizing a log shard.
pub const COALESCE_MAX_BYTES: usize = 64 << 10;

/// Per-queue identifier of a submitted command, returned by
/// [`HostQueue::submit`] and echoed in its [`Completion`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CommandId(pub u64);

/// One host command, covering both interfaces plus the custom firmware
/// commands (§4.2/§4.7: `COMMIT`, TRIM, FLUSH).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Byte-interface write of `data` at device byte address `addr`,
    /// optionally transactional.
    ByteWrite {
        /// Absolute device byte address.
        addr: u64,
        /// Payload.
        data: Vec<u8>,
        /// Transaction the write belongs to (durable at commit), if any.
        txid: Option<TxId>,
        /// Accounting category.
        cat: Category,
    },
    /// Byte-interface read of `len` bytes at `addr`.
    ByteRead {
        /// Absolute device byte address.
        addr: u64,
        /// Bytes to read.
        len: usize,
        /// Accounting category.
        cat: Category,
    },
    /// Block-interface write of whole pages starting at `lba` (`data` must
    /// be a non-empty multiple of the page size).
    BlockWrite {
        /// First logical block.
        lba: u64,
        /// Page-aligned payload.
        data: Vec<u8>,
        /// Accounting category.
        cat: Category,
    },
    /// Block-interface read of `count` pages starting at `lba`.
    BlockRead {
        /// First logical block.
        lba: u64,
        /// Number of pages.
        count: usize,
        /// Accounting category.
        cat: Category,
    },
    /// NVMe FLUSH: force acknowledged block writes to flash.
    Flush,
    /// TRIM `count` blocks starting at `lba`.
    Trim {
        /// First logical block.
        lba: u64,
        /// Number of blocks.
        count: usize,
    },
    /// Custom `COMMIT(TxID)` command (write-log firmware only).
    Commit {
        /// Transaction to commit.
        txid: TxId,
    },
}

/// A completed command: its id, a status code, the read payload (for
/// `ByteRead` / `BlockRead`), and the virtual device latency attributed to
/// it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// Id the command was submitted under.
    pub id: CommandId,
    /// Command status: `Ok(())` on success, or the media error the firmware
    /// reported (uncorrectable read, read-only degradation). Mirrors the
    /// NVMe completion status field. Commands coalesced into one merged
    /// write share the merged write's status.
    pub status: Result<(), FlashError>,
    /// Read payload, `None` for non-read commands and failed reads.
    pub data: Option<Vec<u8>>,
    /// Virtual nanoseconds of device time attributed to this command.
    /// Commands coalesced into one merged write share the merged write's
    /// cost evenly.
    pub latency_ns: u64,
}

impl Completion {
    /// Whether the command completed successfully.
    pub fn is_ok(&self) -> bool {
        self.status.is_ok()
    }
}

/// Error returned by [`HostQueue::submit`] when the submission queue is at
/// its configured depth; ring the doorbell (or drain completions) first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("submission queue full: ring the doorbell before submitting more")
    }
}

impl std::error::Error for QueueFull {}

/// Why [`HostQueue::wait`] (or [`HostQueue::try_complete`]) cannot produce a
/// completion for a command id. Replaces the old ambiguous `None`, which
/// collapsed "consumed by a power cut" and "you asked for a bogus id" into
/// one value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitError {
    /// The command was consumed by the device when the power cut landed
    /// inside its (possibly coalesced) execution group: its effects are
    /// in-doubt — crashkit treats the target bytes as `Either` old or new.
    PowerCutConsumed,
    /// Power was cut before the command was consumed: it is still sitting
    /// in the SQ and will never execute. Its effects never happened.
    PowerCutPending,
    /// The id was never returned by [`HostQueue::submit`] on this queue.
    NeverSubmitted,
    /// The command completed, but its completion was already delivered by an
    /// earlier [`poll`](HostQueue::poll) / [`wait`](HostQueue::wait).
    AlreadyDelivered,
}

impl std::fmt::Display for WaitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WaitError::PowerCutConsumed => "command consumed by power cut: effects in doubt",
            WaitError::PowerCutPending => "power cut before the command executed",
            WaitError::NeverSubmitted => "command id was never submitted on this queue",
            WaitError::AlreadyDelivered => "completion was already delivered",
        })
    }
}

impl std::error::Error for WaitError {}

thread_local! {
    /// The queue slot sync (depth-1 shim) operations on this thread are
    /// attributed to. Slot 0 unless a [`HostQueue::make_ambient`] guard is
    /// live.
    static AMBIENT_QUEUE: Cell<u16> = const { Cell::new(0) };
}

/// The queue slot the calling thread's synchronous device operations are
/// currently attributed to (0 = the default sync-shim slot).
pub fn ambient_queue() -> u16 {
    AMBIENT_QUEUE.with(|c| c.get())
}

/// Restores the previous ambient queue slot on drop (see
/// [`HostQueue::make_ambient`]).
#[derive(Debug)]
pub struct AmbientQueueGuard {
    prev: u16,
}

impl Drop for AmbientQueueGuard {
    fn drop(&mut self) {
        AMBIENT_QUEUE.with(|c| c.set(self.prev));
    }
}

/// One NVMe-style submission/completion queue pair over a shared [`Mssd`].
///
/// Owned by a single submitting thread; the device itself is the shared,
/// internally-parallel object. See the module docs for lifecycle, ordering
/// and power-failure semantics.
pub struct HostQueue {
    dev: Arc<Mssd>,
    id: u16,
    depth: usize,
    next_cid: u64,
    sq: VecDeque<(CommandId, Command)>,
    /// Completions in delivery (= submission) order. Command ids are handed
    /// out monotonically and a doorbell never reorders, so the CQ is always
    /// sorted by id — lookups by [`CommandId`] are binary searches, not
    /// scans.
    cq: VecDeque<Completion>,
    /// Ids of the one command group a power cut landed inside: consumed by
    /// the device, effects in doubt, no completion will ever be delivered.
    in_doubt: BTreeSet<u64>,
}

impl std::fmt::Debug for HostQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostQueue")
            .field("id", &self.id)
            .field("depth", &self.depth)
            .field("pending", &self.sq.len())
            .field("completions", &self.cq.len())
            .finish()
    }
}

impl HostQueue {
    /// Creates a queue pair of the given depth on `dev` with accounting
    /// slot `id`. Use [`Mssd::open_queue`], which assigns slots round-robin.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub(crate) fn new(dev: Arc<Mssd>, id: u16, depth: usize) -> Self {
        assert!(depth > 0, "queue depth must be at least 1");
        Self {
            dev,
            id,
            depth,
            next_cid: 1,
            sq: VecDeque::new(),
            cq: VecDeque::new(),
            in_doubt: BTreeSet::new(),
        }
    }

    /// The device this queue submits to.
    pub fn device(&self) -> &Arc<Mssd> {
        &self.dev
    }

    /// This queue's accounting slot (see [`crate::stats::QUEUE_SLOTS`]).
    pub fn id(&self) -> u16 {
        self.id
    }

    /// Configured submission-queue depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Commands submitted but not yet executed (still in the SQ).
    pub fn pending(&self) -> usize {
        self.sq.len()
    }

    /// Completions produced but not yet polled (still in the CQ).
    pub fn completions_pending(&self) -> usize {
        self.cq.len()
    }

    /// Enqueues a command without touching the device.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the SQ already holds `depth` commands.
    pub fn submit(&mut self, cmd: Command) -> Result<CommandId, QueueFull> {
        if self.sq.len() >= self.depth {
            return Err(QueueFull);
        }
        let id = CommandId(self.next_cid);
        self.next_cid += 1;
        self.sq.push_back((id, cmd));
        Ok(id)
    }

    /// Submits, ringing the doorbell first when the SQ is full.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] only when even a doorbell cannot drain the SQ —
    /// i.e. power has been cut and the remaining commands will never
    /// execute.
    pub fn submit_auto(&mut self, cmd: Command) -> Result<CommandId, QueueFull> {
        if self.sq.len() >= self.depth {
            self.ring_doorbell();
        }
        self.submit(cmd)
    }

    /// Rings the doorbell: the firmware consumes the submission queue in
    /// order, coalescing adjacent byte writes, and delivers completions.
    /// Returns the number of completions produced by this ring.
    ///
    /// With a tripped fault plan the batch stops at the cut: commands after
    /// the interrupted group stay in the SQ and never execute.
    pub fn ring_doorbell(&mut self) -> usize {
        if self.sq.is_empty() {
            // An empty doorbell is a no-op: in particular it must not touch
            // the per-queue stats bank, or a caller mixing `submit_auto`
            // with manual rings would inflate the batch count.
            return 0;
        }
        let dev = Arc::clone(&self.dev);
        let mut delivered = 0usize;
        let mut coalesced = 0u64;
        while !self.sq.is_empty() {
            if dev.fault_tripped() {
                break; // power is off: the rest of the SQ never executes
            }
            let (ids, cmd) = self.pop_group();
            let (status, data, cost) = execute(&dev, &cmd);
            if dev.fault_tripped() {
                // The cut landed inside this group: its effects are in
                // doubt, so no completion is delivered for it — and it
                // counts toward neither ops nor coalesced_cmds.
                self.in_doubt.extend(ids.iter().map(|id| id.0));
                break;
            }
            coalesced += ids.len() as u64 - 1;
            // A read's payload goes to the last (only) member; coalesced
            // byte writes share the merged cost evenly, remainder to the
            // first, so the per-queue totals stay exact. A merged write's
            // status is shared by every member.
            let share = cost / ids.len() as u64;
            let mut remainder = cost - share * ids.len() as u64;
            for id in ids {
                let lat = share + remainder;
                remainder = 0;
                self.cq.push_back(Completion {
                    id,
                    status: status.clone(),
                    data: data.clone(),
                    latency_ns: lat,
                });
                dev.stats_ref().record_queue_op(self.id, lat);
                delivered += 1;
            }
        }
        // A ring that delivered nothing (power already off, or the cut
        // landed inside the first group) did no batch work worth recording
        // — same rule as the empty-SQ early return above.
        if delivered > 0 {
            dev.stats_ref().record_queue_batch(self.id, coalesced);
        }
        delivered
    }

    /// Pops the next command group off the SQ: either one command, or a run
    /// of adjacent byte writes (contiguous addresses, same transaction and
    /// category, merged size ≤ [`COALESCE_MAX_BYTES`]) merged into one.
    fn pop_group(&mut self) -> (Vec<CommandId>, Command) {
        let (cid, cmd) = self.sq.pop_front().expect("pop_group on empty SQ");
        let mut ids = vec![cid];
        let Command::ByteWrite { addr, mut data, txid, cat } = cmd else {
            return (ids, cmd);
        };
        loop {
            match self.sq.front() {
                Some((_, Command::ByteWrite { addr: a, data: d, txid: t, cat: c }))
                    if *a == addr + data.len() as u64
                        && *t == txid
                        && *c == cat
                        && data.len() + d.len() <= COALESCE_MAX_BYTES =>
                {
                    let (cid, cmd) = self.sq.pop_front().expect("checked front");
                    let Command::ByteWrite { data: d, .. } = cmd else { unreachable!() };
                    data.extend_from_slice(&d);
                    ids.push(cid);
                }
                _ => break,
            }
        }
        (ids, Command::ByteWrite { addr, data, txid, cat })
    }

    /// Polls the completion queue: the oldest undelivered completion, if
    /// any. Does not ring the doorbell.
    pub fn poll(&mut self) -> Option<Completion> {
        self.cq.pop_front()
    }

    /// The oldest undelivered completion, without delivering it. Lets a
    /// caller draining a batch in submission order pop completions off the
    /// front ([`poll`](HostQueue::poll), O(1)) instead of binary-searching
    /// every id ([`try_complete`](HostQueue::try_complete)).
    pub fn peek(&self) -> Option<&Completion> {
        self.cq.front()
    }

    /// Whether `id` is still sitting in the submission queue (submitted but
    /// not yet consumed by a doorbell). O(1): the SQ holds a contiguous run
    /// of ids (push-back monotonic, pop-front only), so a front/back range
    /// check suffices.
    pub fn in_submission(&self, id: CommandId) -> bool {
        match (self.sq.front(), self.sq.back()) {
            (Some((lo, _)), Some((hi, _))) => id.0 >= lo.0 && id.0 <= hi.0,
            _ => false,
        }
    }

    /// Whether `id`'s completion is sitting in the CQ, without delivering
    /// it. O(log n) binary search over the id-sorted CQ.
    pub fn completion_ready(&self, id: CommandId) -> bool {
        self.cq.binary_search_by_key(&id.0, |c| c.id.0).is_ok()
    }

    /// Delivers `id`'s completion if it is ready, **without ringing the
    /// doorbell**. Returns `Ok(None)` while the command is still in the SQ
    /// (ring, then try again). This is the non-blocking primitive the async
    /// reactor's completion futures poll; [`wait`](HostQueue::wait) is the
    /// ring-then-retry composition of it.
    ///
    /// # Errors
    ///
    /// [`WaitError::NeverSubmitted`] if `id` was never handed out by this
    /// queue, [`WaitError::PowerCutConsumed`] if a power cut landed inside
    /// the command's execution group, [`WaitError::AlreadyDelivered`] if the
    /// completion was already polled or waited out.
    pub fn try_complete(&mut self, id: CommandId) -> Result<Option<Completion>, WaitError> {
        if id.0 == 0 || id.0 >= self.next_cid {
            return Err(WaitError::NeverSubmitted);
        }
        if let Ok(pos) = self.cq.binary_search_by_key(&id.0, |c| c.id.0) {
            return Ok(self.cq.remove(pos));
        }
        if self.in_submission(id) {
            return Ok(None);
        }
        if self.in_doubt.contains(&id.0) {
            return Err(WaitError::PowerCutConsumed);
        }
        Err(WaitError::AlreadyDelivered)
    }

    /// Waits for one command's completion: rings the doorbell if the
    /// command is still in the SQ, then removes and returns its completion.
    ///
    /// # Errors
    ///
    /// A typed [`WaitError`] saying exactly why the completion will never
    /// arrive: [`WaitError::PowerCutConsumed`] (the cut landed inside the
    /// command's execution group — effects in doubt),
    /// [`WaitError::PowerCutPending`] (power failed before the command was
    /// consumed — no effect), [`WaitError::NeverSubmitted`], or
    /// [`WaitError::AlreadyDelivered`].
    pub fn wait(&mut self, id: CommandId) -> Result<Completion, WaitError> {
        if let Some(c) = self.try_complete(id)? {
            return Ok(c);
        }
        self.ring_doorbell();
        match self.try_complete(id)? {
            Some(c) => Ok(c),
            // Still in the SQ after a ring: the ring went nowhere, which
            // only happens once power is off.
            None => Err(WaitError::PowerCutPending),
        }
    }

    /// Makes this queue the calling thread's *ambient* queue: until the
    /// guard drops, synchronous device calls (the depth-1 shim) on this
    /// thread are attributed to this queue's accounting slot. This is how
    /// `workloads::run_concurrent` attributes each shard's file-system
    /// traffic to the shard's queue without threading a handle through
    /// every layer.
    pub fn make_ambient(&self) -> AmbientQueueGuard {
        let prev = AMBIENT_QUEUE.with(|c| c.replace(self.id));
        AmbientQueueGuard { prev }
    }
}

/// Executes one (possibly merged) command against the device, returning the
/// completion status, the read payload and the virtual device cost. This is
/// the single execution path shared by doorbell batches and the synchronous
/// depth-1 shim.
pub(crate) fn execute(dev: &Mssd, cmd: &Command) -> (Result<(), FlashError>, Option<Vec<u8>>, u64) {
    match cmd {
        Command::ByteWrite { addr, data, txid, cat } => {
            let (status, cost) = dev.exec_byte_write(*addr, data, *txid, *cat);
            (status, None, cost)
        }
        Command::ByteRead { addr, len, cat } => {
            let (data, cost) = dev.exec_byte_read(*addr, *len, *cat);
            match data {
                Ok(data) => (Ok(()), Some(data), cost),
                Err(e) => (Err(e), None, cost),
            }
        }
        Command::BlockWrite { lba, data, cat } => {
            let (status, cost) = dev.exec_block_write(*lba, data, *cat);
            (status, None, cost)
        }
        Command::BlockRead { lba, count, cat } => {
            let (data, cost) = dev.exec_block_read(*lba, *count, *cat);
            match data {
                Ok(data) => (Ok(()), Some(data), cost),
                Err(e) => (Err(e), None, cost),
            }
        }
        Command::Flush => {
            let (status, cost) = dev.exec_flush();
            (status, None, cost)
        }
        Command::Trim { lba, count } => (Ok(()), None, dev.exec_trim(*lba, *count)),
        Command::Commit { txid } => (Ok(()), None, dev.exec_commit(*txid)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MssdConfig;
    use crate::device::DramMode;

    fn dev() -> Arc<Mssd> {
        Mssd::new(MssdConfig::small_test(), DramMode::WriteLog)
    }

    #[test]
    fn submit_ring_poll_roundtrip() {
        let d = dev();
        let mut q = d.open_queue(8);
        let w = q
            .submit(Command::ByteWrite {
                addr: 4096,
                data: vec![7u8; 64],
                txid: None,
                cat: Category::Inode,
            })
            .unwrap();
        let r = q.submit(Command::ByteRead { addr: 4096, len: 64, cat: Category::Inode }).unwrap();
        assert_eq!(q.pending(), 2);
        assert_eq!(q.ring_doorbell(), 2);
        assert_eq!(q.pending(), 0);
        let cw = q.poll().expect("write completion");
        assert_eq!(cw.id, w);
        assert_eq!(cw.data, None);
        let cr = q.poll().expect("read completion");
        assert_eq!(cr.id, r);
        assert_eq!(cr.data, Some(vec![7u8; 64]));
        assert!(q.poll().is_none());
    }

    #[test]
    fn queue_full_and_submit_auto() {
        let d = dev();
        let mut q = d.open_queue(2);
        let cmd = || Command::ByteRead { addr: 0, len: 64, cat: Category::Data };
        q.submit(cmd()).unwrap();
        q.submit(cmd()).unwrap();
        assert_eq!(q.submit(cmd()), Err(QueueFull));
        // submit_auto rings for us.
        q.submit_auto(cmd()).unwrap();
        assert_eq!(q.completions_pending(), 2);
        assert_eq!(q.pending(), 1);
    }

    #[test]
    fn adjacent_byte_writes_coalesce_into_one_log_append() {
        let d = dev();
        let mut q = d.open_queue(16);
        // 8 contiguous cacheline writes -> one merged append.
        for i in 0..8u64 {
            q.submit(Command::ByteWrite {
                addr: 8192 + i * 64,
                data: vec![i as u8 + 1; 64],
                txid: None,
                cat: Category::Data,
            })
            .unwrap();
        }
        q.ring_doorbell();
        let snap = d.snapshot();
        assert_eq!(snap.log_entries, 1, "adjacent writes must merge into one entry");
        let ql = snap.traffic.queue_lat(q.id());
        assert_eq!(ql.ops, 8);
        assert_eq!(ql.batches, 1);
        assert_eq!(ql.coalesced_cmds, 7);
        for i in 0..8u64 {
            assert_eq!(d.byte_read(8192 + i * 64, 64, Category::Data), vec![i as u8 + 1; 64]);
        }
    }

    #[test]
    fn non_adjacent_or_cross_tx_writes_do_not_coalesce() {
        let d = dev();
        let mut q = d.open_queue(8);
        q.submit(Command::ByteWrite {
            addr: 0,
            data: vec![1; 64],
            txid: None,
            cat: Category::Data,
        })
        .unwrap();
        // Gap.
        q.submit(Command::ByteWrite {
            addr: 192,
            data: vec![2; 64],
            txid: None,
            cat: Category::Data,
        })
        .unwrap();
        // Adjacent but transactional.
        q.submit(Command::ByteWrite {
            addr: 256,
            data: vec![3; 64],
            txid: Some(TxId(9)),
            cat: Category::Data,
        })
        .unwrap();
        q.ring_doorbell();
        assert_eq!(d.snapshot().traffic.queue_lat(q.id()).coalesced_cmds, 0);
        assert_eq!(d.snapshot().log_entries, 3);
    }

    #[test]
    fn wait_rings_and_returns_the_right_completion() {
        let d = dev();
        let mut q = d.open_queue(8);
        let a = q
            .submit(Command::ByteWrite {
                addr: 0,
                data: vec![5; 64],
                txid: None,
                cat: Category::Data,
            })
            .unwrap();
        let b = q.submit(Command::ByteRead { addr: 0, len: 64, cat: Category::Data }).unwrap();
        let cb = q.wait(b).expect("read completes");
        assert_eq!(cb.data, Some(vec![5; 64]));
        let ca = q.wait(a).expect("write completion still retrievable");
        assert!(ca.latency_ns > 0);
        assert_eq!(q.wait(b), Err(WaitError::AlreadyDelivered));
    }

    #[test]
    fn wait_distinguishes_never_submitted_from_already_delivered() {
        let d = dev();
        let mut q = d.open_queue(4);
        assert_eq!(q.wait(CommandId(0)), Err(WaitError::NeverSubmitted));
        assert_eq!(q.wait(CommandId(7)), Err(WaitError::NeverSubmitted));
        let a = q.submit(Command::ByteRead { addr: 0, len: 64, cat: Category::Data }).unwrap();
        assert!(!q.completion_ready(a));
        assert!(q.in_submission(a));
        q.wait(a).expect("completes");
        assert!(!q.in_submission(a));
        assert_eq!(q.wait(a), Err(WaitError::AlreadyDelivered));
        assert_eq!(q.try_complete(a), Err(WaitError::AlreadyDelivered));
    }

    #[test]
    fn try_complete_does_not_ring() {
        let d = dev();
        let mut q = d.open_queue(4);
        let a = q.submit(Command::ByteRead { addr: 0, len: 64, cat: Category::Data }).unwrap();
        assert_eq!(q.try_complete(a), Ok(None), "still in the SQ, no implicit ring");
        assert_eq!(q.pending(), 1);
        q.ring_doorbell();
        assert!(q.completion_ready(a));
        let c = q.try_complete(a).unwrap().expect("delivered");
        assert_eq!(c.id, a);
    }

    #[test]
    fn wait_reports_power_cut_consumed_and_pending() {
        use crate::fault::FaultPlan;
        // Count the device steps of one ring, then cut inside the second
        // command's execution so the first completes, the second is
        // consumed-in-doubt and the third never leaves the SQ.
        let cfg = MssdConfig::small_test();
        let submit3 = |q: &mut HostQueue| {
            // A gap between writes prevents coalescing: three groups.
            let mut ids = Vec::new();
            for i in 0..3u64 {
                ids.push(
                    q.submit(Command::ByteWrite {
                        addr: i * 4096,
                        data: vec![i as u8 + 1; 64],
                        txid: None,
                        cat: Category::Data,
                    })
                    .unwrap(),
                );
            }
            ids
        };
        let probe =
            Mssd::new(cfg.clone().with_fault_plan(FaultPlan::count_only()), DramMode::WriteLog);
        let mut q = probe.open_queue(4);
        submit3(&mut q);
        q.ring_doorbell();
        let total = probe.fault_plan().total_steps();
        assert!(total >= 3, "three appends take at least three steps");
        // Cut at the last step: it lands inside the final group of the ring.
        let d =
            Mssd::new(cfg.clone().with_fault_plan(FaultPlan::cut_at(total)), DramMode::WriteLog);
        let mut q = d.open_queue(4);
        let ids = submit3(&mut q);
        q.ring_doorbell();
        assert!(d.fault_tripped());
        q.wait(ids[0]).expect("first group completed before the cut");
        assert_eq!(q.wait(ids[2]), Err(WaitError::PowerCutConsumed));
        // And a cut at step 1 leaves later commands pending forever.
        let d = Mssd::new(cfg.with_fault_plan(FaultPlan::cut_at(1)), DramMode::WriteLog);
        let mut q = d.open_queue(4);
        let ids = submit3(&mut q);
        q.ring_doorbell();
        assert_eq!(q.wait(ids[2]), Err(WaitError::PowerCutPending));
        assert!(q.in_submission(ids[2]), "unconsumed command stays in the SQ");
    }

    #[test]
    fn empty_doorbells_record_no_batch() {
        let d = dev();
        let mut q = d.open_queue(4);
        assert_eq!(q.ring_doorbell(), 0);
        let cmd = || Command::ByteRead { addr: 0, len: 64, cat: Category::Data };
        // submit_auto on a non-full SQ must not ring.
        q.submit_auto(cmd()).unwrap();
        assert_eq!(q.completions_pending(), 0);
        q.ring_doorbell();
        assert_eq!(q.ring_doorbell(), 0, "SQ drained: second ring is a no-op");
        let ql = d.traffic().queue_lat(q.id());
        assert_eq!(ql.batches, 1, "only the ring that consumed commands counts");
        assert_eq!(ql.ops, 1);
    }

    #[test]
    fn batched_commit_makes_transaction_durable() {
        let d = dev();
        let mut q = d.open_queue(8);
        let tx = TxId(3);
        q.submit(Command::ByteWrite {
            addr: 4096,
            data: vec![0xEE; 64],
            txid: Some(tx),
            cat: Category::Inode,
        })
        .unwrap();
        q.submit(Command::Commit { txid: tx }).unwrap();
        q.ring_doorbell();
        assert!(d.is_committed(tx));
        d.recover();
        assert_eq!(d.byte_read(4096, 64, Category::Inode), vec![0xEE; 64]);
    }

    #[test]
    fn ambient_guard_attributes_sync_ops_to_the_queue() {
        let d = dev();
        let q = d.open_queue(4);
        {
            let _g = q.make_ambient();
            d.byte_write(0, &[1u8; 64], None, Category::Data);
        }
        d.byte_write(64, &[2u8; 64], None, Category::Data);
        let t = d.traffic();
        assert_eq!(t.queue_lat(q.id()).ops, 1, "ambient op lands on the queue slot");
        assert_eq!(t.queue_lat(0).ops, 1, "post-guard op lands on the sync slot");
    }
}
