//! A probabilistic skip list keyed by `u64`.
//!
//! The ByteFS firmware indexes its write log with "an efficient three-layer
//! skip list" (§4.3): a partition table in the first layer, a skip list per
//! partition keyed by logical page address in the second, and an ordered chunk
//! list in the third. This module provides the second-layer structure: an
//! ordered map with `O(log n)` expected insert/lookup/delete and cheap ordered
//! iteration (needed by log cleaning and range lookups).
//!
//! The implementation is arena-based (indices instead of pointers) so it is
//! entirely safe Rust. Tower heights are drawn from a deterministic xorshift
//! generator so simulations are reproducible.

/// Maximum tower height. 2^16 entries at p = 1/4 stay well below this.
const MAX_LEVEL: usize = 16;

#[derive(Debug, Clone)]
struct Node<V> {
    key: u64,
    value: V,
    /// Tower height: only `forward[..height]` is meaningful.
    height: u8,
    /// `forward[l]` is the index of the next node at level `l`, if any.
    ///
    /// Stored inline as a fixed array rather than a heap `Vec`: every log
    /// append inserts a node, and the per-node pointer allocation showed up
    /// as pure overhead (a 16-slot tower is 128 B — cheaper than a `Vec`
    /// header plus a separate allocation for the common 1-2-level tower).
    forward: [Option<usize>; MAX_LEVEL],
}

/// An ordered map from `u64` keys to values, implemented as a skip list.
///
/// ```
/// use mssd::skiplist::SkipList;
/// let mut list = SkipList::new();
/// list.insert(30, "c");
/// list.insert(10, "a");
/// list.insert(20, "b");
/// assert_eq!(list.get(20), Some(&"b"));
/// let keys: Vec<u64> = list.iter().map(|(k, _)| k).collect();
/// assert_eq!(keys, vec![10, 20, 30]);
/// ```
#[derive(Debug, Clone)]
pub struct SkipList<V> {
    /// Head forward pointers (one per level).
    head: Vec<Option<usize>>,
    nodes: Vec<Option<Node<V>>>,
    free: Vec<usize>,
    len: usize,
    level: usize,
    rng_state: u64,
}

impl<V> Default for SkipList<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> SkipList<V> {
    /// Creates an empty skip list.
    pub fn new() -> Self {
        Self::with_seed(0x9E37_79B9_7F4A_7C15)
    }

    /// Creates an empty skip list with a specific RNG seed (tower heights are
    /// the only randomized aspect).
    pub fn with_seed(seed: u64) -> Self {
        Self {
            head: vec![None; MAX_LEVEL],
            nodes: Vec::new(),
            free: Vec::new(),
            len: 0,
            level: 1,
            rng_state: seed | 1,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the list has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn next_level(&mut self) -> usize {
        // xorshift64*
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        let r = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        let mut level = 1;
        // p = 1/4 per extra level.
        let mut bits = r;
        while level < MAX_LEVEL && (bits & 0b11) == 0 {
            level += 1;
            bits >>= 2;
        }
        level
    }

    fn node(&self, idx: usize) -> &Node<V> {
        self.nodes[idx].as_ref().expect("live node index")
    }

    /// For each level, the index of the last node with key < `key` (None means
    /// the head pseudo-node).
    fn find_predecessors(&self, key: u64) -> [Option<usize>; MAX_LEVEL] {
        let mut preds: [Option<usize>; MAX_LEVEL] = [None; MAX_LEVEL];
        let mut current: Option<usize> = None;
        for lvl in (0..self.level).rev() {
            loop {
                let next = match current {
                    None => self.head[lvl],
                    Some(idx) => self.node(idx).forward[lvl],
                };
                match next {
                    Some(nidx) if self.node(nidx).key < key => current = Some(nidx),
                    _ => break,
                }
            }
            preds[lvl] = current;
        }
        preds
    }

    /// Inserts a key/value pair, returning the previous value for the key if
    /// one existed.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        let preds = self.find_predecessors(key);
        // Does the key already exist?
        let next = match preds[0] {
            None => self.head[0],
            Some(idx) => self.node(idx).forward[0],
        };
        if let Some(nidx) = next {
            if self.node(nidx).key == key {
                let node = self.nodes[nidx].as_mut().expect("live node");
                return Some(std::mem::replace(&mut node.value, value));
            }
        }

        let height = self.next_level();
        if height > self.level {
            self.level = height;
        }
        let mut forward = [None; MAX_LEVEL];
        #[allow(clippy::needless_range_loop)]
        for lvl in 0..height {
            forward[lvl] = match preds[lvl] {
                None => self.head[lvl],
                Some(idx) => self.node(idx).forward[lvl],
            };
        }
        let new_node = Node { key, value, height: height as u8, forward };
        let new_idx = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = Some(new_node);
                slot
            }
            None => {
                self.nodes.push(Some(new_node));
                self.nodes.len() - 1
            }
        };
        #[allow(clippy::needless_range_loop)]
        for lvl in 0..height {
            match preds[lvl] {
                None => self.head[lvl] = Some(new_idx),
                Some(idx) => {
                    self.nodes[idx].as_mut().expect("live node").forward[lvl] = Some(new_idx)
                }
            }
        }
        self.len += 1;
        None
    }

    /// Returns a reference to the value for `key`.
    pub fn get(&self, key: u64) -> Option<&V> {
        let idx = self.find_index(key)?;
        Some(&self.node(idx).value)
    }

    /// Returns a mutable reference to the value for `key`.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let idx = self.find_index(key)?;
        Some(&mut self.nodes[idx].as_mut().expect("live node").value)
    }

    /// `true` if the key is present.
    pub fn contains_key(&self, key: u64) -> bool {
        self.find_index(key).is_some()
    }

    fn find_index(&self, key: u64) -> Option<usize> {
        let preds = self.find_predecessors(key);
        let next = match preds[0] {
            None => self.head[0],
            Some(idx) => self.node(idx).forward[0],
        };
        next.filter(|&nidx| self.node(nidx).key == key)
    }

    /// Removes a key, returning its value if it was present.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let preds = self.find_predecessors(key);
        let target = match preds[0] {
            None => self.head[0],
            Some(idx) => self.node(idx).forward[0],
        };
        let target = target.filter(|&idx| self.node(idx).key == key)?;
        let height = self.node(target).height as usize;
        #[allow(clippy::needless_range_loop)]
        for lvl in 0..height {
            let next = self.node(target).forward[lvl];
            match preds[lvl] {
                None => {
                    if self.head[lvl] == Some(target) {
                        self.head[lvl] = next;
                    }
                }
                Some(p) => {
                    let pnode = self.nodes[p].as_mut().expect("live node");
                    if pnode.forward[lvl] == Some(target) {
                        pnode.forward[lvl] = next;
                    }
                }
            }
        }
        let node = self.nodes[target].take().expect("live node");
        self.free.push(target);
        self.len -= 1;
        while self.level > 1 && self.head[self.level - 1].is_none() {
            self.level -= 1;
        }
        Some(node.value)
    }

    /// Removes and returns the entry with the smallest key.
    pub fn pop_first(&mut self) -> Option<(u64, V)> {
        let first = self.head[0]?;
        let key = self.node(first).key;
        let value = self.remove(key)?;
        Some((key, value))
    }

    /// The smallest key, if any.
    pub fn first_key(&self) -> Option<u64> {
        self.head[0].map(|idx| self.node(idx).key)
    }

    /// Iterates over entries in ascending key order.
    pub fn iter(&self) -> Iter<'_, V> {
        Iter { list: self, next: self.head[0] }
    }

    /// Iterates over entries with keys in `[start, end)`.
    pub fn range(&self, start: u64, end: u64) -> Range<'_, V> {
        let preds = self.find_predecessors(start);
        let next = match preds[0] {
            None => self.head[0],
            Some(idx) => self.node(idx).forward[0],
        };
        Range { list: self, next, end }
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.head = vec![None; MAX_LEVEL];
        self.nodes.clear();
        self.free.clear();
        self.len = 0;
        self.level = 1;
    }

    /// Collects all keys in ascending order (convenience for tests/cleaning).
    pub fn keys(&self) -> Vec<u64> {
        self.iter().map(|(k, _)| k).collect()
    }
}

/// Ordered iterator over a [`SkipList`]; produced by [`SkipList::iter`].
#[derive(Debug)]
pub struct Iter<'a, V> {
    list: &'a SkipList<V>,
    next: Option<usize>,
}

impl<'a, V> Iterator for Iter<'a, V> {
    type Item = (u64, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let idx = self.next?;
        let node = self.list.node(idx);
        self.next = node.forward[0];
        Some((node.key, &node.value))
    }
}

/// Bounded ordered iterator; produced by [`SkipList::range`].
#[derive(Debug)]
pub struct Range<'a, V> {
    list: &'a SkipList<V>,
    next: Option<usize>,
    end: u64,
}

impl<'a, V> Iterator for Range<'a, V> {
    type Item = (u64, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let idx = self.next?;
        let node = self.list.node(idx);
        if node.key >= self.end {
            return None;
        }
        self.next = node.forward[0];
        Some((node.key, &node.value))
    }
}

impl<'a, V> IntoIterator for &'a SkipList<V> {
    type Item = (u64, &'a V);
    type IntoIter = Iter<'a, V>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<V> FromIterator<(u64, V)> for SkipList<V> {
    fn from_iter<T: IntoIterator<Item = (u64, V)>>(iter: T) -> Self {
        let mut list = SkipList::new();
        for (k, v) in iter {
            list.insert(k, v);
        }
        list
    }
}

impl<V> Extend<(u64, V)> for SkipList<V> {
    fn extend<T: IntoIterator<Item = (u64, V)>>(&mut self, iter: T) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn empty_list() {
        let list: SkipList<u32> = SkipList::new();
        assert!(list.is_empty());
        assert_eq!(list.len(), 0);
        assert_eq!(list.get(5), None);
        assert_eq!(list.first_key(), None);
        assert!(list.keys().is_empty());
    }

    #[test]
    fn insert_get_remove() {
        let mut list = SkipList::new();
        assert_eq!(list.insert(5, "five"), None);
        assert_eq!(list.insert(3, "three"), None);
        assert_eq!(list.insert(9, "nine"), None);
        assert_eq!(list.len(), 3);
        assert_eq!(list.get(3), Some(&"three"));
        assert_eq!(list.get(4), None);
        assert!(list.contains_key(9));
        assert_eq!(list.remove(3), Some("three"));
        assert_eq!(list.remove(3), None);
        assert_eq!(list.len(), 2);
        assert_eq!(list.keys(), vec![5, 9]);
    }

    #[test]
    fn insert_replaces_existing() {
        let mut list = SkipList::new();
        list.insert(1, 10);
        assert_eq!(list.insert(1, 20), Some(10));
        assert_eq!(list.len(), 1);
        assert_eq!(list.get(1), Some(&20));
    }

    #[test]
    fn ordered_iteration() {
        let mut list = SkipList::new();
        for k in [42u64, 7, 100, 1, 55] {
            list.insert(k, k * 2);
        }
        let collected: Vec<_> = list.iter().map(|(k, v)| (k, *v)).collect();
        assert_eq!(collected, vec![(1, 2), (7, 14), (42, 84), (55, 110), (100, 200)]);
    }

    #[test]
    fn range_query() {
        let list: SkipList<u64> = (0..20u64).map(|k| (k * 10, k)).collect();
        let keys: Vec<u64> = list.range(35, 90).map(|(k, _)| k).collect();
        assert_eq!(keys, vec![40, 50, 60, 70, 80]);
        assert!(list.range(500, 600).next().is_none());
        let all: Vec<u64> = list.range(0, u64::MAX).map(|(k, _)| k).collect();
        assert_eq!(all.len(), 20);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut list = SkipList::new();
        list.insert(8, vec![1]);
        list.get_mut(8).unwrap().push(2);
        assert_eq!(list.get(8), Some(&vec![1, 2]));
    }

    #[test]
    fn pop_first_drains_in_order() {
        let mut list: SkipList<u64> = [(3u64, 3u64), (1, 1), (2, 2)].into_iter().collect();
        assert_eq!(list.pop_first(), Some((1, 1)));
        assert_eq!(list.pop_first(), Some((2, 2)));
        assert_eq!(list.pop_first(), Some((3, 3)));
        assert_eq!(list.pop_first(), None);
        assert!(list.is_empty());
    }

    #[test]
    fn clear_resets() {
        let mut list: SkipList<u64> = (0..100u64).map(|k| (k, k)).collect();
        list.clear();
        assert!(list.is_empty());
        list.insert(1, 1);
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn slot_reuse_after_remove() {
        let mut list = SkipList::new();
        for k in 0..50u64 {
            list.insert(k, k);
        }
        for k in 0..50u64 {
            assert_eq!(list.remove(k), Some(k));
        }
        let slots_before = list.nodes.len();
        for k in 0..50u64 {
            list.insert(k + 100, k);
        }
        assert_eq!(list.nodes.len(), slots_before, "freed slots should be reused");
    }

    #[test]
    fn behaves_like_btreemap_on_mixed_ops() {
        let mut model = BTreeMap::new();
        let mut list = SkipList::with_seed(42);
        // Deterministic pseudo-random op sequence.
        let mut x = 0xDEADBEEFu64;
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 200;
            match x % 3 {
                0 => {
                    assert_eq!(list.insert(key, x), model.insert(key, x));
                }
                1 => {
                    assert_eq!(list.remove(key), model.remove(&key));
                }
                _ => {
                    assert_eq!(list.get(key), model.get(&key));
                }
            }
            assert_eq!(list.len(), model.len());
        }
        let list_items: Vec<_> = list.iter().map(|(k, v)| (k, *v)).collect();
        let model_items: Vec<_> = model.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(list_items, model_items);
    }
}
