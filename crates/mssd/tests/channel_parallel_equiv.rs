//! Property tests pinning the concurrent device hot path to its sequential
//! reference models:
//!
//! 1. [`ShardedFtl`] (lock-striped L2P + per-channel flash units) must be
//!    observationally equivalent to the single-threaded [`Ftl`] under any
//!    single-threaded op sequence: every read returns the same bytes, the
//!    mapped set matches, and an explicit flush empties both write buffers.
//!    Physical placement and GC traffic may differ — those are the point of
//!    the refactor — so only host-observable state is compared.
//! 2. A device with double-buffered **background** log cleaning must end up
//!    observationally identical to one using the inline stop-the-world
//!    reference drain after the same single-threaded op sequence: same byte
//!    and block contents, same host traffic totals, same recovery outcome.

use proptest::prelude::*;

use mssd::{AtomicTraffic, Category, DramMode, Ftl, Mssd, MssdConfig, ShardedFtl, TxId};

// ---------------------------------------------------------------------------
// 1. ShardedFtl ≡ Ftl
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum FtlOp {
    /// Buffer a full-page write of `tag` to the selected page.
    Write { lpa_sel: u16, tag: u8 },
    /// Read the selected page and compare contents.
    Read { lpa_sel: u16 },
    /// Trim the selected page.
    Trim { lpa_sel: u16 },
    /// Flush all buffered pages on both sides.
    Flush,
}

fn ftl_op_strategy() -> impl Strategy<Value = FtlOp> {
    // The vendored proptest has no weighted prop_oneof; weight by
    // duplicating arms, like tests/sharded_log_equiv.rs does.
    prop_oneof![
        (any::<u16>(), any::<u8>()).prop_map(|(lpa_sel, tag)| FtlOp::Write { lpa_sel, tag }),
        (any::<u16>(), any::<u8>()).prop_map(|(lpa_sel, tag)| FtlOp::Write { lpa_sel, tag }),
        (any::<u16>(), any::<u8>()).prop_map(|(lpa_sel, tag)| FtlOp::Write { lpa_sel, tag }),
        any::<u16>().prop_map(|lpa_sel| FtlOp::Read { lpa_sel }),
        any::<u16>().prop_map(|lpa_sel| FtlOp::Read { lpa_sel }),
        any::<u16>().prop_map(|lpa_sel| FtlOp::Trim { lpa_sel }),
        Just(FtlOp::Flush),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn sharded_ftl_is_observationally_equivalent(
        ops in proptest::collection::vec(ftl_op_strategy(), 1..150)
    ) {
        let cfg = MssdConfig::small_test();
        let universe = 48u64; // aliased working set: overwrites + GC pressure
        let mut reference = Ftl::new(cfg.clone());
        let sharded = ShardedFtl::new(cfg.clone());
        let ref_stats = AtomicTraffic::new();
        let sh_stats = AtomicTraffic::new();
        let ps = cfg.page_size;

        for op in ops {
            match op {
                FtlOp::Write { lpa_sel, tag } => {
                    let lpa = lpa_sel as u64 % universe;
                    reference.buffer_write(lpa, vec![tag; ps], &ref_stats).unwrap();
                    sharded.buffer_write(lpa, vec![tag; ps], &sh_stats).unwrap();
                }
                FtlOp::Read { lpa_sel } => {
                    let lpa = lpa_sel as u64 % universe;
                    let (a, _) = reference.read_page(lpa, &ref_stats, false).unwrap();
                    let (b, _) = sharded.read_page(lpa, &sh_stats, false).unwrap();
                    prop_assert_eq!(a, b, "read of page {} diverged", lpa);
                }
                FtlOp::Trim { lpa_sel } => {
                    let lpa = lpa_sel as u64 % universe;
                    reference.trim(lpa);
                    sharded.trim(lpa);
                }
                FtlOp::Flush => {
                    reference.flush_buffer(&ref_stats).unwrap();
                    sharded.flush_all(&sh_stats).unwrap();
                    prop_assert_eq!(reference.buffered_pages(), 0);
                    prop_assert_eq!(sharded.buffered_pages(), 0);
                    // At a flush point every surviving page is on flash on
                    // both sides, so the mapped counts must agree.
                    prop_assert_eq!(
                        sharded.mapped_pages(),
                        reference.mapped_pages(),
                        "mapped sets diverged at flush"
                    );
                }
            }
            // The mapped-or-buffered predicate is observable at every step.
            for lpa in 0..universe {
                prop_assert_eq!(
                    sharded.is_mapped(lpa),
                    reference.is_mapped(lpa),
                    "is_mapped({}) diverged", lpa
                );
            }
        }

        // Final image: every page of the universe reads identically.
        for lpa in 0..universe {
            let (a, _) = reference.read_page(lpa, &ref_stats, false).unwrap();
            let (b, _) = sharded.read_page(lpa, &sh_stats, false).unwrap();
            prop_assert_eq!(a, b, "final image of page {} diverged", lpa);
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Background double-buffered cleaning ≡ stop-the-world reference
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum DevOp {
    /// Byte write of `len` bytes of `tag`, optionally transactional.
    ByteWrite { addr_sel: u16, len: u8, tag: u8, tx: u8 },
    /// Whole-block write of `tag`.
    BlockWrite { lpa_sel: u8, tag: u8 },
    /// Commit a transaction id.
    Commit { tx: u8 },
    /// Compare a byte read on both devices immediately.
    Read { addr_sel: u16, len: u8 },
}

fn dev_op_strategy() -> impl Strategy<Value = DevOp> {
    prop_oneof![
        (any::<u16>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(addr_sel, len, tag, tx)| DevOp::ByteWrite { addr_sel, len, tag, tx }),
        (any::<u16>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(addr_sel, len, tag, tx)| DevOp::ByteWrite { addr_sel, len, tag, tx }),
        (any::<u16>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(addr_sel, len, tag, tx)| DevOp::ByteWrite { addr_sel, len, tag, tx }),
        (any::<u16>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(addr_sel, len, tag, tx)| DevOp::ByteWrite { addr_sel, len, tag, tx }),
        (any::<u8>(), any::<u8>()).prop_map(|(lpa_sel, tag)| DevOp::BlockWrite { lpa_sel, tag }),
        any::<u8>().prop_map(|tx| DevOp::Commit { tx }),
        (any::<u16>(), any::<u8>()).prop_map(|(addr_sel, len)| DevOp::Read { addr_sel, len }),
        (any::<u16>(), any::<u8>()).prop_map(|(addr_sel, len)| DevOp::Read { addr_sel, len }),
    ]
}

/// 64-byte-slot address inside a small aliased window (64 KB).
fn addr_of(sel: u16) -> u64 {
    (sel as u64 % 1024) * 64
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn background_cleaning_matches_stop_the_world(
        ops in proptest::collection::vec(dev_op_strategy(), 1..120)
    ) {
        // A log small enough that the op streams cross the cleaning threshold
        // repeatedly, so the background cleaner and the foreground stall path
        // actually run.
        let mut cfg = MssdConfig::small_test();
        cfg.dram_region_bytes = 16 << 10;
        let background = Mssd::new(cfg.clone().with_background_cleaning(true), DramMode::WriteLog);
        let reference = Mssd::new(cfg.with_background_cleaning(false), DramMode::WriteLog);

        // Real hosts allocate TxIDs monotonically and never write under an
        // already-committed id; model that with a pool of open transactions
        // (committing one retires it and opens a fresh id).
        let mut open: Vec<u32> = (1..=4).collect();
        let mut next_tx = 5u32;

        for op in &ops {
            match *op {
                DevOp::ByteWrite { addr_sel, len, tag, tx } => {
                    let addr = addr_of(addr_sel);
                    let len = (len as usize % 192) + 1;
                    let data = vec![tag; len];
                    let txid =
                        (tx % 4 != 0).then(|| TxId(open[tx as usize % open.len()]));
                    background.byte_write(addr, &data, txid, Category::Data);
                    reference.byte_write(addr, &data, txid, Category::Data);
                }
                DevOp::BlockWrite { lpa_sel, tag } => {
                    let lpa = lpa_sel as u64 % 16;
                    let page = vec![tag; 4096];
                    background.block_write(lpa, &page, Category::Data);
                    reference.block_write(lpa, &page, Category::Data);
                }
                DevOp::Commit { tx } => {
                    let txid = TxId(open.remove(tx as usize % open.len()));
                    open.push(next_tx);
                    next_tx += 1;
                    background.commit(txid);
                    reference.commit(txid);
                }
                DevOp::Read { addr_sel, len } => {
                    let addr = addr_of(addr_sel);
                    let len = (len as usize % 256) + 1;
                    prop_assert_eq!(
                        background.byte_read(addr, len, Category::Data),
                        reference.byte_read(addr, len, Category::Data),
                        "mid-stream read at {} diverged", addr
                    );
                }
            }
        }

        // Quiesce the cleaner, then force both devices to a common state.
        background.quiesce_cleaning();
        background.force_clean();
        reference.force_clean();

        // Same logical image: the whole byte window and the block range.
        for slot in 0..1024u64 {
            prop_assert_eq!(
                background.byte_read(slot * 64, 64, Category::Data),
                reference.byte_read(slot * 64, 64, Category::Data),
                "slot {} diverged after quiesce", slot
            );
        }
        prop_assert_eq!(
            background.block_read(0, 16, Category::Data),
            reference.block_read(0, 16, Category::Data),
            "block images diverged after quiesce"
        );

        // Host-visible traffic is interleaving-independent (flash-internal
        // counters legitimately differ: cleaning runs at different points).
        let a = background.traffic();
        let b = reference.traffic();
        prop_assert_eq!(a.host_write_bytes(), b.host_write_bytes());
        prop_assert_eq!(a.host_read_bytes(), b.host_read_bytes());
        prop_assert_eq!(a.byte_requests, b.byte_requests);
        prop_assert_eq!(a.block_requests, b.block_requests);
        prop_assert_eq!(a.tx_commits, b.tx_commits);

        // Crash + recovery agree on what survives.
        background.crash();
        reference.crash();
        let ra = background.recover();
        let rb = reference.recover();
        prop_assert_eq!(ra.discarded_entries, rb.discarded_entries, "recovery discards diverged");
        for slot in 0..1024u64 {
            prop_assert_eq!(
                background.byte_read(slot * 64, 64, Category::Data),
                reference.byte_read(slot * 64, 64, Category::Data),
                "slot {} diverged after recovery", slot
            );
        }
    }
}
