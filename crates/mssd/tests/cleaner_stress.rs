//! Stress tests of the background log cleaner: concurrent writers hammer a
//! device whose log region is small enough that sealing, background drains
//! and foreground space-admission stalls all race with the writers. (The
//! sealed-but-undrained crash-recovery case moved to the `crashkit` crate's
//! ported suite, which owns all cut-power/remount machinery now.)

use std::sync::Arc;

use mssd::log::PARTITION_BYTES;
use mssd::{Category, DramMode, Mssd, MssdConfig, TxId};

/// Deterministic per-thread op stream (xorshift64).
struct Ops {
    state: u64,
}

impl Ops {
    fn new(seed: u64) -> Self {
        Self { state: seed | 1 }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }
}

fn cleaner_config() -> MssdConfig {
    let mut cfg = MssdConfig::small_test();
    // 64 MB volume: four 16 MB partitions, one per thread, so the workers map
    // to distinct write-log shards.
    cfg.capacity_bytes = 64 << 20;
    // A log region small enough that background cleaning runs continuously
    // and admission stalls happen.
    cfg.dram_region_bytes = 128 << 10;
    // Background cleaning on (the default) is the point of this suite.
    cfg.background_cleaning = true;
    cfg
}

const THREADS: usize = 4;
const OPS: usize = 2_500;

/// Byte writes + commits + verified reads inside thread `t`'s partition.
/// Returns, per 64-byte slot, the last tag written.
fn drive(dev: &Mssd, t: usize) -> Vec<Option<u8>> {
    let slots = 512u64;
    let base = t as u64 * PARTITION_BYTES;
    let mut last_tag: Vec<Option<u8>> = vec![None; slots as usize];
    let mut ops = Ops::new(0xC1EA ^ (t as u64) << 24);
    let mut tx = TxId(((t as u32) << 16) | 1);
    let mut uncommitted = 0usize;
    for _ in 0..OPS {
        match ops.next() % 8 {
            0..=4 => {
                let slot = ops.next() % slots;
                let tag = (ops.next() % 251) as u8;
                dev.byte_write(base + slot * 64, &[tag; 64], Some(tx), Category::Data);
                last_tag[slot as usize] = Some(tag);
                uncommitted += 1;
                if uncommitted >= 12 {
                    dev.commit(tx);
                    tx = TxId(tx.0 + 1);
                    uncommitted = 0;
                }
            }
            5 | 6 => {
                // Read-verify a slot this thread wrote while cleaning races:
                // the log-covered fast path, the sealed-region merge and the
                // flash+overlay slow path must all return the last write.
                let slot = ops.next() % slots;
                if let Some(tag) = last_tag[slot as usize] {
                    let got = dev.byte_read(base + slot * 64, 64, Category::Data);
                    assert_eq!(got, vec![tag; 64], "thread {t} slot {slot} mid-run");
                }
            }
            _ => {
                // Block write in the upper half of the partition: exercises
                // invalidate-under-shard-lock against cleaner merges.
                let page = 2048 + ops.next() % 8;
                let tag = (ops.next() % 251) as u8;
                dev.block_write(base / 4096 + page, &vec![tag; 4096], Category::Data);
            }
        }
    }
    dev.commit(tx);
    last_tag
}

#[test]
fn concurrent_writers_during_background_cleaning() {
    let dev = Mssd::new(cleaner_config(), DramMode::WriteLog);
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let dev = Arc::clone(&dev);
            std::thread::spawn(move || drive(&dev, t))
        })
        .collect();
    let expected: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    dev.quiesce_cleaning();
    let t = dev.traffic();
    assert!(t.log_cleanings > 0, "cleaning must have run during the stress");
    // The run is sized to overflow the region many times over; at least some
    // of that work must have been background (sealed-region) cleaning unless
    // every single pass was a foreground stall, which the double-buffered
    // design exists to prevent.
    assert!(
        t.log_bg_cleaned_pages > 0 || t.log_fg_stalls > 0,
        "neither background nor foreground cleaning recorded"
    );
    // Bounded space accounting (reinstate overshoot is documented and small).
    assert!(dev.snapshot().log_used_bytes <= 2 * dev.config().dram_region_bytes);

    // Every thread's final bytes read back, then survive a forced clean.
    for (t, tags) in expected.iter().enumerate() {
        let base = t as u64 * PARTITION_BYTES;
        for (slot, tag) in tags.iter().enumerate() {
            if let Some(tag) = tag {
                let got = dev.byte_read(base + slot as u64 * 64, 64, Category::Data);
                assert_eq!(got, vec![*tag; 64], "thread {t} slot {slot} final");
            }
        }
    }
    dev.force_clean();
    assert_eq!(dev.snapshot().log_entries, 0);
    for (t, tags) in expected.iter().enumerate() {
        let base = t as u64 * PARTITION_BYTES;
        for (slot, tag) in tags.iter().enumerate() {
            if let Some(tag) = tag {
                let got = dev.byte_read(base + slot as u64 * 64, 64, Category::Data);
                assert_eq!(got, vec![*tag; 64], "thread {t} slot {slot} after clean");
            }
        }
    }
}

#[test]
fn cleaner_keeps_block_interface_consistent() {
    // Block reads/writes race the cleaner's read-modify-write merges: each
    // thread alternates byte writes and whole-block overwrites of the same
    // pages and verifies block reads see either the full overwrite or the
    // overwrite plus newer byte writes — never stale merged chunks.
    let dev = Mssd::new(cleaner_config(), DramMode::WriteLog);
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let dev = Arc::clone(&dev);
            std::thread::spawn(move || {
                let base_page = t as u64 * (PARTITION_BYTES / 4096);
                let mut ops = Ops::new(0xB10C ^ (t as u64) << 20);
                for round in 0..400u64 {
                    let page = base_page + ops.next() % 4;
                    let tag = (round % 251) as u8;
                    // Whole-block overwrite drops all log entries for the page.
                    dev.block_write(page, &vec![tag; 4096], Category::Data);
                    // Byte write on top of the block data.
                    let off = (ops.next() % 64) * 64;
                    dev.byte_write(page * 4096 + off, &[tag ^ 0xFF; 64], None, Category::Data);
                    let got = dev.block_read(page, 1, Category::Data);
                    let off = off as usize;
                    assert_eq!(&got[off..off + 64], &[tag ^ 0xFF; 64][..], "overlay lost");
                    for (i, b) in got.iter().enumerate() {
                        if !(off..off + 64).contains(&i) {
                            assert_eq!(*b, tag, "thread {t} page {page} byte {i} stale");
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    dev.quiesce_cleaning();
    dev.force_clean();
    assert_eq!(dev.snapshot().log_entries, 0);
}
