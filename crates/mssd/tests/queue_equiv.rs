//! Property test: batched multi-queue submission is observationally
//! equivalent to the same ops issued sequentially through the synchronous
//! depth-1 shim — coalescing and doorbell batching are a *transport*
//! optimization, never a semantic one.
//!
//! The harness mirrors `sharded_log_equiv`: a randomized op stream is
//! applied to two fresh devices — once through direct synchronous calls
//! (device A), once through per-queue batched submission with
//! randomly-placed doorbells (device B). Queues own disjoint partitions
//! (the per-core model the stack is built around), so issuing the streams
//! queue-major sequentially on A covers every interleaving B can produce.
//! After the streams, every touched byte range, the committed-transaction
//! set and the post-`RECOVER()` state must match exactly.
//!
//! The file also carries the multi-queue fairness test: a queue must keep
//! completing commands while a neighbour queue saturates the device.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use mssd::log::PARTITION_BYTES;
use mssd::queue::Command;
use mssd::{Category, DramMode, Mssd, MssdConfig, TxId};

/// Queues (= partitions) the property test spreads ops over.
const QUEUES: usize = 3;

/// 64-byte slots per partition the streams touch.
const SLOTS: u64 = 48;

/// One op of a queue's stream.
#[derive(Debug, Clone)]
enum QOp {
    /// Byte write of `lines` cachelines starting at `slot` (wraps), tagged
    /// `tag`; transactional when `tx` is true.
    Write { slot: u8, lines: u8, tag: u8, tx: bool },
    /// Commit the queue's running transaction.
    Commit,
    /// Block write of one page (page index within the partition's block
    /// region).
    BlockWrite { page: u8, tag: u8 },
    /// TRIM one page of the partition's block region.
    Trim { page: u8 },
    /// NVMe FLUSH.
    Flush,
}

fn write_strategy() -> impl Strategy<Value = QOp> {
    (any::<u8>(), 1u8..5, any::<u8>(), any::<bool>())
        .prop_map(|(slot, lines, tag, tx)| QOp::Write { slot, lines, tag, tx })
}

fn op_strategy() -> impl Strategy<Value = QOp> {
    // Byte writes appear several times to weight the mix toward them, so
    // coalescible runs actually form (the vendored proptest's prop_oneof!
    // has no weight syntax).
    prop_oneof![
        write_strategy(),
        write_strategy(),
        write_strategy(),
        write_strategy(),
        Just(QOp::Commit),
        (any::<u8>(), any::<u8>()).prop_map(|(page, tag)| QOp::BlockWrite { page, tag }),
        any::<u8>().prop_map(|page| QOp::Trim { page }),
        Just(QOp::Flush),
    ]
}

fn config() -> MssdConfig {
    let mut cfg = MssdConfig::small_test();
    // QUEUES byte partitions plus one block partition.
    cfg.capacity_bytes = (QUEUES as u64 + 1) * PARTITION_BYTES;
    cfg.background_cleaning = false; // deterministic timing for the replay
    cfg
}

/// Device byte address of `slot` in queue `q`'s partition.
fn slot_addr(q: usize, slot: u8) -> u64 {
    q as u64 * PARTITION_BYTES + (slot as u64 % SLOTS) * 64
}

/// Logical page of block-op `page` in queue `q`'s slice of the block
/// partition (the last partition, split per queue so queues stay disjoint).
fn block_lba(cfg: &MssdConfig, q: usize, page: u8) -> u64 {
    let base = QUEUES as u64 * (PARTITION_BYTES / cfg.page_size as u64);
    base + q as u64 * 16 + page as u64 % 16
}

/// Converts one op into the commands it issues (byte writes may span
/// several commands so adjacent submissions can coalesce).
fn commands(cfg: &MssdConfig, q: usize, op: &QOp, tx: &mut u32) -> Vec<Command> {
    match op {
        QOp::Write { slot, lines, tag, tx: txn } => {
            let txid = txn.then_some(TxId(*tx));
            // One command per cacheline: consecutive lines are adjacent, so
            // the doorbell's coalescer sees real mergeable runs.
            (0..*lines)
                .map(|i| Command::ByteWrite {
                    addr: slot_addr(q, slot.wrapping_add(i)),
                    data: vec![tag.wrapping_add(i); 64],
                    txid,
                    cat: Category::Data,
                })
                .collect()
        }
        QOp::Commit => {
            let cmd = Command::Commit { txid: TxId(*tx) };
            *tx += 1;
            vec![cmd]
        }
        QOp::BlockWrite { page, tag } => vec![Command::BlockWrite {
            lba: block_lba(cfg, q, *page),
            data: vec![*tag; cfg.page_size],
            cat: Category::Data,
        }],
        QOp::Trim { page } => vec![Command::Trim { lba: block_lba(cfg, q, *page), count: 1 }],
        QOp::Flush => vec![Command::Flush],
    }
}

/// Applies one command synchronously (the depth-1 shim path).
fn apply_sync(dev: &Mssd, cmd: &Command) {
    match cmd {
        Command::ByteWrite { addr, data, txid, cat } => dev.byte_write(*addr, data, *txid, *cat),
        Command::ByteRead { addr, len, cat } => {
            dev.byte_read(*addr, *len, *cat);
        }
        Command::BlockWrite { lba, data, cat } => dev.block_write(*lba, data, *cat),
        Command::BlockRead { lba, count, cat } => {
            dev.block_read(*lba, *count, *cat);
        }
        Command::Flush => dev.flush(),
        Command::Trim { lba, count } => dev.trim(*lba, *count),
        Command::Commit { txid } => dev.commit(*txid),
    }
}

/// Reads every observable range of the address space the streams touch.
fn observe(cfg: &MssdConfig, dev: &Mssd) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for q in 0..QUEUES {
        out.push(dev.byte_read(q as u64 * PARTITION_BYTES, (SLOTS * 64) as usize, Category::Data));
        for page in 0..16u8 {
            out.push(dev.block_read(block_lba(cfg, q, page), 1, Category::Data));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn batched_multi_queue_equals_sequential_shim(
        streams in proptest::collection::vec(
            proptest::collection::vec(op_strategy(), 1..40), QUEUES..QUEUES + 1),
        doorbell_every in 1usize..12,
    ) {
        let cfg = config();
        let dev_sync = Mssd::new(cfg.clone(), DramMode::WriteLog);
        let dev_mq = Mssd::new(cfg.clone(), DramMode::WriteLog);

        // Device A: every queue's stream, queue-major, through the shim.
        for (q, stream) in streams.iter().enumerate() {
            let mut tx = (q as u32 + 1) << 16;
            for op in stream {
                for cmd in commands(&cfg, q, op, &mut tx) {
                    apply_sync(&dev_sync, &cmd);
                }
            }
        }

        // Device B: one HostQueue per stream, batched submission with a
        // doorbell every `doorbell_every` commands, drained at the end.
        let mut queues: Vec<_> = (0..QUEUES).map(|_| dev_mq.open_queue(64)).collect();
        let mut since_ring = [0usize; QUEUES];
        // Round-robin across queues so batches from different queues
        // interleave at the device.
        let max_len = streams.iter().map(Vec::len).max().unwrap_or(0);
        let mut txs: Vec<u32> = (0..QUEUES).map(|q| (q as u32 + 1) << 16).collect();
        for i in 0..max_len {
            for (q, stream) in streams.iter().enumerate() {
                let Some(op) = stream.get(i) else { continue };
                for cmd in commands(&cfg, q, op, &mut txs[q]) {
                    if queues[q].submit(cmd.clone()).is_err() {
                        queues[q].ring_doorbell();
                        queues[q].submit(cmd).expect("queue drained by doorbell");
                    }
                    since_ring[q] += 1;
                    if since_ring[q] >= doorbell_every {
                        queues[q].ring_doorbell();
                        since_ring[q] = 0;
                    }
                }
            }
        }
        for q in &mut queues {
            q.ring_doorbell();
            prop_assert_eq!(q.pending(), 0);
            while q.poll().is_some() {}
        }

        // Observable state matches before recovery...
        prop_assert_eq!(observe(&cfg, &dev_sync), observe(&cfg, &dev_mq), "pre-recovery state");
        // ...committed-transaction sets match...
        for q in 0..QUEUES as u32 {
            for t in 0..64u32 {
                let txid = TxId(((q + 1) << 16) + t);
                prop_assert_eq!(
                    dev_sync.is_committed(txid),
                    dev_mq.is_committed(txid),
                    "commit set diverged at {:?}", txid
                );
            }
        }
        // ...and after RECOVER() (uncommitted writes discarded identically).
        dev_sync.recover();
        dev_mq.recover();
        prop_assert_eq!(observe(&cfg, &dev_sync), observe(&cfg, &dev_mq), "post-recovery state");
    }
}

/// Fairness: a queue keeps completing while a neighbour saturates the
/// device. The victim issues small batches against partition 1 while the
/// saturating neighbour hammers partition 0 with deep doorbells; the victim
/// must finish all its commands (bounded by the watchdog) and the neighbour
/// must have made progress too — neither starves the other.
#[test]
fn no_queue_starves_under_a_saturating_neighbor() {
    let mut cfg = MssdConfig::small_test();
    cfg.capacity_bytes = 2 * PARTITION_BYTES;
    let dev = Mssd::new(cfg, DramMode::WriteLog);

    let stop = Arc::new(AtomicBool::new(false));
    let neighbor_ops = Arc::new(AtomicU64::new(0));

    // Watchdog: starvation shows up as this test hanging; fail loudly
    // instead. (Same pattern as bytefs/tests/lock_interleave.rs.)
    let watchdog_stop = Arc::clone(&stop);
    let watchdog = std::thread::spawn(move || {
        for _ in 0..600 {
            if watchdog_stop.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
        panic!("fairness test did not finish within 60s: a queue starved");
    });

    let neighbor = {
        let dev = Arc::clone(&dev);
        let stop = Arc::clone(&stop);
        let ops = Arc::clone(&neighbor_ops);
        std::thread::spawn(move || {
            let mut q = dev.open_queue(64);
            let mut addr = 0u64;
            // At least one full batch even if the victim already finished
            // (on a single CPU the victim may run to completion before this
            // thread is first scheduled).
            loop {
                for _ in 0..64 {
                    q.submit(Command::ByteWrite {
                        addr: addr % (4 << 20),
                        data: vec![0xAB; 64],
                        txid: None,
                        cat: Category::Data,
                    })
                    .expect("neighbor queue has room");
                    addr += 64;
                }
                q.ring_doorbell();
                while q.poll().is_some() {
                    ops.fetch_add(1, Ordering::Relaxed);
                }
                if stop.load(Ordering::Relaxed) {
                    break;
                }
            }
        })
    };

    // Victim: 2000 commands in batches of 8 against its own partition.
    let mut victim = dev.open_queue(8);
    let mut completed = 0u64;
    for batch in 0..250u64 {
        for i in 0..8u64 {
            victim
                .submit(Command::ByteWrite {
                    addr: PARTITION_BYTES + (batch * 8 + i) * 64 % (4 << 20),
                    data: vec![0xCD; 64],
                    txid: None,
                    cat: Category::Inode,
                })
                .expect("victim queue has room");
        }
        victim.ring_doorbell();
        while victim.poll().is_some() {
            completed += 1;
        }
    }
    stop.store(true, Ordering::Relaxed);
    neighbor.join().expect("neighbor thread");
    watchdog.join().expect("watchdog");

    assert_eq!(completed, 2000, "every victim command completed");
    assert!(neighbor_ops.load(Ordering::Relaxed) > 0, "the saturating neighbour made progress too");
    // Per-queue accounting saw both queues.
    let t = dev.traffic();
    let busy_queues = t.queues.iter().filter(|(id, q)| **id != 0 && q.ops > 0).count();
    assert!(busy_queues >= 2, "both queues recorded completions");
}
