//! Property tests of the host error-recovery layer: across randomized seeds,
//! hang rates and workload shapes, a device suffering *resolvable* injected
//! hangs (bounded and unbounded stalls, lost completions, lane wedges) that
//! the deadline/abort/retry layer rides out is observationally equivalent to
//! a fault-free device running the identical command stream — every byte
//! slot and block page reads back the same value before and after recovery,
//! and the committed-transaction set is the same. Retries are at-least-once
//! (a lost completion's command executed, and its retry executes again), so
//! the *log* may hold duplicate appends; the property pins that duplication
//! is invisible: per-location merge collapses it to the same final value.
//!
//! A second property pins reproducibility: the same seed over the same
//! faulted configuration converges to the same injected-fault counts and
//! the same post-recovery image digest. All hang detection and backoff runs
//! on the virtual clock — these cases take no wall-clock sleeps.

use std::sync::Arc;

use proptest::prelude::*;

use mssd::{
    Category, Command, DramMode, HangFaultConfig, HangFaultPlan, Mssd, MssdConfig, RetryPolicy,
    Runtime, TxId,
};

/// Logical clients submitting through the runtime.
const CLIENTS: usize = 4;
/// Reactor lanes shared by the clients.
const LANES: usize = 2;
/// SQ depth per lane.
const DEPTH: usize = 4;
/// 64-byte cacheline slots per client (disjoint, partition 0).
const SLOTS: u64 = 32;
/// Block pages per client (disjoint, partition 1).
const PAGES: u64 = 4;

/// Deterministic xorshift64 stream for the workload shape.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self((z ^ (z >> 31)) | 1)
    }

    fn below(&mut self, bound: u64) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x % bound
    }
}

fn device(hang: HangFaultPlan) -> Arc<Mssd> {
    let mut cfg = MssdConfig::small_test();
    // Partition 0 holds the clients' byte slots, partition 1 their block
    // pages.
    cfg.capacity_bytes = 32 << 20;
    cfg.dram_region_bytes = 16 << 10;
    cfg.log_clean_threshold = 0.999;
    // The zero-worker runtime is deterministic only without the racing
    // cleaner thread.
    cfg.background_cleaning = false;
    cfg.hang = hang;
    Mssd::new(cfg, DramMode::WriteLog)
}

/// Drives the seeded workload to completion through `submit_with_retry`.
/// The command stream is a pure function of `seed` and `rounds` — the hang
/// plan changes *how* commands resolve, never *what* is submitted. Returns
/// `false` if any command failed to resolve `Ok` (retry budget exhausted),
/// which the equivalence property treats as a test-setup failure.
fn run_workload(dev: &Arc<Mssd>, seed: u64, rounds: usize) -> bool {
    let rt = Runtime::new(dev, 0, LANES, DEPTH);
    let page_size = dev.page_size() as u64;
    let block_base = (16u64 << 20) / page_size; // partition 1
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let reactor = Arc::clone(rt.reactor());
            rt.spawn(async move {
                let mut rng = Rng::new(seed.wrapping_add((c as u64 + 1) << 8));
                let mut tx = TxId(((c as u32) + 1) << 16);
                let mut uncommitted = false;
                // A generous budget: resolvable hangs clear in one or two
                // attempts, and the property needs every command to resolve.
                let policy = RetryPolicy {
                    max_retries: 16,
                    ..RetryPolicy::default().with_seed(seed ^ (c as u64 + 1))
                };
                let line_base = c as u64 * SLOTS;
                let page_base = block_base + c as u64 * PAGES;
                let mut all_ok = true;
                for _ in 0..rounds {
                    let transactional = rng.below(3) == 0;
                    let run_len = 1 + rng.below(2);
                    let base_slot = rng.below(SLOTS - run_len);
                    let tag = 1 + rng.below(250) as u8;
                    let mut cmds = Vec::new();
                    for i in 0..run_len {
                        let line = line_base + base_slot + i;
                        cmds.push(Command::ByteWrite {
                            addr: line * 64,
                            data: vec![tag.wrapping_add(i as u8); 64],
                            txid: transactional.then_some(tx),
                            cat: Category::Data,
                        });
                    }
                    if transactional {
                        uncommitted = true;
                    }
                    match rng.below(8) {
                        0 if uncommitted => {
                            cmds.push(Command::Commit { txid: tx });
                            tx = TxId(tx.0 + 1);
                            uncommitted = false;
                        }
                        1 | 2 => {
                            let lba = page_base + rng.below(PAGES);
                            let ptag = 1 + rng.below(250) as u8;
                            cmds.push(Command::BlockWrite {
                                lba,
                                data: vec![ptag; page_size as usize],
                                cat: Category::Data,
                            });
                        }
                        3 => {
                            cmds.push(Command::Flush);
                        }
                        _ => {}
                    }
                    for cmd in cmds {
                        let (out, _retries) = reactor.submit_with_retry(c, cmd, policy).await;
                        match out {
                            Ok(c) if c.status.is_ok() => {}
                            _ => all_ok = false,
                        }
                    }
                }
                all_ok
            })
        })
        .collect();
    rt.block_on(async move {
        let mut ok = true;
        for h in handles {
            ok &= h.await;
        }
        ok
    })
}

/// Reads back every client's byte slots and block pages.
fn observe(dev: &Arc<Mssd>) -> Vec<Vec<u8>> {
    let page_size = dev.page_size() as u64;
    let block_base = (16u64 << 20) / page_size;
    let mut out = Vec::new();
    for c in 0..CLIENTS as u64 {
        for s in 0..SLOTS {
            out.push(dev.byte_read((c * SLOTS + s) * 64, 64, Category::Data));
        }
        for p in 0..PAGES {
            out.push(dev.block_read(block_base + c * PAGES + p, 1, Category::Data));
        }
    }
    out
}

fn hang_plan(seed: u64, stall: f64, unbounded: f64, loss: f64, wedge: f64) -> HangFaultPlan {
    HangFaultPlan::new(HangFaultConfig {
        seed,
        stall_rate: stall,
        stall_min_ns: 50_000,
        stall_max_ns: 2_000_000,
        unbounded_stall_rate: unbounded,
        loss_rate: loss,
        wedge_rate: wedge,
        ..HangFaultConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// A faulted run whose every hang resolves through timeout/abort/retry
    /// reads back identically to the fault-free run of the same stream —
    /// before recovery, and after a recovery replay on both.
    #[test]
    fn resolvable_hangs_plus_retry_are_equivalent_to_fault_free(
        seed in any::<u64>(),
        hang_seed in any::<u64>(),
        rounds in 6usize..12,
        stall_sel in 0u64..150,
        unbounded_sel in 0u64..500,
        loss_sel in 0u64..100,
        wedge_sel in 0u64..50,
    ) {
        let stall = 0.05 + stall_sel as f64 / 1000.0;
        let unbounded = unbounded_sel as f64 / 1000.0;
        let loss = 0.02 + loss_sel as f64 / 1000.0;
        let wedge = wedge_sel as f64 / 1000.0;

        let clean = device(HangFaultPlan::disabled());
        prop_assert!(run_workload(&clean, seed, rounds), "fault-free run failed to resolve");

        let faulted = device(hang_plan(hang_seed, stall, unbounded, loss, wedge));
        prop_assert!(
            run_workload(&faulted, seed, rounds),
            "a resolvable hang exhausted the retry budget"
        );

        prop_assert_eq!(
            observe(&clean),
            observe(&faulted),
            "pre-recovery reads diverged under injected hangs"
        );

        // Recovery replays the (possibly duplicate-append) logs; committed
        // transactions survive on both, uncommitted chunks die on both.
        clean.recover();
        faulted.recover();
        prop_assert_eq!(
            observe(&clean),
            observe(&faulted),
            "post-recovery reads diverged under injected hangs"
        );
    }

    /// Same seed, same faulted configuration: same injected-hang counts and
    /// the same post-recovery image digest — a hang report is reproducible.
    #[test]
    fn faulted_runs_are_deterministic_per_seed(
        seed in any::<u64>(),
        hang_seed in any::<u64>(),
        rounds in 6usize..10,
    ) {
        let run = || {
            let dev = device(hang_plan(hang_seed, 0.12, 0.3, 0.08, 0.04));
            let resolved = run_workload(&dev, seed, rounds);
            dev.recover();
            (resolved, dev.config().hang.injected_total(), dev.crash_image().digest())
        };
        let (oka, ia, da) = run();
        let (okb, ib, db) = run();
        prop_assert!(oka && okb, "a hang exhausted the retry budget");
        prop_assert_eq!(ia, ib, "injected-hang counts diverged between identical runs");
        prop_assert_eq!(da, db, "post-recovery digests diverged between identical runs");
    }
}
