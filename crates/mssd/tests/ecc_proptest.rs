//! Property tests of the per-page SECDED codec: across randomized payloads
//! and flip positions, corruption within the correction bound `t` always
//! decodes back to the original page, and corruption at the detection bound
//! is always reported — never silently miscorrected. These are the two
//! halves of the ECC contract the media-error RAS layer builds on: the
//! read-retry ladder may trust any `Clean`/`Corrected` payload bit-for-bit,
//! and a double flip can only ever escalate (retry, then UECC), not corrupt.

use proptest::prelude::*;

use mssd::ecc::{decode, encode, flip_bit};
use mssd::{EccOutcome, ECC_T};

/// Deterministic pseudo-random payload of `len` bytes from `seed`.
fn payload(len: usize, seed: u64) -> Vec<u8> {
    let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 32) as u8
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Up to `ECC_T` flips anywhere in the page decode to the original
    /// payload, with the outcome reporting exactly the corrected flip count.
    #[test]
    fn flips_within_t_decode_to_the_original(
        seed in any::<u64>(),
        len in 1usize..512,
        nflips_sel in 0u64..100,
        flip_sel in any::<u64>(),
    ) {
        let nflips = (nflips_sel % (ECC_T as u64 + 1)) as u32;
        let orig = payload(len, seed);
        let parity = encode(&orig);
        let bits = len * 8;
        let mut page = orig.clone();
        for i in 0..nflips {
            // Distinct positions: ECC_T == 1 makes this trivial, but the
            // stride keeps the test honest if t ever grows.
            let bit = ((flip_sel >> (i * 16)) as usize).wrapping_mul(i as usize + 1) % bits;
            flip_bit(&mut page, bit);
        }
        let outcome = decode(&mut page, parity);
        if nflips == 0 {
            prop_assert_eq!(outcome, EccOutcome::Clean);
        } else {
            prop_assert_eq!(outcome, EccOutcome::Corrected { bits: nflips });
        }
        prop_assert_eq!(page, orig, "payload not restored bit-for-bit");
    }

    /// Exactly `ECC_DETECT` (= t + 1) distinct flips are always reported as
    /// uncorrectable and the payload is left untouched — the codec never
    /// guesses (miscorrects) at the detection bound.
    #[test]
    fn flips_at_the_detection_bound_are_detected_never_miscorrected(
        seed in any::<u64>(),
        len in 1usize..512,
        a_sel in any::<u64>(),
        b_off in any::<u64>(),
    ) {
        let orig = payload(len, seed);
        let parity = encode(&orig);
        let bits = len * 8;
        let a = (a_sel as usize) % bits;
        // A second, guaranteed-distinct position.
        let b = (a + 1 + (b_off as usize) % (bits.max(2) - 1)) % bits;
        prop_assert_ne!(a, b);
        let mut page = orig.clone();
        flip_bit(&mut page, a);
        flip_bit(&mut page, b);
        let corrupted = page.clone();
        prop_assert_eq!(
            decode(&mut page, parity),
            EccOutcome::Uncorrectable,
            "double flip at bits {}/{} must be detected", a, b
        );
        prop_assert_eq!(page, corrupted, "uncorrectable payload must be left unmodified");
    }
}
