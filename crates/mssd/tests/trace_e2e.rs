//! End-to-end tests for `mssd::trace`: a traced run over a real device must
//! attribute one queued command's whole journey — SQ submit, doorbell, flash
//! program, CQ completion — to a single command track, export valid Chrome
//! trace-event JSON, and change nothing observable about the simulation
//! (virtual time, stats, device state) compared to an untraced run.

use std::collections::BTreeSet;

use mssd::queue::Command;
use mssd::{
    chrome_trace_json, op_trace_text, parse_op_trace, Category, DramMode, Mssd, MssdConfig,
    OpTraceMeta, TraceKind, PAGE_SIZE,
};

/// Drives a few block writes and byte writes through a host queue, ringing
/// the doorbell once at the end; returns final virtual time.
fn drive(dev: &std::sync::Arc<Mssd>) -> u64 {
    let mut q = dev.open_queue(16);
    // A 32-page write overflows small_test's 4-page-per-channel write-buffer
    // slices, so flash programs happen *during* this command's execution.
    q.submit(Command::BlockWrite { lba: 0, data: vec![0xAB; 32 * PAGE_SIZE], cat: Category::Data })
        .expect("submit big block write");
    for i in 0..4u64 {
        q.submit(Command::BlockWrite {
            lba: 40 + i,
            data: vec![i as u8; PAGE_SIZE],
            cat: Category::Data,
        })
        .expect("submit block write");
    }
    // Two adjacent byte writes that the doorbell coalesces into one group.
    q.submit(Command::ByteWrite { addr: 0, data: vec![7u8; 64], txid: None, cat: Category::Inode })
        .expect("submit byte write");
    q.submit(Command::ByteWrite {
        addr: 64,
        data: vec![8u8; 64],
        txid: None,
        cat: Category::Inode,
    })
    .expect("submit byte write");
    q.ring_doorbell();
    // Push enough data through the sync path to trigger log/flash activity.
    for i in 0..32u64 {
        dev.block_write(64 + i, &vec![(i % 251) as u8; PAGE_SIZE], Category::Data);
    }
    dev.clock().now_ns()
}

#[test]
fn traced_command_journey_shares_one_track() {
    let dev = Mssd::new(MssdConfig::small_test(), DramMode::WriteLog);
    dev.set_tracing(true);
    drive(&dev);
    let dump = dev.trace_sink().drain();
    assert!(dump.events.len() > 10, "expected a real event stream");

    // Every block write's journey: submit → doorbell → flash program →
    // completion, all carrying the same command id and queue.
    let submits: Vec<_> =
        dump.events.iter().filter(|e| e.kind == TraceKind::SqSubmit && e.cmd != 0).collect();
    assert!(submits.len() >= 7, "one submit per command, got {}", submits.len());
    let first_cmd = submits[0].cmd;
    let track: Vec<_> = dump.events.iter().filter(|e| e.cmd == first_cmd).collect();
    let kinds: BTreeSet<TraceKind> = track.iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&TraceKind::SqSubmit), "missing submit in {kinds:?}");
    assert!(kinds.contains(&TraceKind::Doorbell), "missing doorbell in {kinds:?}");
    assert!(kinds.contains(&TraceKind::FlashProgram), "missing flash program in {kinds:?}");
    assert!(kinds.contains(&TraceKind::CqComplete), "missing completion in {kinds:?}");
    // The whole track is attributed to one queue.
    let queues: BTreeSet<u16> = track.iter().map(|e| e.queue).collect();
    assert_eq!(queues.len(), 1, "track spans queues {queues:?}");

    // The coalesced byte-write pair produced a Coalesce event.
    assert!(
        dump.events.iter().any(|e| e.kind == TraceKind::Coalesce && e.a >= 1),
        "adjacent byte writes should coalesce"
    );

    // Timestamps within the track are monotone: submit ≤ doorbell ≤ complete.
    let t = |k: TraceKind| {
        track.iter().find(|e| e.kind == k).map(|e| e.vclock_ns).expect("kind present")
    };
    assert!(t(TraceKind::SqSubmit) <= t(TraceKind::Doorbell));
    assert!(t(TraceKind::Doorbell) <= t(TraceKind::CqComplete));

    // Both export formats produce non-trivial output keyed by the command.
    let json = chrome_trace_json(&dump);
    assert!(json.contains(&format!("\"name\":\"cmd {first_cmd}\"")), "span missing");
    assert!(json.contains("\"ph\":\"X\""));
    let meta = OpTraceMeta::new(0, &MssdConfig::small_test());
    let text = op_trace_text(&dump, &meta);
    assert!(text.starts_with("#optrace v1 "), "header line first: {text:?}");
    assert!(text.lines().count() >= 8, "header plus one op-trace line per completed command");
    assert!(text.contains(&format!("cmd={first_cmd} ok")));
    // The exported trace must read back through the ingest half: same entry
    // count, and the header's geometry survives the round trip.
    let parsed = parse_op_trace(&text).expect("exported op trace parses");
    assert_eq!(parsed.entries.len(), text.lines().count() - 1);
    assert_eq!(parsed.meta, Some(meta));
    assert!(parsed.entries.iter().any(|e| e.cmd == first_cmd));
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let run = |traced: bool| {
        let dev = Mssd::new(MssdConfig::small_test(), DramMode::WriteLog);
        dev.set_tracing(traced);
        let now = drive(&dev);
        dev.quiesce_cleaning();
        let snap = dev.snapshot();
        (now, snap.traffic.flash_write_pages, snap.traffic.host_write_bytes(), snap.log_entries)
    };
    let traced = run(true);
    let untraced = run(false);
    assert_eq!(traced.0, untraced.0, "tracing advanced the virtual clock");
    assert_eq!(traced, untraced, "tracing changed observable device state");
}

#[test]
fn disabled_tracing_stays_silent_and_drain_is_empty() {
    let dev = Mssd::new(MssdConfig::small_test(), DramMode::WriteLog);
    drive(&dev);
    let dump = dev.trace_sink().drain();
    assert!(dump.events.is_empty());
    assert_eq!(dump.dropped, 0);
}
