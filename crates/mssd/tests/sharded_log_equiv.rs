//! Property test: the sharded write-log index is observationally equivalent
//! to the original single-map [`WriteLog`] under any single-threaded op
//! sequence.
//!
//! Both logs receive the same randomized stream of appends, invalidations,
//! drains and reinstates; after every step the observable state — entry and
//! byte accounting, coverage queries, merged page contents, dirty-page sets
//! and cleaning batches — must match exactly. This pins the refactor: the
//! sharding is a locking change, not a semantic one.

use proptest::prelude::*;

use mssd::log::{ShardedWriteLog, WriteLog, PARTITION_BYTES};
use mssd::{MssdConfig, TxId};

/// One operation applied to both logs.
#[derive(Debug, Clone)]
enum LogOp {
    /// Append `len` bytes of `tag` at `offset` in page `lpa`, optionally
    /// transactional.
    Append { lpa_sel: u16, offset: u16, len: u8, tag: u8, tx: u8 },
    /// Invalidate every entry of a page.
    Invalidate { lpa_sel: u16 },
    /// Drain for cleaning (txids `< committed_below` count as committed) and
    /// reinstate the migrated entries, as the device's cleaning pass does.
    CleanAndReinstate { committed_below: u8 },
    /// Compare a coverage query on both logs.
    Covers { lpa_sel: u16, offset: u16, len: u8 },
}

/// Maps the selector onto a small set of pages spread over several partitions
/// (so different shards are exercised) with some aliasing (so chunk lists
/// grow).
fn lpa_of(cfg: &MssdConfig, sel: u16) -> u64 {
    let ppp = PARTITION_BYTES / cfg.page_size as u64;
    let partition = (sel as u64) % 5;
    let page = (sel as u64 / 5) % 4;
    partition * ppp + page
}

fn op_strategy() -> impl Strategy<Value = LogOp> {
    prop_oneof![
        (any::<u16>(), any::<u16>(), any::<u8>(), any::<u8>(), any::<u8>()).prop_map(
            |(lpa_sel, offset, len, tag, tx)| LogOp::Append { lpa_sel, offset, len, tag, tx }
        ),
        (any::<u16>(), any::<u16>(), any::<u8>(), any::<u8>(), any::<u8>()).prop_map(
            |(lpa_sel, offset, len, tag, tx)| LogOp::Append { lpa_sel, offset, len, tag, tx }
        ),
        any::<u16>().prop_map(|lpa_sel| LogOp::Invalidate { lpa_sel }),
        any::<u8>().prop_map(|committed_below| LogOp::CleanAndReinstate { committed_below }),
        (any::<u16>(), any::<u16>(), any::<u8>())
            .prop_map(|(lpa_sel, offset, len)| LogOp::Covers { lpa_sel, offset, len }),
    ]
}

/// Asserts every observable of the two logs matches for the touched pages.
fn assert_equivalent(cfg: &MssdConfig, reference: &WriteLog, sharded: &ShardedWriteLog) {
    assert_eq!(sharded.entries(), reference.entries(), "entry counts");
    assert_eq!(sharded.used_bytes(), reference.used_bytes(), "space accounting");
    assert_eq!(sharded.needs_cleaning(), reference.needs_cleaning());
    assert_eq!(sharded.dirty_pages(), reference.dirty_pages(), "dirty page sets");
    for lpa in reference.dirty_pages() {
        let mut a = vec![0u8; cfg.page_size];
        let mut b = vec![0u8; cfg.page_size];
        reference.merge_into(lpa, &mut a);
        sharded.merge_into(lpa, &mut b);
        assert_eq!(a, b, "merged contents of page {lpa}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn sharded_log_is_observationally_equivalent(
        ops in proptest::collection::vec(op_strategy(), 1..120)
    ) {
        let mut cfg = MssdConfig::small_test();
        cfg.capacity_bytes = 256 << 20; // several partitions
        cfg.dram_region_bytes = 64 << 10; // small enough that appends can fill it
        let mut reference = WriteLog::new(&cfg);
        let sharded = ShardedWriteLog::new(&cfg);

        for op in ops {
            match op {
                LogOp::Append { lpa_sel, offset, len, tag, tx } => {
                    let lpa = lpa_of(&cfg, lpa_sel);
                    let len = (len as usize % 192) + 1;
                    let offset = (offset as usize) % (cfg.page_size - len);
                    let data = vec![tag; len];
                    let txid = (tx % 4 != 0).then_some(TxId(tx as u32 % 8));
                    let a = reference.append(lpa, offset, &data, txid);
                    let b = sharded.append(lpa, offset, &data, txid);
                    prop_assert_eq!(a.is_ok(), b.is_ok(), "append outcome diverged");
                }
                LogOp::Invalidate { lpa_sel } => {
                    let lpa = lpa_of(&cfg, lpa_sel);
                    let a = reference.invalidate_page(lpa);
                    let b = sharded.invalidate_page(lpa);
                    prop_assert_eq!(a, b, "invalidate count diverged");
                }
                LogOp::CleanAndReinstate { committed_below } => {
                    let bound = committed_below as u32 % 8;
                    let committed = move |t: TxId| t.0 < bound;
                    let mut a = reference.drain_for_cleaning(committed);
                    let b = sharded.drain_for_cleaning(committed);
                    // The reference drains partitions in partition order, the
                    // sharded log in shard order; both sort `pages`, so only
                    // `migrated` needs normalizing before comparison.
                    a.migrated.sort_by_key(|(lpa, c)| (*lpa, c.seq));
                    prop_assert_eq!(&a.pages, &b.pages, "cleaning batches diverged");
                    prop_assert_eq!(&a.migrated, &b.migrated, "migrated sets diverged");
                    reference.reinstate(a.migrated);
                    sharded.reinstate(b.migrated);
                }
                LogOp::Covers { lpa_sel, offset, len } => {
                    let lpa = lpa_of(&cfg, lpa_sel);
                    let len = len as usize % 256;
                    let offset = (offset as usize) % (cfg.page_size - len.max(1));
                    prop_assert_eq!(
                        reference.covers(lpa, offset, len),
                        sharded.covers(lpa, offset, len),
                        "coverage diverged"
                    );
                    let served = sharded.read_covered(lpa, offset, len);
                    if let Some(bytes) = served {
                        let mut page = vec![0u8; cfg.page_size];
                        reference.merge_into(lpa, &mut page);
                        prop_assert_eq!(
                            bytes,
                            page[offset..offset + len].to_vec(),
                            "read_covered content diverged"
                        );
                    }
                }
            }
            assert_equivalent(&cfg, &reference, &sharded);
        }
    }
}
