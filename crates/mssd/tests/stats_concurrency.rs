//! Concurrency tests for the lock-free `AtomicTraffic` bank: snapshot,
//! delta and reset stay exact under concurrent recorders spread over more
//! queue ids than there are accounting slots (ids share slots modulo
//! `QUEUE_SLOTS`), and the per-queue `lat_max_ns` running maximum is a true
//! `fetch_max` — no lost updates under relaxed concurrent recording (the
//! audit for the historically suspected read-modify-write race).

use std::sync::Arc;

use mssd::{AtomicTraffic, QUEUE_SLOTS};

/// Queue ids used by the recorders: deliberately more than `QUEUE_SLOTS`, so
/// several ids land on the same accounting slot.
const QUEUE_IDS: u16 = 48;
const THREADS: u16 = 8;
const OPS_PER_THREAD: u64 = 4_000;

#[test]
fn concurrent_recorders_with_slot_sharing_stay_exact() {
    assert!(
        (QUEUE_IDS as usize) > QUEUE_SLOTS,
        "test must exercise slot sharing: {QUEUE_IDS} ids over {QUEUE_SLOTS} slots"
    );
    let stats = Arc::new(AtomicTraffic::new());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let stats = Arc::clone(&stats);
            s.spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    let queue = ((t as u64 * OPS_PER_THREAD + i) % QUEUE_IDS as u64) as u16;
                    // Latency encodes the writer so the expected max is known.
                    stats.record_queue_op(queue, 1 + (t as u64) * 1000 + i % 7);
                    if i % 16 == 0 {
                        stats.record_queue_batch(queue, 2);
                    }
                }
            });
        }
    });
    let snap = stats.snapshot();
    let total_ops: u64 = snap.queues.values().map(|q| q.ops).sum();
    assert_eq!(total_ops, THREADS as u64 * OPS_PER_THREAD, "ops lost under concurrency");
    let total_batches: u64 = snap.queues.values().map(|q| q.batches).sum();
    assert_eq!(total_batches, THREADS as u64 * OPS_PER_THREAD / 16);
    // Every queue id maps onto its slot modulo QUEUE_SLOTS; with 48 ids over
    // the 31 non-reserved slots every occupied slot must be within range.
    for id in snap.queues.keys() {
        assert!((*id as usize) < QUEUE_SLOTS, "snapshot key {id} is a slot, not a raw queue id");
    }
    // The max latency written anywhere is by thread THREADS-1: 1 + (T-1)*1000 + 6.
    let expected_max = 1 + (THREADS as u64 - 1) * 1000 + 6;
    let observed_max = snap.queues.values().map(|q| q.lat_max_ns).max().unwrap();
    assert_eq!(observed_max, expected_max, "lat_max_ns lost an update (fetch_max race)");
}

#[test]
fn lat_max_is_fetch_max_not_read_modify_write() {
    // Hammer one slot from many threads with interleaved ascending and
    // descending latencies; a load-compare-store implementation loses the
    // true maximum with high probability, a fetch_max never does.
    let stats = Arc::new(AtomicTraffic::new());
    let true_max = 999_983u64;
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let stats = Arc::clone(&stats);
            s.spawn(move || {
                for i in 0..20_000u64 {
                    let lat =
                        if i == 10_000 && t == 3 { true_max } else { (i * 31 + t * 7) % 500_000 };
                    stats.record_queue_op(5, lat);
                }
            });
        }
    });
    let snap = stats.snapshot();
    assert_eq!(snap.queues[&5].lat_max_ns, true_max);
    assert_eq!(snap.queues[&5].ops, 8 * 20_000);
}

#[test]
fn delta_and_reset_under_slot_sharing() {
    let stats = AtomicTraffic::new();
    for q in 0..QUEUE_IDS {
        stats.record_queue_op(q, 100 + q as u64);
    }
    let earlier = stats.snapshot();
    // Second wave on the same slots plus some host traffic.
    std::thread::scope(|s| {
        for t in 0..4u16 {
            let stats = &stats;
            s.spawn(move || {
                for q in 0..QUEUE_IDS {
                    stats.record_queue_op(q, 10_000 + (t as u64) * 100);
                }
            });
        }
    });
    let later = stats.snapshot();
    let delta = later.delta_since(&earlier);
    let delta_ops: u64 = delta.queues.values().map(|q| q.ops).sum();
    assert_eq!(delta_ops, 4 * QUEUE_IDS as u64, "delta must cover exactly the second wave");
    // lat_max_ns in a delta keeps the later snapshot's value (documented
    // upper bound), so it reflects the second wave's larger latencies.
    assert!(delta.queues.values().all(|q| q.lat_max_ns >= 10_000));

    stats.reset();
    let cleared = stats.snapshot();
    assert!(cleared.queues.is_empty(), "reset must clear every slot");
    assert_eq!(cleared.host_read_bytes() + cleared.host_write_bytes(), 0);

    // The bank is fully reusable after reset.
    stats.record_queue_op(40, 77);
    let again = stats.snapshot();
    assert_eq!(again.queues[&(40 % QUEUE_SLOTS as u16)].ops, 1);
    assert_eq!(again.queues[&(40 % QUEUE_SLOTS as u16)].lat_max_ns, 77);
}
