//! Multi-threaded stress tests of the sharded device hot path.
//!
//! N threads issue mixed byte writes, block writes, byte reads and commits
//! against one shared [`Mssd`], with small log regions so stop-the-world
//! cleanings race against the writers. Afterwards the tests assert post-hoc
//! invariants: the log footprint never exceeds the region, every thread's
//! data reads back exactly, traffic totals add up, and the final state agrees
//! with a single-threaded replay of the same operations.

use std::sync::Arc;

use mssd::log::PARTITION_BYTES;
use mssd::{Category, DramMode, Mssd, MssdConfig, TxId};

/// Deterministic per-thread op stream (xorshift64).
struct Ops {
    state: u64,
}

impl Ops {
    fn new(seed: u64) -> Self {
        Self { state: seed | 1 }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }
}

fn stress_config() -> MssdConfig {
    let mut cfg = MssdConfig::small_test();
    // 64 MB volume: four 16 MB partitions, one per thread, mapping the four
    // workers to four distinct write-log shards.
    cfg.capacity_bytes = 64 << 20;
    // A log region small enough that the run forces many cleaning passes
    // under concurrency.
    cfg.dram_region_bytes = 256 << 10;
    cfg
}

const THREADS: usize = 4;
const OPS: usize = 3_000;

/// Executes thread `t`'s operation stream against `dev`. Returns, per 64-byte
/// slot index, the last tag written (for later verification), plus the block
/// pages written. When `verify_reads` is set the thread also re-reads its own
/// slots mid-run and asserts it sees its own last write — exercising the
/// log-covered fast path and the flash+overlay slow path while other threads
/// mutate their shards and cleanings run.
fn drive(dev: &Mssd, t: usize, verify_reads: bool) -> (Vec<Option<u8>>, Vec<Option<u8>>) {
    let slots = 512u64;
    let byte_base = t as u64 * PARTITION_BYTES;
    // Block writes target the upper half of the thread's partition so they
    // never alias its byte-write slots.
    let block_base = byte_base / 4096 + 2048;
    let mut last_slot_tag: Vec<Option<u8>> = vec![None; slots as usize];
    let mut last_page_tag: Vec<Option<u8>> = vec![None; 16];
    let mut ops = Ops::new(0xBEEF ^ (t as u64) << 20);
    let mut tx = TxId(((t as u32) << 16) | 1);
    let mut uncommitted = 0usize;
    for _ in 0..OPS {
        match ops.next() % 10 {
            0..=5 => {
                let slot = ops.next() % slots;
                let tag = (ops.next() % 251) as u8;
                let data = [tag; 64];
                dev.byte_write(byte_base + slot * 64, &data, Some(tx), Category::Data);
                last_slot_tag[slot as usize] = Some(tag);
                uncommitted += 1;
                if uncommitted >= 16 {
                    dev.commit(tx);
                    tx = TxId(tx.0 + 1);
                    uncommitted = 0;
                }
            }
            6 | 7 => {
                let page = ops.next() % 16;
                let tag = (ops.next() % 251) as u8;
                dev.block_write(block_base + page, &vec![tag; 4096], Category::Data);
                last_page_tag[page as usize] = Some(tag);
            }
            8 => {
                if verify_reads {
                    let slot = ops.next() % slots;
                    if let Some(tag) = last_slot_tag[slot as usize] {
                        let got = dev.byte_read(byte_base + slot * 64, 64, Category::Data);
                        assert_eq!(got, vec![tag; 64], "thread {t} slot {slot} mid-run");
                    }
                }
            }
            _ => {
                if verify_reads {
                    let page = ops.next() % 16;
                    if let Some(tag) = last_page_tag[page as usize] {
                        let got = dev.block_read(block_base + page, 1, Category::Data);
                        assert_eq!(got, vec![tag; 4096], "thread {t} page {page} mid-run");
                    }
                }
            }
        }
    }
    // Commit the tail so every byte write is durable from here on.
    dev.commit(tx);
    (last_slot_tag, last_page_tag)
}

/// Verifies every thread's final bytes on the device.
fn verify_final(dev: &Mssd, t: usize, slot_tags: &[Option<u8>], page_tags: &[Option<u8>]) {
    let byte_base = t as u64 * PARTITION_BYTES;
    let block_base = byte_base / 4096 + 2048;
    for (slot, tag) in slot_tags.iter().enumerate() {
        if let Some(tag) = tag {
            let got = dev.byte_read(byte_base + slot as u64 * 64, 64, Category::Data);
            assert_eq!(got, vec![*tag; 64], "thread {t} slot {slot} final");
        }
    }
    for (page, tag) in page_tags.iter().enumerate() {
        if let Some(tag) = tag {
            let got = dev.block_read(block_base + page as u64, 1, Category::Data);
            assert_eq!(got, vec![*tag; 4096], "thread {t} page {page} final");
        }
    }
}

#[test]
fn concurrent_mixed_writes_commits_and_reads_stay_consistent() {
    let dev = Mssd::new(stress_config(), DramMode::WriteLog);
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let dev = Arc::clone(&dev);
            std::thread::spawn(move || {
                let expected = drive(&dev, t, true);
                // Invariant probe while other threads are still running. A
                // cleaning that races appends may transiently overshoot the
                // region while migrated entries are reinstated (documented on
                // ShardedWriteLog::reinstate), so allow that bounded slack —
                // but unbounded growth is a leak.
                let snap = dev.snapshot();
                assert!(
                    snap.log_used_bytes <= 2 * dev.config().dram_region_bytes,
                    "log footprint {} far exceeds region {}",
                    snap.log_used_bytes,
                    dev.config().dram_region_bytes
                );
                expected
            })
        })
        .collect();
    let expected: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let snap = dev.snapshot();
    assert!(snap.traffic.log_cleanings > 0, "the run must exercise cleaning races");
    // Quiescent now, but the tail of the run may have left a reinstate
    // overshoot in place until the next cleaning; same bounded slack.
    assert!(snap.log_used_bytes <= 2 * dev.config().dram_region_bytes);

    for (t, (slots, pages)) in expected.iter().enumerate() {
        verify_final(&dev, t, slots, pages);
    }

    // Everything was committed; after a forced clean the log is empty and the
    // data still reads back from flash.
    dev.force_clean();
    assert_eq!(dev.snapshot().log_entries, 0);
    for (t, (slots, pages)) in expected.iter().enumerate() {
        verify_final(&dev, t, slots, pages);
    }
}

#[test]
fn concurrent_run_agrees_with_single_threaded_replay() {
    let shared = Mssd::new(stress_config(), DramMode::WriteLog);
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let dev = Arc::clone(&shared);
            std::thread::spawn(move || drive(&dev, t, false))
        })
        .collect();
    let expected: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Replay the same per-thread streams sequentially on a fresh device. The
    // threads touch disjoint partitions, so the interleaving cannot change
    // user-visible contents: both devices must answer every read identically.
    let replay = Mssd::new(stress_config(), DramMode::WriteLog);
    let replayed: Vec<_> = (0..THREADS).map(|t| drive(&replay, t, false)).collect();
    assert_eq!(expected, replayed, "per-thread op streams are deterministic");

    for (t, (slots, pages)) in expected.iter().enumerate() {
        verify_final(&shared, t, slots, pages);
        verify_final(&replay, t, slots, pages);
    }

    // Traffic totals must agree on everything the interleaving cannot change:
    // host-issued bytes and requests (flash-internal counters may differ
    // because cleanings land at different points).
    let a = shared.traffic();
    let b = replay.traffic();
    assert_eq!(a.host_write_bytes(), b.host_write_bytes());
    assert_eq!(a.host_read_bytes(), b.host_read_bytes());
    assert_eq!(a.byte_requests, b.byte_requests);
    assert_eq!(a.block_requests, b.block_requests);
    assert_eq!(a.tx_commits, b.tx_commits);
}

#[test]
fn concurrent_crash_recovery_preserves_committed_writes() {
    let dev = Mssd::new(stress_config(), DramMode::WriteLog);
    // Each thread writes one committed and one uncommitted range.
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let dev = Arc::clone(&dev);
            std::thread::spawn(move || {
                let base = t as u64 * PARTITION_BYTES;
                let committed_tx = TxId(((t as u32) << 8) | 1);
                let lost_tx = TxId(((t as u32) << 8) | 2);
                dev.byte_write(base, &[0xC0 + t as u8; 64], Some(committed_tx), Category::Data);
                dev.byte_write(base + 4096, &[0xD0 + t as u8; 64], Some(lost_tx), Category::Data);
                dev.commit(committed_tx);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    dev.crash();
    let report = dev.recover();
    assert_eq!(report.discarded_entries, THREADS, "one uncommitted entry per thread");
    for t in 0..THREADS as u64 {
        let base = t * PARTITION_BYTES;
        assert_eq!(
            dev.byte_read(base, 64, Category::Data),
            vec![0xC0 + t as u8; 64],
            "committed write of thread {t} survives"
        );
        assert_eq!(
            dev.byte_read(base + 4096, 64, Category::Data),
            vec![0u8; 64],
            "uncommitted write of thread {t} is discarded"
        );
    }
}

#[test]
fn pagecache_mode_is_thread_safe_too() {
    let mut cfg = stress_config();
    cfg.dram_region_bytes = 1 << 20;
    let dev = Mssd::new(cfg, DramMode::PageCache);
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let dev = Arc::clone(&dev);
            std::thread::spawn(move || {
                let base = t as u64 * PARTITION_BYTES;
                for i in 0..500u64 {
                    let tag = (i % 251) as u8;
                    dev.byte_write(base + (i % 64) * 64, &[tag; 64], None, Category::Data);
                    dev.block_write(base / 4096 + 1024 + (i % 8), &vec![tag; 4096], Category::Data);
                }
                dev.flush();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let last = 499u64 % 251;
    for t in 0..THREADS as u64 {
        let base = t * PARTITION_BYTES;
        let got = dev.byte_read(base + (499 % 64) * 64, 64, Category::Data);
        assert_eq!(got, vec![last as u8; 64], "thread {t} last byte write");
    }
    assert_eq!(dev.snapshot().cache_dirty_pages, 0, "flush drained every thread's pages");
}
