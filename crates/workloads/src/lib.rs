//! # workloads — benchmark workloads and the measurement harness
//!
//! This crate re-implements the workloads of the ByteFS evaluation (§5.1,
//! Table 5) on top of the [`fskit::FileSystem`] trait, and provides the
//! machinery to run them against any file system in the workspace and collect
//! the metrics the paper reports:
//!
//! * Filebench-style **micro-benchmarks** — `create`, `delete`, `mkdir`,
//!   `rmdir` ([`micro`]);
//! * Filebench **macro personalities** — Varmail, Fileserver, Webserver,
//!   Webproxy ([`filebench`]) and an OLTP-style workload ([`oltp`]);
//! * **YCSB A–F** with zipfian/latest/uniform request distributions driving
//!   the [`kvstore`] LSM store ([`ycsb`]);
//! * a [`driver`] that runs a workload on a file system and returns
//!   throughput, per-class latency and device traffic deltas;
//! * [`amplification`] reports (read/write amplification and per-structure
//!   traffic breakdowns, Table 2 / Figures 1, 8–11);
//! * a [`fsfactory`] that builds every file system under test, including the
//!   ByteFS ablation variants of Figure 12;
//! * a deterministic [`mod@replay`] subsystem — record any workload's
//!   file-system op stream as a versioned trace (text or binary) and
//!   re-drive it against any file system at configurable speed and
//!   concurrency — plus the [`corpus`] of replay scenarios it ships with
//!   (see `DESIGN-replay.md`).
//!
//! All workloads are scaled-down versions of the paper's (which run millions
//! of files for hours on real hardware); the [`spec::Scale`] parameter controls
//! the working-set size so every figure can be regenerated in minutes.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod amplification;
pub mod corpus;
pub mod driver;
pub mod filebench;
pub mod fsfactory;
pub mod metrics;
pub mod micro;
pub mod oltp;
pub mod replay;
pub mod spec;
pub mod ycsb;

pub use corpus::{record_corpus, CorpusKind};
pub use driver::{
    flush_barrier, run_concurrent, run_concurrent_async, run_workload, shard_seed,
    ConcurrentRunResult, RunResult, ThreadResult,
};
pub use fsfactory::FsKind;
pub use metrics::{Histogram, LatencyStats, OpClass, Recorder};
pub use replay::{
    record_workload, replay, replay_on, OpKind, OpRecord, OpTrace, Payload, Recorded, RecordingFs,
    ReplayConfig, ReplayOutcome, ReplaySpeed, TraceMeta, FS_TRACE_SCHEMA,
};
pub use spec::Scale;

use fskit::{AsyncFileSystem, BoxFuture, FileSystem, FsResult, InlineSyncFs};
use rand::rngs::SmallRng;

/// A file-system workload: a setup phase (not measured) and a measured run.
///
/// `Send + Sync` because the concurrent drivers share one workload across
/// worker threads ([`driver::run_concurrent`]) and spawned client futures
/// ([`driver::run_concurrent_async`]); workloads are plain parameter
/// structs, so the bound costs implementations nothing.
pub trait Workload: Send + Sync {
    /// Short name used in reports (e.g. `"varmail"`).
    fn name(&self) -> String;

    /// Prepares the file set. Not measured.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    fn setup(&self, fs: &dyn FileSystem, rng: &mut SmallRng) -> FsResult<()>;

    /// Runs the measured phase, recording each operation in `rec`.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    fn run(&self, fs: &dyn FileSystem, rng: &mut SmallRng, rec: &mut Recorder) -> FsResult<()>;

    /// Runs shard `shard` of `shards` of the measured phase — the unit the
    /// multi-threaded driver ([`driver::run_concurrent`]) hands to each
    /// thread over one shared file system.
    ///
    /// Implementations partition their op stream (and the file subset each
    /// shard touches, so shards never race on the same files) such that
    /// running shards `0..shards` — in any order or concurrently — performs
    /// the same logical work as [`Workload::run`]. `run_shard(fs, 0, 1, ..)`
    /// must be exactly `run`.
    ///
    /// The default implementation does not partition: shard 0 runs the whole
    /// workload, other shards idle. Workloads override it to scale.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    fn run_shard(
        &self,
        fs: &dyn FileSystem,
        shard: usize,
        shards: usize,
        rng: &mut SmallRng,
        rec: &mut Recorder,
    ) -> FsResult<()> {
        let _ = shards;
        if shard == 0 {
            self.run(fs, rng, rec)
        } else {
            Ok(())
        }
    }

    /// Runs shard `shard` of `shards` as a future — the unit the async
    /// driver ([`driver::run_concurrent_async`]) spawns per logical client.
    /// Same partitioning contract as [`Workload::run_shard`].
    ///
    /// The default implementation reuses the sync shard body over an
    /// [`InlineSyncFs`] view: correct for any workload, but each client
    /// then runs its whole shard in one poll. Workloads override it with a
    /// genuinely awaiting body (e.g. [`micro::Micro`]) so thousands of
    /// clients interleave per operation.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    fn run_shard_async<'a>(
        &'a self,
        fs: &'a dyn AsyncFileSystem,
        shard: usize,
        shards: usize,
        rng: &'a mut SmallRng,
        rec: &'a mut Recorder,
    ) -> BoxFuture<'a, FsResult<()>> {
        Box::pin(async move {
            let view = InlineSyncFs::new(fs);
            self.run_shard(&view, shard, shards, rng, rec)
        })
    }
}
