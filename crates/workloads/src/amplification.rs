//! Amplification and traffic-breakdown reports (Table 2, Figures 1 and 8–11).

use mssd::stats::{Category, Direction, TrafficCounter};

use crate::driver::RunResult;

/// One row of the Table 2 style amplification report.
#[derive(Debug, Clone, PartialEq)]
pub struct AmplificationRow {
    /// File-system label.
    pub fs: String,
    /// Workload label.
    pub workload: String,
    /// Host write bytes / application write bytes.
    pub write_amplification: f64,
    /// Host read bytes / application read bytes.
    pub read_amplification: f64,
}

impl AmplificationRow {
    /// Builds the row from a run result.
    pub fn from_run(run: &RunResult) -> Self {
        Self {
            fs: run.fs.clone(),
            workload: run.workload.clone(),
            write_amplification: run.write_amplification(),
            read_amplification: run.read_amplification(),
        }
    }
}

/// Per-data-structure traffic breakdown (one stacked bar of Figure 1/8/9).
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficBreakdown {
    /// `(category, bytes, share of total)` rows in display order.
    pub rows: Vec<(Category, u64, f64)>,
    /// Total bytes in this direction.
    pub total: u64,
}

impl TrafficBreakdown {
    /// Computes the breakdown of host traffic in one direction.
    pub fn new(traffic: &TrafficCounter, dir: Direction) -> Self {
        let total: u64 =
            Category::ALL.iter().map(|c| traffic.host_bytes_by_category(dir, *c)).sum();
        let rows = Category::ALL
            .iter()
            .map(|c| {
                let bytes = traffic.host_bytes_by_category(dir, *c);
                let share = if total == 0 { 0.0 } else { bytes as f64 / total as f64 };
                (*c, bytes, share)
            })
            .filter(|(_, bytes, _)| *bytes > 0)
            .collect();
        Self { rows, total }
    }

    /// The share of the total attributed to one category.
    pub fn share(&self, cat: Category) -> f64 {
        self.rows.iter().find(|(c, _, _)| *c == cat).map(|(_, _, s)| *s).unwrap_or(0.0)
    }

    /// Formats the breakdown as a compact one-line report.
    pub fn format_line(&self) -> String {
        let cells: Vec<String> = self
            .rows
            .iter()
            .map(|(c, bytes, share)| format!("{c}={bytes}B({:.1}%)", share * 100.0))
            .collect();
        format!("total={}B {}", self.total, cells.join(" "))
    }
}

/// Flash traffic in bytes for a run (one bar of Figure 10/11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashTraffic {
    /// Flash bytes read (host-triggered plus firmware-internal).
    pub read_bytes: u64,
    /// Flash bytes written.
    pub write_bytes: u64,
}

impl FlashTraffic {
    /// Extracts flash traffic from a run result.
    pub fn from_run(run: &RunResult) -> Self {
        Self { read_bytes: run.flash_read_bytes(), write_bytes: run.flash_write_bytes() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_workload;
    use crate::filebench::{Filebench, Personality};
    use crate::fsfactory::FsKind;
    use crate::spec::Scale;
    use mssd::stats::Interface;
    use mssd::MssdConfig;

    #[test]
    fn breakdown_shares_sum_to_one() {
        let mut t = TrafficCounter::new();
        t.record_host(Direction::Write, Category::Inode, Interface::Byte, 300);
        t.record_host(Direction::Write, Category::Data, Interface::Block, 700);
        let b = TrafficBreakdown::new(&t, Direction::Write);
        assert_eq!(b.total, 1000);
        let sum: f64 = b.rows.iter().map(|(_, _, s)| *s).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!((b.share(Category::Data) - 0.7).abs() < 1e-9);
        assert_eq!(b.share(Category::Journal), 0.0);
        assert!(b.format_line().contains("total=1000B"));
    }

    #[test]
    fn empty_traffic_has_empty_breakdown() {
        let t = TrafficCounter::new();
        let b = TrafficBreakdown::new(&t, Direction::Read);
        assert_eq!(b.total, 0);
        assert!(b.rows.is_empty());
    }

    #[test]
    fn amplification_rows_reflect_run_results() {
        let w = Filebench::new(Personality::Varmail, Scale::tiny());
        let run = run_workload(FsKind::Ext4, MssdConfig::small_test(), &w, 4).unwrap();
        let row = AmplificationRow::from_run(&run);
        assert_eq!(row.fs, "ext4");
        assert_eq!(row.workload, "varmail");
        assert!(row.write_amplification > 1.0, "Ext4 write amplification should exceed 1x");
        let flash = FlashTraffic::from_run(&run);
        assert!(flash.write_bytes > 0 || flash.read_bytes > 0);
    }
}
